//! Extending the library: implement a *custom* page-table design — a
//! single-level "monolithic" table that maps the entire 48-bit space with
//! one gigantic node — and inspect its walks next to the built-in designs.
//!
//! This demonstrates the [`PageTable`] trait as an extension point: the
//! walker, PWCs and occupancy tooling all work on any implementation.
//!
//! ```text
//! cargo run --release --example custom_page_table
//! ```

use ndp_types::addr::PTE_SIZE;
use ndp_types::{PageSize, PtLevel, Vpn};
use ndpage::alloc::{FrameAllocator, FramePurpose};
use ndpage::occupancy::{LevelOccupancy, OccupancyReport};
use ndpage::pte::Pte;
use ndpage::table::{FaultKind, MapOutcome, PageTable, PageTableKind, Translation};
use ndpage::walk::{WalkPath, WalkStep};
use ndpage::Mechanism;
use std::collections::HashMap;

/// One flat array of PTEs indexed directly by VPN: every walk is a single
/// memory access, at the cost of a (here sparse-simulated) table covering
/// the whole virtual space. A useful thought-experiment endpoint for the
/// paper's "flatten levels" direction.
struct MonolithicTable {
    /// Sparse backing store standing in for the huge physical array.
    entries: HashMap<u64, Pte>,
    base: ndp_types::Pfn,
    mapped: u64,
}

impl MonolithicTable {
    fn new(alloc: &mut FrameAllocator) -> Self {
        // Reserve a token contiguous region to anchor PTE addresses.
        let base = alloc
            .alloc_contiguous(512, FramePurpose::PageTable)
            .expect("table reservation");
        MonolithicTable {
            entries: HashMap::new(),
            base,
            mapped: 0,
        }
    }
}

impl PageTable for MonolithicTable {
    fn kind(&self) -> PageTableKind {
        // Closest built-in classification; a real extension would extend
        // the enum, but the trait only uses this for reporting.
        PageTableKind::FlattenedL2L1
    }

    fn translate(&self, vpn: Vpn) -> Option<Translation> {
        self.entries.get(&vpn.as_u64()).map(|pte| Translation {
            pfn: pte.pfn(),
            size: PageSize::Size4K,
        })
    }

    fn map(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> MapOutcome {
        if self.entries.contains_key(&vpn.as_u64()) {
            return MapOutcome::already_mapped();
        }
        let frame = alloc.alloc_frame(FramePurpose::Data);
        self.entries.insert(vpn.as_u64(), Pte::leaf(frame));
        self.mapped += 1;
        MapOutcome {
            newly_mapped: true,
            fault: Some(FaultKind::Minor4K),
            tables_allocated: 0,
        }
    }

    fn walk_path(&self, vpn: Vpn) -> Option<WalkPath> {
        self.translate(vpn)?;
        // One access: PTE at base + vpn * 8 (folded into the reserved
        // region for address realism).
        let offset = (vpn.as_u64() * PTE_SIZE) % (512 * 4096);
        Some(WalkPath::new(vec![WalkStep {
            addr: self.base.base().add(offset),
            level: PtLevel::FlatL2L1,
            group: 0,
        }]))
    }

    fn occupancy(&self) -> OccupancyReport {
        let mut report = OccupancyReport::new();
        report.set(
            PtLevel::FlatL2L1,
            LevelOccupancy {
                nodes: 1,
                valid_entries: self.mapped,
                capacity: 1 << 36,
            },
        );
        report
    }

    fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    fn table_bytes(&self) -> u64 {
        512 * 4096
    }
}

fn main() {
    let mut alloc = FrameAllocator::new(1 << 30);
    let mut mono = MonolithicTable::new(&mut alloc);
    let mut flat = Mechanism::NdPage
        .build_table(&mut alloc)
        .expect("built-in table");
    let mut radix = Mechanism::Radix
        .build_table(&mut alloc)
        .expect("built-in table");

    let vpns: Vec<Vpn> = (0..5u64).map(|i| Vpn::new(i * 104_729 + 7)).collect();
    for &vpn in &vpns {
        mono.map(vpn, &mut alloc);
        flat.map(vpn, &mut alloc);
        radix.map(vpn, &mut alloc);
    }

    println!("Sequential PTE accesses per page-table walk:\n");
    println!("{:<28} {:>6} {:>9}", "design", "depth", "fetches");
    for (name, table) in [
        ("custom MonolithicTable", &mono as &dyn PageTable),
        ("NDPage FlattenedL2L1", flat.as_ref()),
        ("x86-64 Radix4", radix.as_ref()),
    ] {
        let path = table.walk_path(vpns[0]).expect("mapped");
        println!(
            "{:<28} {:>6} {:>9}",
            name,
            path.sequential_depth(),
            path.len()
        );
    }

    println!(
        "\nEvery design also reports occupancy:\n{}",
        mono.occupancy()
    );
}
