//! Quickstart: run one workload under NDPage and the Radix baseline on a
//! single-core NDP system and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn main() {
    println!("NDPage quickstart: GUPS on a 1-core NDP system\n");

    let radix = Machine::new(SimConfig::quick(
        SystemKind::Ndp,
        1,
        Mechanism::Radix,
        WorkloadId::Rnd,
    ))
    .run();
    let ndpage = Machine::new(SimConfig::quick(
        SystemKind::Ndp,
        1,
        Mechanism::NdPage,
        WorkloadId::Rnd,
    ))
    .run();

    println!("--- Radix (4-level baseline) ---\n{radix}\n");
    println!("--- NDPage (flattened L2/L1 + metadata bypass) ---\n{ndpage}\n");

    println!(
        "NDPage speedup over Radix: {:.2}x",
        ndpage.speedup_over(&radix)
    );
    println!(
        "PTW latency: {:.0} -> {:.0} cycles ({} fewer PTE fetches to memory per walk on average)",
        radix.avg_ptw_latency(),
        ndpage.avg_ptw_latency(),
        if radix.ptw.count > 0 && ndpage.ptw.count > 0 {
            format!(
                "{:.2}",
                radix.mem_traffic.metadata as f64 / radix.ptw.count as f64
                    - ndpage.mem_traffic.metadata as f64 / ndpage.ptw.count as f64
            )
        } else {
            "?".into()
        }
    );
    println!(
        "L1 pollution: {} data lines evicted by PTE fills under Radix, {} under NDPage",
        radix.data_evicted_by_metadata, ndpage.data_evicted_by_metadata
    );
}
