//! Mechanism shootout: sweeps core counts (1/4/8) for one workload and
//! shows how each translation mechanism scales — the paper's Fig 12→14
//! story in one table, including the Huge Page collapse at 8 cores.
//!
//! ```text
//! cargo run --release --example mechanism_shootout [workload]
//! ```
//!
//! `workload` is one of the Table II names (default `BFS`).

use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "BFS".into());
    let workload = WorkloadId::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(&name))
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name}; using BFS");
            WorkloadId::Bfs
        });

    println!("{workload} on NDP systems, speedup over same-core-count Radix:\n");
    println!(
        "{:<6} {:>8} {:>8} {:>11} {:>8} {:>8} | {:>12}",
        "cores", "Radix", "ECH", "Huge Page", "NDPage", "Ideal", "Radix PTW"
    );

    for cores in [1u32, 4, 8] {
        let radix = Machine::new(SimConfig::quick(
            SystemKind::Ndp,
            cores,
            Mechanism::Radix,
            workload,
        ))
        .run();
        let mut row = format!("{cores:<6} {:>7.2}x", 1.0);
        for m in [
            Mechanism::Ech,
            Mechanism::HugePage,
            Mechanism::NdPage,
            Mechanism::Ideal,
        ] {
            let r = Machine::new(SimConfig::quick(SystemKind::Ndp, cores, m, workload)).run();
            let pad = if m == Mechanism::HugePage { 10 } else { 7 };
            row.push_str(&format!(" {:>pad$.2}x", r.speedup_over(&radix)));
        }
        row.push_str(&format!(" | {:>9.0} cyc", radix.avg_ptw_latency()));
        println!("{row}");
    }

    println!(
        "\nRadix page-table-walk latency grows with core count because every\n\
         walk's PTE fetches contend in the NDP vault (paper Fig 6a); NDPage\n\
         stays ahead and widens its lead (paper Figs 12-14)."
    );
}
