//! Graph analytics on a 4-core NDP system: runs the GraphBIG kernels the
//! paper's introduction motivates (BFS, PageRank, Connected Components)
//! under every translation mechanism and prints a Fig 13-style table.
//!
//! ```text
//! cargo run --release --example graph_analytics
//! ```

use ndp_sim::experiment::{geomean_speedups, speedup_figure, Scale};
use ndp_workloads::WorkloadId;

fn main() {
    let workloads = [WorkloadId::Bfs, WorkloadId::Pr, WorkloadId::Cc];
    println!("Speedup over Radix on a 4-core NDP system (quick scale):\n");
    println!(
        "{:<6} {:>8} {:>11} {:>8} {:>8}",
        "kernel", "ECH", "Huge Page", "NDPage", "Ideal"
    );

    let rows = speedup_figure(4, Scale::Quick, &workloads);
    for row in &rows {
        let s: Vec<f64> = row.speedups.iter().map(|(_, v)| *v).collect();
        println!(
            "{:<6} {:>7.2}x {:>10.2}x {:>7.2}x {:>7.2}x",
            row.workload.name(),
            s[0],
            s[1],
            s[2],
            s[3]
        );
    }

    println!();
    for (mechanism, gm) in geomean_speedups(&rows) {
        println!("geomean {mechanism:<10} {gm:.3}x");
    }
    println!(
        "\nExpected shape (paper Fig 13): Ideal > NDPage > ECH > Radix,\n\
         with Huge Page fading as contiguity pressure mounts."
    );
}
