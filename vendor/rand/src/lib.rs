#![forbid(unsafe_code)]
//! Minimal, dependency-free stand-in for the parts of `rand` this
//! workspace uses, so the build needs no network access.
//!
//! Only the surface consumed by `ndp-workloads` is provided:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` (over half-open ranges of primitive ints and
//! `f64`) and `gen_bool`. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic per seed, with distinct seeds giving
//! independent-looking streams, which is all the trace generators rely on.

use core::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `state` (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u64;
                // Modulo with a 64-bit source: bias is < 2^-63 per draw for
                // the spans simulators use; negligible for trace synthesis.
                let off = rng.next_u64() % span;
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open).
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_half_open(range.start, range.end, self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the small fast generator (stand-in for rand's
    /// `SmallRng`). Deterministic per seed.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_and_bools_behave() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            assert!(r.gen_range(5u64..17) < 17);
            assert!(r.gen_range(5u64..17) >= 5);
            let f = r.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
        let heads = (0..10_000).filter(|_| r.gen_bool(0.7)).count();
        assert!((6_500..7_500).contains(&heads), "got {heads}");
    }
}
