#![forbid(unsafe_code)]
//! Minimal, dependency-free stand-in for the parts of `proptest` this
//! workspace uses, so the build needs no network access.
//!
//! Provided surface: the [`proptest!`] macro (with `#![proptest_config]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], [`prop_oneof!`], [`Strategy`]
//! implementations for integer ranges, tuples, [`Just`],
//! [`collection::vec`], [`sample::select`] and [`bool::ANY`].
//!
//! Unlike real proptest there is **no shrinking**: a failing case panics
//! with the case number and message. Generation is deterministic (fixed
//! seed), so failures are reproducible run to run.

use core::fmt;
use core::ops::Range;

/// Deterministic case-generation RNG (xoshiro256++ with a fixed seed).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// The fixed-seed RNG used by [`proptest!`] expansions.
    #[must_use]
    pub fn deterministic() -> Self {
        TestRng {
            s: [
                0x9E37_79B9_7F4A_7C15,
                0xD1B5_4A32_D192_ED03,
                0xAEF1_7502_7C9E_97D7,
                0x8664_563E_9DEC_59B9,
            ],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

/// A value generator. Object-safe so heterogeneous strategies can be
/// boxed (see [`prop_oneof!`]).
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                ((self.start as i128) + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed strategies (backs [`prop_oneof!`]).
pub struct OneOf<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> OneOf<T> {
    /// Builds from a non-empty option list.
    #[must_use]
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        OneOf { options }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Vectors of `element` values with length in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set of values.
    pub struct Select<T: Clone> {
        values: Vec<T>,
    }

    /// Uniform choice from `values`.
    pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
        assert!(!values.is_empty(), "select needs at least one value");
        Select { values }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.values[rng.below(self.values.len() as u64) as usize].clone()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniform booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform boolean strategy (`prop::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn generate(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Per-block configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A test-case failure produced by the `prop_assert*` macros.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with `message`.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{:?} != {:?}: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` (the attribute is written in the source, as with
/// real proptest) running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_each! { $cfg; $($rest)* }
    };
}

/// Everything a test file needs via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };

    /// Full-range strategy for primitive types (`any::<u64>()`).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type.
        type Strategy: crate::Strategy<Value = Self>;
        /// The canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-range integer strategy.
    pub struct FullRange<T>(core::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl crate::Strategy for FullRange<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut crate::TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange(core::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for core::primitive::bool {
        type Strategy = crate::bool::Any;
        fn arbitrary() -> Self::Strategy {
            crate::bool::ANY
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u64..20, v in vec(0u64..5, 1..10)) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5), "v = {:?}", v);
        }

        #[test]
        fn oneof_and_select_choose_members(
            s in prop_oneof![Just(1u32), Just(2u32)],
            p in prop::sample::select(vec![10u8, 20, 30]),
            b in prop::bool::ANY,
        ) {
            prop_assert!(s == 1u32 || s == 2u32);
            prop_assert!([10u8, 20, 30].contains(&p));
            let _ = b;
        }
    }

    #[test]
    fn failures_surface_as_panics() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(4))]
                fn always_fails(x in 0u64..4) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
