#![forbid(unsafe_code)]
//! Minimal, dependency-free stand-in for the parts of `criterion` this
//! workspace's benches use, so the build needs no network access.
//!
//! The harness is a straightforward wall-clock loop (short warmup, then
//! timed iterations until a time budget or the sample budget is spent) and
//! prints one `ns/iter` line per benchmark. No statistics, plots or
//! baselines — enough to compare hot-path variants by hand; the tracked
//! perf numbers for this repo come from `ndpsim bench` instead.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Time budget per benchmark (after warmup).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
/// Warmup budget per benchmark.
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

/// Top-level harness handle.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the target iteration count (builder form, used in configs).
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        run_one(&id.to_string(), self.sample_size, f);
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter` form.
    #[must_use]
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only form.
    #[must_use]
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Declared throughput of one iteration (printed, not analysed).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched inputs are sized; accepted and ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration target for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput (printed only).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, f);
        self
    }

    /// Runs one benchmark against `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; runs the timed loops.
pub struct Bencher {
    sample_size: usize,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MEASURE_BUDGET && iters < self.sample_size as u64 * 1000 {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        {
            let input = setup();
            black_box(routine(input));
        }
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while elapsed < MEASURE_BUDGET && iters < self.sample_size as u64 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = elapsed;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        sample_size,
        iters: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let ns_per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
    println!(
        "bench {label:<48} {ns_per_iter:>14.1} ns/iter ({} iters)",
        bencher.iters
    );
}

/// Declares a benchmark group entry point (both criterion forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).throughput(Throughput::Elements(1));
        let mut ran = 0u64;
        group.bench_function("iter", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            });
        });
        group.bench_with_input(BenchmarkId::new("input", 7), &7u64, |b, &x| {
            b.iter_batched(|| x, |v| v * 2, BatchSize::SmallInput);
        });
        group.finish();
        assert!(ran > 0);
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
    }
}
