//! Page-table occupancy accounting (reproduces Fig 8).
//!
//! The paper's second key observation (§IV-B): in NDP workloads the PL2 and
//! PL1 tables are ~98% occupied while PL4/PL3 sit nearly empty — so the
//! radix tree's lazy-allocation flexibility buys nothing at the bottom two
//! levels, motivating the merge.

use ndp_types::PtLevel;
use std::collections::BTreeMap;
use std::fmt;

/// Occupancy of one page-table level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelOccupancy {
    /// Nodes allocated at this level.
    pub nodes: u64,
    /// Valid (present) entries across those nodes.
    pub valid_entries: u64,
    /// Total entry slots across those nodes.
    pub capacity: u64,
}

impl LevelOccupancy {
    /// Occupancy rate in `[0, 1]`; zero when no nodes exist.
    #[must_use]
    pub fn rate(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.valid_entries as f64 / self.capacity as f64
        }
    }
}

/// Occupancy across all levels of one page-table design.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancyReport {
    levels: BTreeMap<PtLevel, LevelOccupancy>,
}

impl OccupancyReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one level's numbers.
    pub fn set(&mut self, level: PtLevel, occ: LevelOccupancy) {
        self.levels.insert(level, occ);
    }

    /// Occupancy of one level, if the design has it.
    #[must_use]
    pub fn level(&self, level: PtLevel) -> Option<LevelOccupancy> {
        self.levels.get(&level).copied()
    }

    /// Pools another report into this one by summing each level's raw
    /// counters (nodes, valid entries, capacity) — the aggregate `rate()`
    /// then weights every table by its capacity, which is how one reports
    /// the occupancy of *all* address spaces of a multi-core /
    /// multiprogrammed run rather than just core 0's.
    pub fn merge(&mut self, other: &OccupancyReport) {
        for (level, occ) in other.iter() {
            let entry = self.levels.entry(level).or_default();
            entry.nodes += occ.nodes;
            entry.valid_entries += occ.valid_entries;
            entry.capacity += occ.capacity;
        }
    }

    /// Iterates `(level, occupancy)` in level order.
    pub fn iter(&self) -> impl Iterator<Item = (PtLevel, LevelOccupancy)> + '_ {
        self.levels.iter().map(|(l, o)| (*l, *o))
    }

    /// The paper's Fig 8 series for a radix table: occupancy rates at
    /// PL1, PL2, PL3 and the *hypothetical* combined PL2/PL1 (what the
    /// rate would be if the two levels were merged).
    #[must_use]
    pub fn fig8_series(&self) -> Fig8Series {
        let l1 = self.level(PtLevel::L1).unwrap_or_default();
        let l2 = self.level(PtLevel::L2).unwrap_or_default();
        let l3 = self.level(PtLevel::L3).unwrap_or_default();
        // A merged node exists per allocated L2 node and holds 2^18 slots;
        // its valid entries are the L1 leaves beneath.
        let combined = LevelOccupancy {
            nodes: l2.nodes,
            valid_entries: l1.valid_entries,
            capacity: l2.nodes * (1 << 18),
        };
        Fig8Series {
            pl1: l1.rate(),
            pl2: l2.rate(),
            pl3: l3.rate(),
            combined_pl2_pl1: combined.rate(),
        }
    }
}

/// The four bars of Fig 8 for one workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig8Series {
    /// PL1 occupancy rate.
    pub pl1: f64,
    /// PL2 occupancy rate.
    pub pl2: f64,
    /// PL3 occupancy rate.
    pub pl3: f64,
    /// Combined PL2/PL1 occupancy rate.
    pub combined_pl2_pl1: f64,
}

impl fmt::Display for OccupancyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (level, occ) in self.iter() {
            writeln!(
                f,
                "{level}: {} nodes, {}/{} entries ({:.2}%)",
                occ.nodes,
                occ.valid_entries,
                occ.capacity,
                occ.rate() * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_handles_empty() {
        assert_eq!(LevelOccupancy::default().rate(), 0.0);
    }

    #[test]
    fn set_and_get() {
        let mut r = OccupancyReport::new();
        r.set(
            PtLevel::L1,
            LevelOccupancy {
                nodes: 2,
                valid_entries: 1000,
                capacity: 1024,
            },
        );
        let l1 = r.level(PtLevel::L1).unwrap();
        assert!((l1.rate() - 1000.0 / 1024.0).abs() < 1e-12);
        assert!(r.level(PtLevel::L4).is_none());
    }

    #[test]
    fn fig8_combined_uses_l2_nodes_and_l1_entries() {
        let mut r = OccupancyReport::new();
        r.set(
            PtLevel::L1,
            LevelOccupancy {
                nodes: 512,
                valid_entries: 512 * 500,
                capacity: 512 * 512,
            },
        );
        r.set(
            PtLevel::L2,
            LevelOccupancy {
                nodes: 1,
                valid_entries: 512,
                capacity: 512,
            },
        );
        r.set(
            PtLevel::L3,
            LevelOccupancy {
                nodes: 1,
                valid_entries: 1,
                capacity: 512,
            },
        );
        let s = r.fig8_series();
        assert!((s.pl2 - 1.0).abs() < 1e-12);
        assert!((s.combined_pl2_pl1 - (512.0 * 500.0) / f64::from(1 << 18)).abs() < 1e-12);
        assert!(s.pl3 < 0.01);
    }

    #[test]
    fn merge_pools_raw_counters() {
        let mut a = OccupancyReport::new();
        a.set(
            PtLevel::L1,
            LevelOccupancy {
                nodes: 1,
                valid_entries: 256,
                capacity: 512,
            },
        );
        let mut b = OccupancyReport::new();
        b.set(
            PtLevel::L1,
            LevelOccupancy {
                nodes: 3,
                valid_entries: 512,
                capacity: 512,
            },
        );
        b.set(
            PtLevel::L2,
            LevelOccupancy {
                nodes: 1,
                valid_entries: 4,
                capacity: 512,
            },
        );
        a.merge(&b);
        let l1 = a.level(PtLevel::L1).unwrap();
        assert_eq!(l1.nodes, 4);
        assert_eq!(l1.valid_entries, 768);
        assert_eq!(l1.capacity, 1024);
        assert!((l1.rate() - 0.75).abs() < 1e-12);
        assert_eq!(a.level(PtLevel::L2).unwrap().valid_entries, 4);
    }

    #[test]
    fn display_lists_levels() {
        let mut r = OccupancyReport::new();
        r.set(
            PtLevel::L4,
            LevelOccupancy {
                nodes: 1,
                valid_entries: 2,
                capacity: 512,
            },
        );
        assert!(r.to_string().contains("PL4"));
    }
}
