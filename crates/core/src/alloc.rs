//! Physical-frame allocation with PTE-region tagging and a contiguity model.
//!
//! Two paper-relevant responsibilities beyond handing out frames:
//!
//! * **PTE-region marking** (§V-A): the OS marks the 4 KB regions holding
//!   page tables so the hardware can route their loads around the L1. The
//!   allocator keeps that mark per frame ([`FrameAllocator::is_table_frame`]).
//! * **Contiguity accounting** (§VII-B): transparent huge pages need 2 MB of
//!   physically contiguous, aligned memory. Scattered 4 KB allocations
//!   erode the pool of such regions; when it runs dry, 2 MB requests fail
//!   and the OS falls back to 4 KB pages (and, in real systems, burns time
//!   compacting). This is the effect that sinks Huge Page at 8 cores
//!   (Fig 14). The model is deliberately simple and documented here rather
//!   than hidden: every scattered 4 KB frame spoils
//!   [`FRAGMENTATION_FACTOR`] × 4 KB of contiguity from a pool that starts
//!   at [`CONTIG_POOL_FRACTION`] of capacity.

use ndp_types::addr::PAGE_SIZE;
use ndp_types::{PageSize, Pfn};

/// Fraction of physical capacity initially usable for 2 MB allocations.
/// Busy systems rarely have most of DRAM defragmented and free: the
/// kernel, page cache and prior allocations fragment it (Kwon et al.,
/// OSDI'16 report low THP allocation success under memory pressure).
pub const CONTIG_POOL_FRACTION: f64 = 0.45;

/// How many bytes of contiguity each scattered 4 KB allocation destroys,
/// as a multiple of the page size.
pub const FRAGMENTATION_FACTOR: u64 = 3;

/// What a frame is used for; determines bypass eligibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FramePurpose {
    /// Program data.
    Data,
    /// Page-table node storage (metadata; bypass-eligible).
    PageTable,
}

/// Allocation statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllocStats {
    /// 4 KB data frames handed out.
    pub data_frames: u64,
    /// 4 KB page-table frames handed out.
    pub table_frames: u64,
    /// Successful 2 MB contiguous allocations.
    pub huge_allocs: u64,
    /// Failed 2 MB allocations (contiguity exhausted).
    pub huge_failures: u64,
}

/// A bump allocator over a fixed physical space with purpose tagging.
///
/// Frames are never freed — the paper's workloads allocate monotonically
/// within a run, and the simulator constructs a fresh allocator per run.
#[derive(Debug, Clone)]
pub struct FrameAllocator {
    next_frame: u64,
    total_frames: u64,
    /// Bitmap: 1 = page-table frame.
    table_bitmap: Vec<u64>,
    /// Remaining bytes in the huge-page contiguity pool.
    contig_free_bytes: u64,
    stats: AllocStats,
}

impl FrameAllocator {
    /// Builds an allocator over `capacity_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is smaller than one page.
    #[must_use]
    pub fn new(capacity_bytes: u64) -> Self {
        let pool = (capacity_bytes as f64 * CONTIG_POOL_FRACTION) as u64;
        Self::with_contig_pool(capacity_bytes, pool)
    }

    /// Builds an allocator with an explicit huge-page contiguity pool.
    ///
    /// Used when bookkeeping capacity exceeds the machine's nominal DRAM
    /// (e.g. modelling demand paging headroom for oversubscribed
    /// footprints) while huge-page contiguity must stay pegged to the real
    /// Table I capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is smaller than one page.
    #[must_use]
    pub fn with_contig_pool(capacity_bytes: u64, pool_bytes: u64) -> Self {
        assert!(capacity_bytes >= PAGE_SIZE, "capacity below one page");
        let total_frames = capacity_bytes / PAGE_SIZE;
        FrameAllocator {
            next_frame: 1, // frame 0 reserved so PFN 0 never aliases NULL
            total_frames,
            table_bitmap: vec![0u64; (total_frames as usize).div_ceil(64)],
            contig_free_bytes: pool_bytes,
            stats: AllocStats::default(),
        }
    }

    /// Remaining bytes in the contiguity pool (diagnostic).
    #[must_use]
    pub fn contig_free_bytes(&self) -> u64 {
        self.contig_free_bytes
    }

    /// Frames allocated so far.
    #[must_use]
    pub fn frames_used(&self) -> u64 {
        self.next_frame
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &AllocStats {
        &self.stats
    }

    /// Allocates one 4 KB frame.
    ///
    /// # Panics
    ///
    /// Panics if physical memory is exhausted (the simulated footprints fit
    /// comfortably in the 16 GB of Table I; running out indicates a
    /// misconfigured experiment).
    pub fn alloc_frame(&mut self, purpose: FramePurpose) -> Pfn {
        let pfn = self.bump(1);
        match purpose {
            FramePurpose::Data => {
                self.stats.data_frames += 1;
                // A scattered data page erodes the contiguity pool.
                self.contig_free_bytes = self
                    .contig_free_bytes
                    .saturating_sub(PAGE_SIZE * FRAGMENTATION_FACTOR);
            }
            FramePurpose::PageTable => {
                self.stats.table_frames += 1;
                self.mark_table(pfn, 1);
            }
        }
        pfn
    }

    /// Allocates `count` 4 KB data frames in one bump, returning the first
    /// PFN; the frames are consecutive, exactly as `count` back-to-back
    /// [`FrameAllocator::alloc_frame`] calls would return (the bump
    /// allocator never reorders), with identical statistics and pool
    /// erosion. Bulk premap paths use this to skip per-frame call
    /// overhead without perturbing the allocation sequence.
    pub fn alloc_data_frames(&mut self, count: u64) -> Pfn {
        let pfn = self.bump(count);
        self.stats.data_frames += count;
        self.contig_free_bytes = self
            .contig_free_bytes
            .saturating_sub(count.saturating_mul(PAGE_SIZE * FRAGMENTATION_FACTOR));
        pfn
    }

    /// Allocates `frames` physically contiguous frames aligned to the
    /// request size, as needed for a 2 MB page or an NDPage flattened node.
    ///
    /// Returns `None` when the contiguity pool is exhausted (data requests
    /// only — page-table storage is allocated at boot reservation priority
    /// and always succeeds, mirroring kernel behaviour).
    pub fn alloc_contiguous(&mut self, frames: u64, purpose: FramePurpose) -> Option<Pfn> {
        let bytes = frames * PAGE_SIZE;
        match purpose {
            FramePurpose::Data => {
                let align = frames.next_power_of_two();
                let aligned_start = self.next_frame.div_ceil(align) * align;
                let physically_fits = aligned_start + frames <= self.total_frames;
                if self.contig_free_bytes < bytes || !physically_fits {
                    self.stats.huge_failures += 1;
                    return None;
                }
                self.contig_free_bytes -= bytes;
                self.stats.huge_allocs += 1;
                Some(self.bump_aligned(frames))
            }
            FramePurpose::PageTable => {
                let pfn = self.bump_aligned(frames);
                self.stats.table_frames += frames;
                self.mark_table(pfn, frames);
                Some(pfn)
            }
        }
    }

    /// Allocates the backing for one page of the given size (4 KB frame or
    /// 2 MB contiguous run).
    pub fn alloc_page(&mut self, size: PageSize) -> Option<Pfn> {
        match size {
            PageSize::Size4K => Some(self.alloc_frame(FramePurpose::Data)),
            PageSize::Size2M => self.alloc_contiguous(size.frames(), FramePurpose::Data),
        }
    }

    /// Whether `pfn` holds page-table storage (the OS's PTE-region mark).
    #[must_use]
    pub fn is_table_frame(&self, pfn: Pfn) -> bool {
        let idx = pfn.as_u64() as usize;
        if idx >= self.total_frames as usize {
            return false;
        }
        self.table_bitmap[idx / 64] & (1 << (idx % 64)) != 0
    }

    fn mark_table(&mut self, start: Pfn, frames: u64) {
        for f in 0..frames {
            let idx = (start.as_u64() + f) as usize;
            self.table_bitmap[idx / 64] |= 1 << (idx % 64);
        }
    }

    fn bump(&mut self, frames: u64) -> Pfn {
        assert!(
            self.next_frame + frames <= self.total_frames,
            "physical memory exhausted ({} of {} frames)",
            self.next_frame,
            self.total_frames
        );
        let pfn = Pfn::new(self.next_frame);
        self.next_frame += frames;
        pfn
    }

    fn bump_aligned(&mut self, frames: u64) -> Pfn {
        let align = frames.next_power_of_two();
        let aligned = self.next_frame.div_ceil(align) * align;
        self.next_frame = aligned;
        self.bump(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_are_distinct_and_nonzero() {
        let mut a = FrameAllocator::new(1 << 20);
        let f1 = a.alloc_frame(FramePurpose::Data);
        let f2 = a.alloc_frame(FramePurpose::Data);
        assert_ne!(f1, f2);
        assert!(f1.as_u64() > 0);
        assert_eq!(a.stats().data_frames, 2);
    }

    #[test]
    fn table_frames_are_marked() {
        let mut a = FrameAllocator::new(1 << 20);
        let t = a.alloc_frame(FramePurpose::PageTable);
        let d = a.alloc_frame(FramePurpose::Data);
        assert!(a.is_table_frame(t));
        assert!(!a.is_table_frame(d));
        assert!(!a.is_table_frame(Pfn::new(u64::MAX >> 12)));
    }

    #[test]
    fn contiguous_is_aligned() {
        let mut a = FrameAllocator::new(64 << 20);
        a.alloc_frame(FramePurpose::Data); // misalign the bump pointer
        let huge = a.alloc_contiguous(512, FramePurpose::Data).expect("pool");
        assert_eq!(huge.as_u64() % 512, 0);
    }

    #[test]
    fn contiguity_pool_exhausts_for_data_not_tables() {
        let mut a = FrameAllocator::new(16 << 20); // 16 MB, pool ≈ 11 MB
        let mut ok = 0;
        while a.alloc_contiguous(512, FramePurpose::Data).is_some() {
            ok += 1;
            assert!(ok < 100, "pool never exhausted");
        }
        assert!(ok >= 1);
        assert!(a.stats().huge_failures >= 1);
        // Page-table contiguous allocation still succeeds.
        assert!(a.alloc_contiguous(512, FramePurpose::PageTable).is_some());
    }

    #[test]
    fn scattered_pages_erode_contiguity() {
        let mut a = FrameAllocator::new(16 << 20);
        let before = a.contig_free_bytes();
        for _ in 0..100 {
            a.alloc_frame(FramePurpose::Data);
        }
        assert_eq!(
            before - a.contig_free_bytes(),
            100 * PAGE_SIZE * FRAGMENTATION_FACTOR
        );
    }

    #[test]
    fn alloc_page_by_size() {
        let mut a = FrameAllocator::new(64 << 20);
        assert!(a.alloc_page(PageSize::Size4K).is_some());
        let huge = a.alloc_page(PageSize::Size2M).expect("pool");
        assert_eq!(huge.as_u64() % 512, 0);
        assert_eq!(a.stats().huge_allocs, 1);
    }

    #[test]
    fn bulk_data_frames_match_singles() {
        let mut singles = FrameAllocator::new(16 << 20);
        let mut bulk = FrameAllocator::new(16 << 20);
        let first_single = singles.alloc_frame(FramePurpose::Data);
        for _ in 1..300 {
            singles.alloc_frame(FramePurpose::Data);
        }
        let first_bulk = bulk.alloc_data_frames(300);
        assert_eq!(first_single, first_bulk);
        assert_eq!(singles.frames_used(), bulk.frames_used());
        assert_eq!(singles.contig_free_bytes(), bulk.contig_free_bytes());
        assert_eq!(singles.stats().data_frames, bulk.stats().data_frames);
        // Next allocation continues from the same point in both.
        assert_eq!(
            singles.alloc_frame(FramePurpose::PageTable),
            bulk.alloc_frame(FramePurpose::PageTable)
        );
    }

    #[test]
    fn bulk_pool_erosion_saturates_like_singles() {
        let mut singles = FrameAllocator::with_contig_pool(64 << 20, 5 * PAGE_SIZE);
        let mut bulk = FrameAllocator::with_contig_pool(64 << 20, 5 * PAGE_SIZE);
        for _ in 0..4 {
            singles.alloc_frame(FramePurpose::Data);
        }
        bulk.alloc_data_frames(4);
        assert_eq!(singles.contig_free_bytes(), 0);
        assert_eq!(bulk.contig_free_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "physical memory exhausted")]
    fn oom_panics() {
        let mut a = FrameAllocator::new(2 * PAGE_SIZE);
        a.alloc_frame(FramePurpose::Data);
        a.alloc_frame(FramePurpose::Data); // frame 0 reserved → second alloc overflows
    }
}
