//! Elastic cuckoo hash table (ECH) — the paper's strongest baseline
//! (Skarlatos et al., ASPLOS 2020).
//!
//! ECH replaces the radix tree with `d` hashed ways probed **in parallel**:
//! a walk costs one memory round-trip of `d` concurrent PTE fetches instead
//! of four dependent ones. The costs, which the paper's multi-core results
//! expose, are (a) `d`× the metadata memory traffic per walk and (b) no
//! page-walk-cache locality to exploit. "Elastic" refers to the online
//! resize: when load exceeds a threshold each way doubles and entries
//! rehash incrementally; we model the rehash work by counting moved
//! entries (the simulator charges latency for them).

use crate::alloc::{FrameAllocator, FramePurpose};
use crate::occupancy::{LevelOccupancy, OccupancyReport};
use crate::pte::Pte;
use crate::table::{FaultKind, MapOutcome, PageTable, PageTableKind, Translation};
use crate::walk::{WalkPath, WalkStep};
use ndp_types::addr::{PAGE_SIZE, PTE_SIZE};
use ndp_types::{PageSize, Pfn, PtLevel, Vpn};

/// Number of cuckoo ways (3-ary, as in the ECH paper's default).
pub const WAYS: usize = 3;
/// Resize when any way's load factor crosses this threshold.
pub const RESIZE_THRESHOLD: f64 = 0.6;
/// Give up cuckoo displacement after this many evictions and resize.
const MAX_KICKS: usize = 32;

const EMPTY: u64 = u64::MAX;

#[derive(Debug, Clone)]
struct Way {
    base: Pfn,
    vpns: Vec<u64>,
    ptes: Vec<Pte>,
    used: usize,
    seed: u64,
}

impl Way {
    fn new(base: Pfn, slots: usize, seed: u64) -> Self {
        Way {
            base,
            vpns: vec![EMPTY; slots],
            ptes: vec![Pte::NULL; slots],
            used: 0,
            seed,
        }
    }

    fn slots(&self) -> usize {
        self.vpns.len()
    }

    fn index(&self, vpn: Vpn) -> usize {
        // Multiply-shift hashing with a per-way odd seed.
        let h = vpn.as_u64().wrapping_mul(self.seed);
        (h >> (64 - self.slots().trailing_zeros())) as usize
    }

    fn entry_addr(&self, idx: usize) -> ndp_types::PhysAddr {
        self.base.entry_addr(idx)
    }
}

/// Statistics specific to the elastic behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct CuckooStats {
    /// Completed resizes.
    pub resizes: u64,
    /// Entries moved by resizes (charged as OS work by the simulator).
    pub rehashed_entries: u64,
    /// Displacements performed by cuckoo insertion.
    pub kicks: u64,
}

/// The elastic cuckoo page table ("ECH" in Figs 12–14).
#[derive(Debug, Clone)]
pub struct ElasticCuckooTable {
    ways: Vec<Way>,
    mapped: u64,
    stats: CuckooStats,
    /// Entries rehashed since last drained by the simulator.
    pending_rehash: u64,
}

impl ElasticCuckooTable {
    /// Initial slots per way.
    pub const INITIAL_SLOTS: usize = 4096;

    /// Creates an empty table with [`WAYS`] ways of
    /// [`Self::INITIAL_SLOTS`] slots each.
    #[must_use]
    pub fn new(alloc: &mut FrameAllocator) -> Self {
        let seeds = [
            0x9E37_79B9_7F4A_7C15,
            0xC2B2_AE3D_27D4_EB4F,
            0x1656_67B1_9E37_79F9,
        ];
        let ways = (0..WAYS)
            .map(|w| {
                let base = Self::alloc_way(alloc, Self::INITIAL_SLOTS);
                Way::new(base, Self::INITIAL_SLOTS, seeds[w] | 1)
            })
            .collect();
        ElasticCuckooTable {
            ways,
            mapped: 0,
            stats: CuckooStats::default(),
            pending_rehash: 0,
        }
    }

    fn alloc_way(alloc: &mut FrameAllocator, slots: usize) -> Pfn {
        let frames = ((slots as u64 * PTE_SIZE).div_ceil(PAGE_SIZE)).max(1);
        alloc
            .alloc_contiguous(frames, FramePurpose::PageTable)
            .expect("page-table reservations always succeed")
    }

    /// Elastic-resize statistics.
    #[must_use]
    pub fn stats(&self) -> &CuckooStats {
        &self.stats
    }

    /// Takes (and clears) the count of entries rehashed since the last
    /// call; the simulator charges OS latency proportional to it.
    pub fn take_pending_rehash(&mut self) -> u64 {
        std::mem::take(&mut self.pending_rehash)
    }

    /// Current load factor across ways.
    #[must_use]
    pub fn load_factor(&self) -> f64 {
        let used: usize = self.ways.iter().map(|w| w.used).sum();
        let slots: usize = self.ways.iter().map(Way::slots).sum();
        used as f64 / slots as f64
    }

    fn needs_resize(&self) -> bool {
        self.ways
            .iter()
            .any(|w| w.used as f64 / w.slots() as f64 >= RESIZE_THRESHOLD)
    }

    fn resize(&mut self, alloc: &mut FrameAllocator) {
        let mut entries: Vec<(u64, Pte)> = Vec::new();
        for way in &self.ways {
            for (i, &v) in way.vpns.iter().enumerate() {
                if v != EMPTY {
                    entries.push((v, way.ptes[i]));
                }
            }
        }
        for way in &mut self.ways {
            let slots = way.slots() * 2;
            let base = Self::alloc_way(alloc, slots);
            *way = Way::new(base, slots, way.seed);
        }
        self.stats.resizes += 1;
        self.stats.rehashed_entries += entries.len() as u64;
        self.pending_rehash += entries.len() as u64;
        for (vpn, pte) in entries {
            self.insert(Vpn::new(vpn), pte, alloc);
        }
    }

    fn insert(&mut self, vpn: Vpn, pte: Pte, alloc: &mut FrameAllocator) {
        let mut cur_vpn = vpn.as_u64();
        let mut cur_pte = pte;
        let mut way_idx = 0usize;
        for kick in 0..=MAX_KICKS {
            // Try every way for an empty slot first.
            for w in 0..WAYS {
                let way = &mut self.ways[w];
                let idx = way.index(Vpn::new(cur_vpn));
                if way.vpns[idx] == EMPTY {
                    way.vpns[idx] = cur_vpn;
                    way.ptes[idx] = cur_pte;
                    way.used += 1;
                    return;
                }
            }
            if kick == MAX_KICKS {
                break;
            }
            // Displace from the rotating way.
            let way = &mut self.ways[way_idx];
            let idx = way.index(Vpn::new(cur_vpn));
            std::mem::swap(&mut cur_vpn, &mut way.vpns[idx]);
            std::mem::swap(&mut cur_pte, &mut way.ptes[idx]);
            self.stats.kicks += 1;
            way_idx = (way_idx + 1) % WAYS;
        }
        // Path exhausted: grow and retry (always terminates since capacity
        // doubles).
        self.resize(alloc);
        self.insert(Vpn::new(cur_vpn), cur_pte, alloc);
    }

    fn find(&self, vpn: Vpn) -> Option<(usize, usize)> {
        let raw = vpn.as_u64();
        for (w, way) in self.ways.iter().enumerate() {
            let idx = way.index(vpn);
            if way.vpns[idx] == raw {
                return Some((w, idx));
            }
        }
        None
    }
}

impl PageTable for ElasticCuckooTable {
    fn kind(&self) -> PageTableKind {
        PageTableKind::ElasticCuckoo
    }

    fn translate(&self, vpn: Vpn) -> Option<Translation> {
        self.find(vpn).map(|(w, idx)| Translation {
            pfn: self.ways[w].ptes[idx].pfn(),
            size: PageSize::Size4K,
        })
    }

    fn map(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> MapOutcome {
        if self.find(vpn).is_some() {
            return MapOutcome::already_mapped();
        }
        let tables_before = self.stats.resizes;
        if self.needs_resize() {
            self.resize(alloc);
        }
        let frame = alloc.alloc_frame(FramePurpose::Data);
        self.insert(vpn, Pte::leaf(frame), alloc);
        self.mapped += 1;
        MapOutcome {
            newly_mapped: true,
            fault: Some(FaultKind::Minor4K),
            tables_allocated: ((self.stats.resizes - tables_before) * WAYS as u64) as u32,
        }
    }

    fn walk_path(&self, vpn: Vpn) -> Option<WalkPath> {
        self.translate_and_walk(vpn).map(|(_, path)| path)
    }

    fn translate_and_walk(&self, vpn: Vpn) -> Option<(Translation, WalkPath)> {
        // One find() instead of two; the path probes every way anyway.
        let (w, idx) = self.find(vpn)?;
        let mut path = WalkPath::empty();
        for (way_idx, way) in self.ways.iter().enumerate() {
            path.push(WalkStep {
                addr: way.entry_addr(way.index(vpn)),
                level: PtLevel::HashWay(way_idx as u8),
                group: 0,
            });
        }
        Some((
            Translation {
                pfn: self.ways[w].ptes[idx].pfn(),
                size: PageSize::Size4K,
            },
            path,
        ))
    }

    fn occupancy(&self) -> OccupancyReport {
        let mut report = OccupancyReport::new();
        for (w, way) in self.ways.iter().enumerate() {
            report.set(
                PtLevel::HashWay(w as u8),
                LevelOccupancy {
                    nodes: 1,
                    valid_entries: way.used as u64,
                    capacity: way.slots() as u64,
                },
            );
        }
        report
    }

    fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    fn table_bytes(&self) -> u64 {
        self.ways
            .iter()
            .map(|w| (w.slots() as u64 * PTE_SIZE).div_ceil(PAGE_SIZE) * PAGE_SIZE)
            .sum()
    }

    fn take_pending_os_work(&mut self) -> u64 {
        self.take_pending_rehash()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (FrameAllocator, ElasticCuckooTable) {
        let mut alloc = FrameAllocator::new(4 << 30);
        let table = ElasticCuckooTable::new(&mut alloc);
        (alloc, table)
    }

    #[test]
    fn map_translate_round_trip() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(0xdead_beef);
        assert!(t.map(vpn, &mut alloc).newly_mapped);
        assert!(t.translate(vpn).is_some());
        assert!(!t.map(vpn, &mut alloc).newly_mapped);
        assert_eq!(t.mapped_pages(), 1);
    }

    #[test]
    fn walk_probes_all_ways_in_parallel() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(123_456);
        t.map(vpn, &mut alloc);
        let path = t.walk_path(vpn).unwrap();
        assert_eq!(path.len(), WAYS);
        assert_eq!(path.sequential_depth(), 1, "single parallel round");
    }

    #[test]
    fn many_inserts_trigger_elastic_resize() {
        let (mut alloc, mut t) = setup();
        let n = (ElasticCuckooTable::INITIAL_SLOTS as f64 * WAYS as f64 * 0.7) as u64;
        for i in 0..n {
            t.map(Vpn::new(i * 7919 + 1), &mut alloc);
        }
        assert!(t.stats().resizes >= 1, "resize should have fired");
        assert!(t.stats().rehashed_entries > 0);
        // Every mapping survives the resizes.
        for i in 0..n {
            assert!(t.translate(Vpn::new(i * 7919 + 1)).is_some(), "vpn {i}");
        }
        assert_eq!(t.mapped_pages(), n);
        assert!(t.load_factor() < RESIZE_THRESHOLD + 0.05);
    }

    #[test]
    fn pending_rehash_is_drained_once() {
        let (mut alloc, mut t) = setup();
        let n = (ElasticCuckooTable::INITIAL_SLOTS as f64 * WAYS as f64 * 0.7) as u64;
        for i in 0..n {
            t.map(Vpn::new(i + 1), &mut alloc);
        }
        let drained = t.take_pending_rehash();
        assert!(drained > 0);
        assert_eq!(t.take_pending_rehash(), 0);
    }

    #[test]
    fn walk_addresses_are_table_frames_and_distinct_ways() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(99);
        t.map(vpn, &mut alloc);
        let path = t.walk_path(vpn).unwrap();
        let mut bases: Vec<u64> = path.steps().iter().map(|s| s.addr.as_u64()).collect();
        bases.dedup();
        assert_eq!(bases.len(), WAYS, "each way probes its own array");
        for step in path.steps() {
            assert!(alloc.is_table_frame(step.addr.pfn()));
        }
    }

    #[test]
    fn unmapped_is_none() {
        let (_, t) = setup();
        assert!(t.translate(Vpn::new(7)).is_none());
        assert!(t.walk_path(Vpn::new(7)).is_none());
    }

    #[test]
    fn occupancy_reports_each_way() {
        let (mut alloc, mut t) = setup();
        for i in 0..100 {
            t.map(Vpn::new(i), &mut alloc);
        }
        let occ = t.occupancy();
        let total: u64 = (0..WAYS as u8)
            .map(|w| occ.level(PtLevel::HashWay(w)).unwrap().valid_entries)
            .sum();
        assert_eq!(total, 100);
    }
}
