//! The five address-translation mechanisms the paper evaluates (§VI) and
//! their component wiring.

use crate::alloc::FrameAllocator;
use crate::bypass::BypassPolicy;
use crate::cuckoo::ElasticCuckooTable;
use crate::flat::FlattenedL2L1;
use crate::huge::HugePageTable;
use crate::occupancy::OccupancyReport;
use crate::radix::Radix4;
use crate::table::{MapOutcome, PageTable, PageTableKind, RangeMapOutcome, RangePlan, Translation};
use crate::walk::WalkPath;
use ndp_types::Vpn;
use std::fmt;

/// An evaluated address-translation mechanism.
///
/// | Mechanism  | Page table              | PWCs | L1 bypass for PTEs |
/// |------------|-------------------------|------|--------------------|
/// | `Radix`    | 4-level radix           | yes  | no                 |
/// | `Ech`      | elastic cuckoo hash     | no   | no                 |
/// | `HugePage` | 3-level radix, 2 MB leaf| yes  | no                 |
/// | `NdPage`   | flattened L2/L1 (3-level)| yes | **yes**            |
/// | `Ideal`    | — (every access L1-TLB hits at zero latency) | — | — |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mechanism {
    /// Conventional x86-64 baseline.
    Radix,
    /// Elastic cuckoo hash table (state-of-the-art baseline).
    Ech,
    /// 2 MB transparent huge pages.
    HugePage,
    /// This paper's contribution: flattened table + metadata bypass.
    NdPage,
    /// Upper bound: zero-cost translation.
    Ideal,
}

impl Mechanism {
    /// Every mechanism, in the order the paper's figures list them.
    pub const ALL: [Mechanism; 5] = [
        Mechanism::Radix,
        Mechanism::Ech,
        Mechanism::HugePage,
        Mechanism::NdPage,
        Mechanism::Ideal,
    ];

    /// The four real mechanisms (excluding the Ideal bound).
    pub const REAL: [Mechanism; 4] = [
        Mechanism::Radix,
        Mechanism::Ech,
        Mechanism::HugePage,
        Mechanism::NdPage,
    ];

    /// Display name as used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Mechanism::Radix => "Radix",
            Mechanism::Ech => "ECH",
            Mechanism::HugePage => "Huge Page",
            Mechanism::NdPage => "NDPage",
            Mechanism::Ideal => "Ideal",
        }
    }

    /// The cache policy this mechanism applies to PTE requests.
    #[must_use]
    pub fn bypass_policy(self) -> BypassPolicy {
        match self {
            Mechanism::NdPage => BypassPolicy::MetadataL1Bypass,
            _ => BypassPolicy::None,
        }
    }

    /// Whether the MMU keeps page-walk caches for this mechanism's table.
    /// Hashed tables have no prefix locality for a PWC to exploit.
    #[must_use]
    pub fn uses_pwc(self) -> bool {
        !matches!(self, Mechanism::Ech | Mechanism::Ideal)
    }

    /// Whether this mechanism translates at all (`Ideal` does not).
    #[must_use]
    pub fn is_ideal(self) -> bool {
        matches!(self, Mechanism::Ideal)
    }

    /// Builds the mechanism's page table, or `None` for `Ideal`.
    ///
    /// Returns a trait object; extension code that mixes in custom
    /// [`PageTable`] implementations wants this form. The simulator's
    /// per-op hot path uses [`Mechanism::build_impl`] instead.
    #[must_use]
    pub fn build_table(self, alloc: &mut FrameAllocator) -> Option<Box<dyn PageTable>> {
        match self {
            Mechanism::Radix => Some(Box::new(Radix4::new(alloc))),
            Mechanism::Ech => Some(Box::new(ElasticCuckooTable::new(alloc))),
            Mechanism::HugePage => Some(Box::new(HugePageTable::new(alloc))),
            Mechanism::NdPage => Some(Box::new(FlattenedL2L1::new(alloc))),
            Mechanism::Ideal => None,
        }
    }

    /// Builds the mechanism's page table as a statically dispatched
    /// [`PageTableImpl`], or `None` for `Ideal`.
    #[must_use]
    pub fn build_impl(self, alloc: &mut FrameAllocator) -> Option<PageTableImpl> {
        match self {
            Mechanism::Radix => Some(PageTableImpl::Radix(Radix4::new(alloc))),
            Mechanism::Ech => Some(PageTableImpl::Ech(ElasticCuckooTable::new(alloc))),
            Mechanism::HugePage => Some(PageTableImpl::Huge(HugePageTable::new(alloc))),
            Mechanism::NdPage => Some(PageTableImpl::Flat(FlattenedL2L1::new(alloc))),
            Mechanism::Ideal => None,
        }
    }
}

/// The closed set of built-in page-table designs, as an enum so the
/// simulator's per-op translate/walk calls dispatch statically (and
/// inline) instead of through a `Box<dyn PageTable>` vtable.
///
/// Implements [`PageTable`] itself, so everything written against the
/// trait — the walker, occupancy tooling, reports — works unchanged.
#[derive(Debug, Clone)]
pub enum PageTableImpl {
    /// Conventional x86-64 4-level radix table.
    Radix(Radix4),
    /// Elastic cuckoo hash table.
    Ech(ElasticCuckooTable),
    /// 2 MB transparent-huge-page table.
    Huge(HugePageTable),
    /// NDPage's flattened L2/L1 table.
    Flat(FlattenedL2L1),
}

macro_rules! dispatch {
    ($self:ident, $table:ident => $body:expr) => {
        match $self {
            PageTableImpl::Radix($table) => $body,
            PageTableImpl::Ech($table) => $body,
            PageTableImpl::Huge($table) => $body,
            PageTableImpl::Flat($table) => $body,
        }
    };
}

impl PageTable for PageTableImpl {
    #[inline]
    fn kind(&self) -> PageTableKind {
        dispatch!(self, t => t.kind())
    }

    #[inline]
    fn translate(&self, vpn: Vpn) -> Option<Translation> {
        dispatch!(self, t => t.translate(vpn))
    }

    #[inline]
    fn map(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> MapOutcome {
        dispatch!(self, t => t.map(vpn, alloc))
    }

    fn map_range(&mut self, first: Vpn, pages: u64, alloc: &mut FrameAllocator) -> RangeMapOutcome {
        dispatch!(self, t => t.map_range(first, pages, alloc))
    }

    fn plan_range(
        &mut self,
        first: Vpn,
        pages: u64,
        alloc: &mut FrameAllocator,
    ) -> Option<RangePlan> {
        dispatch!(self, t => t.plan_range(first, pages, alloc))
    }

    fn apply_plan(&mut self, plan: &RangePlan) {
        dispatch!(self, t => t.apply_plan(plan))
    }

    #[inline]
    fn walk_path(&self, vpn: Vpn) -> Option<WalkPath> {
        dispatch!(self, t => t.walk_path(vpn))
    }

    #[inline]
    fn translate_and_walk(&self, vpn: Vpn) -> Option<(Translation, WalkPath)> {
        dispatch!(self, t => t.translate_and_walk(vpn))
    }

    fn occupancy(&self) -> OccupancyReport {
        dispatch!(self, t => t.occupancy())
    }

    fn mapped_pages(&self) -> u64 {
        dispatch!(self, t => t.mapped_pages())
    }

    fn table_bytes(&self) -> u64 {
        dispatch!(self, t => t.table_bytes())
    }

    #[inline]
    fn take_pending_os_work(&mut self) -> u64 {
        dispatch!(self, t => t.take_pending_os_work())
    }
}

impl fmt::Display for Mechanism {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::Vpn;

    #[test]
    fn names_match_figures() {
        let names: Vec<&str> = Mechanism::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names, ["Radix", "ECH", "Huge Page", "NDPage", "Ideal"]);
    }

    #[test]
    fn only_ndpage_bypasses() {
        for m in Mechanism::ALL {
            let expects = m == Mechanism::NdPage;
            assert_eq!(
                m.bypass_policy() == BypassPolicy::MetadataL1Bypass,
                expects,
                "{m}"
            );
        }
    }

    #[test]
    fn pwc_usage() {
        assert!(Mechanism::Radix.uses_pwc());
        assert!(Mechanism::NdPage.uses_pwc());
        assert!(Mechanism::HugePage.uses_pwc());
        assert!(!Mechanism::Ech.uses_pwc());
        assert!(!Mechanism::Ideal.uses_pwc());
    }

    #[test]
    fn build_table_kinds() {
        let mut alloc = FrameAllocator::new(1 << 30);
        for m in Mechanism::REAL {
            let mut t = m.build_table(&mut alloc).expect("real mechanism");
            let vpn = Vpn::new(0x42);
            t.map(vpn, &mut alloc);
            assert!(t.translate(vpn).is_some(), "{m}");
        }
        assert!(Mechanism::Ideal.build_table(&mut alloc).is_none());
        assert!(Mechanism::Ideal.is_ideal());
    }

    #[test]
    fn build_impl_matches_build_table() {
        let mut alloc = FrameAllocator::new(1 << 30);
        for m in Mechanism::REAL {
            let mut boxed = m.build_table(&mut alloc).expect("real mechanism");
            let mut statics = m.build_impl(&mut alloc).expect("real mechanism");
            assert_eq!(boxed.kind(), statics.kind(), "{m}");
            let vpn = Vpn::new(0xAB_CDEF);
            let ob = boxed.map(vpn, &mut alloc);
            let os = statics.map(vpn, &mut alloc);
            assert_eq!(ob.newly_mapped, os.newly_mapped, "{m}");
            assert_eq!(ob.fault, os.fault, "{m}");
            assert_eq!(
                boxed.walk_path(vpn).unwrap().sequential_depth(),
                statics.walk_path(vpn).unwrap().sequential_depth(),
                "{m}"
            );
            assert_eq!(boxed.mapped_pages(), statics.mapped_pages(), "{m}");
        }
        assert!(Mechanism::Ideal.build_impl(&mut alloc).is_none());
    }

    #[test]
    fn walk_depths_match_paper() {
        let mut alloc = FrameAllocator::new(1 << 30);
        let depths: Vec<usize> = Mechanism::REAL
            .iter()
            .map(|m| {
                let mut t = m.build_table(&mut alloc).unwrap();
                let vpn = Vpn::new(0x1234);
                t.map(vpn, &mut alloc);
                t.walk_path(vpn).unwrap().sequential_depth()
            })
            .collect();
        // Radix=4, ECH=1 (parallel), HugePage=3, NDPage=3.
        assert_eq!(depths, vec![4, 1, 3, 3]);
    }
}
