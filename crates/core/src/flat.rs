//! NDPage's flattened L2/L1 page table (§V-B) — the paper's second
//! mechanism.
//!
//! The tree keeps its L4 and L3 levels but replaces every L2 node *and its
//! up-to-512 L1 children* with one **flattened node**: a single 2 MB,
//! physically contiguous table of 2^18 entries indexed by the low 18
//! translation bits of the VPN. Every walk is therefore exactly three
//! sequential accesses — L4, L3, flat — while data pages stay 4 KB, so none
//! of Huge Page's contiguity/bloat pathologies apply to *data* (only each
//! flat node itself needs one 2 MB table allocation, which the OS reserves
//! like any page-table storage).

use crate::alloc::{FrameAllocator, FramePurpose};
use crate::arena::{Node, PteArena};
use crate::occupancy::{LevelOccupancy, OccupancyReport};
use crate::pte::Pte;
use crate::table::{
    FaultKind, MapOutcome, PageTable, PageTableKind, RangeMapOutcome, RangePlan, Translation,
};
use crate::walk::{WalkPath, WalkStep};
use ndp_types::addr::{ENTRIES_PER_FLAT_NODE, ENTRIES_PER_NODE, PAGE_SIZE};
#[cfg(feature = "legacy_hotpath")]
use ndp_types::FastMap;
use ndp_types::{PageSize, Pfn, PtLevel, Vpn};

const NODE_ENTRIES: usize = ENTRIES_PER_NODE as usize;
const FLAT_ENTRIES: usize = ENTRIES_PER_FLAT_NODE as usize;
/// Frames backing one flattened node (2 MB / 4 KB).
const FLAT_NODE_FRAMES: u64 = (ENTRIES_PER_FLAT_NODE * 8) / PAGE_SIZE;

/// The flattened L2/L1 page table ("NDPage" in Figs 12–14, combined with
/// the bypass policy).
#[derive(Debug, Clone)]
pub struct FlattenedL2L1 {
    arena: PteArena,
    /// Interior nodes: index 0 = root (L4), rest are L3 nodes. Their
    /// child-handle lanes index `nodes` (root) or `flat_nodes` (L3s).
    nodes: Vec<Node>,
    /// Flattened leaf nodes (2^18 entries each).
    flat_nodes: Vec<Node>,
    /// The seed's frame→node maps, used for descent under
    /// `legacy_hotpath` in place of the arena's child-handle lane.
    #[cfg(feature = "legacy_hotpath")]
    by_frame: FastMap<u64, usize>,
    #[cfg(feature = "legacy_hotpath")]
    flat_by_frame: FastMap<u64, usize>,
    l3_nodes: Vec<usize>,
    root: usize,
    mapped: u64,
}

impl FlattenedL2L1 {
    /// Creates an empty table, allocating the root node.
    #[must_use]
    pub fn new(alloc: &mut FrameAllocator) -> Self {
        let mut t = FlattenedL2L1 {
            arena: PteArena::new(),
            nodes: Vec::new(),
            flat_nodes: Vec::new(),
            #[cfg(feature = "legacy_hotpath")]
            by_frame: FastMap::default(),
            #[cfg(feature = "legacy_hotpath")]
            flat_by_frame: FastMap::default(),
            l3_nodes: Vec::new(),
            root: 0,
            mapped: 0,
        };
        t.root = t.new_interior(alloc, false);
        t
    }

    fn new_interior(&mut self, alloc: &mut FrameAllocator, is_l3: bool) -> usize {
        let frame = alloc.alloc_frame(FramePurpose::PageTable);
        let idx = self.nodes.len();
        self.nodes
            .push(Node::new(frame, NODE_ENTRIES, true, &mut self.arena));
        #[cfg(feature = "legacy_hotpath")]
        self.by_frame.insert(frame.as_u64(), idx);
        if is_l3 {
            self.l3_nodes.push(idx);
        }
        idx
    }

    /// Resolves the interior child (root→L3) a present PTE points to.
    #[cfg(not(feature = "legacy_hotpath"))]
    #[inline]
    fn interior_child(&self, node: usize, idx: usize, _pte: Pte) -> Option<usize> {
        self.nodes[node].kid(&self.arena, idx)
    }

    #[cfg(feature = "legacy_hotpath")]
    #[inline]
    fn interior_child(&self, _node: usize, _idx: usize, pte: Pte) -> Option<usize> {
        self.by_frame.get(&pte.pfn().as_u64()).copied()
    }

    /// Resolves the flattened leaf node (L3→flat) a present PTE points to.
    #[cfg(not(feature = "legacy_hotpath"))]
    #[inline]
    fn flat_child(&self, node: usize, idx: usize, _pte: Pte) -> Option<usize> {
        self.nodes[node].kid(&self.arena, idx)
    }

    #[cfg(feature = "legacy_hotpath")]
    #[inline]
    fn flat_child(&self, _node: usize, _idx: usize, pte: Pte) -> Option<usize> {
        self.flat_by_frame.get(&pte.pfn().as_u64()).copied()
    }

    fn new_flat(&mut self, alloc: &mut FrameAllocator) -> usize {
        let frame = alloc
            .alloc_contiguous(FLAT_NODE_FRAMES, FramePurpose::PageTable)
            .expect("page-table reservations always succeed");
        let idx = self.flat_nodes.len();
        self.flat_nodes
            .push(Node::new(frame, FLAT_ENTRIES, false, &mut self.arena));
        #[cfg(feature = "legacy_hotpath")]
        self.flat_by_frame.insert(frame.as_u64(), idx);
        idx
    }

    /// Descends to (creating as needed) the flattened node for `vpn`,
    /// returning its arena index and how many nodes were allocated.
    fn flat_node_for(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> (usize, u32) {
        let mut tables_allocated = 0;

        let l4_idx = vpn.l4_index();
        let l4e = self.nodes[self.root].get(&self.arena, l4_idx);
        let l3 = if l4e.is_present() {
            self.interior_child(self.root, l4_idx, l4e)
                .expect("root PTE links its L3 node")
        } else {
            let n = self.new_interior(alloc, true);
            tables_allocated += 1;
            let f = self.nodes[n].frame;
            self.nodes[self.root].set(&mut self.arena, l4_idx, Pte::next(f));
            self.nodes[self.root].set_kid(&mut self.arena, l4_idx, n);
            n
        };

        let l3_idx = vpn.l3_index();
        let l3e = self.nodes[l3].get(&self.arena, l3_idx);
        let flat = if l3e.is_present() {
            self.flat_child(l3, l3_idx, l3e)
                .expect("L3 PTE links its flattened node")
        } else {
            let n = self.new_flat(alloc);
            tables_allocated += 1;
            let f = self.flat_nodes[n].frame;
            self.nodes[l3].set(&mut self.arena, l3_idx, Pte::next_flattened(f));
            self.nodes[l3].set_kid(&mut self.arena, l3_idx, n);
            n
        };
        (flat, tables_allocated)
    }

    /// Scans `pages` from `first` once, creating L3/flat nodes as needed
    /// and reserving backing frames for maximal runs of absent pages
    /// (bulk-bumped, preserving the per-page allocator call sequence);
    /// leaf installs are recorded as plan segments. Shared by `map_range`
    /// (which applies immediately) and `plan_range` (which defers).
    fn plan_runs(&mut self, first: Vpn, pages: u64, alloc: &mut FrameAllocator) -> RangePlan {
        let mut plan = RangePlan::default();
        let mut cached: Option<(u64, usize)> = None;
        let mut p = 0u64;
        while p < pages {
            let vpn = first.add(p);
            let region = vpn.as_u64() & !(ENTRIES_PER_FLAT_NODE - 1);
            let flat = match cached {
                Some((base, node)) if base == region => node,
                _ => {
                    let (node, _) = self.flat_node_for(vpn, alloc);
                    cached = Some((region, node));
                    node
                }
            };
            let fi = vpn.flat_l2l1_index();
            if self.flat_nodes[flat].get(&self.arena, fi).is_present() {
                p += 1;
                continue;
            }
            // Maximal run of absent pages within this flat node: the
            // per-page loop would allocate one frame per iteration with
            // nothing in between, so the frames are consecutive either way.
            let max_run = (pages - p).min((FLAT_ENTRIES - fi) as u64) as usize;
            let mut run = 1;
            while run < max_run
                && !self.flat_nodes[flat]
                    .get(&self.arena, fi + run)
                    .is_present()
            {
                run += 1;
            }
            let first_pfn = alloc.alloc_data_frames(run as u64);
            plan.push(flat, fi, run, first_pfn);
            p += run as u64;
        }
        plan
    }

    fn install_plan(&mut self, plan: &RangePlan) {
        for seg in &plan.segments {
            self.flat_nodes[seg.node as usize].set_leaf_run(
                &mut self.arena,
                seg.start as usize,
                seg.count as usize,
                |k| Pfn::new(seg.first_pfn + k as u64),
            );
            self.mapped += u64::from(seg.count);
        }
    }

    /// Resolves `(l3_node, flat_node)` indices for `vpn`, if mapped that far.
    fn descend(&self, vpn: Vpn) -> Option<(usize, usize)> {
        let l4_idx = vpn.l4_index();
        let l4e = self.nodes[self.root].get(&self.arena, l4_idx);
        if !l4e.is_present() {
            return None;
        }
        let l3 = self.interior_child(self.root, l4_idx, l4e)?;
        let l3_idx = vpn.l3_index();
        let l3e = self.nodes[l3].get(&self.arena, l3_idx);
        if !l3e.is_present() {
            return None;
        }
        debug_assert!(l3e.is_flattened(), "L3 entries point to flattened nodes");
        let flat = self.flat_child(l3, l3_idx, l3e)?;
        Some((l3, flat))
    }
}

impl PageTable for FlattenedL2L1 {
    fn kind(&self) -> PageTableKind {
        PageTableKind::FlattenedL2L1
    }

    fn translate(&self, vpn: Vpn) -> Option<Translation> {
        let (_, flat) = self.descend(vpn)?;
        let pte = self.flat_nodes[flat].get(&self.arena, vpn.flat_l2l1_index());
        pte.is_present().then(|| Translation {
            pfn: pte.pfn(),
            size: PageSize::Size4K,
        })
    }

    fn map(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> MapOutcome {
        let (flat, tables_allocated) = self.flat_node_for(vpn, alloc);
        let fi = vpn.flat_l2l1_index();
        if self.flat_nodes[flat].get(&self.arena, fi).is_present() {
            return MapOutcome::already_mapped();
        }
        let frame = alloc.alloc_frame(FramePurpose::Data);
        self.flat_nodes[flat].set(&mut self.arena, fi, Pte::leaf(frame));
        self.mapped += 1;
        MapOutcome {
            newly_mapped: true,
            fault: Some(FaultKind::Minor4K),
            tables_allocated,
        }
    }

    fn map_range(&mut self, first: Vpn, pages: u64, alloc: &mut FrameAllocator) -> RangeMapOutcome {
        // One descent per touched 1 GB flat-node region and one
        // frame-allocator bump per run of absent pages, instead of one of
        // each per page; allocation order matches the per-page loop exactly.
        let plan = self.plan_runs(first, pages, alloc);
        self.install_plan(&plan);
        plan.outcome
    }

    fn plan_range(
        &mut self,
        first: Vpn,
        pages: u64,
        alloc: &mut FrameAllocator,
    ) -> Option<RangePlan> {
        Some(self.plan_runs(first, pages, alloc))
    }

    fn apply_plan(&mut self, plan: &RangePlan) {
        self.install_plan(plan);
    }

    fn walk_path(&self, vpn: Vpn) -> Option<WalkPath> {
        self.translate_and_walk(vpn).map(|(_, path)| path)
    }

    fn translate_and_walk(&self, vpn: Vpn) -> Option<(Translation, WalkPath)> {
        // Single descent serving both results; per-op hot path.
        let (l3, flat) = self.descend(vpn)?;
        let pte = self.flat_nodes[flat].get(&self.arena, vpn.flat_l2l1_index());
        if !pte.is_present() {
            return None;
        }
        let path = WalkPath::of([
            WalkStep {
                addr: self.nodes[self.root].frame.entry_addr(vpn.l4_index()),
                level: PtLevel::L4,
                group: 0,
            },
            WalkStep {
                addr: self.nodes[l3].frame.entry_addr(vpn.l3_index()),
                level: PtLevel::L3,
                group: 1,
            },
            WalkStep {
                addr: self.flat_nodes[flat]
                    .frame
                    .entry_addr(vpn.flat_l2l1_index()),
                level: PtLevel::FlatL2L1,
                group: 2,
            },
        ]);
        Some((
            Translation {
                pfn: pte.pfn(),
                size: PageSize::Size4K,
            },
            path,
        ))
    }

    fn occupancy(&self) -> OccupancyReport {
        let mut report = OccupancyReport::new();
        report.set(
            PtLevel::L4,
            LevelOccupancy {
                nodes: 1,
                valid_entries: u64::from(self.nodes[self.root].valid),
                capacity: ENTRIES_PER_NODE,
            },
        );
        let l3_valid: u64 = self
            .l3_nodes
            .iter()
            .map(|&i| u64::from(self.nodes[i].valid))
            .sum();
        report.set(
            PtLevel::L3,
            LevelOccupancy {
                nodes: self.l3_nodes.len() as u64,
                valid_entries: l3_valid,
                capacity: self.l3_nodes.len() as u64 * ENTRIES_PER_NODE,
            },
        );
        let flat_valid: u64 = self.flat_nodes.iter().map(|n| u64::from(n.valid)).sum();
        report.set(
            PtLevel::FlatL2L1,
            LevelOccupancy {
                nodes: self.flat_nodes.len() as u64,
                valid_entries: flat_valid,
                capacity: self.flat_nodes.len() as u64 * ENTRIES_PER_FLAT_NODE,
            },
        );
        report
    }

    fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    fn table_bytes(&self) -> u64 {
        self.nodes.len() as u64 * PAGE_SIZE
            + self.flat_nodes.len() as u64 * FLAT_NODE_FRAMES * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::radix::Radix4;
    use ndp_types::VirtAddr;

    fn setup() -> (FrameAllocator, FlattenedL2L1) {
        let mut alloc = FrameAllocator::new(2 << 30);
        let table = FlattenedL2L1::new(&mut alloc);
        (alloc, table)
    }

    #[test]
    fn map_translate_round_trip() {
        let (mut alloc, mut t) = setup();
        let vpn = VirtAddr::new(0x7f12_3456_7000).vpn();
        let o = t.map(vpn, &mut alloc);
        assert!(o.newly_mapped);
        assert_eq!(o.tables_allocated, 2); // one L3, one flat node
        assert!(t.translate(vpn).is_some());
        assert!(t.map(vpn, &mut alloc).fault.is_none());
    }

    #[test]
    fn walk_is_three_sequential_steps() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(0xfeed_beef);
        t.map(vpn, &mut alloc);
        let path = t.walk_path(vpn).unwrap();
        assert_eq!(path.len(), 3);
        assert_eq!(path.sequential_depth(), 3);
        assert_eq!(path.steps()[2].level, PtLevel::FlatL2L1);
    }

    #[test]
    fn flat_node_spans_a_1gb_region() {
        let (mut alloc, mut t) = setup();
        // Two VPNs 512 MB apart share L3 entry? No: flat node covers 2^18
        // pages = 1 GB. Same L3 index → same flat node.
        let a = Vpn::new(0);
        let b = Vpn::new(ENTRIES_PER_FLAT_NODE - 1);
        let c = Vpn::new(ENTRIES_PER_FLAT_NODE); // next flat node
        t.map(a, &mut alloc);
        let o_b = t.map(b, &mut alloc);
        assert_eq!(o_b.tables_allocated, 0, "same flat node");
        let o_c = t.map(c, &mut alloc);
        assert_eq!(o_c.tables_allocated, 1, "new flat node");
    }

    #[test]
    fn walk_addresses_live_in_table_frames_and_flat_entry_offsets_work() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(0x3_ffff); // maximal flat index
        t.map(vpn, &mut alloc);
        let path = t.walk_path(vpn).unwrap();
        for step in path.steps() {
            assert!(alloc.is_table_frame(step.addr.pfn()), "step {step:?}");
        }
        // The last step's offset within the flat node is index*8 bytes.
        let flat_step = path.steps()[2];
        let base = flat_step.addr.as_u64() & !((FLAT_NODE_FRAMES * PAGE_SIZE) - 1);
        assert_eq!(flat_step.addr.as_u64() - base, 0x3_ffff * 8);
    }

    #[test]
    fn same_translations_as_radix_for_same_mapping_order() {
        // Both designs must implement the same virtual→physical function
        // given the same allocator sequence is not required — but each must
        // be internally consistent: every mapped VPN translates to the frame
        // it was given at map time, and distinct VPNs get distinct frames.
        let mut alloc_a = FrameAllocator::new(1 << 30);
        let mut alloc_b = FrameAllocator::new(1 << 30);
        let mut flat = FlattenedL2L1::new(&mut alloc_a);
        let mut radix = Radix4::new(&mut alloc_b);
        let vpns: Vec<Vpn> = (0..300u64).map(|i| Vpn::new(i * 104_729)).collect();
        for &v in &vpns {
            flat.map(v, &mut alloc_a);
            radix.map(v, &mut alloc_b);
        }
        let mut flat_frames = ndp_types::FastSet::default();
        for &v in &vpns {
            assert!(flat_frames.insert(flat.translate(v).unwrap().pfn));
            assert!(radix.translate(v).is_some());
        }
        assert_eq!(flat.mapped_pages(), radix.mapped_pages());
    }

    #[test]
    fn occupancy_reports_flat_level() {
        let (mut alloc, mut t) = setup();
        for i in 0..1000 {
            t.map(Vpn::new(i), &mut alloc);
        }
        let occ = t.occupancy();
        let flat = occ.level(PtLevel::FlatL2L1).unwrap();
        assert_eq!(flat.nodes, 1);
        assert_eq!(flat.valid_entries, 1000);
        assert!(occ.level(PtLevel::L2).is_none(), "no separate L2 level");
        assert!(occ.level(PtLevel::L1).is_none(), "no separate L1 level");
    }

    #[test]
    fn table_bytes_includes_2mb_flat_nodes() {
        let (mut alloc, mut t) = setup();
        t.map(Vpn::new(0), &mut alloc);
        // root (4K) + one L3 (4K) + one flat node (2M).
        assert_eq!(t.table_bytes(), 2 * PAGE_SIZE + 2 * 1024 * 1024);
    }

    #[test]
    fn plan_then_apply_matches_map_range() {
        let (mut alloc_a, mut planned) = setup();
        let (mut alloc_b, mut direct) = setup();
        // Straddles a 1 GB flat-node boundary so the plan spans two nodes.
        let first = Vpn::new(ENTRIES_PER_FLAT_NODE - 500);
        let plan = planned
            .plan_range(first, 1000, &mut alloc_a)
            .expect("flat plans");
        direct.map_range(first, 1000, &mut alloc_b);
        assert_eq!(alloc_a.frames_used(), alloc_b.frames_used());
        assert!(
            planned.translate(first).is_none(),
            "not visible before apply"
        );
        planned.apply_plan(&plan);
        assert_eq!(plan.outcome.minor_4k, 1000);
        assert!(plan.segments.len() >= 2, "boundary splits the run");
        assert_eq!(planned.mapped_pages(), direct.mapped_pages());
        for p in 0..1000 {
            let vpn = first.add(p);
            assert_eq!(planned.translate(vpn), direct.translate(vpn), "{vpn:?}");
        }
        assert_eq!(planned.table_bytes(), direct.table_bytes());
    }

    #[test]
    fn unmapped_is_none() {
        let (_, t) = setup();
        assert!(t.translate(Vpn::new(5)).is_none());
        assert!(t.walk_path(Vpn::new(5)).is_none());
    }
}
