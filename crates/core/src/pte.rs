//! Compact 64-bit page-table entries.
//!
//! Layout (low to high bits):
//!
//! | bits   | field                                             |
//! |--------|---------------------------------------------------|
//! | 0      | present                                           |
//! | 1      | writable                                          |
//! | 2      | huge leaf (2 MB translation at a non-leaf level)  |
//! | 3      | flattened (next level is a merged L2/L1 node) — the single extra bit the paper adds to control registers and PTEs (§V-B) |
//! | 12..48 | physical frame number                             |
//!
//! The same entry format is used both for leaf translations and for
//! next-level pointers (where the PFN names the child node's first frame).

use ndp_types::Pfn;

const PRESENT: u64 = 1 << 0;
const WRITABLE: u64 = 1 << 1;
const HUGE: u64 = 1 << 2;
const FLATTENED: u64 = 1 << 3;
const PFN_SHIFT: u32 = 12;
const PFN_MASK: u64 = 0xf_ffff_ffff; // 36 bits of PFN

/// One 64-bit page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Pte(u64);

impl Pte {
    /// The all-zero, not-present entry.
    pub const NULL: Pte = Pte(0);

    /// A present leaf entry translating to `pfn`.
    #[must_use]
    pub fn leaf(pfn: Pfn) -> Self {
        Pte(PRESENT | WRITABLE | ((pfn.as_u64() & PFN_MASK) << PFN_SHIFT))
    }

    /// A present 2 MB leaf entry.
    #[must_use]
    pub fn huge_leaf(pfn: Pfn) -> Self {
        Pte(Pte::leaf(pfn).0 | HUGE)
    }

    /// A present pointer to a next-level node whose storage starts at `pfn`.
    #[must_use]
    pub fn next(pfn: Pfn) -> Self {
        Pte(PRESENT | ((pfn.as_u64() & PFN_MASK) << PFN_SHIFT))
    }

    /// A present pointer to a *flattened* L2/L1 node (sets the paper's
    /// flattened indicator bit).
    #[must_use]
    pub fn next_flattened(pfn: Pfn) -> Self {
        Pte(Pte::next(pfn).0 | FLATTENED)
    }

    /// Whether the entry is present.
    #[must_use]
    pub const fn is_present(self) -> bool {
        self.0 & PRESENT != 0
    }

    /// Whether the entry is a 2 MB leaf.
    #[must_use]
    pub const fn is_huge(self) -> bool {
        self.0 & HUGE != 0
    }

    /// Whether the entry points to a flattened L2/L1 node.
    #[must_use]
    pub const fn is_flattened(self) -> bool {
        self.0 & FLATTENED != 0
    }

    /// Whether the entry permits writes.
    #[must_use]
    pub const fn is_writable(self) -> bool {
        self.0 & WRITABLE != 0
    }

    /// The physical frame number carried by the entry.
    #[must_use]
    pub const fn pfn(self) -> Pfn {
        Pfn::new((self.0 >> PFN_SHIFT) & PFN_MASK)
    }

    /// Raw 64-bit representation.
    #[must_use]
    pub const fn raw(self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_not_present() {
        assert!(!Pte::NULL.is_present());
        assert_eq!(Pte::NULL.raw(), 0);
        assert_eq!(Pte::default(), Pte::NULL);
    }

    #[test]
    fn leaf_round_trips_pfn() {
        let p = Pte::leaf(Pfn::new(0x12345));
        assert!(p.is_present());
        assert!(p.is_writable());
        assert!(!p.is_huge());
        assert!(!p.is_flattened());
        assert_eq!(p.pfn(), Pfn::new(0x12345));
    }

    #[test]
    fn huge_leaf_flag() {
        let p = Pte::huge_leaf(Pfn::new(0x200));
        assert!(p.is_huge());
        assert!(p.is_present());
        assert_eq!(p.pfn(), Pfn::new(0x200));
    }

    #[test]
    fn next_pointers() {
        let n = Pte::next(Pfn::new(7));
        assert!(n.is_present());
        assert!(!n.is_writable());
        assert!(!n.is_flattened());
        let f = Pte::next_flattened(Pfn::new(7));
        assert!(f.is_flattened());
        assert_eq!(f.pfn(), n.pfn());
    }

    #[test]
    fn pfn_is_masked_to_36_bits() {
        let p = Pte::leaf(Pfn::new(u64::MAX));
        assert_eq!(p.pfn().as_u64(), 0xf_ffff_ffff);
    }
}
