//! The metadata L1-cache-bypass policy (§V-A) — the paper's first
//! mechanism.
//!
//! NDPage observes that PTE accesses in NDP systems miss the L1 ~98% of the
//! time while evicting useful data, so it makes them non-cacheable: the OS
//! marks the (64 B-aligned, 4 KB) PTE regions, and the walker issues
//! PFLD-style loads that go straight to memory. Because NDP has a single
//! cache level, no inclusive-hierarchy complications arise.

use ndp_types::AccessClass;

/// Whether (and where) metadata requests skip the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BypassPolicy {
    /// All requests are cacheable (conventional behaviour; the Radix, ECH
    /// and Huge Page baselines).
    #[default]
    None,
    /// Metadata (PTE) requests skip the L1 and go straight to memory —
    /// NDPage's policy.
    MetadataL1Bypass,
}

impl BypassPolicy {
    /// Whether a request of `class` should bypass the L1.
    #[must_use]
    pub fn bypasses(self, class: AccessClass) -> bool {
        matches!(self, BypassPolicy::MetadataL1Bypass) && class.is_metadata()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_bypasses() {
        assert!(!BypassPolicy::None.bypasses(AccessClass::Data));
        assert!(!BypassPolicy::None.bypasses(AccessClass::Metadata));
    }

    #[test]
    fn ndpage_bypasses_only_metadata() {
        let p = BypassPolicy::MetadataL1Bypass;
        assert!(p.bypasses(AccessClass::Metadata));
        assert!(!p.bypasses(AccessClass::Data));
    }

    #[test]
    fn default_is_none() {
        assert_eq!(BypassPolicy::default(), BypassPolicy::None);
    }
}
