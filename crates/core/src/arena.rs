//! A contiguous slab arena for page-table nodes.
//!
//! Every table design in this crate used to give each node its own
//! `Vec<Pte>` heap allocation and resolve child nodes through a
//! `by_frame: FastMap<frame, index>` hash probe on **every walk step** —
//! three or four dependent hash lookups per translation on the simulator's
//! hottest path. The arena replaces both:
//!
//! * all PTEs live in one contiguous [`Vec<Pte>`] slab, carved into
//!   fixed-size blocks addressed by a `u32` offset ([`PteBlock`]), so a
//!   table's entries share cache lines and the allocator is a bump
//!   pointer;
//! * interior blocks carry a parallel *child-handle* lane: when a PTE is
//!   linked to a child node, the child's index is recorded at the same
//!   slot, turning descent into a direct array load instead of a
//!   `by_frame[&pte.pfn()]` hash probe.
//!
//! [`Node`] is the per-node bookkeeping the tables share: the owning
//! physical frame (walk steps report genuine PTE addresses), the arena
//! block, and a valid-entry count for occupancy reports.

use crate::pte::Pte;
use ndp_types::Pfn;

/// Child-handle sentinel: slot has no linked child node.
const NO_CHILD: u32 = u32::MAX;
/// Block sentinel: block allocated without a child-handle lane.
const NO_KIDS: u32 = u32::MAX;

/// Handle to one block of PTEs (and, for interior nodes, child handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PteBlock {
    /// Offset of the block's first entry in the PTE slab.
    pte: u32,
    /// Offset of the block's first slot in the child-handle slab, or
    /// [`NO_KIDS`] for leaf blocks.
    kid: u32,
}

/// The slab allocator: one PTE lane, one child-handle lane.
///
/// Blocks are never freed — page-table nodes are only ever allocated in
/// this simulator, matching the tables' previous `Vec<Node>` growth.
#[derive(Debug, Clone, Default)]
pub(crate) struct PteArena {
    ptes: Vec<Pte>,
    kids: Vec<u32>,
}

impl PteArena {
    pub(crate) fn new() -> Self {
        PteArena::default()
    }

    /// Allocates a zeroed block of `len` PTEs; `track_kids` adds the
    /// parallel child-handle lane interior nodes use for descent.
    pub(crate) fn alloc(&mut self, len: usize, track_kids: bool) -> PteBlock {
        let pte = u32::try_from(self.ptes.len()).expect("PTE slab outgrew u32 offsets");
        self.ptes.resize(self.ptes.len() + len, Pte::NULL);
        let kid = if track_kids {
            let k = u32::try_from(self.kids.len()).expect("child slab outgrew u32 offsets");
            self.kids.resize(self.kids.len() + len, NO_CHILD);
            k
        } else {
            NO_KIDS
        };
        PteBlock { pte, kid }
    }

    #[inline]
    pub(crate) fn get(&self, b: PteBlock, idx: usize) -> Pte {
        self.ptes[b.pte as usize + idx]
    }

    #[inline]
    pub(crate) fn set(&mut self, b: PteBlock, idx: usize, pte: Pte) {
        self.ptes[b.pte as usize + idx] = pte;
    }

    /// The child node linked at `idx`, if any. Mirrors the old
    /// `by_frame.get(&pte.pfn())` probe as a direct array load. (Unused
    /// under `legacy_hotpath`, whose descents keep the map probe.)
    #[cfg_attr(feature = "legacy_hotpath", allow(dead_code))]
    #[inline]
    pub(crate) fn kid(&self, b: PteBlock, idx: usize) -> Option<usize> {
        let k = self.kids[b.kid as usize + idx];
        (k != NO_CHILD).then_some(k as usize)
    }

    #[inline]
    pub(crate) fn set_kid(&mut self, b: PteBlock, idx: usize, child: usize) {
        self.kids[b.kid as usize + idx] = u32::try_from(child).expect("node index fits u32");
    }
}

/// Per-node bookkeeping shared by the radix-family tables.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    /// The physical frame(s) backing this node; walk steps report
    /// `frame.entry_addr(idx)` so the DRAM model sees real PTE addresses.
    pub(crate) frame: Pfn,
    /// Where this node's entries live in the arena.
    pub(crate) block: PteBlock,
    /// Present-entry count, for occupancy reports.
    pub(crate) valid: u32,
}

impl Node {
    pub(crate) fn new(frame: Pfn, len: usize, track_kids: bool, arena: &mut PteArena) -> Self {
        Node {
            frame,
            block: arena.alloc(len, track_kids),
            valid: 0,
        }
    }

    #[inline]
    pub(crate) fn get(&self, arena: &PteArena, idx: usize) -> Pte {
        arena.get(self.block, idx)
    }

    pub(crate) fn set(&mut self, arena: &mut PteArena, idx: usize, pte: Pte) {
        if !arena.get(self.block, idx).is_present() && pte.is_present() {
            self.valid += 1;
        }
        arena.set(self.block, idx, pte);
    }

    /// The child node index linked at `idx` (set alongside the PTE when a
    /// child table is attached).
    #[cfg_attr(feature = "legacy_hotpath", allow(dead_code))]
    #[inline]
    pub(crate) fn kid(&self, arena: &PteArena, idx: usize) -> Option<usize> {
        arena.kid(self.block, idx)
    }

    pub(crate) fn set_kid(&self, arena: &mut PteArena, idx: usize, child: usize) {
        arena.set_kid(self.block, idx, child);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::Pfn;

    #[test]
    fn blocks_are_zeroed_and_independent() {
        let mut a = PteArena::new();
        let b1 = a.alloc(4, true);
        let b2 = a.alloc(4, false);
        for i in 0..4 {
            assert!(!a.get(b1, i).is_present());
            assert!(!a.get(b2, i).is_present());
        }
        a.set(b1, 2, Pte::leaf(Pfn::new(7)));
        assert!(a.get(b1, 2).is_present());
        assert!(!a.get(b2, 2).is_present());
    }

    #[test]
    fn kids_default_to_none_and_round_trip() {
        let mut a = PteArena::new();
        let b = a.alloc(8, true);
        assert_eq!(a.kid(b, 3), None);
        a.set_kid(b, 3, 42);
        assert_eq!(a.kid(b, 3), Some(42));
        assert_eq!(a.kid(b, 4), None);
    }

    #[test]
    fn node_tracks_valid_count() {
        let mut a = PteArena::new();
        let mut n = Node::new(Pfn::new(1), 16, false, &mut a);
        n.set(&mut a, 0, Pte::leaf(Pfn::new(2)));
        n.set(&mut a, 0, Pte::leaf(Pfn::new(3))); // overwrite: no recount
        n.set(&mut a, 5, Pte::leaf(Pfn::new(4)));
        assert_eq!(n.valid, 2);
    }
}
