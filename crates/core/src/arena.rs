//! A chained-slab arena for page-table nodes.
//!
//! Every table design in this crate used to give each node its own
//! `Vec<Pte>` heap allocation and resolve child nodes through a
//! `by_frame: FastMap<frame, index>` hash probe on **every walk step** —
//! three or four dependent hash lookups per translation on the simulator's
//! hottest path. The arena replaces both:
//!
//! * all PTEs live in fixed-capacity slabs ([`SLAB_ENTRIES`] entries
//!   each), carved into blocks addressed by a `(slab, start)` pair
//!   ([`PteBlock`]), so a table's entries share cache lines and the
//!   allocator is a bump pointer;
//! * interior blocks carry a parallel *child-handle* lane: when a PTE is
//!   linked to a child node, the child's index is recorded at the same
//!   slot, turning descent into a direct array load instead of a
//!   `by_frame[&pte.pfn()]` hash probe.
//!
//! The arena used to be one contiguous `Vec<Pte>` addressed by `u32`
//! offsets, which put a hard 2³²-entry ceiling on a table's PTE slab (an
//! `expect` panic) and paid a full copy every time the vector doubled —
//! tens of megabytes per table at paper-scale footprints. Chained slabs
//! remove both: filled slabs are never moved again, and capacity is
//! bounded only by memory. A block never spans slabs (blocks are at most
//! one flattened node, 2¹⁸ entries, well under [`SLAB_ENTRIES`]), so
//! per-entry addressing stays a single two-level index with no divide.
//!
//! [`Node`] is the per-node bookkeeping the tables share: the owning
//! physical frame (walk steps report genuine PTE addresses), the arena
//! block, and a valid-entry count for occupancy reports.

use crate::pte::Pte;
use ndp_types::Pfn;

/// Child-handle sentinel: slot has no linked child node.
const NO_CHILD: u32 = u32::MAX;
/// Block sentinel: block allocated without a child-handle lane.
const NO_KIDS: u32 = u32::MAX;

/// Entries per slab: 2²¹ PTEs = 16 MiB per PTE lane slab. Must exceed
/// the largest single block any table allocates (a flattened L2/L1 node:
/// 2¹⁸ entries), since blocks never span slab boundaries.
const SLAB_ENTRIES: usize = 1 << 21;

/// Handle to one block of PTEs (and, for interior nodes, child handles).
///
/// `(slab, start)` addressing: `start` is bounded by the slab capacity,
/// and slab counts are bounded by memory, so no offset here can overflow
/// — the old single-slab `u32` offset ceiling is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct PteBlock {
    /// Slab holding the block's PTEs.
    pte_slab: u32,
    /// Offset of the block's first entry within its PTE slab.
    pte_start: u32,
    /// Slab holding the block's child handles, or [`NO_KIDS`] for leaf
    /// blocks (checked on `kid_slab` only; the pair is set together).
    kid_slab: u32,
    /// Offset of the block's first slot within its child-handle slab.
    kid_start: u32,
}

/// The slab allocator: one PTE lane, one child-handle lane.
///
/// Blocks are never freed — page-table nodes are only ever allocated in
/// this simulator, matching the tables' previous `Vec<Node>` growth.
#[derive(Debug, Clone)]
pub(crate) struct PteArena {
    pte_slabs: Vec<Vec<Pte>>,
    kid_slabs: Vec<Vec<u32>>,
    /// Per-slab entry capacity ([`SLAB_ENTRIES`]; tests shrink it to
    /// exercise boundary crossings without gigabytes of slab).
    slab_entries: usize,
}

impl Default for PteArena {
    fn default() -> Self {
        PteArena::new()
    }
}

/// Allocates `len` entries in the lane, opening a fresh slab when the
/// current one cannot hold the block contiguously.
fn lane_alloc<T: Copy>(slabs: &mut Vec<Vec<T>>, len: usize, fill: T, cap: usize) -> (u32, u32) {
    assert!(
        len <= cap,
        "block of {len} entries exceeds slab capacity {cap}"
    );
    if slabs.last().is_none_or(|s| s.len() + len > cap) {
        slabs.push(Vec::with_capacity(cap));
    }
    let slab = slabs.len() - 1;
    let lane = &mut slabs[slab];
    let start = lane.len();
    lane.resize(start + len, fill);
    (slab as u32, start as u32)
}

impl PteArena {
    pub(crate) fn new() -> Self {
        Self::with_slab_entries(SLAB_ENTRIES)
    }

    /// An arena with a custom per-slab capacity (tests only — shrinking
    /// the slabs makes boundary crossings cheap to reach).
    pub(crate) fn with_slab_entries(slab_entries: usize) -> Self {
        PteArena {
            pte_slabs: Vec::new(),
            kid_slabs: Vec::new(),
            slab_entries,
        }
    }

    /// Allocates a zeroed block of `len` PTEs; `track_kids` adds the
    /// parallel child-handle lane interior nodes use for descent.
    pub(crate) fn alloc(&mut self, len: usize, track_kids: bool) -> PteBlock {
        let (pte_slab, pte_start) =
            lane_alloc(&mut self.pte_slabs, len, Pte::NULL, self.slab_entries);
        let (kid_slab, kid_start) = if track_kids {
            lane_alloc(&mut self.kid_slabs, len, NO_CHILD, self.slab_entries)
        } else {
            (NO_KIDS, NO_KIDS)
        };
        PteBlock {
            pte_slab,
            pte_start,
            kid_slab,
            kid_start,
        }
    }

    /// Number of PTE-lane slabs currently open (diagnostic/tests).
    #[cfg(test)]
    pub(crate) fn pte_slab_count(&self) -> usize {
        self.pte_slabs.len()
    }

    #[inline]
    pub(crate) fn get(&self, b: PteBlock, idx: usize) -> Pte {
        self.pte_slabs[b.pte_slab as usize][b.pte_start as usize + idx]
    }

    #[inline]
    pub(crate) fn set(&mut self, b: PteBlock, idx: usize, pte: Pte) {
        self.pte_slabs[b.pte_slab as usize][b.pte_start as usize + idx] = pte;
    }

    /// The child node linked at `idx`, if any. Mirrors the old
    /// `by_frame.get(&pte.pfn())` probe as a direct array load. (Unused
    /// under `legacy_hotpath`, whose descents keep the map probe.)
    #[cfg_attr(feature = "legacy_hotpath", allow(dead_code))]
    #[inline]
    pub(crate) fn kid(&self, b: PteBlock, idx: usize) -> Option<usize> {
        let k = self.kid_slabs[b.kid_slab as usize][b.kid_start as usize + idx];
        (k != NO_CHILD).then_some(k as usize)
    }

    #[inline]
    pub(crate) fn set_kid(&mut self, b: PteBlock, idx: usize, child: usize) {
        // Node indices count whole table nodes, each backed by at least a
        // 4 KB frame: 2³² of them would need 16 TiB of table storage,
        // orders beyond any bookkeeping capacity the simulator sizes.
        self.kid_slabs[b.kid_slab as usize][b.kid_start as usize + idx] =
            u32::try_from(child).expect("node index fits u32");
    }
}

/// Per-node bookkeeping shared by the radix-family tables.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    /// The physical frame(s) backing this node; walk steps report
    /// `frame.entry_addr(idx)` so the DRAM model sees real PTE addresses.
    pub(crate) frame: Pfn,
    /// Where this node's entries live in the arena.
    pub(crate) block: PteBlock,
    /// Present-entry count, for occupancy reports.
    pub(crate) valid: u32,
}

impl Node {
    pub(crate) fn new(frame: Pfn, len: usize, track_kids: bool, arena: &mut PteArena) -> Self {
        Node {
            frame,
            block: arena.alloc(len, track_kids),
            valid: 0,
        }
    }

    #[inline]
    pub(crate) fn get(&self, arena: &PteArena, idx: usize) -> Pte {
        arena.get(self.block, idx)
    }

    pub(crate) fn set(&mut self, arena: &mut PteArena, idx: usize, pte: Pte) {
        if !arena.get(self.block, idx).is_present() && pte.is_present() {
            self.valid += 1;
        }
        arena.set(self.block, idx, pte);
    }

    /// The child node index linked at `idx` (set alongside the PTE when a
    /// child table is attached).
    #[cfg_attr(feature = "legacy_hotpath", allow(dead_code))]
    #[inline]
    pub(crate) fn kid(&self, arena: &PteArena, idx: usize) -> Option<usize> {
        arena.kid(self.block, idx)
    }

    pub(crate) fn set_kid(&self, arena: &mut PteArena, idx: usize, child: usize) {
        arena.set_kid(self.block, idx, child);
    }

    /// Bulk-installs `count` present leaf entries starting at `start`,
    /// all previously absent (the premap plan/apply contract); `pfn(k)`
    /// supplies the `k`-th frame. One bounds check and one valid-count
    /// update instead of per-entry [`Node::set`] calls.
    pub(crate) fn set_leaf_run(
        &mut self,
        arena: &mut PteArena,
        start: usize,
        count: usize,
        mut pfn: impl FnMut(usize) -> Pfn,
    ) {
        let b = self.block;
        let lane = &mut arena.pte_slabs[b.pte_slab as usize];
        let base = b.pte_start as usize + start;
        for (k, slot) in lane[base..base + count].iter_mut().enumerate() {
            debug_assert!(!slot.is_present(), "leaf run overwrites a present entry");
            *slot = Pte::leaf(pfn(k));
        }
        self.valid += count as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::Pfn;

    #[test]
    fn blocks_are_zeroed_and_independent() {
        let mut a = PteArena::new();
        let b1 = a.alloc(4, true);
        let b2 = a.alloc(4, false);
        for i in 0..4 {
            assert!(!a.get(b1, i).is_present());
            assert!(!a.get(b2, i).is_present());
        }
        a.set(b1, 2, Pte::leaf(Pfn::new(7)));
        assert!(a.get(b1, 2).is_present());
        assert!(!a.get(b2, 2).is_present());
    }

    #[test]
    fn kids_default_to_none_and_round_trip() {
        let mut a = PteArena::new();
        let b = a.alloc(8, true);
        assert_eq!(a.kid(b, 3), None);
        a.set_kid(b, 3, 42);
        assert_eq!(a.kid(b, 3), Some(42));
        assert_eq!(a.kid(b, 4), None);
    }

    #[test]
    fn node_tracks_valid_count() {
        let mut a = PteArena::new();
        let mut n = Node::new(Pfn::new(1), 16, false, &mut a);
        n.set(&mut a, 0, Pte::leaf(Pfn::new(2)));
        n.set(&mut a, 0, Pte::leaf(Pfn::new(3))); // overwrite: no recount
        n.set(&mut a, 5, Pte::leaf(Pfn::new(4)));
        assert_eq!(n.valid, 2);
    }

    #[test]
    fn leaf_run_installs_present_entries_and_counts_them() {
        let mut a = PteArena::new();
        let mut n = Node::new(Pfn::new(1), 512, false, &mut a);
        n.set_leaf_run(&mut a, 10, 5, |k| Pfn::new(100 + k as u64));
        assert_eq!(n.valid, 5);
        assert!(!n.get(&a, 9).is_present());
        for k in 0..5 {
            assert_eq!(n.get(&a, 10 + k).pfn(), Pfn::new(100 + k as u64));
        }
        assert!(!n.get(&a, 15).is_present());
    }

    /// Regression test for the old single-slab arena, whose `u32` offsets
    /// made block allocation panic ("PTE slab outgrew u32 offsets") once
    /// a table's entries crossed 2³². Crossing that literal limit needs
    /// ~34 GB of slab, so the test shrinks the per-slab capacity instead:
    /// the failure mode the chained design has to get right — blocks
    /// handed out across a capacity boundary — now happens every
    /// `slab_entries` entries, and every handle must keep resolving.
    #[test]
    fn blocks_survive_slab_boundary_crossings() {
        let mut a = PteArena::with_slab_entries(1000);
        let mut blocks = Vec::new();
        // 300-entry blocks: 3 per slab with 100 entries wasted at each
        // boundary, so 40 blocks span 14 slabs.
        for i in 0..40u64 {
            let b = a.alloc(300, i % 2 == 0);
            a.set(b, (i % 300) as usize, Pte::leaf(Pfn::new(i + 1)));
            if i % 2 == 0 {
                a.set_kid(b, (i % 300) as usize, i as usize);
            }
            blocks.push((i, b));
        }
        assert!(a.pte_slab_count() > 1, "test must cross slab boundaries");
        for (i, b) in blocks {
            let idx = (i % 300) as usize;
            assert_eq!(a.get(b, idx).pfn(), Pfn::new(i + 1), "block {i}");
            if i % 2 == 0 {
                assert_eq!(a.kid(b, idx), Some(i as usize), "block {i}");
            }
            // Neighbouring entries stay zeroed — blocks never overlap.
            if idx + 1 < 300 {
                assert!(!a.get(b, idx + 1).is_present(), "block {i}");
            }
        }
    }

    #[test]
    fn blocks_never_span_slabs() {
        let mut a = PteArena::with_slab_entries(512);
        for _ in 0..20 {
            let b = a.alloc(300, false);
            // A block that spanned slabs would make the final entry's
            // in-slab index exceed the capacity and panic here.
            a.set(b, 299, Pte::leaf(Pfn::new(9)));
            assert!(a.get(b, 299).is_present());
        }
    }

    #[test]
    #[should_panic(expected = "exceeds slab capacity")]
    fn oversized_block_is_rejected_not_truncated() {
        let mut a = PteArena::with_slab_entries(64);
        let _ = a.alloc(65, false);
    }
}
