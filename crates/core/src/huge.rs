//! Transparent 2 MB huge pages over a 3-level radix table — the paper's
//! "Huge Page" baseline.
//!
//! A 2 MB leaf at PL2 removes one walk level and multiplies TLB reach by
//! 512, which is why Huge Page looks strong at low core counts (Fig 12).
//! Its failure mode (§VII-B, Fig 14) is physical: each 2 MB mapping needs
//! aligned contiguous frames from the [`FrameAllocator`]'s contiguity pool,
//! faults must zero 512× more memory, and when contiguity runs out the
//! kernel falls back to 4 KB pages behind a *4-level* walk plus compaction
//! stalls — all of which this implementation surfaces through
//! [`FaultKind`].
//!
//! [`FaultKind`]: crate::table::FaultKind

use crate::alloc::{FrameAllocator, FramePurpose};
use crate::arena::{Node, PteArena};
use crate::occupancy::{LevelOccupancy, OccupancyReport};
use crate::pte::Pte;
use crate::table::{FaultKind, MapOutcome, PageTable, PageTableKind, RangeMapOutcome, Translation};
use crate::walk::{WalkPath, WalkStep};
use ndp_types::addr::{ENTRIES_PER_NODE, PAGE_SIZE};
#[cfg(feature = "legacy_hotpath")]
use ndp_types::FastMap;
use ndp_types::{PageSize, PtLevel, Vpn};

const NODE_ENTRIES: usize = ENTRIES_PER_NODE as usize;

/// Huge-page-specific statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct HugeStats {
    /// Successful 2 MB mappings.
    pub huge_mapped: u64,
    /// 4 KB fallback mappings after contiguity exhaustion.
    pub fallback_mapped: u64,
}

/// The 2 MB transparent-huge-page table ("Huge Page" in Figs 12–14).
#[derive(Debug, Clone)]
pub struct HugePageTable {
    arena: PteArena,
    nodes: Vec<Node>,
    /// The seed's frame→node map, used for descent under `legacy_hotpath`
    /// in place of the arena's child-handle lane.
    #[cfg(feature = "legacy_hotpath")]
    by_frame: FastMap<u64, usize>,
    /// per-level node lists: [L4, L3, L2, L1-fallback].
    per_level: [Vec<usize>; 4],
    root: usize,
    stats: HugeStats,
}

impl HugePageTable {
    /// Creates an empty table, allocating the root node.
    #[must_use]
    pub fn new(alloc: &mut FrameAllocator) -> Self {
        let mut t = HugePageTable {
            arena: PteArena::new(),
            nodes: Vec::new(),
            #[cfg(feature = "legacy_hotpath")]
            by_frame: FastMap::default(),
            per_level: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            root: 0,
            stats: HugeStats::default(),
        };
        t.root = t.new_node(alloc, 0);
        t
    }

    /// Huge/fallback mapping counters.
    #[must_use]
    pub fn stats(&self) -> &HugeStats {
        &self.stats
    }

    fn new_node(&mut self, alloc: &mut FrameAllocator, level_idx: usize) -> usize {
        let frame = alloc.alloc_frame(FramePurpose::PageTable);
        let idx = self.nodes.len();
        // L1 fallback nodes hold only leaves; no child lane needed.
        let track_kids = level_idx < 3;
        self.nodes
            .push(Node::new(frame, NODE_ENTRIES, track_kids, &mut self.arena));
        #[cfg(feature = "legacy_hotpath")]
        self.by_frame.insert(frame.as_u64(), idx);
        self.per_level[level_idx].push(idx);
        idx
    }

    /// Resolves the child node a present non-huge PTE points to.
    #[cfg(not(feature = "legacy_hotpath"))]
    #[inline]
    fn child_of(&self, node: usize, idx: usize, _pte: Pte) -> Option<usize> {
        self.nodes[node].kid(&self.arena, idx)
    }

    #[cfg(feature = "legacy_hotpath")]
    #[inline]
    fn child_of(&self, _node: usize, _idx: usize, pte: Pte) -> Option<usize> {
        self.by_frame.get(&pte.pfn().as_u64()).copied()
    }

    /// Descends to the L2 node, returning `(l3_node, l2_node)` if present.
    fn descend_l2(&self, vpn: Vpn) -> Option<(usize, usize)> {
        let l4_idx = vpn.l4_index();
        let l4e = self.nodes[self.root].get(&self.arena, l4_idx);
        if !l4e.is_present() {
            return None;
        }
        let l3 = self.child_of(self.root, l4_idx, l4e)?;
        let l3_idx = vpn.l3_index();
        let l3e = self.nodes[l3].get(&self.arena, l3_idx);
        if !l3e.is_present() {
            return None;
        }
        let l2 = self.child_of(l3, l3_idx, l3e)?;
        Some((l3, l2))
    }
}

impl PageTable for HugePageTable {
    fn kind(&self) -> PageTableKind {
        PageTableKind::HugePage
    }

    fn translate(&self, vpn: Vpn) -> Option<Translation> {
        let (_, l2) = self.descend_l2(vpn)?;
        let l2_idx = vpn.l2_index();
        let l2e = self.nodes[l2].get(&self.arena, l2_idx);
        if !l2e.is_present() {
            return None;
        }
        if l2e.is_huge() {
            return Some(Translation {
                pfn: l2e.pfn().add(vpn.l1_index() as u64),
                size: PageSize::Size2M,
            });
        }
        let l1 = self.child_of(l2, l2_idx, l2e)?;
        let l1e = self.nodes[l1].get(&self.arena, vpn.l1_index());
        l1e.is_present().then(|| Translation {
            pfn: l1e.pfn(),
            size: PageSize::Size4K,
        })
    }

    fn map(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> MapOutcome {
        let mut tables_allocated = 0;

        let l4_idx = vpn.l4_index();
        let l4e = self.nodes[self.root].get(&self.arena, l4_idx);
        let l3 = if l4e.is_present() {
            self.child_of(self.root, l4_idx, l4e)
                .expect("L4 PTE links its L3 node")
        } else {
            let n = self.new_node(alloc, 1);
            tables_allocated += 1;
            let f = self.nodes[n].frame;
            self.nodes[self.root].set(&mut self.arena, l4_idx, Pte::next(f));
            self.nodes[self.root].set_kid(&mut self.arena, l4_idx, n);
            n
        };

        let l3_idx = vpn.l3_index();
        let l3e = self.nodes[l3].get(&self.arena, l3_idx);
        let l2 = if l3e.is_present() {
            self.child_of(l3, l3_idx, l3e)
                .expect("L3 PTE links its L2 node")
        } else {
            let n = self.new_node(alloc, 2);
            tables_allocated += 1;
            let f = self.nodes[n].frame;
            self.nodes[l3].set(&mut self.arena, l3_idx, Pte::next(f));
            self.nodes[l3].set_kid(&mut self.arena, l3_idx, n);
            n
        };

        let l2_idx = vpn.l2_index();
        let l2e = self.nodes[l2].get(&self.arena, l2_idx);
        if l2e.is_present() {
            if l2e.is_huge() {
                return MapOutcome::already_mapped();
            }
            // Fallback region: map the individual 4 KB page.
            let l1 = self
                .child_of(l2, l2_idx, l2e)
                .expect("fallback L2 PTE links its L1 node");
            let l1_idx = vpn.l1_index();
            if self.nodes[l1].get(&self.arena, l1_idx).is_present() {
                return MapOutcome::already_mapped();
            }
            let frame = alloc.alloc_frame(FramePurpose::Data);
            self.nodes[l1].set(&mut self.arena, l1_idx, Pte::leaf(frame));
            self.stats.fallback_mapped += 1;
            return MapOutcome {
                newly_mapped: true,
                fault: Some(FaultKind::Fallback4K),
                tables_allocated,
            };
        }

        // Fresh 2 MB region: try a huge allocation.
        match alloc.alloc_contiguous(PageSize::Size2M.frames(), FramePurpose::Data) {
            Some(base) => {
                self.nodes[l2].set(&mut self.arena, l2_idx, Pte::huge_leaf(base));
                self.stats.huge_mapped += 1;
                MapOutcome {
                    newly_mapped: true,
                    fault: Some(FaultKind::Minor2M),
                    tables_allocated,
                }
            }
            None => {
                // Contiguity exhausted: build an L1 node and map 4 KB.
                let l1 = self.new_node(alloc, 3);
                tables_allocated += 1;
                let l1_frame = self.nodes[l1].frame;
                self.nodes[l2].set(&mut self.arena, l2_idx, Pte::next(l1_frame));
                self.nodes[l2].set_kid(&mut self.arena, l2_idx, l1);
                let frame = alloc.alloc_frame(FramePurpose::Data);
                self.nodes[l1].set(&mut self.arena, vpn.l1_index(), Pte::leaf(frame));
                self.stats.fallback_mapped += 1;
                MapOutcome {
                    newly_mapped: true,
                    fault: Some(FaultKind::Fallback4K),
                    tables_allocated,
                }
            }
        }
    }

    fn map_range(&mut self, first: Vpn, pages: u64, alloc: &mut FrameAllocator) -> RangeMapOutcome {
        // After the first fault in a 2 MB region decides huge vs fallback,
        // the remaining pages of a huge region are no-ops the per-page
        // loop would still pay three lookups each for; skip them.
        let mut totals = RangeMapOutcome::default();
        let mut p = 0u64;
        while p < pages {
            let vpn = first.add(p);
            totals.absorb(self.map(vpn, alloc));
            let to_region_end = ENTRIES_PER_NODE - (vpn.as_u64() - vpn.huge_aligned().as_u64());
            let in_region = to_region_end.min(pages - p);
            let huge_mapped = self
                .translate(vpn)
                .is_some_and(|t| t.size == PageSize::Size2M);
            if huge_mapped {
                p += in_region;
            } else {
                for q in 1..in_region {
                    totals.absorb(self.map(vpn.add(q), alloc));
                }
                p += in_region;
            }
        }
        totals
    }

    fn walk_path(&self, vpn: Vpn) -> Option<WalkPath> {
        self.translate_and_walk(vpn).map(|(_, path)| path)
    }

    fn translate_and_walk(&self, vpn: Vpn) -> Option<(Translation, WalkPath)> {
        // Single descent serving both results; per-op hot path.
        let (l3, l2) = self.descend_l2(vpn)?;
        let l2e = self.nodes[l2].get(&self.arena, vpn.l2_index());
        if !l2e.is_present() {
            return None;
        }
        let mut path = WalkPath::of([
            WalkStep {
                addr: self.nodes[self.root].frame.entry_addr(vpn.l4_index()),
                level: PtLevel::L4,
                group: 0,
            },
            WalkStep {
                addr: self.nodes[l3].frame.entry_addr(vpn.l3_index()),
                level: PtLevel::L3,
                group: 1,
            },
            WalkStep {
                addr: self.nodes[l2].frame.entry_addr(vpn.l2_index()),
                level: PtLevel::L2,
                group: 2,
            },
        ]);
        let translation = if l2e.is_huge() {
            Translation {
                pfn: l2e.pfn().add(vpn.l1_index() as u64),
                size: PageSize::Size2M,
            }
        } else {
            let l1 = self.child_of(l2, vpn.l2_index(), l2e)?;
            let l1e = self.nodes[l1].get(&self.arena, vpn.l1_index());
            if !l1e.is_present() {
                return None;
            }
            path.push(WalkStep {
                addr: self.nodes[l1].frame.entry_addr(vpn.l1_index()),
                level: PtLevel::L1,
                group: 3,
            });
            Translation {
                pfn: l1e.pfn(),
                size: PageSize::Size4K,
            }
        };
        Some((translation, path))
    }

    fn occupancy(&self) -> OccupancyReport {
        let mut report = OccupancyReport::new();
        for (depth, level) in [PtLevel::L4, PtLevel::L3, PtLevel::L2, PtLevel::L1]
            .iter()
            .enumerate()
        {
            let nodes = &self.per_level[depth];
            if nodes.is_empty() && *level == PtLevel::L1 {
                continue;
            }
            let valid: u64 = nodes.iter().map(|&i| u64::from(self.nodes[i].valid)).sum();
            report.set(
                *level,
                LevelOccupancy {
                    nodes: nodes.len() as u64,
                    valid_entries: valid,
                    capacity: nodes.len() as u64 * ENTRIES_PER_NODE,
                },
            );
        }
        report
    }

    fn mapped_pages(&self) -> u64 {
        self.stats.huge_mapped + self.stats.fallback_mapped
    }

    fn table_bytes(&self) -> u64 {
        self.nodes.len() as u64 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::VirtAddr;

    fn setup(capacity: u64) -> (FrameAllocator, HugePageTable) {
        let mut alloc = FrameAllocator::new(capacity);
        let table = HugePageTable::new(&mut alloc);
        (alloc, table)
    }

    #[test]
    fn maps_2mb_pages_while_contiguity_lasts() {
        let (mut alloc, mut t) = setup(1 << 30);
        let vpn = VirtAddr::new(0x4000_0000).vpn();
        let o = t.map(vpn, &mut alloc);
        assert_eq!(o.fault, Some(FaultKind::Minor2M));
        let tr = t.translate(vpn).unwrap();
        assert_eq!(tr.size, PageSize::Size2M);
        assert_eq!(t.stats().huge_mapped, 1);
    }

    #[test]
    fn pages_in_same_2mb_region_share_the_mapping() {
        let (mut alloc, mut t) = setup(1 << 30);
        let a = Vpn::new(512 * 10);
        let b = Vpn::new(512 * 10 + 5);
        assert!(t.map(a, &mut alloc).newly_mapped);
        assert!(!t.map(b, &mut alloc).newly_mapped);
        // Within the huge page, 4 KB frames are consecutive.
        let ta = t.translate(a).unwrap();
        let tb = t.translate(b).unwrap();
        assert_eq!(tb.pfn.as_u64() - ta.pfn.as_u64(), 5);
    }

    #[test]
    fn huge_walk_is_three_levels_fallback_is_four() {
        // Small memory: contiguity pool exhausts quickly.
        let (mut alloc, mut t) = setup(64 << 20);
        let mut saw_huge = false;
        let mut saw_fallback = false;
        for i in 0..32u64 {
            let vpn = Vpn::new(i * 512);
            let o = t.map(vpn, &mut alloc);
            match o.fault.unwrap() {
                FaultKind::Minor2M => {
                    saw_huge = true;
                    assert_eq!(t.walk_path(vpn).unwrap().len(), 3);
                }
                FaultKind::Fallback4K => {
                    saw_fallback = true;
                    assert_eq!(t.walk_path(vpn).unwrap().len(), 4);
                }
                FaultKind::Minor4K => panic!("huge table never minor-faults 4K"),
            }
        }
        assert!(saw_huge && saw_fallback, "both paths must be exercised");
        assert!(t.stats().fallback_mapped > 0);
    }

    #[test]
    fn fallback_region_maps_individual_pages() {
        let (mut alloc, mut t) = setup(16 << 20); // tiny: fallback almost immediately
                                                  // Exhaust contiguity.
        let mut i = 0u64;
        loop {
            let o = t.map(Vpn::new(i * 512), &mut alloc);
            if o.fault == Some(FaultKind::Fallback4K) {
                break;
            }
            i += 1;
            assert!(i < 100);
        }
        // Next page in same (fallback) region also fallback-maps.
        let region = Vpn::new(i * 512);
        let o = t.map(region.add(1), &mut alloc);
        assert_eq!(o.fault, Some(FaultKind::Fallback4K));
        assert!(o.newly_mapped);
        assert_ne!(
            t.translate(region).unwrap().pfn,
            t.translate(region.add(1)).unwrap().pfn
        );
    }

    #[test]
    fn unmapped_is_none() {
        let (_, t) = setup(1 << 30);
        assert!(t.translate(Vpn::new(3)).is_none());
        assert!(t.walk_path(Vpn::new(3)).is_none());
    }

    #[test]
    fn walk_addresses_in_table_frames() {
        let (mut alloc, mut t) = setup(1 << 30);
        let vpn = Vpn::new(0x12345);
        t.map(vpn, &mut alloc);
        for step in t.walk_path(vpn).unwrap().steps() {
            assert!(alloc.is_table_frame(step.addr.pfn()));
        }
    }

    #[test]
    fn occupancy_has_no_l1_until_fallback() {
        let (mut alloc, mut t) = setup(1 << 30);
        t.map(Vpn::new(0), &mut alloc);
        assert!(t.occupancy().level(PtLevel::L1).is_none());
    }
}
