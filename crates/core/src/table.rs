//! The [`PageTable`] trait: the common contract of every translation
//! structure the paper evaluates.
//!
//! A design answers three questions:
//!
//! 1. *What does a VPN translate to?* — [`PageTable::translate`].
//! 2. *What must the OS do to create a mapping?* — [`PageTable::map`]
//!    (allocates frames and table nodes; reports fault kind so the
//!    simulator can charge fault latency).
//! 3. *Which physical PTE locations does a hardware walk touch?* —
//!    [`PageTable::walk_path`], consumed by the MMU's walker.

use crate::alloc::FrameAllocator;
use crate::occupancy::OccupancyReport;
use crate::walk::WalkPath;
use ndp_types::{PageSize, Pfn, Vpn};
use std::fmt;

/// Identifies a page-table design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageTableKind {
    /// Conventional x86-64 4-level radix tree.
    Radix4,
    /// NDPage's 3-level tree with a merged 2 MB L2/L1 node.
    FlattenedL2L1,
    /// Elastic cuckoo hash table (ECH).
    ElasticCuckoo,
    /// 3-level radix with 2 MB leaf pages (transparent huge pages).
    HugePage,
}

impl fmt::Display for PageTableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageTableKind::Radix4 => f.write_str("Radix"),
            PageTableKind::FlattenedL2L1 => f.write_str("NDPage-Flat"),
            PageTableKind::ElasticCuckoo => f.write_str("ECH"),
            PageTableKind::HugePage => f.write_str("HugePage"),
        }
    }
}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Physical frame of the 4 KB page containing the address (for 2 MB
    /// mappings, the exact 4 KB frame within the huge page).
    pub pfn: Pfn,
    /// The mapping's page size (determines TLB entry reach).
    pub size: PageSize,
}

/// What kind of page fault a [`PageTable::map`] call incurred.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// First touch of a 4 KB page.
    Minor4K,
    /// First touch of a 2 MB page (zeroing 512 frames is costly).
    Minor2M,
    /// Wanted a 2 MB page but contiguity was exhausted; fell back to 4 KB
    /// after a failed allocation (and, in real kernels, compaction work).
    Fallback4K,
}

/// Result of a [`PageTable::map`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MapOutcome {
    /// Whether a new mapping was created (false if already mapped).
    pub newly_mapped: bool,
    /// Fault incurred, if any.
    pub fault: Option<FaultKind>,
    /// Page-table nodes allocated while creating the mapping.
    pub tables_allocated: u32,
}

impl MapOutcome {
    /// The outcome for an already-present mapping.
    #[must_use]
    pub fn already_mapped() -> Self {
        MapOutcome {
            newly_mapped: false,
            fault: None,
            tables_allocated: 0,
        }
    }
}

/// Aggregated result of a [`PageTable::map_range`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RangeMapOutcome {
    /// 4 KB minor faults incurred.
    pub minor_4k: u64,
    /// 2 MB minor faults incurred.
    pub minor_2m: u64,
    /// THP-fallback faults incurred.
    pub fallback: u64,
}

impl RangeMapOutcome {
    /// Folds one [`MapOutcome`] into the totals.
    pub fn absorb(&mut self, outcome: MapOutcome) {
        match outcome.fault {
            Some(FaultKind::Minor4K) => self.minor_4k += 1,
            Some(FaultKind::Minor2M) => self.minor_2m += 1,
            Some(FaultKind::Fallback4K) => self.fallback += 1,
            None => {}
        }
    }

    /// Folds another range's totals into this one.
    pub fn absorb_range(&mut self, other: RangeMapOutcome) {
        self.minor_4k += other.minor_4k;
        self.minor_2m += other.minor_2m;
        self.fallback += other.fallback;
    }
}

/// One deferred run of leaf installs: `count` consecutive pages landing in
/// one leaf node, backed by `count` consecutive frames from `first_pfn`.
///
/// `node` is an implementation-defined leaf-node index (Radix L1 node,
/// flattened L2/L1 node); only the table that produced the plan can
/// interpret it.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanSegment {
    pub(crate) node: u32,
    pub(crate) start: u32,
    pub(crate) count: u32,
    pub(crate) first_pfn: u64,
}

/// The deferred half of a [`PageTable::map_range`]: every allocator
/// interaction has already happened (interior nodes created, data frames
/// reserved), but the leaf PTE writes — the bulk of premap time at
/// paper-scale footprints — are recorded as segments to be installed
/// later by [`PageTable::apply_plan`], possibly on another thread.
#[derive(Debug, Clone, Default)]
pub struct RangePlan {
    pub(crate) segments: Vec<PlanSegment>,
    /// Fault totals, identical to what the combined call would return.
    pub outcome: RangeMapOutcome,
}

impl RangePlan {
    /// Records one run of `count` absent pages (all 4 KB minor faults).
    pub(crate) fn push(&mut self, node: usize, start: usize, count: usize, first_pfn: Pfn) {
        self.segments.push(PlanSegment {
            node: node as u32,
            start: start as u32,
            count: count as u32,
            first_pfn: first_pfn.as_u64(),
        });
        self.outcome.minor_4k += count as u64;
    }

    /// Number of pages the plan will install.
    #[must_use]
    pub fn pages(&self) -> u64 {
        self.segments.iter().map(|s| u64::from(s.count)).sum()
    }
}

/// A translation structure mapping virtual to physical pages.
///
/// Implementations must uphold two invariants relied on by the simulator
/// and checked by the property tests in `tests/`:
///
/// * After `map(vpn, ..)` returns, `translate(vpn)` is `Some` and stable.
/// * `walk_path(vpn)` is `Some` exactly when `translate(vpn)` is, and all
///   step addresses lie in frames tagged [`FramePurpose::PageTable`]
///   (so the bypass policy can recognise them).
///
/// [`FramePurpose::PageTable`]: crate::alloc::FramePurpose::PageTable
pub trait PageTable {
    /// Which design this is.
    fn kind(&self) -> PageTableKind;

    /// Looks up a translation without side effects.
    fn translate(&self, vpn: Vpn) -> Option<Translation>;

    /// Ensures `vpn` is mapped, allocating frames/nodes as needed.
    fn map(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> MapOutcome;

    /// Maps `pages` consecutive pages starting at `first`, returning the
    /// aggregated fault counts. Must behave exactly like calling
    /// [`Self::map`] per page in ascending order (same allocator call
    /// sequence, same resulting structure); the built-in designs override
    /// it to descend once per region instead of once per page, which is
    /// what makes the simulator's init phase (millions of `map`s) cheap.
    fn map_range(&mut self, first: Vpn, pages: u64, alloc: &mut FrameAllocator) -> RangeMapOutcome {
        let mut totals = RangeMapOutcome::default();
        for p in 0..pages {
            totals.absorb(self.map(first.add(p), alloc));
        }
        totals
    }

    /// The allocator half of [`Self::map_range`], with leaf installs
    /// deferred into the returned [`RangePlan`]. The allocator call
    /// sequence and fault totals are exactly those of `map_range`; the
    /// mapping only becomes visible once [`Self::apply_plan`] runs.
    ///
    /// Returns `None` when the design cannot split the two halves (the
    /// elastic cuckoo table interleaves allocation with insertion during
    /// resizes; huge pages fall back based on live allocator state) —
    /// callers must then use plain `map_range`.
    ///
    /// Until the plan is applied, the planned pages still read as
    /// unmapped, so planning the same page twice would double-allocate:
    /// callers are responsible for only batching plans over disjoint
    /// ranges (the machine's premap checks this and falls back).
    fn plan_range(
        &mut self,
        first: Vpn,
        pages: u64,
        alloc: &mut FrameAllocator,
    ) -> Option<RangePlan> {
        let _ = (first, pages, alloc);
        None
    }

    /// Installs the leaf PTEs recorded by an earlier [`Self::plan_range`]
    /// on this same table. Pure memory writes — no allocator access — so
    /// per-table apply calls can run in parallel across tables.
    ///
    /// # Panics
    ///
    /// The default panics: it must only be called on designs whose
    /// `plan_range` returns plans.
    fn apply_plan(&mut self, plan: &RangePlan) {
        let _ = plan;
        unreachable!("apply_plan called on a design without plan_range support");
    }

    /// The physical PTE accesses a hardware walk for `vpn` performs, or
    /// `None` if unmapped.
    ///
    /// Paths are bounded by [`crate::walk::MAX_WALK_STEPS`] steps
    /// (4-level radix, or one probe per hash way up to
    /// `PtLevel::MAX_HASH_WAYS`); [`WalkPath::push`] panics beyond that,
    /// so custom designs needing deeper walks must raise the bound.
    fn walk_path(&self, vpn: Vpn) -> Option<WalkPath>;

    /// [`Self::translate`] and [`Self::walk_path`] in one call — the
    /// simulator needs both on every TLB miss, and a combined lookup lets
    /// implementations descend the table once instead of three times
    /// (`walk_path` typically re-translates internally). The default is
    /// the two separate calls; the built-in designs override it with a
    /// single-descent version. Must equal
    /// `(self.translate(vpn)?, self.walk_path(vpn)?)` exactly.
    fn translate_and_walk(&self, vpn: Vpn) -> Option<(Translation, WalkPath)> {
        Some((self.translate(vpn)?, self.walk_path(vpn)?))
    }

    /// Current occupancy of every level.
    fn occupancy(&self) -> OccupancyReport;

    /// Number of distinct pages currently mapped (huge pages count once).
    fn mapped_pages(&self) -> u64;

    /// Bytes of physical memory consumed by table nodes themselves.
    fn table_bytes(&self) -> u64;

    /// Drains pending OS bookkeeping work, in entries processed since the
    /// last call (e.g. PTEs moved by an elastic-cuckoo resize). The
    /// simulator charges OS latency per entry. Defaults to none.
    fn take_pending_os_work(&mut self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_display_matches_paper_names() {
        assert_eq!(PageTableKind::Radix4.to_string(), "Radix");
        assert_eq!(PageTableKind::ElasticCuckoo.to_string(), "ECH");
        assert_eq!(PageTableKind::HugePage.to_string(), "HugePage");
        assert_eq!(PageTableKind::FlattenedL2L1.to_string(), "NDPage-Flat");
    }

    #[test]
    fn already_mapped_outcome() {
        let o = MapOutcome::already_mapped();
        assert!(!o.newly_mapped);
        assert!(o.fault.is_none());
        assert_eq!(o.tables_allocated, 0);
    }
}
