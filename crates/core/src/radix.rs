//! The conventional x86-64 4-level radix page table (the paper's baseline).

use crate::alloc::{FrameAllocator, FramePurpose};
use crate::arena::{Node, PteArena};
use crate::occupancy::{LevelOccupancy, OccupancyReport};
use crate::pte::Pte;
use crate::table::{
    FaultKind, MapOutcome, PageTable, PageTableKind, RangeMapOutcome, RangePlan, Translation,
};
use crate::walk::{WalkPath, WalkStep};
use ndp_types::addr::{ENTRIES_PER_NODE, PAGE_SIZE};
#[cfg(feature = "legacy_hotpath")]
use ndp_types::FastMap;
use ndp_types::{PageSize, Pfn, PtLevel, Vpn};

const NODE_ENTRIES: usize = ENTRIES_PER_NODE as usize;

/// The baseline 4-level radix tree ("Radix" in Figs 12–14).
///
/// Node entries live in a contiguous [`PteArena`] slab; each node also owns
/// a real physical frame from the [`FrameAllocator`] so that
/// [`walk_path`](PageTable::walk_path) reports genuine PTE addresses (which
/// the DRAM model banks on — literally). Descents follow the arena's
/// child-handle lane instead of a frame→node hash map.
#[derive(Debug, Clone)]
pub struct Radix4 {
    arena: PteArena,
    nodes: Vec<Node>,
    /// The seed's frame→node map, used for descent under `legacy_hotpath`
    /// in place of the arena's child-handle lane.
    #[cfg(feature = "legacy_hotpath")]
    by_frame: FastMap<u64, usize>,
    /// per-level node lists: [L4, L3, L2, L1] indices.
    per_level: [Vec<usize>; 4],
    root: usize,
    mapped: u64,
}

impl Radix4 {
    /// Creates an empty table, allocating the root node.
    #[must_use]
    pub fn new(alloc: &mut FrameAllocator) -> Self {
        let mut t = Radix4 {
            arena: PteArena::new(),
            nodes: Vec::new(),
            #[cfg(feature = "legacy_hotpath")]
            by_frame: FastMap::default(),
            per_level: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            root: 0,
            mapped: 0,
        };
        t.root = t.new_node(alloc, 0);
        t
    }

    fn new_node(&mut self, alloc: &mut FrameAllocator, level_idx: usize) -> usize {
        let frame = alloc.alloc_frame(FramePurpose::PageTable);
        let idx = self.nodes.len();
        // L1 nodes hold only leaves; no child lane needed.
        let track_kids = level_idx < 3;
        self.nodes
            .push(Node::new(frame, NODE_ENTRIES, track_kids, &mut self.arena));
        #[cfg(feature = "legacy_hotpath")]
        self.by_frame.insert(frame.as_u64(), idx);
        self.per_level[level_idx].push(idx);
        idx
    }

    /// Resolves the child node a present interior PTE points to: a direct
    /// child-handle load, or the seed's frame-keyed hash probe under
    /// `legacy_hotpath`.
    #[cfg(not(feature = "legacy_hotpath"))]
    #[inline]
    fn child_of(&self, node: usize, idx: usize, _pte: Pte) -> Option<usize> {
        self.nodes[node].kid(&self.arena, idx)
    }

    #[cfg(feature = "legacy_hotpath")]
    #[inline]
    fn child_of(&self, _node: usize, _idx: usize, pte: Pte) -> Option<usize> {
        self.by_frame.get(&pte.pfn().as_u64()).copied()
    }

    /// Descends to (creating as needed) the L1 node for `vpn`, returning
    /// its arena index and how many interior nodes were allocated.
    fn leaf_node_for(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> (usize, u32) {
        let mut node = self.root;
        let mut tables_allocated = 0;
        for (depth, level) in PtLevel::RADIX_WALK.iter().enumerate().take(3) {
            let idx = vpn.index_for(*level);
            let pte = self.nodes[node].get(&self.arena, idx);
            node = if pte.is_present() {
                self.child_of(node, idx, pte)
                    .expect("interior PTE links its child node")
            } else {
                let child = self.new_node(alloc, depth + 1);
                tables_allocated += 1;
                let child_frame = self.nodes[child].frame;
                self.nodes[node].set(&mut self.arena, idx, Pte::next(child_frame));
                self.nodes[node].set_kid(&mut self.arena, idx, child);
                child
            };
        }
        (node, tables_allocated)
    }

    /// Scans `pages` from `first` once, creating interior nodes as needed
    /// and reserving backing frames for maximal runs of absent pages
    /// (bulk-bumped, preserving the per-page allocator call sequence);
    /// leaf installs are recorded as plan segments. Shared by `map_range`
    /// (which applies immediately) and `plan_range` (which defers).
    fn plan_runs(&mut self, first: Vpn, pages: u64, alloc: &mut FrameAllocator) -> RangePlan {
        let mut plan = RangePlan::default();
        let mut cached: Option<(Vpn, usize)> = None;
        let mut p = 0u64;
        while p < pages {
            let vpn = first.add(p);
            let region = vpn.huge_aligned();
            let leaf = match cached {
                Some((base, node)) if base == region => node,
                _ => {
                    let (node, _) = self.leaf_node_for(vpn, alloc);
                    cached = Some((region, node));
                    node
                }
            };
            let idx = vpn.l1_index();
            if self.nodes[leaf].get(&self.arena, idx).is_present() {
                p += 1;
                continue;
            }
            // Maximal run of absent pages within this L1 node: the
            // per-page loop would allocate one frame per iteration with
            // nothing in between, so the frames are consecutive either way.
            let max_run = (pages - p).min((NODE_ENTRIES - idx) as u64) as usize;
            let mut run = 1;
            while run < max_run && !self.nodes[leaf].get(&self.arena, idx + run).is_present() {
                run += 1;
            }
            let first_pfn = alloc.alloc_data_frames(run as u64);
            plan.push(leaf, idx, run, first_pfn);
            p += run as u64;
        }
        plan
    }

    fn install_plan(&mut self, plan: &RangePlan) {
        for seg in &plan.segments {
            self.nodes[seg.node as usize].set_leaf_run(
                &mut self.arena,
                seg.start as usize,
                seg.count as usize,
                |k| Pfn::new(seg.first_pfn + k as u64),
            );
            self.mapped += u64::from(seg.count);
        }
    }

    /// Walks down to the node at `level_idx` (0=L4 .. 3=L1) for `vpn`,
    /// returning its arena index, or `None` where the path is unmapped.
    fn descend(&self, vpn: Vpn, level_idx: usize) -> Option<usize> {
        let mut node = self.root;
        for (depth, level) in PtLevel::RADIX_WALK.iter().enumerate().take(level_idx) {
            let idx = vpn.index_for(*level);
            let pte = self.nodes[node].get(&self.arena, idx);
            if !pte.is_present() {
                return None;
            }
            let _ = depth;
            node = self.child_of(node, idx, pte)?;
        }
        Some(node)
    }
}

impl PageTable for Radix4 {
    fn kind(&self) -> PageTableKind {
        PageTableKind::Radix4
    }

    fn translate(&self, vpn: Vpn) -> Option<Translation> {
        let leaf = self.descend(vpn, 3)?;
        let pte = self.nodes[leaf].get(&self.arena, vpn.l1_index());
        pte.is_present().then(|| Translation {
            pfn: pte.pfn(),
            size: PageSize::Size4K,
        })
    }

    fn map(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> MapOutcome {
        let (node, tables_allocated) = self.leaf_node_for(vpn, alloc);
        let l1 = vpn.l1_index();
        if self.nodes[node].get(&self.arena, l1).is_present() {
            return MapOutcome::already_mapped();
        }
        let frame = alloc.alloc_frame(FramePurpose::Data);
        self.nodes[node].set(&mut self.arena, l1, Pte::leaf(frame));
        self.mapped += 1;
        MapOutcome {
            newly_mapped: true,
            fault: Some(FaultKind::Minor4K),
            tables_allocated,
        }
    }

    fn map_range(&mut self, first: Vpn, pages: u64, alloc: &mut FrameAllocator) -> RangeMapOutcome {
        // One descent per touched 2 MB region and one frame-allocator bump
        // per run of absent pages, instead of one of each per page; the
        // allocator call sequence and resulting structure match the
        // per-page loop exactly (pages are ascending, so a region's
        // interior nodes are created at its first page either way).
        let plan = self.plan_runs(first, pages, alloc);
        self.install_plan(&plan);
        plan.outcome
    }

    fn plan_range(
        &mut self,
        first: Vpn,
        pages: u64,
        alloc: &mut FrameAllocator,
    ) -> Option<RangePlan> {
        Some(self.plan_runs(first, pages, alloc))
    }

    fn apply_plan(&mut self, plan: &RangePlan) {
        self.install_plan(plan);
    }

    fn walk_path(&self, vpn: Vpn) -> Option<WalkPath> {
        self.translate_and_walk(vpn).map(|(_, path)| path)
    }

    fn translate_and_walk(&self, vpn: Vpn) -> Option<(Translation, WalkPath)> {
        // Single descent serving both results (the default would descend
        // three times); per-op hot path.
        let mut path = WalkPath::empty();
        let mut node = self.root;
        let mut leaf = Pte::NULL;
        for (group, level) in PtLevel::RADIX_WALK.iter().enumerate() {
            let idx = vpn.index_for(*level);
            path.push(WalkStep {
                addr: self.nodes[node].frame.entry_addr(idx),
                level: *level,
                group: group as u8,
            });
            let pte = self.nodes[node].get(&self.arena, idx);
            if !pte.is_present() {
                return None;
            }
            if group < 3 {
                node = self.child_of(node, idx, pte)?;
            } else {
                leaf = pte;
            }
        }
        Some((
            Translation {
                pfn: leaf.pfn(),
                size: PageSize::Size4K,
            },
            path,
        ))
    }

    fn occupancy(&self) -> OccupancyReport {
        let mut report = OccupancyReport::new();
        for (depth, level) in PtLevel::RADIX_WALK.iter().enumerate() {
            let nodes = &self.per_level[depth];
            let valid: u64 = nodes.iter().map(|&i| u64::from(self.nodes[i].valid)).sum();
            report.set(
                *level,
                LevelOccupancy {
                    nodes: nodes.len() as u64,
                    valid_entries: valid,
                    capacity: nodes.len() as u64 * ENTRIES_PER_NODE,
                },
            );
        }
        report
    }

    fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    fn table_bytes(&self) -> u64 {
        self.nodes.len() as u64 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::VirtAddr;

    fn setup() -> (FrameAllocator, Radix4) {
        let mut alloc = FrameAllocator::new(1 << 30);
        let table = Radix4::new(&mut alloc);
        (alloc, table)
    }

    #[test]
    fn unmapped_translates_to_none() {
        let (_, t) = setup();
        assert!(t.translate(Vpn::new(0x1234)).is_none());
        assert!(t.walk_path(Vpn::new(0x1234)).is_none());
        assert_eq!(t.mapped_pages(), 0);
    }

    #[test]
    fn map_then_translate() {
        let (mut alloc, mut t) = setup();
        let vpn = VirtAddr::new(0x7f12_3456_7000).vpn();
        let o = t.map(vpn, &mut alloc);
        assert!(o.newly_mapped);
        assert_eq!(o.fault, Some(FaultKind::Minor4K));
        assert_eq!(o.tables_allocated, 3); // fresh L3, L2, L1 nodes
        let tr = t.translate(vpn).unwrap();
        assert_eq!(tr.size, PageSize::Size4K);
        assert_eq!(t.mapped_pages(), 1);
    }

    #[test]
    fn remap_is_idempotent() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(42);
        let first = t.map(vpn, &mut alloc).fault;
        let tr1 = t.translate(vpn).unwrap();
        let again = t.map(vpn, &mut alloc);
        assert!(!again.newly_mapped);
        assert_eq!(first, Some(FaultKind::Minor4K));
        assert_eq!(t.translate(vpn).unwrap(), tr1);
        assert_eq!(t.mapped_pages(), 1);
    }

    #[test]
    fn neighbours_share_interior_nodes() {
        let (mut alloc, mut t) = setup();
        let a = Vpn::new(0x100);
        let b = Vpn::new(0x101); // same L1 node
        let o1 = t.map(a, &mut alloc);
        let o2 = t.map(b, &mut alloc);
        assert_eq!(o1.tables_allocated, 3);
        assert_eq!(o2.tables_allocated, 0);
        assert_ne!(t.translate(a).unwrap().pfn, t.translate(b).unwrap().pfn);
    }

    #[test]
    fn walk_has_four_sequential_levels() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(0xabcdef);
        t.map(vpn, &mut alloc);
        let path = t.walk_path(vpn).unwrap();
        assert_eq!(path.len(), 4);
        assert_eq!(path.sequential_depth(), 4);
        let levels: Vec<PtLevel> = path.steps().iter().map(|s| s.level).collect();
        assert_eq!(levels, PtLevel::RADIX_WALK.to_vec());
    }

    #[test]
    fn walk_addresses_are_in_table_frames() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(0x7777);
        t.map(vpn, &mut alloc);
        for step in t.walk_path(vpn).unwrap().steps() {
            assert!(alloc.is_table_frame(step.addr.pfn()), "step {step:?}");
        }
    }

    #[test]
    fn occupancy_dense_2mb_region_fills_l1() {
        let (mut alloc, mut t) = setup();
        // Map an entire 2 MB region: 512 consecutive pages.
        for i in 0..512 {
            t.map(Vpn::new(i), &mut alloc);
        }
        let occ = t.occupancy();
        let l1 = occ.level(PtLevel::L1).unwrap();
        assert_eq!(l1.nodes, 1);
        assert!((l1.rate() - 1.0).abs() < 1e-12, "L1 fully occupied");
        let l4 = occ.level(PtLevel::L4).unwrap();
        assert!(l4.rate() < 0.01, "root nearly empty");
    }

    #[test]
    fn table_bytes_counts_nodes() {
        let (mut alloc, mut t) = setup();
        assert_eq!(t.table_bytes(), PAGE_SIZE); // root only
        t.map(Vpn::new(0), &mut alloc);
        assert_eq!(t.table_bytes(), 4 * PAGE_SIZE);
    }

    #[test]
    fn map_range_matches_per_page_maps() {
        let (mut alloc_a, mut ranged) = setup();
        let (mut alloc_b, mut paged) = setup();
        // Two ranges with a gap, the second re-mapping part of the first
        // (so the present-page skip path is exercised mid-range).
        let spans = [(0u64, 700u64), (2000, 300), (400, 400)];
        let mut totals_a = RangeMapOutcome::default();
        let mut totals_b = RangeMapOutcome::default();
        for (start, pages) in spans {
            totals_a.absorb_range(ranged.map_range(Vpn::new(start), pages, &mut alloc_a));
            for p in 0..pages {
                totals_b.absorb(paged.map(Vpn::new(start + p), &mut alloc_b));
            }
        }
        assert_eq!(totals_a, totals_b);
        assert_eq!(alloc_a.frames_used(), alloc_b.frames_used());
        assert_eq!(alloc_a.contig_free_bytes(), alloc_b.contig_free_bytes());
        assert_eq!(ranged.mapped_pages(), paged.mapped_pages());
        for vpn in (0..800).chain(1990..2310).map(Vpn::new) {
            assert_eq!(ranged.translate(vpn), paged.translate(vpn), "{vpn:?}");
        }
    }

    #[test]
    fn plan_then_apply_matches_map_range() {
        let (mut alloc_a, mut planned) = setup();
        let (mut alloc_b, mut direct) = setup();
        let first = Vpn::new(0x3f0); // straddles a 2 MB region boundary
        let plan = planned
            .plan_range(first, 1000, &mut alloc_a)
            .expect("radix plans");
        // Allocator effects happen at plan time; visibility at apply time.
        assert_eq!(alloc_a.frames_used(), {
            direct.map_range(first, 1000, &mut alloc_b);
            alloc_b.frames_used()
        });
        assert!(
            planned.translate(first).is_none(),
            "not visible before apply"
        );
        assert_eq!(planned.mapped_pages(), 0);
        planned.apply_plan(&plan);
        assert_eq!(plan.outcome.minor_4k, 1000);
        assert_eq!(plan.pages(), 1000);
        assert_eq!(planned.mapped_pages(), direct.mapped_pages());
        for p in 0..1000 {
            let vpn = first.add(p);
            assert_eq!(planned.translate(vpn), direct.translate(vpn), "{vpn:?}");
        }
    }

    /// Maps enough pages through one table that its arena crosses the
    /// default slab capacity (2²¹ entries ≈ 4100 radix nodes) — the
    /// boundary that replaced the old single-slab arena's `u32`-offset
    /// panic ("PTE slab outgrew u32 offsets"), whose literal 2³²-entry
    /// trigger needs ~34 GB of slab and is exercised at reduced capacity
    /// in `arena::tests` instead.
    #[test]
    fn arena_crosses_default_slab_capacity_under_map_range() {
        let pages = (1u64 << 21) + 512;
        // Frames: `pages` data + ~4110 table + slack; 4 KB each.
        let mut alloc = FrameAllocator::new((pages + 8192) * PAGE_SIZE);
        let mut t = Radix4::new(&mut alloc);
        let outcome = t.map_range(Vpn::new(0), pages, &mut alloc);
        assert_eq!(outcome.minor_4k, pages);
        assert_eq!(t.mapped_pages(), pages);
        for vpn in [0, 1 << 20, (1 << 21) - 1, pages - 1].map(Vpn::new) {
            let tr = t.translate(vpn).expect("mapped");
            assert_eq!(t.walk_path(vpn).map(|p| p.len()), Some(4), "{vpn:?}");
            assert!(tr.pfn.as_u64() > 0);
        }
        assert!(t.translate(Vpn::new(pages)).is_none());
    }

    #[test]
    fn distinct_pages_get_distinct_frames() {
        let (mut alloc, mut t) = setup();
        let mut seen = ndp_types::FastSet::default();
        for i in 0..1000u64 {
            let vpn = Vpn::new(i * 7919); // scattered
            t.map(vpn, &mut alloc);
            assert!(seen.insert(t.translate(vpn).unwrap().pfn));
        }
    }
}
