#![forbid(unsafe_code)]
//! # NDPage: tailored page tables for near-data processing
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Jiang, Tu, An — *NDPage: Efficient Address Translation for Near-Data
//! Processing Architectures via Tailored Page Table*, DATE 2025):
//!
//! 1. **A metadata L1-cache-bypass policy** ([`bypass::BypassPolicy`]) —
//!    page-table-entry fetches are marked non-cacheable in the NDP L1,
//!    modelling the paper's PFLD-style special loads over OS-marked,
//!    64 B-aligned PTE regions (§V-A).
//! 2. **A flattened L2/L1 page table** ([`flat::FlattenedL2L1`]) — the last
//!    two radix levels merge into a single 2 MB node with 2^18 entries,
//!    shortening every walk from 4 to 3 sequential accesses while keeping
//!    4 KB pages (§V-B).
//!
//! To evaluate them against the paper's baselines, the crate also implements
//! every comparison design behind one [`table::PageTable`] trait:
//!
//! * [`radix::Radix4`] — the conventional x86-64 4-level radix table;
//! * [`cuckoo::ElasticCuckooTable`] — the state-of-the-art hashed design
//!   (ECH) with parallel way probes and elastic resizing;
//! * [`huge::HugePageTable`] — 2 MB transparent huge pages with a
//!   contiguity-aware allocator and 4 KB fallback;
//! * [`flat_top::FlattenedL4L3`] — a counterpoint that merges the *top*
//!   two levels instead, showing why the paper's bottom-merge is the
//!   right one.
//!
//! A shared [`alloc::FrameAllocator`] hands out physical frames, tags
//! page-table frames (so the bypass policy can recognise metadata), and
//! models physical-contiguity exhaustion — the effect behind Huge Page's
//! 8-core collapse in Fig 14.
//!
//! # Examples
//!
//! ```
//! use ndpage::alloc::FrameAllocator;
//! use ndpage::flat::FlattenedL2L1;
//! use ndpage::table::PageTable;
//! use ndp_types::VirtAddr;
//!
//! let mut alloc = FrameAllocator::new(16 << 30);
//! let mut pt = FlattenedL2L1::new(&mut alloc);
//! let vpn = VirtAddr::new(0x7f00_2000_1000).vpn();
//! pt.map(vpn, &mut alloc);
//! let walk = pt.walk_path(vpn).expect("mapped");
//! assert_eq!(walk.sequential_depth(), 3); // vs 4 for a radix table
//! ```

pub mod alloc;
pub(crate) mod arena;
pub mod bypass;
pub mod cuckoo;
pub mod flat;
pub mod flat_top;
pub mod huge;
pub mod mechanism;
pub mod occupancy;
pub mod pte;
pub mod radix;
pub mod table;
pub mod walk;

pub use alloc::FrameAllocator;
pub use bypass::BypassPolicy;
pub use mechanism::{Mechanism, PageTableImpl};
pub use table::{PageTable, PageTableKind, Translation};
pub use walk::{WalkPath, WalkStep};
