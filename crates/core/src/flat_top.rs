//! A counterpoint design: flattening the *top* two radix levels instead
//! of the bottom two.
//!
//! §V-B observes that "flattening uses the radix nature of the page table
//! to naturally merge levels into single, larger levels" — which leaves a
//! design choice: *which* pair of levels to merge. [`FlattenedL4L3`]
//! merges PL4 and PL3 into one 2 MB root node (2^18 entries, each mapping
//! 1 GB), keeping conventional PL2/PL1 nodes below.
//!
//! Walks are 3 sequential steps, like NDPage's [`FlattenedL2L1`] — but the
//! step this design eliminates is one the PL4/PL3 page-walk caches already
//! absorbed (~100% hit rates, §V-C), while the two steps it *keeps* are
//! exactly the poorly-cached PL2/PL1 accesses. Measured against NDPage in
//! `tests/`, this design recovers almost none of Radix's walk cost —
//! quantitative evidence for the paper's choice to merge the *bottom*
//! levels, where occupancy is full and PWCs fail.
//!
//! [`FlattenedL2L1`]: crate::flat::FlattenedL2L1

use crate::alloc::{FrameAllocator, FramePurpose};
use crate::arena::{Node, PteArena};
use crate::occupancy::{LevelOccupancy, OccupancyReport};
use crate::pte::Pte;
use crate::table::{FaultKind, MapOutcome, PageTable, PageTableKind, Translation};
use crate::walk::{WalkPath, WalkStep};
use ndp_types::addr::{ENTRIES_PER_FLAT_NODE, ENTRIES_PER_NODE, LEVEL_BITS, PAGE_SIZE};
#[cfg(feature = "legacy_hotpath")]
use ndp_types::FastMap;
use ndp_types::{PageSize, PtLevel, Vpn};

const NODE_ENTRIES: usize = ENTRIES_PER_NODE as usize;
const FLAT_ENTRIES: usize = ENTRIES_PER_FLAT_NODE as usize;
const FLAT_NODE_FRAMES: u64 = (ENTRIES_PER_FLAT_NODE * 8) / PAGE_SIZE;

/// Index into the merged L4/L3 node: the top 18 translation bits.
fn flat_l4l3_index(vpn: Vpn) -> usize {
    ((vpn.as_u64() >> (2 * LEVEL_BITS)) & (ENTRIES_PER_FLAT_NODE - 1)) as usize
}

/// The top-flattened 3-level table: merged L4/L3 root, then PL2, then PL1.
#[derive(Debug, Clone)]
pub struct FlattenedL4L3 {
    arena: PteArena,
    /// The single merged root node (2^18 entries).
    root: Node,
    /// PL2 and PL1 nodes.
    nodes: Vec<Node>,
    /// The seed's frame→node map, used for descent under `legacy_hotpath`
    /// in place of the arena's child-handle lane.
    #[cfg(feature = "legacy_hotpath")]
    by_frame: FastMap<u64, usize>,
    l2_nodes: Vec<usize>,
    l1_nodes: Vec<usize>,
    mapped: u64,
}

impl FlattenedL4L3 {
    /// Creates an empty table, reserving the 2 MB root node.
    #[must_use]
    pub fn new(alloc: &mut FrameAllocator) -> Self {
        let frame = alloc
            .alloc_contiguous(FLAT_NODE_FRAMES, FramePurpose::PageTable)
            .expect("page-table reservations always succeed");
        let mut arena = PteArena::new();
        let root = Node::new(frame, FLAT_ENTRIES, true, &mut arena);
        FlattenedL4L3 {
            arena,
            root,
            nodes: Vec::new(),
            #[cfg(feature = "legacy_hotpath")]
            by_frame: FastMap::default(),
            l2_nodes: Vec::new(),
            l1_nodes: Vec::new(),
            mapped: 0,
        }
    }

    fn new_node(&mut self, alloc: &mut FrameAllocator, is_l2: bool) -> usize {
        let frame = alloc.alloc_frame(FramePurpose::PageTable);
        let idx = self.nodes.len();
        // L1 nodes hold only leaves; no child lane needed.
        self.nodes
            .push(Node::new(frame, NODE_ENTRIES, is_l2, &mut self.arena));
        #[cfg(feature = "legacy_hotpath")]
        self.by_frame.insert(frame.as_u64(), idx);
        if is_l2 {
            self.l2_nodes.push(idx);
        } else {
            self.l1_nodes.push(idx);
        }
        idx
    }

    /// Resolves the PL2 node a present root PTE points to.
    #[cfg(not(feature = "legacy_hotpath"))]
    #[inline]
    fn root_child(&self, ri: usize, _pte: Pte) -> Option<usize> {
        self.root.kid(&self.arena, ri)
    }

    #[cfg(feature = "legacy_hotpath")]
    #[inline]
    fn root_child(&self, _ri: usize, pte: Pte) -> Option<usize> {
        self.by_frame.get(&pte.pfn().as_u64()).copied()
    }

    /// Resolves the PL1 node a present PL2 PTE points to.
    #[cfg(not(feature = "legacy_hotpath"))]
    #[inline]
    fn child_of(&self, node: usize, idx: usize, _pte: Pte) -> Option<usize> {
        self.nodes[node].kid(&self.arena, idx)
    }

    #[cfg(feature = "legacy_hotpath")]
    #[inline]
    fn child_of(&self, _node: usize, _idx: usize, pte: Pte) -> Option<usize> {
        self.by_frame.get(&pte.pfn().as_u64()).copied()
    }

    fn descend(&self, vpn: Vpn) -> Option<(usize, usize)> {
        let ri = flat_l4l3_index(vpn);
        let re = self.root.get(&self.arena, ri);
        if !re.is_present() {
            return None;
        }
        let l2 = self.root_child(ri, re)?;
        let l2_idx = vpn.l2_index();
        let l2e = self.nodes[l2].get(&self.arena, l2_idx);
        if !l2e.is_present() {
            return None;
        }
        let l1 = self.child_of(l2, l2_idx, l2e)?;
        Some((l2, l1))
    }
}

impl PageTable for FlattenedL4L3 {
    fn kind(&self) -> PageTableKind {
        // Reported as the flattened family; `walk_path` levels distinguish
        // the variants for the walker and PWCs.
        PageTableKind::FlattenedL2L1
    }

    fn translate(&self, vpn: Vpn) -> Option<Translation> {
        let (_, l1) = self.descend(vpn)?;
        let pte = self.nodes[l1].get(&self.arena, vpn.l1_index());
        pte.is_present().then(|| Translation {
            pfn: pte.pfn(),
            size: PageSize::Size4K,
        })
    }

    fn map(&mut self, vpn: Vpn, alloc: &mut FrameAllocator) -> MapOutcome {
        let mut tables_allocated = 0;

        let ri = flat_l4l3_index(vpn);
        let re = self.root.get(&self.arena, ri);
        let l2 = if re.is_present() {
            self.root_child(ri, re).expect("root PTE links its L2 node")
        } else {
            let n = self.new_node(alloc, true);
            tables_allocated += 1;
            let f = self.nodes[n].frame;
            self.root.set(&mut self.arena, ri, Pte::next_flattened(f));
            self.root.set_kid(&mut self.arena, ri, n);
            n
        };

        let l2_idx = vpn.l2_index();
        let l2e = self.nodes[l2].get(&self.arena, l2_idx);
        let l1 = if l2e.is_present() {
            self.child_of(l2, l2_idx, l2e)
                .expect("L2 PTE links its L1 node")
        } else {
            let n = self.new_node(alloc, false);
            tables_allocated += 1;
            let f = self.nodes[n].frame;
            self.nodes[l2].set(&mut self.arena, l2_idx, Pte::next(f));
            self.nodes[l2].set_kid(&mut self.arena, l2_idx, n);
            n
        };

        let l1_idx = vpn.l1_index();
        if self.nodes[l1].get(&self.arena, l1_idx).is_present() {
            return MapOutcome::already_mapped();
        }
        let frame = alloc.alloc_frame(FramePurpose::Data);
        self.nodes[l1].set(&mut self.arena, l1_idx, Pte::leaf(frame));
        self.mapped += 1;
        MapOutcome {
            newly_mapped: true,
            fault: Some(FaultKind::Minor4K),
            tables_allocated,
        }
    }

    fn walk_path(&self, vpn: Vpn) -> Option<WalkPath> {
        let (l2, l1) = self.descend(vpn)?;
        if !self.nodes[l1].get(&self.arena, vpn.l1_index()).is_present() {
            return None;
        }
        Some(WalkPath::of([
            // The merged root consumes the L4+L3 bits; its PWC tag must
            // cover the 18-bit prefix, which PtLevel::L3 provides.
            WalkStep {
                addr: self.root.frame.entry_addr(flat_l4l3_index(vpn)),
                level: PtLevel::L3,
                group: 0,
            },
            WalkStep {
                addr: self.nodes[l2].frame.entry_addr(vpn.l2_index()),
                level: PtLevel::L2,
                group: 1,
            },
            WalkStep {
                addr: self.nodes[l1].frame.entry_addr(vpn.l1_index()),
                level: PtLevel::L1,
                group: 2,
            },
        ]))
    }

    fn occupancy(&self) -> OccupancyReport {
        let mut report = OccupancyReport::new();
        report.set(
            PtLevel::L3,
            LevelOccupancy {
                nodes: 1,
                valid_entries: u64::from(self.root.valid),
                capacity: ENTRIES_PER_FLAT_NODE,
            },
        );
        let sum =
            |idxs: &[usize]| -> u64 { idxs.iter().map(|&i| u64::from(self.nodes[i].valid)).sum() };
        report.set(
            PtLevel::L2,
            LevelOccupancy {
                nodes: self.l2_nodes.len() as u64,
                valid_entries: sum(&self.l2_nodes),
                capacity: self.l2_nodes.len() as u64 * ENTRIES_PER_NODE,
            },
        );
        report.set(
            PtLevel::L1,
            LevelOccupancy {
                nodes: self.l1_nodes.len() as u64,
                valid_entries: sum(&self.l1_nodes),
                capacity: self.l1_nodes.len() as u64 * ENTRIES_PER_NODE,
            },
        );
        report
    }

    fn mapped_pages(&self) -> u64 {
        self.mapped
    }

    fn table_bytes(&self) -> u64 {
        FLAT_NODE_FRAMES * PAGE_SIZE + self.nodes.len() as u64 * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::FlattenedL2L1;

    fn setup() -> (FrameAllocator, FlattenedL4L3) {
        let mut alloc = FrameAllocator::new(2 << 30);
        let table = FlattenedL4L3::new(&mut alloc);
        (alloc, table)
    }

    #[test]
    fn map_translate_round_trip() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(0xdead_beef);
        assert!(t.map(vpn, &mut alloc).newly_mapped);
        assert!(t.translate(vpn).is_some());
        assert!(!t.map(vpn, &mut alloc).newly_mapped);
        assert_eq!(t.mapped_pages(), 1);
        assert!(t.translate(Vpn::new(1)).is_none());
    }

    #[test]
    fn walk_is_three_steps_but_keeps_bottom_levels() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(0x12_3456);
        t.map(vpn, &mut alloc);
        let path = t.walk_path(vpn).unwrap();
        assert_eq!(path.sequential_depth(), 3);
        let levels: Vec<PtLevel> = path.steps().iter().map(|s| s.level).collect();
        assert_eq!(levels, vec![PtLevel::L3, PtLevel::L2, PtLevel::L1]);
    }

    #[test]
    fn same_depth_as_bottom_flattened_but_different_levels() {
        let mut alloc = FrameAllocator::new(2 << 30);
        let mut top = FlattenedL4L3::new(&mut alloc);
        let mut bottom = FlattenedL2L1::new(&mut alloc);
        let vpn = Vpn::new(0xabcdef);
        top.map(vpn, &mut alloc);
        bottom.map(vpn, &mut alloc);
        let tp = top.walk_path(vpn).unwrap();
        let bp = bottom.walk_path(vpn).unwrap();
        assert_eq!(tp.sequential_depth(), bp.sequential_depth());
        // Top-flattening keeps the poorly-cached PL1 access...
        assert!(tp.steps().iter().any(|s| s.level == PtLevel::L1));
        // ...bottom-flattening eliminates it.
        assert!(bp.steps().iter().all(|s| s.level != PtLevel::L1));
    }

    #[test]
    fn root_spans_whole_address_space() {
        let (mut alloc, mut t) = setup();
        // VPNs a full 512 GB apart still live in the single root node.
        let a = Vpn::new(0);
        let b = Vpn::new((512u64 << 30) >> 12);
        t.map(a, &mut alloc);
        let o = t.map(b, &mut alloc);
        assert_eq!(o.tables_allocated, 2, "fresh PL2+PL1 but no new root");
        assert!(t.translate(a).is_some() && t.translate(b).is_some());
    }

    #[test]
    fn walk_addresses_in_table_frames() {
        let (mut alloc, mut t) = setup();
        let vpn = Vpn::new(0x7777);
        t.map(vpn, &mut alloc);
        for step in t.walk_path(vpn).unwrap().steps() {
            assert!(alloc.is_table_frame(step.addr.pfn()));
        }
    }

    #[test]
    fn occupancy_reports_merged_root_sparse() {
        let (mut alloc, mut t) = setup();
        for i in 0..512u64 {
            t.map(Vpn::new(i), &mut alloc);
        }
        let occ = t.occupancy();
        // One 2 MB region mapped: the giant root holds a single entry.
        assert!(occ.level(PtLevel::L3).unwrap().rate() < 1e-4);
        assert!((occ.level(PtLevel::L1).unwrap().rate() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_bytes_dominated_by_the_2mb_root() {
        let (mut alloc, mut t) = setup();
        t.map(Vpn::new(0), &mut alloc);
        assert_eq!(t.table_bytes(), 2 * 1024 * 1024 + 2 * PAGE_SIZE);
    }
}
