//! Walk paths: the sequence of physical PTE accesses a hardware page-table
//! walker performs for one translation.
//!
//! Page-table designs *describe* their walks as data ([`WalkPath`]); the MMU
//! crate's walker executes them against the timing model. Steps carry a
//! `group` id: steps sharing a group are issued in parallel (ECH probes all
//! cuckoo ways at once), while distinct groups serialise in order (radix
//! levels depend on each other's results).

use ndp_types::{InlineVec, PhysAddr, PtLevel};

/// Upper bound on steps in one walk: 4 radix levels or up to
/// [`PtLevel::MAX_HASH_WAYS`] parallel hash probes.
pub const MAX_WALK_STEPS: usize = PtLevel::MAX_HASH_WAYS;

/// One PTE access of a walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkStep {
    /// Physical address of the PTE (within a page-table frame).
    pub addr: PhysAddr,
    /// Which table level this access reads.
    pub level: PtLevel,
    /// Parallelism group: steps with equal `group` overlap; groups execute
    /// in ascending order.
    pub group: u8,
}

/// An ordered collection of [`WalkStep`]s describing one full walk.
///
/// Walks are bounded by [`MAX_WALK_STEPS`], so the steps live inline
/// (paths are built and discarded once per TLB miss — the seed's per-walk
/// `Vec` put two heap round-trips on that path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkPath {
    steps: InlineVec<WalkStep, MAX_WALK_STEPS>,
}

impl Default for WalkStep {
    fn default() -> Self {
        WalkStep {
            addr: PhysAddr::new(0),
            level: PtLevel::L4,
            group: 0,
        }
    }
}

impl WalkPath {
    /// An empty path (e.g. the Ideal mechanism performs no walk).
    #[must_use]
    pub fn empty() -> Self {
        WalkPath {
            steps: InlineVec::new(),
        }
    }

    /// Builds a path from steps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if groups are not ascending, and always if
    /// there are more than [`MAX_WALK_STEPS`] steps.
    #[must_use]
    pub fn new(steps: Vec<WalkStep>) -> Self {
        let mut path = WalkPath::empty();
        for step in steps {
            path.push(step);
        }
        path
    }

    /// Builds a path from a fixed array of steps without heap traffic —
    /// what the built-in designs use on the hot path.
    ///
    /// # Panics
    ///
    /// As for [`WalkPath::new`].
    #[must_use]
    pub fn of<const K: usize>(steps: [WalkStep; K]) -> Self {
        let mut path = WalkPath::empty();
        for step in steps {
            path.push(step);
        }
        path
    }

    /// Appends a step.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `step.group` precedes the last step's
    /// group, and always past [`MAX_WALK_STEPS`] steps.
    #[inline]
    pub fn push(&mut self, step: WalkStep) {
        debug_assert!(
            self.steps
                .last()
                .is_none_or(|prev| prev.group <= step.group),
            "walk groups must be non-decreasing"
        );
        self.steps.push(step);
    }

    /// The steps in issue order.
    #[must_use]
    pub fn steps(&self) -> &[WalkStep] {
        &self.steps
    }

    /// Total number of PTE accesses.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the path has no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of *sequential* memory rounds (distinct groups) — the metric
    /// the paper optimises from 4 to 3 (§V-B).
    #[must_use]
    pub fn sequential_depth(&self) -> usize {
        self.groups().count()
    }

    /// Iterates over the groups in order, yielding the slice of steps in
    /// each parallel group.
    pub fn groups(&self) -> impl Iterator<Item = &[WalkStep]> {
        GroupIter {
            steps: self.steps.as_slice(),
            pos: 0,
        }
    }
}

struct GroupIter<'a> {
    steps: &'a [WalkStep],
    pos: usize,
}

impl<'a> Iterator for GroupIter<'a> {
    type Item = &'a [WalkStep];

    fn next(&mut self) -> Option<&'a [WalkStep]> {
        if self.pos >= self.steps.len() {
            return None;
        }
        let group = self.steps[self.pos].group;
        let start = self.pos;
        while self.pos < self.steps.len() && self.steps[self.pos].group == group {
            self.pos += 1;
        }
        Some(&self.steps[start..self.pos])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(addr: u64, level: PtLevel, group: u8) -> WalkStep {
        WalkStep {
            addr: PhysAddr::new(addr),
            level,
            group,
        }
    }

    #[test]
    fn empty_path() {
        let p = WalkPath::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.sequential_depth(), 0);
        assert_eq!(p.groups().count(), 0);
    }

    #[test]
    fn radix_like_path_depth_4() {
        let p = WalkPath::new(vec![
            step(0x1000, PtLevel::L4, 0),
            step(0x2000, PtLevel::L3, 1),
            step(0x3000, PtLevel::L2, 2),
            step(0x4000, PtLevel::L1, 3),
        ]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.sequential_depth(), 4);
        assert_eq!(p.groups().count(), 4);
    }

    #[test]
    fn parallel_groups_collapse_depth() {
        let p = WalkPath::new(vec![
            step(0x1000, PtLevel::HashWay(0), 0),
            step(0x2000, PtLevel::HashWay(1), 0),
            step(0x3000, PtLevel::HashWay(2), 0),
        ]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.sequential_depth(), 1);
        let groups: Vec<usize> = p.groups().map(<[WalkStep]>::len).collect();
        assert_eq!(groups, vec![3]);
    }

    #[test]
    fn mixed_groups_iterate_in_order() {
        let p = WalkPath::new(vec![
            step(0x1, PtLevel::L4, 0),
            step(0x2, PtLevel::HashWay(0), 1),
            step(0x3, PtLevel::HashWay(1), 1),
        ]);
        let sizes: Vec<usize> = p.groups().map(<[WalkStep]>::len).collect();
        assert_eq!(sizes, vec![1, 2]);
        assert_eq!(p.sequential_depth(), 2);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    #[cfg(debug_assertions)]
    fn descending_groups_rejected() {
        let _ = WalkPath::new(vec![step(0x1, PtLevel::L4, 1), step(0x2, PtLevel::L3, 0)]);
    }
}
