//! Property-based tests of the page-table designs' core invariants
//! (the contract documented on [`ndpage::table::PageTable`]).

use proptest::collection::vec;
use proptest::prelude::*;
use ndp_types::{PtLevel, Vpn};
use ndpage::alloc::FrameAllocator;
use ndpage::table::PageTable;
use ndpage::Mechanism;
use std::collections::{HashMap, HashSet};

/// Arbitrary VPNs within a 16 GB virtual window (plenty of level variety).
fn arb_vpn() -> impl Strategy<Value = u64> {
    0u64..(16u64 << 30 >> 12)
}

fn for_each_design(
    mut f: impl FnMut(
        Mechanism,
        &mut FrameAllocator,
        Box<dyn PageTable>,
    ) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    for mechanism in Mechanism::REAL {
        let mut alloc = FrameAllocator::new(8 << 30);
        let table = mechanism.build_table(&mut alloc).expect("real mechanism");
        f(mechanism, &mut alloc, table)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After `map`, `translate` must succeed and keep returning the same
    /// frame forever (stability), for every design.
    #[test]
    fn translate_after_map_is_stable(vpns in vec(arb_vpn(), 1..200)) {
        for_each_design(|mechanism, alloc, mut table| {
            let mut first_seen: HashMap<u64, u64> = HashMap::new();
            for &raw in &vpns {
                let vpn = Vpn::new(raw);
                table.map(vpn, alloc);
                let tr = table.translate(vpn).unwrap_or_else(
                    || panic!("{mechanism}: mapped vpn {raw:#x} must translate"));
                let prev = first_seen.entry(raw).or_insert(tr.pfn.as_u64());
                prop_assert_eq!(
                    *prev, tr.pfn.as_u64(),
                    "{}: translation of {:#x} changed", mechanism, raw
                );
            }
            // Re-check everything at the end (no later map disturbed it).
            for (&raw, &pfn) in &first_seen {
                prop_assert_eq!(
                    table.translate(Vpn::new(raw)).unwrap().pfn.as_u64(),
                    pfn,
                    "{}: {:#x} disturbed by later maps", mechanism, raw
                );
            }
            Ok(())
        })?;
    }

    /// Distinct 4 KB pages never share a physical frame (within a design;
    /// huge pages share a *region* but distinct VPNs get distinct frames).
    #[test]
    fn distinct_vpns_get_distinct_frames(vpns in vec(arb_vpn(), 1..200)) {
        for_each_design(|mechanism, alloc, mut table| {
            let unique: HashSet<u64> = vpns.iter().copied().collect();
            let mut frames = HashSet::new();
            for &raw in &unique {
                let vpn = Vpn::new(raw);
                table.map(vpn, alloc);
                let pfn = table.translate(vpn).expect("mapped").pfn.as_u64();
                prop_assert!(
                    frames.insert(pfn),
                    "{}: frame {:#x} assigned twice", mechanism, pfn
                );
            }
            Ok(())
        })?;
    }

    /// Walk paths exist exactly for mapped pages, have non-decreasing
    /// parallel groups, and touch only frames tagged as page-table storage
    /// (the property the bypass hardware relies on).
    #[test]
    fn walk_paths_are_well_formed(vpns in vec(arb_vpn(), 1..150), probe in arb_vpn()) {
        for_each_design(|mechanism, alloc, mut table| {
            for &raw in &vpns {
                table.map(Vpn::new(raw), alloc);
            }
            for &raw in &vpns {
                let path = table.walk_path(Vpn::new(raw)).unwrap_or_else(
                    || panic!("{mechanism}: mapped vpn needs a walk path"));
                prop_assert!(!path.is_empty());
                prop_assert!(path.sequential_depth() <= path.len());
                for step in path.steps() {
                    prop_assert!(
                        alloc.is_table_frame(step.addr.pfn()),
                        "{}: walk step {:?} outside table frames", mechanism, step
                    );
                }
            }
            // A Huge Page design maps whole 2 MB regions, so only probe
            // VPNs whose region is untouched are guaranteed unmapped.
            let probe_region = probe >> 9;
            if vpns.iter().all(|v| (v >> 9) != probe_region) {
                prop_assert!(
                    table.translate(Vpn::new(probe)).is_none(),
                    "{}: unmapped vpn must not translate", mechanism
                );
                prop_assert!(table.walk_path(Vpn::new(probe)).is_none());
            }
            Ok(())
        })?;
    }

    /// Mapping is idempotent: re-mapping changes nothing and reports
    /// `newly_mapped == false`.
    #[test]
    fn remap_is_idempotent(vpns in vec(arb_vpn(), 1..100)) {
        for_each_design(|mechanism, alloc, mut table| {
            for &raw in &vpns {
                table.map(Vpn::new(raw), alloc);
            }
            let count = table.mapped_pages();
            for &raw in &vpns {
                let outcome = table.map(Vpn::new(raw), alloc);
                prop_assert!(
                    !outcome.newly_mapped,
                    "{}: remap of {:#x} claimed new mapping", mechanism, raw
                );
            }
            prop_assert_eq!(table.mapped_pages(), count, "{}", mechanism);
            Ok(())
        })?;
    }

    /// Occupancy accounting is consistent: valid entries never exceed
    /// capacity, and for the radix design the PL1 valid count equals the
    /// number of mapped pages.
    #[test]
    fn occupancy_is_consistent(vpns in vec(arb_vpn(), 1..200)) {
        for_each_design(|mechanism, alloc, mut table| {
            let unique: HashSet<u64> = vpns.iter().copied().collect();
            for &raw in &unique {
                table.map(Vpn::new(raw), alloc);
            }
            let occ = table.occupancy();
            for (level, lo) in occ.iter() {
                prop_assert!(
                    lo.valid_entries <= lo.capacity,
                    "{}: {} over-occupied", mechanism, level
                );
            }
            if mechanism == Mechanism::Radix {
                let l1 = occ.level(PtLevel::L1).expect("radix has PL1");
                prop_assert_eq!(l1.valid_entries, unique.len() as u64);
            }
            Ok(())
        })?;
    }

    /// The flattened design's walk is always exactly 3 sequential steps
    /// and the radix walk exactly 4 — the paper's headline structural
    /// difference — regardless of which pages are mapped.
    #[test]
    fn walk_depths_are_structural(vpns in vec(arb_vpn(), 1..100)) {
        let mut alloc = FrameAllocator::new(8 << 30);
        let mut flat = Mechanism::NdPage.build_table(&mut alloc).unwrap();
        let mut radix = Mechanism::Radix.build_table(&mut alloc).unwrap();
        let mut ech = Mechanism::Ech.build_table(&mut alloc).unwrap();
        for &raw in &vpns {
            let vpn = Vpn::new(raw);
            flat.map(vpn, &mut alloc);
            radix.map(vpn, &mut alloc);
            ech.map(vpn, &mut alloc);
            prop_assert_eq!(flat.walk_path(vpn).unwrap().sequential_depth(), 3);
            prop_assert_eq!(radix.walk_path(vpn).unwrap().sequential_depth(), 4);
            prop_assert_eq!(ech.walk_path(vpn).unwrap().sequential_depth(), 1);
        }
    }
}
