//! Property-based tests of the page-table designs' core invariants
//! (the contract documented on [`ndpage::table::PageTable`]).

use ndp_types::{PtLevel, Vpn};
use ndpage::alloc::FrameAllocator;
use ndpage::table::PageTable;
use ndpage::Mechanism;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Arbitrary VPNs within a 16 GB virtual window (plenty of level variety).
fn arb_vpn() -> impl Strategy<Value = u64> {
    0u64..(16u64 << 30 >> 12)
}

fn for_each_design(
    mut f: impl FnMut(Mechanism, &mut FrameAllocator, Box<dyn PageTable>) -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    for mechanism in Mechanism::REAL {
        let mut alloc = FrameAllocator::new(8 << 30);
        let table = mechanism.build_table(&mut alloc).expect("real mechanism");
        f(mechanism, &mut alloc, table)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// After `map`, `translate` must succeed and keep returning the same
    /// frame forever (stability), for every design.
    #[test]
    fn translate_after_map_is_stable(vpns in vec(arb_vpn(), 1..200)) {
        for_each_design(|mechanism, alloc, mut table| {
            let mut first_seen: HashMap<u64, u64> = HashMap::new();
            for &raw in &vpns {
                let vpn = Vpn::new(raw);
                table.map(vpn, alloc);
                let tr = table.translate(vpn).unwrap_or_else(
                    || panic!("{mechanism}: mapped vpn {raw:#x} must translate"));
                let prev = first_seen.entry(raw).or_insert(tr.pfn.as_u64());
                prop_assert_eq!(
                    *prev, tr.pfn.as_u64(),
                    "{}: translation of {:#x} changed", mechanism, raw
                );
            }
            // Re-check everything at the end (no later map disturbed it).
            for (&raw, &pfn) in &first_seen {
                prop_assert_eq!(
                    table.translate(Vpn::new(raw)).unwrap().pfn.as_u64(),
                    pfn,
                    "{}: {:#x} disturbed by later maps", mechanism, raw
                );
            }
            Ok(())
        })?;
    }

    /// Distinct 4 KB pages never share a physical frame (within a design;
    /// huge pages share a *region* but distinct VPNs get distinct frames).
    #[test]
    fn distinct_vpns_get_distinct_frames(vpns in vec(arb_vpn(), 1..200)) {
        for_each_design(|mechanism, alloc, mut table| {
            let unique: HashSet<u64> = vpns.iter().copied().collect();
            let mut frames = HashSet::new();
            for &raw in &unique {
                let vpn = Vpn::new(raw);
                table.map(vpn, alloc);
                let pfn = table.translate(vpn).expect("mapped").pfn.as_u64();
                prop_assert!(
                    frames.insert(pfn),
                    "{}: frame {:#x} assigned twice", mechanism, pfn
                );
            }
            Ok(())
        })?;
    }

    /// Walk paths exist exactly for mapped pages, have non-decreasing
    /// parallel groups, and touch only frames tagged as page-table storage
    /// (the property the bypass hardware relies on).
    #[test]
    fn walk_paths_are_well_formed(vpns in vec(arb_vpn(), 1..150), probe in arb_vpn()) {
        for_each_design(|mechanism, alloc, mut table| {
            for &raw in &vpns {
                table.map(Vpn::new(raw), alloc);
            }
            for &raw in &vpns {
                let path = table.walk_path(Vpn::new(raw)).unwrap_or_else(
                    || panic!("{mechanism}: mapped vpn needs a walk path"));
                prop_assert!(!path.is_empty());
                prop_assert!(path.sequential_depth() <= path.len());
                for step in path.steps() {
                    prop_assert!(
                        alloc.is_table_frame(step.addr.pfn()),
                        "{}: walk step {:?} outside table frames", mechanism, step
                    );
                }
            }
            // A Huge Page design maps whole 2 MB regions, so only probe
            // VPNs whose region is untouched are guaranteed unmapped.
            let probe_region = probe >> 9;
            if vpns.iter().all(|v| (v >> 9) != probe_region) {
                prop_assert!(
                    table.translate(Vpn::new(probe)).is_none(),
                    "{}: unmapped vpn must not translate", mechanism
                );
                prop_assert!(table.walk_path(Vpn::new(probe)).is_none());
            }
            Ok(())
        })?;
    }

    /// Range mapping must build exactly the structure per-page mapping
    /// builds — same translations, same fault totals, same occupancy —
    /// since the simulator's init phase relies on the fast path.
    #[test]
    fn map_range_matches_per_page_maps(
        starts in vec(arb_vpn(), 1..12),
        lens in vec(1u64..1200, 1..12),
    ) {
        for mechanism in Mechanism::REAL {
            let mut alloc_a = FrameAllocator::new(8 << 30);
            let mut alloc_b = FrameAllocator::new(8 << 30);
            let mut by_range = mechanism.build_table(&mut alloc_a).expect("real mechanism");
            let mut by_page = mechanism.build_table(&mut alloc_b).expect("real mechanism");
            let mut range_faults = (0u64, 0u64, 0u64);
            let mut page_faults = (0u64, 0u64, 0u64);
            for (&start, &len) in starts.iter().zip(&lens) {
                let first = Vpn::new(start);
                let o = by_range.map_range(first, len, &mut alloc_a);
                range_faults.0 += o.minor_4k;
                range_faults.1 += o.minor_2m;
                range_faults.2 += o.fallback;
                for p in 0..len {
                    match by_page.map(first.add(p), &mut alloc_b).fault {
                        Some(ndpage::table::FaultKind::Minor4K) => page_faults.0 += 1,
                        Some(ndpage::table::FaultKind::Minor2M) => page_faults.1 += 1,
                        Some(ndpage::table::FaultKind::Fallback4K) => page_faults.2 += 1,
                        None => {}
                    }
                }
            }
            prop_assert_eq!(range_faults, page_faults, "{}", mechanism);
            prop_assert_eq!(by_range.mapped_pages(), by_page.mapped_pages(), "{}", mechanism);
            prop_assert_eq!(by_range.table_bytes(), by_page.table_bytes(), "{}", mechanism);
            for (&start, &len) in starts.iter().zip(&lens) {
                for p in 0..len {
                    let vpn = Vpn::new(start).add(p);
                    prop_assert_eq!(
                        by_range.translate(vpn),
                        by_page.translate(vpn),
                        "{} vpn {:?}",
                        mechanism,
                        vpn
                    );
                }
            }
        }
    }

    /// The single-descent combined lookup must equal the two separate
    /// calls exactly — the simulator's hot path relies on it.
    #[test]
    fn combined_lookup_matches_separate_calls(vpns in vec(arb_vpn(), 1..150), probe in arb_vpn()) {
        for_each_design(|mechanism, alloc, mut table| {
            for &raw in &vpns {
                table.map(Vpn::new(raw), alloc);
            }
            for &raw in vpns.iter().chain([&probe]) {
                let vpn = Vpn::new(raw);
                let combined = table.translate_and_walk(vpn);
                let separate = table.translate(vpn).zip(table.walk_path(vpn));
                prop_assert_eq!(combined, separate, "{}", mechanism);
            }
            Ok(())
        })?;
    }

    /// Mapping is idempotent: re-mapping changes nothing and reports
    /// `newly_mapped == false`.
    #[test]
    fn remap_is_idempotent(vpns in vec(arb_vpn(), 1..100)) {
        for_each_design(|mechanism, alloc, mut table| {
            for &raw in &vpns {
                table.map(Vpn::new(raw), alloc);
            }
            let count = table.mapped_pages();
            for &raw in &vpns {
                let outcome = table.map(Vpn::new(raw), alloc);
                prop_assert!(
                    !outcome.newly_mapped,
                    "{}: remap of {:#x} claimed new mapping", mechanism, raw
                );
            }
            prop_assert_eq!(table.mapped_pages(), count, "{}", mechanism);
            Ok(())
        })?;
    }

    /// Occupancy accounting is consistent: valid entries never exceed
    /// capacity, and for the radix design the PL1 valid count equals the
    /// number of mapped pages.
    #[test]
    fn occupancy_is_consistent(vpns in vec(arb_vpn(), 1..200)) {
        for_each_design(|mechanism, alloc, mut table| {
            let unique: HashSet<u64> = vpns.iter().copied().collect();
            for &raw in &unique {
                table.map(Vpn::new(raw), alloc);
            }
            let occ = table.occupancy();
            for (level, lo) in occ.iter() {
                prop_assert!(
                    lo.valid_entries <= lo.capacity,
                    "{}: {} over-occupied", mechanism, level
                );
            }
            if mechanism == Mechanism::Radix {
                let l1 = occ.level(PtLevel::L1).expect("radix has PL1");
                prop_assert_eq!(l1.valid_entries, unique.len() as u64);
            }
            Ok(())
        })?;
    }

    /// The flattened design's walk is always exactly 3 sequential steps
    /// and the radix walk exactly 4 — the paper's headline structural
    /// difference — regardless of which pages are mapped.
    #[test]
    fn walk_depths_are_structural(vpns in vec(arb_vpn(), 1..100)) {
        let mut alloc = FrameAllocator::new(8 << 30);
        let mut flat = Mechanism::NdPage.build_table(&mut alloc).unwrap();
        let mut radix = Mechanism::Radix.build_table(&mut alloc).unwrap();
        let mut ech = Mechanism::Ech.build_table(&mut alloc).unwrap();
        for &raw in &vpns {
            let vpn = Vpn::new(raw);
            flat.map(vpn, &mut alloc);
            radix.map(vpn, &mut alloc);
            ech.map(vpn, &mut alloc);
            prop_assert_eq!(flat.walk_path(vpn).unwrap().sequential_depth(), 3);
            prop_assert_eq!(radix.walk_path(vpn).unwrap().sequential_depth(), 4);
            prop_assert_eq!(ech.walk_path(vpn).unwrap().sequential_depth(), 1);
        }
    }
}
