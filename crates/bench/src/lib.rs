#![forbid(unsafe_code)]
//! Benchmark & figure-regeneration harness for the NDPage reproduction.
//!
//! Two entry points:
//!
//! * the `figures` binary regenerates **every table and figure** of the
//!   paper's evaluation (`cargo run -p ndp-bench --release --bin figures --
//!   all`), printing the same rows/series the paper reports;
//! * the Criterion benches under `benches/` measure the library's own
//!   component performance (page-table ops, TLB/PWC/caches, DRAM,
//!   trace generation, end-to-end simulation).
//!
//! The formatting helpers here are shared by both.

pub mod calibration;
pub mod cli;
pub mod client;
pub mod serve;
pub mod supervisor;

use ndp_sim::report::RunReport;
use ndp_sim::{SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::bypass::BypassPolicy;
use ndpage::Mechanism;

/// Formats a fraction as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a speedup with two decimals and an `x` suffix.
#[must_use]
pub fn spd(x: f64) -> String {
    format!("{x:.2}x")
}

/// Renders a simple aligned table (header row, dash rule, data rows)
/// to a string — the one table renderer behind both the live
/// simulation path and `figures --from-jsonl`, so their bytes can be
/// asserted identical.
#[must_use]
pub fn table_string(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers.iter().map(|s| (*s).to_string()).collect();
    let mut out = String::new();
    out.push_str(&fmt_row(&head));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Prints a simple aligned table: header row then data rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", table_string(headers, rows));
}

/// The ablation variants of §V, isolating NDPage's two mechanisms and its
/// PWC interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AblationVariant {
    /// Conventional baseline.
    Radix,
    /// Radix table + metadata L1 bypass only.
    BypassOnly,
    /// Flattened L2/L1 table only (PTEs still cacheable).
    FlattenOnly,
    /// Full NDPage (flatten + bypass).
    NdPage,
    /// Full NDPage with page-walk caches disabled.
    NdPageNoPwc,
}

impl AblationVariant {
    /// All variants in presentation order.
    pub const ALL: [AblationVariant; 5] = [
        AblationVariant::Radix,
        AblationVariant::BypassOnly,
        AblationVariant::FlattenOnly,
        AblationVariant::NdPage,
        AblationVariant::NdPageNoPwc,
    ];

    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AblationVariant::Radix => "Radix",
            AblationVariant::BypassOnly => "Radix+Bypass",
            AblationVariant::FlattenOnly => "Flatten-only",
            AblationVariant::NdPage => "NDPage",
            AblationVariant::NdPageNoPwc => "NDPage-noPWC",
        }
    }

    /// Builds the simulation config for this variant.
    #[must_use]
    pub fn config(self, cores: u32, workload: WorkloadId) -> SimConfig {
        let mut cfg = match self {
            AblationVariant::Radix => {
                SimConfig::new(SystemKind::Ndp, cores, Mechanism::Radix, workload)
            }
            AblationVariant::BypassOnly => {
                let mut c = SimConfig::new(SystemKind::Ndp, cores, Mechanism::Radix, workload);
                c.bypass_override = Some(BypassPolicy::MetadataL1Bypass);
                c
            }
            AblationVariant::FlattenOnly => {
                let mut c = SimConfig::new(SystemKind::Ndp, cores, Mechanism::NdPage, workload);
                c.bypass_override = Some(BypassPolicy::None);
                c
            }
            AblationVariant::NdPage => {
                SimConfig::new(SystemKind::Ndp, cores, Mechanism::NdPage, workload)
            }
            AblationVariant::NdPageNoPwc => {
                let mut c = SimConfig::new(SystemKind::Ndp, cores, Mechanism::NdPage, workload);
                c.pwc_override = Some(false);
                c
            }
        };
        cfg.seed = 0x5eed;
        cfg
    }
}

/// Convenience: the paper's average-of-workloads of a metric.
#[must_use]
pub fn avg_metric(reports: &[RunReport], f: impl Fn(&RunReport) -> f64) -> f64 {
    let vals: Vec<f64> = reports.iter().map(f).collect();
    ndp_types::stats::mean(&vals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(spd(1.5), "1.50x");
    }

    #[test]
    #[ignore = "diagnostic"]
    fn diag_bypass_vs_flatten() {
        use ndp_sim::experiment::run;
        for v in [AblationVariant::FlattenOnly, AblationVariant::NdPage] {
            let cores: u32 = std::env::var("DIAG_CORES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(4);
            let mut cfg = v.config(cores, WorkloadId::Rnd);
            cfg.warmup_ops = 20_000;
            cfg.measure_ops = 40_000;
            let r = run(cfg);
            println!(
                "{}: cyc={} ptw={:.1} md_l1_miss={:.3} md_mem={} data_mem={} rowhit={:.3} qdelay={:.1}",
                v.name(), r.total_cycles.as_u64(), r.avg_ptw_latency(),
                r.l1_metadata.miss_rate(), r.mem_traffic.metadata,
                r.mem_traffic.data, r.dram_row_hit_rate, r.dram_queue_delay,
            );
        }
    }

    #[test]
    fn ablation_configs_differ() {
        let bypass = AblationVariant::BypassOnly.config(1, WorkloadId::Rnd);
        assert_eq!(bypass.mechanism, Mechanism::Radix);
        assert_eq!(bypass.bypass_override, Some(BypassPolicy::MetadataL1Bypass));

        let flatten = AblationVariant::FlattenOnly.config(1, WorkloadId::Rnd);
        assert_eq!(flatten.mechanism, Mechanism::NdPage);
        assert_eq!(flatten.bypass_override, Some(BypassPolicy::None));

        let nopwc = AblationVariant::NdPageNoPwc.config(1, WorkloadId::Rnd);
        assert_eq!(nopwc.pwc_override, Some(false));

        assert_eq!(AblationVariant::ALL.len(), 5);
        assert_eq!(AblationVariant::BypassOnly.name(), "Radix+Bypass");
    }
}
