//! The `ndpsim serve` client: `ndpsim submit|status|watch|cancel|shutdown
//! --addr HOST:PORT [...]`.
//!
//! One request line out, response lines in until the blank-line
//! terminator. Response lines (status records, watched sweep rows) are
//! copied to the writer verbatim — for `watch` that makes client
//! stdout byte-identical to the offline `ndpsim sweep` JSONL for the
//! same spec, which is the acceptance bar the integration tests and
//! the CI smoke hold it to.

use crate::cli::{Args, CliError};
use ndp_sim::spec::{parse_json, Json};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

/// Builds the one-line JSON request for a client verb from its CLI
/// flags (`--spec` for submit; `--job` for watch/cancel and optionally
/// status; `--from` for watch).
///
/// # Errors
///
/// Usage errors for missing/invalid flags; semantic errors for an
/// unreadable or non-object spec file.
pub fn request_line(verb: &str, args: &Args) -> Result<String, CliError> {
    match verb {
        "submit" => {
            let path = args
                .get("--spec")
                .ok_or_else(|| CliError::usage("error: submit requires --spec FILE"))?;
            let text = std::fs::read_to_string(&path)
                .map_err(|e| CliError::semantic(format!("error: cannot read {path}: {e}")))?;
            let spec =
                parse_json(&text).map_err(|e| CliError::semantic(format!("error: {path}: {e}")))?;
            if !matches!(spec, Json::Obj(_)) {
                return Err(CliError::semantic(format!(
                    "error: {path}: spec must be a JSON object"
                )));
            }
            // Re-render compactly: the request must be a single line.
            Ok(format!(
                "{{\"verb\":\"submit\",\"spec\":{}}}",
                spec.render()
            ))
        }
        "status" => Ok(match args.get("--job") {
            Some(job) => format!("{{\"verb\":\"status\",\"job\":\"{job}\"}}"),
            None => "{\"verb\":\"status\"}".to_string(),
        }),
        "watch" => {
            let job = args
                .get("--job")
                .ok_or_else(|| CliError::usage("error: watch requires --job ID"))?;
            let from = args.num("--from")?.unwrap_or(0);
            Ok(format!(
                "{{\"verb\":\"watch\",\"job\":\"{job}\",\"from\":{from}}}"
            ))
        }
        "cancel" => {
            let job = args
                .get("--job")
                .ok_or_else(|| CliError::usage("error: cancel requires --job ID"))?;
            Ok(format!("{{\"verb\":\"cancel\",\"job\":\"{job}\"}}"))
        }
        "shutdown" => Ok("{\"verb\":\"shutdown\"}".to_string()),
        other => Err(CliError::usage(format!(
            "error: unknown client verb {other:?}"
        ))),
    }
}

/// Sends one request to the service and copies the response lines to
/// `out` until the blank-line terminator (or EOF). Returns the process
/// exit code: 0 normally, 1 if the server answered with a structured
/// `{"ok":false,...}` error record.
///
/// # Errors
///
/// Connection and I/O failures.
pub fn run_request(addr: &str, request: &str, out: &mut impl Write) -> Result<i32, CliError> {
    let stream = TcpStream::connect(addr)
        .map_err(|e| CliError::semantic(format!("error: cannot connect to {addr}: {e}")))?;
    let read_half = stream
        .try_clone()
        .map_err(|e| CliError::semantic(format!("error: cannot clone connection: {e}")))?;
    let mut writer = stream;
    writeln!(writer, "{request}")
        .and_then(|()| writer.flush())
        .map_err(|e| CliError::semantic(format!("error: cannot send request to {addr}: {e}")))?;
    let mut reader = BufReader::new(read_half);
    let mut line = String::new();
    let mut code = 0;
    let mut first = true;
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| CliError::semantic(format!("error: read from {addr} failed: {e}")))?;
        if n == 0 {
            break; // server closed before the terminator; keep what we got
        }
        let content = line.trim_end_matches(['\n', '\r']);
        if content.is_empty() {
            break; // blank-line terminator
        }
        if first && content.starts_with("{\"ok\":false") {
            code = 1;
        }
        first = false;
        writeln!(out, "{content}")
            .map_err(|e| CliError::semantic(format!("error: cannot write response: {e}")))?;
        // Stream rows as they arrive (watch can run for minutes).
        let _ = out.flush();
    }
    Ok(code)
}

/// Runs a client verb end-to-end against `--addr` and exits with the
/// returned code. This is the `ndpsim submit|status|watch|cancel|shutdown`
/// entry point.
///
/// # Errors
///
/// Usage errors for missing `--addr`/flags; semantic errors for
/// connection or I/O failures.
pub fn run_verb(verb: &str, args: &Args) -> Result<i32, CliError> {
    args.reject_unknown(&["--addr", "--spec", "--job", "--from"], &["--help"])?;
    let addr = args
        .get("--addr")
        .ok_or_else(|| CliError::usage(format!("error: {verb} requires --addr HOST:PORT")))?;
    let request = request_line(verb, args)?;
    let mut stdout = std::io::stdout().lock();
    run_request(&addr, &request, &mut stdout)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Args {
        Args::new(list.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn request_lines_take_shape() {
        assert_eq!(
            request_line("status", &args(&[])).unwrap(),
            "{\"verb\":\"status\"}"
        );
        assert_eq!(
            request_line("status", &args(&["--job", "ab-cd"])).unwrap(),
            "{\"verb\":\"status\",\"job\":\"ab-cd\"}"
        );
        assert_eq!(
            request_line("watch", &args(&["--job", "x", "--from", "7"])).unwrap(),
            "{\"verb\":\"watch\",\"job\":\"x\",\"from\":7}"
        );
        assert_eq!(
            request_line("cancel", &args(&["--job", "x"])).unwrap(),
            "{\"verb\":\"cancel\",\"job\":\"x\"}"
        );
        assert_eq!(
            request_line("shutdown", &args(&[])).unwrap(),
            "{\"verb\":\"shutdown\"}"
        );
    }

    #[test]
    fn missing_flags_are_usage_errors() {
        assert_eq!(request_line("watch", &args(&[])).unwrap_err().code, 2);
        assert_eq!(request_line("cancel", &args(&[])).unwrap_err().code, 2);
        assert_eq!(request_line("submit", &args(&[])).unwrap_err().code, 2);
        assert_eq!(request_line("bogus", &args(&[])).unwrap_err().code, 2);
    }
}
