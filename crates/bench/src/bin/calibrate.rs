#![forbid(unsafe_code)]
//! Full-scale calibration harness: sweeps the paper's evaluation grid
//! (workloads x {NDP 1/4/8 cores, CPU 4 cores} x every mechanism),
//! streams rows to resumable JSONL through the spec engine, and checks
//! the derived Fig 4/5/6/7 metrics against the embedded paper targets.
//!
//! ```text
//! # full-scale run, resumable stream, pass/fail gate
//! cargo run -p ndp-bench --release --bin calibrate -- \
//!     --out calibration.jsonl --resume --check
//!
//! # quick CI-scale gate with widened bands
//! cargo run -p ndp-bench --release --bin calibrate -- \
//!     --quick --check --tolerance-scale 4
//!
//! # shard 0 of 4 (merge by re-running without --shard), or export the
//! # spec for the supervised multi-process executor
//! calibrate --out calibration.jsonl --resume --shard 0/4
//! calibrate --emit-spec calibration.spec.json
//! ndpsim sweep --spec calibration.spec.json --workers 4 --out calibration.jsonl
//! calibrate --check --from calibration.jsonl
//! ```
//!
//! The base configuration is built through the knob registry
//! (`SimConfig::cli_default` + `apply_knob` + `--set`), never ad-hoc
//! constructors, so the sweep's coordinates round-trip through spec
//! files and `--tolerance KEY=BAND` / `--tolerance-scale X` adjust the
//! bands without touching the embedded table.

use ndp_bench::calibration::{self, Tolerance, SYSTEM_CORES};
use ndp_bench::cli::{exit_on_err, install_jobs, parse_workload_list, Args, CliError};
use ndp_bench::print_table;
use ndp_sim::shard::ShardSpec;
use ndp_sim::spec::{
    apply_knob, config_knobs, mechanism_names, run_sweep, run_sweep_jsonl_opts, JsonlOptions,
    SweepSpec,
};
use ndp_sim::SimConfig;
use ndp_workloads::WorkloadId;
use std::path::Path;

const USAGE: &str = "usage: calibrate [--quick] [--footprint-mb MB] [--ops N] \
     [--workloads RND,BFS,XS] [--set knob=value]... [--jobs N] \
     [--out FILE.jsonl [--resume] [--shard I/N]] [--emit-spec FILE] \
     [--check] [--from FILE.jsonl] [--tolerance KEY=BAND]... \
     [--tolerance-scale X] [--targets]";

/// Builds the registry-driven base config: quick/full scale defaults,
/// then the validated `--footprint-mb` / `--ops` flags, then `--set`
/// overrides (spec-file semantics, applied last).
fn base_config(args: &Args) -> Result<SimConfig, CliError> {
    let mut cfg = SimConfig::cli_default();
    let quick = args.has("--quick");
    let set = |cfg: &mut SimConfig, knob: &str, value: &str| {
        apply_knob(cfg, knob, value)
            .map_err(|e| CliError::usage(format!("error: knob {knob}: {e}")))
    };

    // Scale defaults: the full grid at paper-sized per-core footprints,
    // or a quick deterministic gate for CI.
    let footprint_mb_default: u64 = if quick { 256 } else { 2048 };
    let ops_default: u64 = if quick { 6_000 } else { 30_000 };

    let footprint_mb = match args.num("--footprint-mb")? {
        Some(0) => {
            // A zero footprint used to shift straight into the config
            // and simulate an empty address space; reject it by name.
            return Err(CliError::usage(
                "error: --footprint-mb (knob `footprint`) must be positive, got 0".to_string(),
            ));
        }
        Some(mb) => mb,
        None => footprint_mb_default,
    };
    let footprint_bytes = footprint_mb.checked_mul(1 << 20).ok_or_else(|| {
        CliError::usage(format!(
            "error: --footprint-mb value {footprint_mb} overflows the `footprint` knob (bytes)"
        ))
    })?;
    set(&mut cfg, "footprint", &footprint_bytes.to_string())?;

    let ops = args.num("--ops")?.unwrap_or(ops_default);
    set(&mut cfg, "measure_ops", &ops.to_string())?;
    set(&mut cfg, "warmup_ops", &(ops / 3).to_string())?;

    ndp_bench::cli::apply_sets(&mut cfg, args)?;
    cfg.validate()
        .map_err(|e| CliError::semantic(e.to_string()))?;
    Ok(cfg)
}

/// The calibration grid over `base` ([`calibration::grid`], shared with
/// the `ndpsim bench` calibration pass).
fn calibration_spec(base: SimConfig, workloads: &[WorkloadId]) -> SweepSpec {
    let names: Vec<&str> = workloads.iter().map(|w| w.name()).collect();
    calibration::grid(base, &names)
}

/// Renders the spec as the JSON format `ndpsim sweep --spec` loads: the
/// full base knob list plus the three axes.
fn spec_json(spec: &SweepSpec) -> String {
    let base: Vec<String> = config_knobs(&spec.base)
        .iter()
        .map(|(k, v)| format!("    \"{k}\": \"{v}\""))
        .collect();
    let mut axes = Vec::new();
    for axis in &spec.axes {
        if axis.points.iter().all(|p| p.sets.len() == 1) {
            let knob = &axis.points[0].sets[0].0;
            let values: Vec<String> = axis
                .points
                .iter()
                .map(|p| format!("\"{}\"", p.sets[0].1))
                .collect();
            axes.push(format!(
                "    {{\"knob\": \"{knob}\", \"values\": [{}]}}",
                values.join(", ")
            ));
        } else {
            let points: Vec<String> = axis
                .points
                .iter()
                .map(|p| {
                    let sets: Vec<String> = p
                        .sets
                        .iter()
                        .map(|(k, v)| format!("\"{k}\": \"{v}\""))
                        .collect();
                    format!("{{{}}}", sets.join(", "))
                })
                .collect();
            axes.push(format!("    {{\"points\": [{}]}}", points.join(", ")));
        }
    }
    format!(
        "{{\n  \"name\": \"{}\",\n  \"base\": {{\n{}\n  }},\n  \"axes\": [\n{}\n  ]\n}}\n",
        spec.name,
        base.join(",\n"),
        axes.join(",\n")
    )
}

/// Parses the repeatable `--tolerance KEY=BAND` overrides.
fn tolerance_overrides(args: &Args) -> Result<Vec<(String, Tolerance)>, CliError> {
    args.get_all("--tolerance")
        .iter()
        .map(|setting| {
            let (key, band) = setting.split_once('=').ok_or_else(|| {
                CliError::usage(format!(
                    "error: --tolerance expects KEY=BAND (e.g. ndp_radix_ptw_4c=25%), \
                     got {setting:?}"
                ))
            })?;
            let tol = Tolerance::parse(band)
                .map_err(|e| CliError::usage(format!("error: --tolerance {key}: {e}")))?;
            Ok((key.trim().to_string(), tol))
        })
        .collect()
}

/// Produces the JSONL text to evaluate: an existing file (`--from`), a
/// streamed resumable run (`--out`), or an in-memory sweep.
fn obtain_rows_text(args: &Args, spec: &SweepSpec) -> Result<Option<String>, CliError> {
    if let Some(from) = args.get("--from") {
        return std::fs::read_to_string(&from)
            .map(Some)
            .map_err(|e| CliError::semantic(format!("error: cannot read {from}: {e}")));
    }

    let shard = args
        .get("--shard")
        .map(|raw| ShardSpec::parse(&raw).map_err(|e| CliError::usage(format!("error: {e}"))))
        .transpose()?;
    let Some(out) = args.get("--out") else {
        if shard.is_some() || args.has("--resume") {
            return Err(CliError::usage(
                "error: --shard/--resume need --out FILE.jsonl to stream to".to_string(),
            ));
        }
        // In-memory run: serialize through the same JSONL format so one
        // parse path serves every mode.
        let result = run_sweep(spec).map_err(|e| CliError::semantic(format!("error: {e}")))?;
        let lines: Vec<String> = result.rows.iter().map(|r| r.to_jsonl()).collect();
        return Ok(Some(lines.join("\n")));
    };

    if shard.is_some() && args.has("--check") {
        return Err(CliError::usage(
            "error: --check needs the merged grid; run without --shard (it stitches \
             finished shard files), or drive shards via `ndpsim sweep --workers N`"
                .to_string(),
        ));
    }
    let opts = JsonlOptions {
        resume: args.has("--resume"),
        shard,
        fault: None,
    };
    let summary = run_sweep_jsonl_opts(spec, Path::new(&out), &opts)
        .map_err(|e| CliError::semantic(format!("error: {e}")))?;
    for w in &summary.warnings {
        eprintln!("warning: {w}");
    }
    println!(
        "sweep \"calibration\": {} grid points, {} executed, {} reused, digest {}",
        summary.grid, summary.executed, summary.reused, summary.digest
    );
    if let Some(sh) = opts.shard {
        // A stripe is not the grid: report where it landed and stop
        // before any metric math.
        println!(
            "shard {sh} complete: rows in {}",
            ndp_sim::shard::shard_path(Path::new(&out), sh).display()
        );
        return Ok(None);
    }
    std::fs::read_to_string(&out)
        .map(Some)
        .map_err(|e| CliError::semantic(format!("error: cannot read back {out}: {e}")))
}

fn main() {
    let args = Args::from_env();
    exit_on_err(args.reject_unknown(
        &[
            "--footprint-mb",
            "--ops",
            "--workloads",
            "--set",
            "--jobs",
            "--out",
            "--shard",
            "--from",
            "--emit-spec",
            "--tolerance",
            "--tolerance-scale",
        ],
        &["--quick", "--resume", "--check", "--targets", "--help"],
    ));
    if args.has("--help") {
        eprintln!("{USAGE}");
        eprint!("{}", ndp_bench::cli::knob_help_table());
        return;
    }
    exit_on_err(install_jobs(&args));

    if args.has("--targets") {
        println!("embedded paper targets (figures 4/5/6/7):");
        print_table(
            &[
                "key",
                "figure",
                "description",
                "target",
                "unit",
                "tolerance",
            ],
            &calibration::target_rows(),
        );
        return;
    }

    let overrides = exit_on_err(tolerance_overrides(&args));
    let scale: f64 = match args.get("--tolerance-scale") {
        Some(raw) => exit_on_err(raw.parse().map_err(|_| {
            CliError::usage(format!(
                "error: --tolerance-scale expects a number, got {raw:?}"
            ))
        })),
        None => 1.0,
    };

    let cfg = exit_on_err(base_config(&args));
    let workloads = match args.get("--workloads") {
        Some(list) => exit_on_err(parse_workload_list("--workloads", &list)),
        None => vec![WorkloadId::Rnd, WorkloadId::Bfs, WorkloadId::Xs],
    };
    let spec = calibration_spec(cfg, &workloads);

    if let Some(path) = args.get("--emit-spec") {
        let json = spec_json(&spec);
        exit_on_err(
            std::fs::write(&path, &json)
                .map_err(|e| CliError::semantic(format!("error: cannot write {path}: {e}"))),
        );
        println!("wrote {path} ({} grid points)", spec.grid_len());
        println!(
            "run it supervised:  ndpsim sweep --spec {path} --workers N --out calibration.jsonl"
        );
        println!("then check:         calibrate --check --from calibration.jsonl");
        return;
    }

    if args.get("--from").is_none() {
        println!(
            "calibration grid: {} points ({} workloads x {} system/core pairs x {} mechanisms)",
            spec.grid_len(),
            workloads.len(),
            SYSTEM_CORES.len(),
            mechanism_names().len()
        );
    }
    let start = std::time::Instant::now();
    let Some(text) = exit_on_err(obtain_rows_text(&args, &spec)) else {
        return; // shard stripe written; nothing to evaluate
    };
    let wall_s = start.elapsed().as_secs_f64();

    let rows = exit_on_err(
        calibration::parse_rows(&text).map_err(|e| CliError::semantic(format!("error: {e}"))),
    );
    println!("\nper-group shape metrics ({} rows):", rows.len());
    print_table(&calibration::GROUP_HEADERS, &calibration::group_rows(&rows));

    let findings = exit_on_err(
        calibration::evaluate(&rows, &overrides, scale)
            .map_err(|e| CliError::usage(format!("error: {e}"))),
    );
    println!("\npaper-target check (tolerance scale {scale}):");
    print_table(
        &[
            "key", "figure", "target", "measured", "dev", "band", "status",
        ],
        &calibration::report_rows(&findings),
    );
    let hit = findings.iter().filter(|f| f.pass).count();
    println!(
        "\n{hit}/{} targets in band, max relative deviation {:.1}%, wall {wall_s:.1}s",
        findings.len(),
        calibration::max_rel_deviation(&findings) * 100.0
    );

    if args.has("--check") && !calibration::all_pass(&findings) {
        eprintln!(
            "error: calibration check failed: {} target(s) out of band",
            findings.len() - hit
        );
        std::process::exit(1);
    }
}
