#![forbid(unsafe_code)]
//! Calibration scratchpad: prints the key shape metrics for a few
//! workloads so model constants can be tuned against the paper's targets.
//!
//! ```text
//! cargo run -p ndp-bench --release --bin calibrate -- \
//!     [--footprint-mb MB] [--ops N] [--workloads RND,BFS,XS] [--jobs N]
//! ```
//!
//! Flags share the validated parsers of `ndp_bench::cli` (the same
//! helpers `ndpsim` and `figures` use), so a typo'd workload or a
//! malformed number errors out instead of silently running defaults.

use ndp_bench::cli::{exit_on_err, install_jobs, parse_workload_list, Args};
use ndp_sim::experiment::run;
use ndp_sim::{SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn main() {
    let args = Args::from_env();
    exit_on_err(install_jobs(&args));
    exit_on_err(args.reject_unknown(
        &["--footprint-mb", "--ops", "--workloads", "--jobs"],
        &["--help"],
    ));
    if args.has("--help") {
        eprintln!(
            "usage: calibrate [--footprint-mb MB] [--ops N] \
             [--workloads RND,BFS,XS] [--jobs N]"
        );
        return;
    }
    let footprint_mb = exit_on_err(args.num("--footprint-mb")).unwrap_or(2048);
    let ops = exit_on_err(args.num("--ops")).unwrap_or(30_000);
    let workloads = match args.get("--workloads") {
        Some(list) => exit_on_err(parse_workload_list("--workloads", &list)),
        None => vec![WorkloadId::Rnd, WorkloadId::Bfs, WorkloadId::Xs],
    };

    println!("== footprint {footprint_mb} MB, {ops} ops/core ==");
    for w in workloads {
        for cores in [1u32, 4, 8] {
            for system in [SystemKind::Ndp, SystemKind::Cpu] {
                if system == SystemKind::Cpu && cores != 4 {
                    continue;
                }
                let mut radix_cycles = 0u64;
                for m in [
                    Mechanism::Radix,
                    Mechanism::Ech,
                    Mechanism::HugePage,
                    Mechanism::NdPage,
                    Mechanism::Ideal,
                ] {
                    let cfg = SimConfig::new(system, cores, m, w)
                        .with_ops(ops / 3, ops)
                        .with_footprint(footprint_mb << 20);
                    let r = run(cfg);
                    if m == Mechanism::Radix {
                        radix_cycles = r.total_cycles.as_u64();
                    }
                    let speedup = radix_cycles as f64 / r.total_cycles.as_u64() as f64;
                    println!(
                        "{:>4} {:>3} x{} {:<9} | cyc {:>12} spd {:>5.3} | ptw {:>6.1} n={:<7} | walkrate {:>5.1}% | L1 d/md miss {:>5.1}/{:>5.1}% | mdfrac {:>4.1}% | flt 4k/2m/fb {}/{}/{} | trans {:>4.1}%",
                        w.name(), system.to_string(), cores, m.name(),
                        r.total_cycles.as_u64(), speedup,
                        r.avg_ptw_latency(), r.ptw.count,
                        r.tlb_walk_rate()*100.0,
                        r.l1_data.miss_rate()*100.0, r.l1_metadata.miss_rate()*100.0,
                        r.mem_traffic.metadata_fraction()*100.0,
                        r.faults.minor_4k, r.faults.minor_2m, r.faults.fallback,
                        r.translation_fraction()*100.0,
                    );
                    if std::env::var("PWC").is_ok() {
                        let pwc: Vec<String> = r
                            .pwc
                            .iter()
                            .map(|(l, hm)| {
                                format!("{l}={:.1}%({})", hm.hit_rate() * 100.0, hm.total())
                            })
                            .collect();
                        println!("      pwc: {}", pwc.join(" "));
                    }
                }
            }
        }
        println!();
    }
}
