//! `ndpsim` — run one simulation with explicit knobs and print the full
//! report (including the PTW latency histogram and PWC profile).
//!
//! ```text
//! cargo run -p ndp-bench --release --bin ndpsim -- \
//!     --workload BFS --mechanism ndpage --system ndp --cores 4 \
//!     [--footprint-mb 2048] [--ops 50000] [--warmup 20000] [--seed 7] \
//!     [--pwc-entries 64] [--tlb-l2 1536] [--no-fracture]
//! ```

use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn parse_mechanism(s: &str) -> Option<Mechanism> {
    Mechanism::ALL
        .into_iter()
        .find(|m| m.name().replace(' ', "").eq_ignore_ascii_case(&s.replace(['-', '_', ' '], "")))
}

fn parse_workload(s: &str) -> Option<WorkloadId> {
    WorkloadId::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(s))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    if has("--help") || args.is_empty() {
        eprintln!(
            "usage: ndpsim --workload <BC|BFS|CC|GC|PR|TC|SP|XS|RND|DLRM|GEN> \\\n\
             \x20             --mechanism <radix|ech|hugepage|ndpage|ideal> \\\n\
             \x20             [--system ndp|cpu] [--cores N] [--footprint-mb MB] \\\n\
             \x20             [--ops N] [--warmup N] [--seed S] [--pwc-entries N] \\\n\
             \x20             [--tlb-l2 N] [--no-fracture] [--histogram]"
        );
        return;
    }

    let workload = get("--workload")
        .and_then(|s| parse_workload(&s))
        .unwrap_or(WorkloadId::Bfs);
    let mechanism = get("--mechanism")
        .and_then(|s| parse_mechanism(&s))
        .unwrap_or(Mechanism::NdPage);
    let system = match get("--system").as_deref() {
        Some("cpu") => SystemKind::Cpu,
        _ => SystemKind::Ndp,
    };
    let cores: u32 = get("--cores").and_then(|s| s.parse().ok()).unwrap_or(1);

    let mut cfg = SimConfig::new(system, cores, mechanism, workload);
    if let Some(mb) = get("--footprint-mb").and_then(|s| s.parse::<u64>().ok()) {
        cfg.footprint_override = Some(mb << 20);
    } else {
        cfg.footprint_override = Some(1 << 30); // CLI default: fast
    }
    if let Some(ops) = get("--ops").and_then(|s| s.parse().ok()) {
        cfg.measure_ops = ops;
    } else {
        cfg.measure_ops = 30_000;
    }
    cfg.warmup_ops = get("--warmup")
        .and_then(|s| s.parse().ok())
        .unwrap_or(cfg.measure_ops / 3);
    if let Some(seed) = get("--seed").and_then(|s| s.parse().ok()) {
        cfg.seed = seed;
    }
    if let Some(entries) = get("--pwc-entries").and_then(|s| s.parse().ok()) {
        cfg.pwc_entries = Some(entries);
    }
    if let Some(entries) = get("--tlb-l2").and_then(|s| s.parse().ok()) {
        cfg.tlb_l2_entries = Some(entries);
    }
    if has("--no-fracture") {
        cfg.tlb_fracture_huge = Some(false);
    }

    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        std::process::exit(1);
    }

    let report = Machine::new(cfg).run();
    println!("{report}\n");

    println!("PWC hit rates:");
    for (level, hm) in &report.pwc {
        println!("  {level:<8} {:.2}%  ({} probes)", hm.hit_rate() * 100.0, hm.total());
    }

    if has("--histogram") && report.ptw_histogram.count() > 0 {
        println!("\nPTW latency histogram (cycles):");
        let total = report.ptw_histogram.count() as f64;
        for (lower, count) in report.ptw_histogram.iter() {
            let share = count as f64 / total;
            println!(
                "  >= {lower:>7}: {:<40} {:.1}%",
                "#".repeat((share * 40.0).ceil() as usize),
                share * 100.0
            );
        }
        println!(
            "  p50 ~{} cyc, p99 ~{} cyc",
            report.ptw_histogram.quantile(0.5),
            report.ptw_histogram.quantile(0.99)
        );
    }
}
