#![forbid(unsafe_code)]
//! `ndpsim` — run one simulation, a declarative sweep, or the fixed
//! benchmark.
//!
//! **Single run** (every flag is generated from the knob registry in
//! `ndp_sim::spec::KNOBS` — `--help` prints the full table):
//!
//! ```text
//! cargo run -p ndp-bench --release --bin ndpsim -- \
//!     --workload BFS --mechanism ndpage --system ndp --cores 4 \
//!     [--window 8] [--l3-kb 2048] [--set knob=value]... [--jobs N] ...
//! ```
//!
//! **Declarative sweep**: expand a JSON spec's cross product and run it
//! on the work-stealing driver, optionally with incremental JSONL
//! output and resume:
//!
//! ```text
//! cargo run -p ndp-bench --release --bin ndpsim -- \
//!     sweep --spec experiments.json --set cores=2 \
//!           --out rows.jsonl --resume --jobs 8
//! ```
//!
//! Each completed grid point is appended to the JSONL file in grid
//! order as soon as every earlier point has retired; `--resume` skips
//! points already on disk (matched by config fingerprint + grid index)
//! and produces a file byte-for-byte identical to an uninterrupted run.
//!
//! **Benchmark** (`bench`): times the fixed end-to-end experiment sweep
//! and writes JSON, tracking the simulator's own throughput across PRs:
//!
//! ```text
//! cargo run --release --features legacy_hotpath -p ndp-bench --bin ndpsim -- \
//!     bench --out BENCH_baseline.json
//! cargo run --release -p ndp-bench --bin ndpsim -- \
//!     bench --out BENCH_end_to_end.json --baseline BENCH_baseline.json
//! ```

use ndp_bench::calibration;
use ndp_bench::cli::{
    config_from_args, exit_on_err, install_jobs, json_f64, json_str, json_u64, knob_help_table,
    ndpsim_value_flags, Args, CliError, NDPSIM_BOOL_FLAGS,
};
use ndp_bench::serve::{serve, ServeConfig};
use ndp_bench::supervisor::{supervise, SupervisorConfig};
use ndp_sim::experiment::run_batch;
use ndp_sim::fault::FaultPlan;
use ndp_sim::shard::ShardSpec;
use ndp_sim::spec::{
    apply_knob, config_fingerprint, run_sweep, run_sweep_jsonl_opts, JsonlOptions, SweepSpec,
};
use ndp_sim::sweeps::{mlp_sweep, pwc_size_sweep, shared_llc_sweep};
use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;
use std::time::Instant;

/// The fixed benchmark sweep: the Figs 12–14 engine (every mechanism on
/// two contrasting workloads, 2 cores) plus a 3-point PWC-capacity sweep —
/// 16 full machine constructions + runs per pass.
fn bench_sweep_pass() -> (u64, u64) {
    let figure_cfgs: Vec<SimConfig> = [WorkloadId::Rnd, WorkloadId::Bfs]
        .iter()
        .flat_map(|&w| {
            Mechanism::ALL.iter().map(move |&m| {
                SimConfig::new(SystemKind::Ndp, 2, m, w)
                    .with_ops(4_000, 8_000)
                    .with_footprint(512 << 20)
            })
        })
        .collect();
    let mut sim_ops: u64 = figure_cfgs
        .iter()
        .map(|c| u64::from(c.cores) * (c.warmup_ops + c.measure_ops))
        .sum();
    let mut digest = 0u64;
    for report in run_batch(figure_cfgs) {
        digest ^= report.fingerprint();
    }

    let base = SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, WorkloadId::Rnd)
        .with_ops(4_000, 8_000)
        .with_footprint(512 << 20);
    let sizes = [16usize, 64, 256];
    sim_ops += sizes.len() as u64 * 2 * 4 * (base.warmup_ops + base.measure_ops);
    for point in pwc_size_sweep(WorkloadId::Rnd, &sizes, &base) {
        digest ^= point.radix.fingerprint() ^ point.ndpage.fingerprint();
    }
    (sim_ops, digest)
}

/// Issue-window sizes of the bench MLP sweep — also the `windows` field
/// of the emitted JSON, so the two can never diverge.
const BENCH_MLP_WINDOWS: [u32; 3] = [1, 4, 8];

/// Shared-L3 capacities of the bench LLC sweep — also the `l3_kbs`
/// field of the emitted JSON.
const BENCH_LLC_KBS: [u32; 2] = [512, 4096];

/// The shared-LLC benchmark sweep: Radix and NDPage co-run
/// multiprogrammed under a small and an ample shared L3 (the co-runner
/// interference study). Returns `(sim_ops, digest, ndpage speedup under
/// pressure, ndpage speedup with ample capacity)`.
fn bench_llc_pass() -> (u64, u64, f64, f64) {
    let base = SimConfig::new(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Bfs)
        .with_ops(4_000, 8_000)
        .with_footprint(512 << 20);
    let sizes = BENCH_LLC_KBS;
    let sim_ops = sizes.len() as u64 * 2 * 2 * (base.warmup_ops + base.measure_ops);
    let points = shared_llc_sweep(WorkloadId::Bfs, &sizes, &base);
    let mut digest = 0u64;
    for point in &points {
        digest ^= point.radix.fingerprint() ^ point.ndpage.fingerprint();
    }
    let pressured = points.first().expect("small-L3 point").ndpage_speedup();
    let ample = points.last().expect("large-L3 point").ndpage_speedup();
    (sim_ops, digest, pressured, ample)
}

/// The MLP benchmark sweep: Radix and NDPage over issue-window sizes
/// (window 1 = the blocking engine, so this digest also re-anchors the
/// blocking path). Returns `(sim_ops, digest, ndpage speedup at the
/// widest window, ndpage speedup when blocking)`.
fn bench_mlp_pass() -> (u64, u64, f64, f64) {
    let base = SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, WorkloadId::Bfs)
        .with_ops(4_000, 8_000)
        .with_footprint(512 << 20);
    let windows = BENCH_MLP_WINDOWS;
    let sim_ops = windows.len() as u64 * 2 * 4 * (base.warmup_ops + base.measure_ops);
    let points = mlp_sweep(WorkloadId::Bfs, &windows, &base);
    let mut digest = 0u64;
    for point in &points {
        digest ^= point.radix.fingerprint() ^ point.ndpage.fingerprint();
    }
    let blocking = points.first().expect("window 1 point").ndpage_speedup();
    let widest = points.last().expect("window 8 point").ndpage_speedup();
    (sim_ops, digest, widest, blocking)
}

/// Tolerance widening for the quick-scale calibration pass — the same
/// factor the CI `calibrate --quick --check` gate uses, chosen so the
/// deterministic quick-scale deviations sit inside every band.
const CAL_TOLERANCE_SCALE: f64 = 8.0;

/// The calibration benchmark pass: the `calibrate --quick` grid (three
/// workloads x NDP 1/4/8 + CPU 4 cores x every mechanism) evaluated
/// against the embedded paper targets with CI-widened bands. Returns
/// `(sim_ops, digest, findings)` — the digest covers every row's report
/// and gates `--check-digest` across hot-path modes like the others.
fn bench_calibration_pass() -> (u64, u64, Vec<calibration::Finding>) {
    let mut base = SimConfig::cli_default();
    for (knob, value) in [
        ("footprint", "268435456"),
        ("measure_ops", "6000"),
        ("warmup_ops", "2000"),
    ] {
        apply_knob(&mut base, knob, value).expect("calibration base knob");
    }
    let spec = calibration::grid(base, &["RND", "BFS", "XS"]);
    let sim_ops: u64 = spec
        .expand()
        .expect("calibration grid")
        .iter()
        .map(|p| u64::from(p.config.cores) * (p.config.warmup_ops + p.config.measure_ops))
        .sum();
    let result = run_sweep(&spec).expect("calibration sweep");
    let mut digest = 0u64;
    let lines: Vec<String> = result
        .rows
        .iter()
        .map(|r| {
            digest ^= r.report.fingerprint();
            r.to_jsonl()
        })
        .collect();
    // Through the same JSONL text `calibrate --check` consumes, so the
    // bench numbers and the harness can never derive metrics differently.
    let rows = calibration::parse_rows(&lines.join("\n")).expect("calibration rows");
    let findings = calibration::evaluate(&rows, &[], CAL_TOLERANCE_SCALE).expect("calibration");
    (sim_ops, digest, findings)
}

fn run_bench(args: &Args) {
    let runs: usize = exit_on_err(args.num("--runs"))
        .map_or(3, |n| n as usize)
        .max(1);
    let out = args
        .get("--out")
        .unwrap_or_else(|| "BENCH_end_to_end.json".to_string());
    let mode = if cfg!(feature = "legacy_hotpath") {
        "legacy"
    } else {
        "fast"
    };
    let threads = ndp_sim::parallel::default_threads();

    let mut walls = Vec::with_capacity(runs);
    let mut sim_ops = 0u64;
    let mut digest = 0u64;
    for i in 0..runs {
        let t0 = Instant::now();
        let (ops, d) = bench_sweep_pass();
        let wall = t0.elapsed().as_secs_f64();
        sim_ops = ops;
        digest = d;
        eprintln!("pass {}/{}: {:.3} s", i + 1, runs, wall);
        walls.push(wall);
    }
    let best = walls.iter().cloned().fold(f64::INFINITY, f64::min);
    let ops_per_sec = sim_ops as f64 / best;

    // The MLP sweep runs once, outside the timed passes, so `best_wall_s`
    // stays comparable with benchmark files from before the pipeline.
    let t0 = Instant::now();
    let (mlp_ops, mlp_digest, mlp_speedup_w8, mlp_speedup_w1) = bench_mlp_pass();
    let mlp_wall = t0.elapsed().as_secs_f64();
    eprintln!("mlp pass: {mlp_wall:.3} s");

    // So does the shared-LLC sweep (its digest covers the shared-L3
    // counters, which only exist when the layer is enabled).
    let t0 = Instant::now();
    let (llc_ops, llc_digest, llc_speedup_small, llc_speedup_large) = bench_llc_pass();
    let llc_wall = t0.elapsed().as_secs_f64();
    eprintln!("llc pass: {llc_wall:.3} s");

    // And the calibration pass: the quick-scale paper-target grid, with
    // the CI-widened bands, digest-gated like the other sweeps.
    let t0 = Instant::now();
    let (cal_ops, cal_digest, cal_findings) = bench_calibration_pass();
    let cal_wall = t0.elapsed().as_secs_f64();
    let cal_hit = cal_findings.iter().filter(|f| f.pass).count();
    eprintln!(
        "calibration pass: {cal_wall:.3} s ({cal_hit}/{} targets in band at {CAL_TOLERANCE_SCALE}x tolerance)",
        cal_findings.len()
    );

    // A missing --baseline flag is fine (the speedup fields are simply
    // omitted); a *named* baseline that cannot be read or parsed is an
    // error — silently dropping it would let the CI gates misfire with a
    // misleading "need --baseline" diagnosis.
    let baseline = args.get("--baseline").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path:?}: {e}");
            std::process::exit(2);
        });
        let wall = json_f64(&text, "best_wall_s").unwrap_or_else(|| {
            eprintln!("error: baseline {path:?} has no best_wall_s field");
            std::process::exit(2);
        });
        let mode = json_str(&text, "mode").unwrap_or_else(|| "unknown".to_string());
        // All three digests gate --check-digest: the blocking sweep, the
        // windowed MLP sweep and the shared-LLC sweep must each be
        // bit-identical across hot-path modes (mlp_digest/llc_digest are
        // absent from baselines predating their sweep).
        let digest = json_u64(&text, "report_digest");
        let base_mlp_digest = json_u64(&text, "mlp_digest");
        let base_llc_digest = json_u64(&text, "llc_digest");
        let base_cal_digest = json_u64(&text, "cal_digest");
        (
            mode,
            wall,
            digest,
            base_mlp_digest,
            base_llc_digest,
            base_cal_digest,
        )
    });

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"end_to_end_sweep\",\n");
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"runs\": {runs},\n"));
    json.push_str("  \"machine_runs_per_pass\": 16,\n");
    json.push_str(&format!("  \"simulated_ops_per_pass\": {sim_ops},\n"));
    json.push_str(&format!("  \"report_digest\": {digest},\n"));
    json.push_str(&format!(
        "  \"wall_s_per_pass\": [{}],\n",
        walls
            .iter()
            .map(|w| format!("{w:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"best_wall_s\": {best:.4},\n"));
    json.push_str("  \"mlp_sweep\": {\n");
    json.push_str(&format!(
        "    \"windows\": [{}],\n",
        BENCH_MLP_WINDOWS.map(|w| w.to_string()).join(", ")
    ));
    json.push_str(&format!("    \"mlp_simulated_ops\": {mlp_ops},\n"));
    json.push_str(&format!("    \"mlp_digest\": {mlp_digest},\n"));
    json.push_str(&format!(
        "    \"mlp_ops_per_sec\": {:.1},\n",
        mlp_ops as f64 / mlp_wall
    ));
    json.push_str(&format!(
        "    \"ndpage_speedup_blocking\": {mlp_speedup_w1:.4},\n"
    ));
    json.push_str(&format!(
        "    \"ndpage_speedup_window8\": {mlp_speedup_w8:.4},\n"
    ));
    json.push_str(&format!("    \"mlp_wall_s\": {mlp_wall:.4}\n"));
    json.push_str("  },\n");
    json.push_str("  \"llc_sweep\": {\n");
    json.push_str(&format!(
        "    \"l3_kbs\": [{}],\n",
        BENCH_LLC_KBS.map(|kb| kb.to_string()).join(", ")
    ));
    json.push_str(&format!("    \"llc_simulated_ops\": {llc_ops},\n"));
    json.push_str(&format!("    \"llc_digest\": {llc_digest},\n"));
    json.push_str(&format!(
        "    \"llc_ops_per_sec\": {:.1},\n",
        llc_ops as f64 / llc_wall
    ));
    json.push_str(&format!(
        "    \"ndpage_speedup_small_l3\": {llc_speedup_small:.4},\n"
    ));
    json.push_str(&format!(
        "    \"ndpage_speedup_large_l3\": {llc_speedup_large:.4},\n"
    ));
    json.push_str(&format!("    \"llc_wall_s\": {llc_wall:.4}\n"));
    json.push_str("  },\n");
    json.push_str("  \"calibration\": {\n");
    json.push_str(&format!("    \"cal_simulated_ops\": {cal_ops},\n"));
    json.push_str(&format!("    \"cal_digest\": {cal_digest},\n"));
    json.push_str(&format!(
        "    \"cal_tolerance_scale\": {CAL_TOLERANCE_SCALE},\n"
    ));
    json.push_str(&format!(
        "    {}\n",
        calibration::bench_json_fields(&cal_findings, cal_wall)
    ));
    json.push_str("  },\n");
    if let Some((base_mode, base_wall, _, _, _, _)) = &baseline {
        json.push_str(&format!("  \"ops_per_sec\": {ops_per_sec:.1},\n"));
        json.push_str(&format!("  \"baseline_mode\": \"{base_mode}\",\n"));
        json.push_str(&format!("  \"baseline_best_wall_s\": {base_wall:.4},\n"));
        json.push_str(&format!(
            "  \"speedup_over_baseline\": {:.3}\n",
            base_wall / best
        ));
    } else {
        json.push_str(&format!("  \"ops_per_sec\": {ops_per_sec:.1}\n"));
    }
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write bench JSON");
    println!("{json}");
    println!("wrote {out}");
    if let Some((
        base_mode,
        base_wall,
        base_digest,
        base_mlp_digest,
        base_llc_digest,
        base_cal_digest,
    )) = baseline
    {
        println!(
            "speedup vs {base_mode} baseline: {:.2}x ({:.3} s -> {:.3} s)",
            base_wall / best,
            base_wall,
            best
        );
        // CI gates: the simulated results — blocking sweep and windowed
        // MLP sweep alike — must be bit-identical across hot-path modes,
        // and the overhaul's speedup must not regress.
        if args.has("--check-digest") {
            match base_digest {
                Some(b) if b == digest => eprintln!("digest check: ok ({digest})"),
                Some(b) => {
                    eprintln!("error: report digest {digest} != baseline digest {b}");
                    std::process::exit(1);
                }
                None => {
                    eprintln!("error: --check-digest but baseline has no report_digest");
                    std::process::exit(1);
                }
            }
            match base_mlp_digest {
                Some(b) if b == mlp_digest => eprintln!("mlp digest check: ok ({mlp_digest})"),
                Some(b) => {
                    eprintln!("error: mlp digest {mlp_digest} != baseline mlp digest {b}");
                    std::process::exit(1);
                }
                // Pre-pipeline baseline files carry no mlp_digest; the
                // blocking gate above still applies.
                None => eprintln!("mlp digest check: skipped (baseline has none)"),
            }
            match base_llc_digest {
                Some(b) if b == llc_digest => eprintln!("llc digest check: ok ({llc_digest})"),
                Some(b) => {
                    eprintln!("error: llc digest {llc_digest} != baseline llc digest {b}");
                    std::process::exit(1);
                }
                // Pre-shared-LLC baseline files carry no llc_digest.
                None => eprintln!("llc digest check: skipped (baseline has none)"),
            }
            match base_cal_digest {
                Some(b) if b == cal_digest => eprintln!("cal digest check: ok ({cal_digest})"),
                Some(b) => {
                    eprintln!("error: cal digest {cal_digest} != baseline cal digest {b}");
                    std::process::exit(1);
                }
                // Pre-calibration baseline files carry no cal_digest.
                None => eprintln!("cal digest check: skipped (baseline has none)"),
            }
        }
        if let Some(floor) = args.get("--min-speedup") {
            let floor: f64 = floor.parse().unwrap_or_else(|_| {
                eprintln!("error: --min-speedup expects a number, got {floor:?}");
                std::process::exit(2);
            });
            let speedup = base_wall / best;
            if speedup < floor {
                eprintln!("error: speedup {speedup:.3}x fell below the {floor:.3}x floor");
                std::process::exit(1);
            }
            eprintln!("speedup floor check: ok ({speedup:.3}x >= {floor:.3}x)");
        }
    } else if args.has("--check-digest") || args.get("--min-speedup").is_some() {
        eprintln!("error: --check-digest/--min-speedup need --baseline");
        std::process::exit(2);
    }
}

/// Validates `NDP_FAULT` up front (like `NDP_THREADS`): a typo'd fault
/// plan must exit cleanly, not silently run fault-free.
fn fault_plan_from_env() -> Option<FaultPlan> {
    ndp_sim::fault::plan_from_env().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// `ndpsim sweep`: expand a JSON spec (plus `--set` overrides) and run
/// the grid — in memory with a printed table, incrementally to JSONL
/// with `--out`/`--resume`, as one stripe of a sharded run
/// (`--shard I/N`), or as the supervisor of N shard workers
/// (`--workers N`).
fn run_sweep_cmd(args: &Args) {
    if args.has("--help") {
        eprintln!(
            "usage: ndpsim sweep --spec FILE [--set knob=value]... [--out FILE.jsonl] \\\n\
             \x20                  [--resume] [--jobs N] [--dry-run] \\\n\
             \x20                  [--shard I/N | --workers N] [--row-timeout SECS] \\\n\
             \x20                  [--max-retries N] [--backoff-ms MS]\n\
             \n\
             spec JSON: {{\"name\": STR, \"base\": {{KNOB: VALUE, ...}},\n\
             \x20           \"axes\": [{{\"knob\": NAME, \"values\": [V, ...]}} |\n\
             \x20                    {{\"points\": [{{KNOB: V, ...}}, ...]}}, ...],\n\
             \x20           \"filter\": [\"KNOB OP VALUE\", ...]}}   OP: = != < <= > >=\n\
             \n\
             The grid is the axes' cross product (first axis slowest), pruned by\n\
             the conjunctive \"filter\" clauses (kept points re-index compactly,\n\
             so filtered grids shard and resume like dense ones) and run on the\n\
             work-stealing driver. --out appends completed rows in grid order as\n\
             they retire (landing via .tmp + atomic rename); --resume reuses rows\n\
             already on disk (matched by config fingerprint + grid index) and\n\
             re-runs only the rest. --shard I/N runs grid indices i mod N == I,\n\
             streaming to FILE.jsonl.shard-I-of-N; --workers N spawns N such\n\
             shard subprocesses, retries crashed or stalled ones (exponential\n\
             backoff, --max-retries), merges the shards byte-identically to a\n\
             serial run, and exits 0 (full), 3 (partial) or 4 (failed).\n\
             {}",
            knob_help_table()
        );
        return;
    }
    exit_on_err(args.reject_unknown(
        &[
            "--spec",
            "--set",
            "--out",
            "--jobs",
            "--shard",
            "--workers",
            "--row-timeout",
            "--max-retries",
            "--backoff-ms",
        ],
        &["sweep", "--resume", "--dry-run", "--help"],
    ));
    let spec_path = exit_on_err(
        args.get("--spec")
            .ok_or_else(|| CliError::usage("error: sweep needs --spec FILE (see sweep --help)")),
    );
    let text = std::fs::read_to_string(&spec_path).unwrap_or_else(|e| {
        eprintln!("error: cannot read spec {spec_path:?}: {e}");
        std::process::exit(2);
    });
    let mut spec = SweepSpec::from_json(&text).unwrap_or_else(|e| {
        eprintln!("error: spec {spec_path:?}: {e}");
        std::process::exit(2);
    });
    exit_on_err(ndp_bench::cli::apply_sets(&mut spec.base, args));
    // Structural spec problems (empty axis, knob on two axes, bad knob
    // value) are usage errors — catch them before any process spawns or
    // file is touched.
    let grid = spec.expand().unwrap_or_else(|e| {
        eprintln!("error: spec {spec_path:?}: {e}");
        std::process::exit(2);
    });
    let fault = fault_plan_from_env();

    if args.has("--dry-run") {
        println!("sweep {}: {} grid points", spec.name, grid.len());
        for p in &grid {
            let coords: Vec<String> = p.coords.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!(
                "  [{:>3}] {}  cfg {}",
                p.index,
                coords.join(", "),
                config_fingerprint(&p.config)
            );
        }
        return;
    }

    let shard = args.get("--shard").map(|raw| {
        exit_on_err(ShardSpec::parse(&raw).map_err(|e| CliError::usage(format!("error: {e}"))))
    });
    let workers = exit_on_err(args.num("--workers"));
    if shard.is_some() && workers.is_some() {
        eprintln!("error: --shard and --workers are mutually exclusive");
        std::process::exit(2);
    }
    if (shard.is_some() || workers.is_some()) && args.get("--out").is_none() {
        eprintln!("error: --shard/--workers need --out FILE.jsonl");
        std::process::exit(2);
    }

    if let Some(workers) = workers {
        if workers == 0 {
            eprintln!("error: --workers must be at least 1");
            std::process::exit(2);
        }
        let out = args.get("--out").expect("checked above");
        let row_timeout = args.get("--row-timeout").map_or(600.0, |raw| {
            raw.parse::<f64>()
                .ok()
                .filter(|t| t.is_finite() && *t > 0.0)
                .unwrap_or_else(|| {
                    eprintln!(
                        "error: --row-timeout expects a positive number of seconds, got {raw:?}"
                    );
                    std::process::exit(2);
                })
        });
        let cfg = SupervisorConfig {
            spec_path,
            sets: args.get_all("--set"),
            out: std::path::PathBuf::from(out),
            workers,
            resume: args.has("--resume"),
            jobs: exit_on_err(args.num("--jobs")),
            row_timeout: std::time::Duration::from_secs_f64(row_timeout),
            max_retries: exit_on_err(args.num_u32("--max-retries")).unwrap_or(2),
            backoff: std::time::Duration::from_millis(
                exit_on_err(args.num("--backoff-ms")).unwrap_or(250),
            ),
        };
        let code = exit_on_err(supervise(&spec, &cfg));
        std::process::exit(code);
    }

    if let Some(out) = args.get("--out") {
        let opts = JsonlOptions {
            resume: args.has("--resume"),
            shard,
            fault,
        };
        let summary = run_sweep_jsonl_opts(&spec, std::path::Path::new(&out), &opts)
            .unwrap_or_else(|e| {
                eprintln!("error: {e}");
                std::process::exit(1);
            });
        for warning in &summary.warnings {
            eprintln!("warning: {warning}");
        }
        if let Some(sh) = shard {
            println!(
                "sweep {} shard {sh}: {} stripe points, {} executed, {} reused -> {}",
                spec.name,
                summary.grid,
                summary.executed,
                summary.reused,
                ndp_sim::shard::shard_path(std::path::Path::new(&out), sh).display()
            );
            println!("shard digest: {}", summary.digest);
        } else {
            println!(
                "sweep {}: {} grid points, {} executed, {} reused -> {}",
                spec.name, summary.grid, summary.executed, summary.reused, out
            );
            println!("sweep digest: {}", summary.digest);
        }
    } else {
        if args.has("--resume") {
            eprintln!("error: --resume needs --out FILE.jsonl");
            std::process::exit(2);
        }
        let result = run_sweep(&spec).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });
        println!("sweep {}: {} grid points", result.name, result.rows.len());
        for row in &result.rows {
            let coords: Vec<String> = row.coords.iter().map(|(k, v)| format!("{k}={v}")).collect();
            println!(
                "  [{:>3}] {}  cycles {}  cyc/op {:.1}",
                row.index,
                coords.join(", "),
                row.report.total_cycles.as_u64(),
                row.report.cpo()
            );
        }
        println!("sweep digest: {}", result.digest());
    }
}

/// Parses `--row-timeout SECS` (float, positive) with the sweep
/// command's semantics.
fn row_timeout_from_args(args: &Args) -> std::time::Duration {
    let secs = args.get("--row-timeout").map_or(600.0, |raw| {
        raw.parse::<f64>()
            .ok()
            .filter(|t| t.is_finite() && *t > 0.0)
            .unwrap_or_else(|| {
                eprintln!("error: --row-timeout expects a positive number of seconds, got {raw:?}");
                std::process::exit(2);
            })
    });
    std::time::Duration::from_secs_f64(secs)
}

/// `ndpsim serve`: the long-running experiment service (submit/status/
/// watch/cancel/shutdown over newline-delimited JSON on TCP).
fn run_serve_cmd(args: &Args) {
    if args.has("--help") {
        eprintln!(
            "usage: ndpsim serve --addr HOST:PORT [--state DIR] [--workers N] [--jobs N] \\\n\
             \x20                  [--row-timeout SECS] [--max-retries N] [--backoff-ms MS]\n\
             \n\
             Long-running experiment service. Binds HOST:PORT (port 0 = ephemeral;\n\
             the bound address is printed as a JSON line on stdout), accepts\n\
             newline-delimited JSON requests — submit / status / watch / cancel /\n\
             shutdown — and runs each submitted sweep spec through the sharded,\n\
             fault-tolerant supervisor (N worker subprocesses, always resuming).\n\
             Job state (journal, specs, row streams) lives under --state DIR\n\
             (default serve-state); a killed server restarted on the same state\n\
             dir re-enqueues interrupted jobs and reuses every completed row.\n\
             Clients: ndpsim submit|status|watch|cancel|shutdown --addr HOST:PORT."
        );
        return;
    }
    exit_on_err(args.reject_unknown(
        &[
            "--addr",
            "--state",
            "--jobs",
            "--workers",
            "--row-timeout",
            "--max-retries",
            "--backoff-ms",
        ],
        &["serve", "--help"],
    ));
    let addr = exit_on_err(args.get("--addr").ok_or_else(|| {
        CliError::usage("error: serve needs --addr HOST:PORT (port 0 picks an ephemeral port)")
    }));
    let workers = exit_on_err(args.num("--workers")).unwrap_or(2);
    if workers == 0 {
        eprintln!("error: --workers must be at least 1");
        std::process::exit(2);
    }
    let cfg = ServeConfig {
        addr,
        state: std::path::PathBuf::from(
            args.get("--state")
                .unwrap_or_else(|| "serve-state".to_string()),
        ),
        workers,
        jobs: exit_on_err(args.num("--jobs")),
        row_timeout: row_timeout_from_args(args),
        max_retries: exit_on_err(args.num_u32("--max-retries")).unwrap_or(2),
        backoff: std::time::Duration::from_millis(
            exit_on_err(args.num("--backoff-ms")).unwrap_or(250),
        ),
    };
    exit_on_err(serve(&cfg));
}

/// `ndpsim submit|status|watch|cancel|shutdown`: one client request to
/// a running `ndpsim serve`, response copied to stdout verbatim.
fn run_client_cmd(verb: &str, args: &Args) {
    if args.has("--help") {
        eprintln!(
            "usage: ndpsim submit   --addr HOST:PORT --spec FILE\n\
             \x20      ndpsim status   --addr HOST:PORT [--job ID]\n\
             \x20      ndpsim watch    --addr HOST:PORT --job ID [--from N]\n\
             \x20      ndpsim cancel   --addr HOST:PORT --job ID\n\
             \x20      ndpsim shutdown --addr HOST:PORT\n\
             \n\
             Talks to a running `ndpsim serve`. submit enqueues a sweep spec and\n\
             prints its deterministic job id; watch streams completed rows as\n\
             JSONL in grid order (byte-identical to an offline `ndpsim sweep` of\n\
             the same spec), resumable with --from N; cancel kills the job's\n\
             workers but keeps completed rows. Exits 1 if the server answers\n\
             with a structured {{\"ok\":false,...}} error record."
        );
        return;
    }
    let code = exit_on_err(ndp_bench::client::run_verb(verb, args));
    std::process::exit(code);
}

fn run_single(args: &Args) {
    if args.has("--help") || args.raw().is_empty() {
        eprintln!(
            "usage: ndpsim [flags]        run one simulation (flags below)\n\
             \x20      ndpsim sweep ...    declarative spec sweep (sweep --help)\n\
             \x20      ndpsim bench [--runs N] [--out FILE] [--baseline FILE] \\\n\
             \x20                   [--check-digest] [--min-speedup X] [--jobs N]\n\
             \n\
             Each run flag sets the registered knob of the same row; `--set\n\
             knob=value` (repeatable, applied last) reaches every knob, flagged\n\
             or not. --jobs N caps the parallel driver's workers (wins over\n\
             NDP_THREADS); --histogram prints the PTW latency histogram.\n\
             {}",
            knob_help_table()
        );
        return;
    }
    exit_on_err(args.reject_unknown(&ndpsim_value_flags(), NDPSIM_BOOL_FLAGS));
    let cfg = exit_on_err(config_from_args(args));

    let report = Machine::new(cfg).run();
    println!("{report}\n");

    println!("PWC hit rates:");
    for (level, hm) in &report.pwc {
        println!(
            "  {level:<8} {:.2}%  ({} probes)",
            hm.hit_rate() * 100.0,
            hm.total()
        );
    }

    if args.has("--histogram") && report.ptw_histogram.count() > 0 {
        println!("\nPTW latency histogram (cycles):");
        let total = report.ptw_histogram.count() as f64;
        for (lower, count) in report.ptw_histogram.iter() {
            let share = count as f64 / total;
            println!(
                "  >= {lower:>7}: {:<40} {:.1}%",
                "#".repeat((share * 40.0).ceil() as usize),
                share * 100.0
            );
        }
        println!(
            "  p50 ~{} cyc, p99 ~{} cyc",
            report.ptw_histogram.quantile(0.5),
            report.ptw_histogram.quantile(0.99)
        );
    }
}

fn main() {
    let args = Args::from_env();
    // Validate the parallelism knobs up front (a malformed NDP_THREADS or
    // --jobs must exit cleanly, not panic mid-run); --jobs wins.
    exit_on_err(install_jobs(&args));

    match args.raw().first().map(String::as_str) {
        Some("bench") => {
            if args.has("--help") {
                eprintln!(
                    "usage: ndpsim bench [--runs N] [--out FILE] [--baseline FILE] \\\n\
                     \x20                   [--check-digest] [--min-speedup X] [--jobs N]"
                );
                return;
            }
            exit_on_err(args.reject_unknown(
                &["--runs", "--out", "--baseline", "--min-speedup", "--jobs"],
                &["bench", "--check-digest", "--help"],
            ));
            run_bench(&args);
        }
        Some("sweep") => run_sweep_cmd(&args),
        Some("serve") => run_serve_cmd(&args),
        Some(verb @ ("submit" | "status" | "watch" | "cancel" | "shutdown")) => {
            // Borrow ends before args is used again below.
            let verb = verb.to_string();
            run_client_cmd(&verb, &args);
        }
        _ => run_single(&args),
    }
}
