//! `ndpsim` — run one simulation with explicit knobs and print the full
//! report (including the PTW latency histogram and PWC profile).
//!
//! ```text
//! cargo run -p ndp-bench --release --bin ndpsim -- \
//!     --workload BFS --mechanism ndpage --system ndp --cores 4 \
//!     [--footprint-mb 2048] [--ops 50000] [--warmup 20000] [--seed 7] \
//!     [--pwc-entries 64] [--tlb-l2 1536] [--no-fracture] \
//!     [--window 8] [--mshrs 8] [--walkers 1]
//! ```
//!
//! `--window` sets the per-core issue window (1 = the blocking core; more
//! overlaps independent memory ops) and implies matching MSHRs unless
//! `--mshrs` narrows the miss file; `--walkers` sets the hardware
//! page-table walkers concurrent walks queue for.
//!
//! `--l3-kb` enables a shared banked L3 every core's private misses
//! contend in (`--l3-ways`/`--l3-banks`/`--l3-policy` shape it; all
//! inert while `--l3-kb` is absent), and `--vault-kb` adds a per-vault
//! buffer in front of each memory channel. The defaults (both off) are
//! cycle-identical to the pre-shared-LLC engine.
//!
//! The `bench` subcommand instead times a fixed end-to-end experiment
//! sweep (the engine behind every figure) and writes the result as JSON,
//! tracking the simulator's own throughput across PRs:
//!
//! ```text
//! # Baseline (seed hot path), then current, with the speedup computed:
//! cargo run --release --features legacy_hotpath -p ndp-bench --bin ndpsim -- \
//!     bench --out BENCH_baseline.json
//! cargo run --release -p ndp-bench --bin ndpsim -- \
//!     bench --out BENCH_end_to_end.json --baseline BENCH_baseline.json
//! ```

use ndp_sim::config::InclusionPolicy;
use ndp_sim::experiment::run_batch;
use ndp_sim::sweeps::{mlp_sweep, pwc_size_sweep, shared_llc_sweep};
use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;
use std::time::Instant;

fn parse_mechanism(s: &str) -> Option<Mechanism> {
    Mechanism::ALL.into_iter().find(|m| {
        m.name()
            .replace(' ', "")
            .eq_ignore_ascii_case(&s.replace(['-', '_', ' '], ""))
    })
}

fn parse_workload(s: &str) -> Option<WorkloadId> {
    WorkloadId::ALL
        .into_iter()
        .find(|w| w.name().eq_ignore_ascii_case(s))
}

/// Exits with a message listing the valid spellings — an unrecognised
/// value must never silently run some default configuration instead.
fn die_unknown(flag: &str, got: &str, valid: &[String]) -> ! {
    eprintln!(
        "error: unrecognized {flag} {got:?}; valid values: {}",
        valid.join(", ")
    );
    std::process::exit(2);
}

fn workload_names() -> Vec<String> {
    WorkloadId::ALL
        .iter()
        .map(|w| w.name().to_string())
        .collect()
}

fn mechanism_names() -> Vec<String> {
    Mechanism::ALL
        .iter()
        .map(|m| m.name().replace(' ', "").to_lowercase())
        .collect()
}

/// The fixed benchmark sweep: the Figs 12–14 engine (every mechanism on
/// two contrasting workloads, 2 cores) plus a 3-point PWC-capacity sweep —
/// 16 full machine constructions + runs per pass.
fn bench_sweep_pass() -> (u64, u64) {
    let figure_cfgs: Vec<SimConfig> = [WorkloadId::Rnd, WorkloadId::Bfs]
        .iter()
        .flat_map(|&w| {
            Mechanism::ALL.iter().map(move |&m| {
                SimConfig::new(SystemKind::Ndp, 2, m, w)
                    .with_ops(4_000, 8_000)
                    .with_footprint(512 << 20)
            })
        })
        .collect();
    let mut sim_ops: u64 = figure_cfgs
        .iter()
        .map(|c| u64::from(c.cores) * (c.warmup_ops + c.measure_ops))
        .sum();
    let mut digest = 0u64;
    for report in run_batch(figure_cfgs) {
        digest ^= report.fingerprint();
    }

    let base = SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, WorkloadId::Rnd)
        .with_ops(4_000, 8_000)
        .with_footprint(512 << 20);
    let sizes = [16usize, 64, 256];
    sim_ops += sizes.len() as u64 * 2 * 4 * (base.warmup_ops + base.measure_ops);
    for point in pwc_size_sweep(WorkloadId::Rnd, &sizes, &base) {
        digest ^= point.radix.fingerprint() ^ point.ndpage.fingerprint();
    }
    (sim_ops, digest)
}

/// Issue-window sizes of the bench MLP sweep — also the `windows` field
/// of the emitted JSON, so the two can never diverge.
const BENCH_MLP_WINDOWS: [u32; 3] = [1, 4, 8];

/// Shared-L3 capacities of the bench LLC sweep — also the `l3_kbs`
/// field of the emitted JSON.
const BENCH_LLC_KBS: [u32; 2] = [512, 4096];

/// The shared-LLC benchmark sweep: Radix and NDPage co-run
/// multiprogrammed under a small and an ample shared L3 (the co-runner
/// interference study). Returns `(sim_ops, digest, ndpage speedup under
/// pressure, ndpage speedup with ample capacity)`.
fn bench_llc_pass() -> (u64, u64, f64, f64) {
    let base = SimConfig::new(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Bfs)
        .with_ops(4_000, 8_000)
        .with_footprint(512 << 20);
    let sizes = BENCH_LLC_KBS;
    let sim_ops = sizes.len() as u64 * 2 * 2 * (base.warmup_ops + base.measure_ops);
    let points = shared_llc_sweep(WorkloadId::Bfs, &sizes, &base);
    let mut digest = 0u64;
    for point in &points {
        digest ^= point.radix.fingerprint() ^ point.ndpage.fingerprint();
    }
    let pressured = points.first().expect("small-L3 point").ndpage_speedup();
    let ample = points.last().expect("large-L3 point").ndpage_speedup();
    (sim_ops, digest, pressured, ample)
}

/// The MLP benchmark sweep: Radix and NDPage over issue-window sizes
/// (window 1 = the blocking engine, so this digest also re-anchors the
/// blocking path). Returns `(sim_ops, digest, ndpage speedup at the
/// widest window, ndpage speedup when blocking)`.
fn bench_mlp_pass() -> (u64, u64, f64, f64) {
    let base = SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, WorkloadId::Bfs)
        .with_ops(4_000, 8_000)
        .with_footprint(512 << 20);
    let windows = BENCH_MLP_WINDOWS;
    let sim_ops = windows.len() as u64 * 2 * 4 * (base.warmup_ops + base.measure_ops);
    let points = mlp_sweep(WorkloadId::Bfs, &windows, &base);
    let mut digest = 0u64;
    for point in &points {
        digest ^= point.radix.fingerprint() ^ point.ndpage.fingerprint();
    }
    let blocking = points.first().expect("window 1 point").ndpage_speedup();
    let widest = points.last().expect("window 8 point").ndpage_speedup();
    (sim_ops, digest, widest, blocking)
}

fn run_bench(get: impl Fn(&str) -> Option<String>, has: impl Fn(&str) -> bool) {
    let runs: usize = get("--runs")
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
        .max(1);
    let out = get("--out").unwrap_or_else(|| "BENCH_end_to_end.json".to_string());
    let mode = if cfg!(feature = "legacy_hotpath") {
        "legacy"
    } else {
        "fast"
    };
    let threads = ndp_sim::parallel::default_threads();

    let mut walls = Vec::with_capacity(runs);
    let mut sim_ops = 0u64;
    let mut digest = 0u64;
    for i in 0..runs {
        let t0 = Instant::now();
        let (ops, d) = bench_sweep_pass();
        let wall = t0.elapsed().as_secs_f64();
        sim_ops = ops;
        digest = d;
        eprintln!("pass {}/{}: {:.3} s", i + 1, runs, wall);
        walls.push(wall);
    }
    let best = walls.iter().cloned().fold(f64::INFINITY, f64::min);
    let ops_per_sec = sim_ops as f64 / best;

    // The MLP sweep runs once, outside the timed passes, so `best_wall_s`
    // stays comparable with benchmark files from before the pipeline.
    let t0 = Instant::now();
    let (mlp_ops, mlp_digest, mlp_speedup_w8, mlp_speedup_w1) = bench_mlp_pass();
    let mlp_wall = t0.elapsed().as_secs_f64();
    eprintln!("mlp pass: {mlp_wall:.3} s");

    // So does the shared-LLC sweep (its digest covers the shared-L3
    // counters, which only exist when the layer is enabled).
    let t0 = Instant::now();
    let (llc_ops, llc_digest, llc_speedup_small, llc_speedup_large) = bench_llc_pass();
    let llc_wall = t0.elapsed().as_secs_f64();
    eprintln!("llc pass: {llc_wall:.3} s");

    // A missing --baseline flag is fine (the speedup fields are simply
    // omitted); a *named* baseline that cannot be read or parsed is an
    // error — silently dropping it would let the CI gates misfire with a
    // misleading "need --baseline" diagnosis.
    let baseline = get("--baseline").map(|path| {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read baseline {path:?}: {e}");
            std::process::exit(2);
        });
        let wall = json_f64(&text, "best_wall_s").unwrap_or_else(|| {
            eprintln!("error: baseline {path:?} has no best_wall_s field");
            std::process::exit(2);
        });
        let mode = json_str(&text, "mode").unwrap_or_else(|| "unknown".to_string());
        // All three digests gate --check-digest: the blocking sweep, the
        // windowed MLP sweep and the shared-LLC sweep must each be
        // bit-identical across hot-path modes (mlp_digest/llc_digest are
        // absent from baselines predating their sweep).
        let digest = json_u64(&text, "report_digest");
        let base_mlp_digest = json_u64(&text, "mlp_digest");
        let base_llc_digest = json_u64(&text, "llc_digest");
        (mode, wall, digest, base_mlp_digest, base_llc_digest)
    });

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"end_to_end_sweep\",\n");
    json.push_str(&format!("  \"mode\": \"{mode}\",\n"));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"runs\": {runs},\n"));
    json.push_str("  \"machine_runs_per_pass\": 16,\n");
    json.push_str(&format!("  \"simulated_ops_per_pass\": {sim_ops},\n"));
    json.push_str(&format!("  \"report_digest\": {digest},\n"));
    json.push_str(&format!(
        "  \"wall_s_per_pass\": [{}],\n",
        walls
            .iter()
            .map(|w| format!("{w:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!("  \"best_wall_s\": {best:.4},\n"));
    json.push_str("  \"mlp_sweep\": {\n");
    json.push_str(&format!(
        "    \"windows\": [{}],\n",
        BENCH_MLP_WINDOWS.map(|w| w.to_string()).join(", ")
    ));
    json.push_str(&format!("    \"mlp_simulated_ops\": {mlp_ops},\n"));
    json.push_str(&format!("    \"mlp_digest\": {mlp_digest},\n"));
    json.push_str(&format!(
        "    \"ndpage_speedup_blocking\": {mlp_speedup_w1:.4},\n"
    ));
    json.push_str(&format!(
        "    \"ndpage_speedup_window8\": {mlp_speedup_w8:.4},\n"
    ));
    json.push_str(&format!("    \"mlp_wall_s\": {mlp_wall:.4}\n"));
    json.push_str("  },\n");
    json.push_str("  \"llc_sweep\": {\n");
    json.push_str(&format!(
        "    \"l3_kbs\": [{}],\n",
        BENCH_LLC_KBS.map(|kb| kb.to_string()).join(", ")
    ));
    json.push_str(&format!("    \"llc_simulated_ops\": {llc_ops},\n"));
    json.push_str(&format!("    \"llc_digest\": {llc_digest},\n"));
    json.push_str(&format!(
        "    \"ndpage_speedup_small_l3\": {llc_speedup_small:.4},\n"
    ));
    json.push_str(&format!(
        "    \"ndpage_speedup_large_l3\": {llc_speedup_large:.4},\n"
    ));
    json.push_str(&format!("    \"llc_wall_s\": {llc_wall:.4}\n"));
    json.push_str("  },\n");
    if let Some((base_mode, base_wall, _, _, _)) = &baseline {
        json.push_str(&format!("  \"ops_per_sec\": {ops_per_sec:.1},\n"));
        json.push_str(&format!("  \"baseline_mode\": \"{base_mode}\",\n"));
        json.push_str(&format!("  \"baseline_best_wall_s\": {base_wall:.4},\n"));
        json.push_str(&format!(
            "  \"speedup_over_baseline\": {:.3}\n",
            base_wall / best
        ));
    } else {
        json.push_str(&format!("  \"ops_per_sec\": {ops_per_sec:.1}\n"));
    }
    json.push_str("}\n");

    std::fs::write(&out, &json).expect("write bench JSON");
    println!("{json}");
    println!("wrote {out}");
    if let Some((base_mode, base_wall, base_digest, base_mlp_digest, base_llc_digest)) = baseline {
        println!(
            "speedup vs {base_mode} baseline: {:.2}x ({:.3} s -> {:.3} s)",
            base_wall / best,
            base_wall,
            best
        );
        // CI gates: the simulated results — blocking sweep and windowed
        // MLP sweep alike — must be bit-identical across hot-path modes,
        // and the overhaul's speedup must not regress.
        if has("--check-digest") {
            match base_digest {
                Some(b) if b == digest => eprintln!("digest check: ok ({digest})"),
                Some(b) => {
                    eprintln!("error: report digest {digest} != baseline digest {b}");
                    std::process::exit(1);
                }
                None => {
                    eprintln!("error: --check-digest but baseline has no report_digest");
                    std::process::exit(1);
                }
            }
            match base_mlp_digest {
                Some(b) if b == mlp_digest => eprintln!("mlp digest check: ok ({mlp_digest})"),
                Some(b) => {
                    eprintln!("error: mlp digest {mlp_digest} != baseline mlp digest {b}");
                    std::process::exit(1);
                }
                // Pre-pipeline baseline files carry no mlp_digest; the
                // blocking gate above still applies.
                None => eprintln!("mlp digest check: skipped (baseline has none)"),
            }
            match base_llc_digest {
                Some(b) if b == llc_digest => eprintln!("llc digest check: ok ({llc_digest})"),
                Some(b) => {
                    eprintln!("error: llc digest {llc_digest} != baseline llc digest {b}");
                    std::process::exit(1);
                }
                // Pre-shared-LLC baseline files carry no llc_digest.
                None => eprintln!("llc digest check: skipped (baseline has none)"),
            }
        }
        if let Some(floor) = get("--min-speedup") {
            let floor: f64 = floor.unwrap_or_die("--min-speedup");
            let speedup = base_wall / best;
            if speedup < floor {
                eprintln!("error: speedup {speedup:.3}x fell below the {floor:.3}x floor");
                std::process::exit(1);
            }
            eprintln!("speedup floor check: ok ({speedup:.3}x >= {floor:.3}x)");
        }
    } else if has("--check-digest") || get("--min-speedup").is_some() {
        eprintln!("error: --check-digest/--min-speedup need --baseline");
        std::process::exit(2);
    }
}

/// Parse-or-exit helper for flag values.
trait ParseOrDie {
    fn unwrap_or_die(self, flag: &str) -> f64;
}

impl ParseOrDie for String {
    fn unwrap_or_die(self, flag: &str) -> f64 {
        self.parse().unwrap_or_else(|_| {
            eprintln!("error: {flag} expects a number, got {self:?}");
            std::process::exit(2);
        })
    }
}

/// Extracts `"key": <number>` from a flat JSON object (no serde in-tree).
fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": <integer>` losslessly (digests exceed f64's 53-bit
/// mantissa, so they must never round-trip through a float).
fn json_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<string>"` from a flat JSON object.
fn json_str(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

fn main() {
    // Reject a malformed NDP_THREADS up front with a clean exit; the
    // parallel driver would otherwise panic mid-run with the same message.
    if let Err(e) = ndp_sim::parallel::env_thread_count() {
        eprintln!("error: {e}");
        std::process::exit(2);
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |flag: &str| args.iter().any(|a| a == flag);

    if args.first().map(String::as_str) == Some("bench") {
        if has("--help") {
            eprintln!(
                "usage: ndpsim bench [--runs N] [--out FILE] [--baseline FILE] \\\n\
                 \x20                   [--check-digest] [--min-speedup X]"
            );
            return;
        }
        run_bench(get, has);
        return;
    }

    if has("--help") || args.is_empty() {
        eprintln!(
            "usage: ndpsim --workload <BC|BFS|CC|GC|PR|TC|SP|XS|RND|DLRM|GEN> \\\n\
             \x20             --mechanism <radix|ech|hugepage|ndpage|ideal> \\\n\
             \x20             [--system ndp|cpu] [--cores N] [--footprint-mb MB] \\\n\
             \x20             [--ops N] [--warmup N] [--seed S] [--pwc-entries N] \\\n\
             \x20             [--tlb-l2 N] [--no-fracture] [--histogram] \\\n\
             \x20             [--procs N] [--quantum OPS] [--switch-cost CYC] [--no-asid] \\\n\
             \x20             [--window N] [--mshrs N] [--walkers N] \\\n\
             \x20             [--l3-kb N] [--l3-ways N] [--l3-banks N] \\\n\
             \x20             [--l3-policy inclusive|exclusive] [--vault-kb N]\n\
             \x20      ndpsim bench [--runs N] [--out FILE] [--baseline FILE] \\\n\
             \x20                   [--check-digest] [--min-speedup X]"
        );
        return;
    }

    // Flags may be omitted (defaults apply), but a *present* flag with an
    // unrecognised value is an error, never a silent substitution.
    let workload = get("--workload").map_or(WorkloadId::Bfs, |s| {
        parse_workload(&s).unwrap_or_else(|| die_unknown("--workload", &s, &workload_names()))
    });
    let mechanism = get("--mechanism").map_or(Mechanism::NdPage, |s| {
        parse_mechanism(&s).unwrap_or_else(|| die_unknown("--mechanism", &s, &mechanism_names()))
    });
    let system = match get("--system").as_deref() {
        None | Some("ndp") => SystemKind::Ndp,
        Some("cpu") => SystemKind::Cpu,
        Some(other) => die_unknown("--system", other, &["ndp".into(), "cpu".into()]),
    };
    // Numeric flags follow the same contract: absent applies the default,
    // present-but-unparseable is an error.
    let num = |flag: &str| -> Option<u64> {
        get(flag).map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("error: {flag} expects a non-negative integer, got {s:?}");
                std::process::exit(2);
            })
        })
    };
    // ... and out-of-range is an error too, never a silent wrap.
    let num_u32 = |flag: &str| -> Option<u32> {
        num(flag).map(|n| {
            u32::try_from(n).unwrap_or_else(|_| {
                eprintln!("error: {flag} value {n} exceeds {}", u32::MAX);
                std::process::exit(2);
            })
        })
    };
    let cores: u32 = num_u32("--cores").unwrap_or(1);

    let mut cfg = SimConfig::new(system, cores, mechanism, workload);
    if let Some(procs) = num_u32("--procs") {
        cfg.procs_per_core = procs;
    }
    if let Some(quantum) = num("--quantum") {
        cfg.context_switch_quantum_ops = quantum;
    }
    if let Some(cost) = num("--switch-cost") {
        cfg.context_switch_cost = ndp_types::Cycles::new(cost);
    }
    if has("--no-asid") {
        cfg.tlb_tagging = false;
    }
    if let Some(window) = num_u32("--window") {
        cfg.mlp_window = window;
        // A wider window usually wants matching MSHRs; default to that
        // unless --mshrs overrides below.
        cfg.mshrs_per_core = window.max(1);
    }
    if let Some(mshrs) = num_u32("--mshrs") {
        cfg.mshrs_per_core = mshrs;
    }
    if let Some(walkers) = num_u32("--walkers") {
        cfg.walkers_per_core = walkers;
    }
    if let Some(kb) = num_u32("--l3-kb") {
        cfg.l3_kb = kb;
    }
    if let Some(ways) = num_u32("--l3-ways") {
        cfg.l3_ways = ways;
    }
    if let Some(banks) = num_u32("--l3-banks") {
        cfg.l3_banks = banks;
    }
    if let Some(policy) = get("--l3-policy") {
        cfg.l3_policy = InclusionPolicy::parse(&policy).unwrap_or_else(|| {
            let valid: Vec<String> = InclusionPolicy::ALL
                .iter()
                .map(|p| p.name().to_string())
                .collect();
            die_unknown("--l3-policy", &policy, &valid)
        });
    }
    if let Some(kb) = num_u32("--vault-kb") {
        cfg.vault_buffer_kb = kb;
    }
    if let Some(mb) = num("--footprint-mb") {
        cfg.footprint_override = Some(mb << 20);
    } else {
        cfg.footprint_override = Some(1 << 30); // CLI default: fast
    }
    if let Some(ops) = num("--ops") {
        cfg.measure_ops = ops;
    } else {
        cfg.measure_ops = 30_000;
    }
    cfg.warmup_ops = num("--warmup").unwrap_or(cfg.measure_ops / 3);
    if let Some(seed) = num("--seed") {
        cfg.seed = seed;
    }
    if let Some(entries) = num("--pwc-entries") {
        cfg.pwc_entries = Some(entries as usize);
    }
    if let Some(entries) = num_u32("--tlb-l2") {
        cfg.tlb_l2_entries = Some(entries);
    }
    if has("--no-fracture") {
        cfg.tlb_fracture_huge = Some(false);
    }

    if let Err(e) = cfg.validate() {
        eprintln!("{e}");
        std::process::exit(1);
    }

    let report = Machine::new(cfg).run();
    println!("{report}\n");

    println!("PWC hit rates:");
    for (level, hm) in &report.pwc {
        println!(
            "  {level:<8} {:.2}%  ({} probes)",
            hm.hit_rate() * 100.0,
            hm.total()
        );
    }

    if has("--histogram") && report.ptw_histogram.count() > 0 {
        println!("\nPTW latency histogram (cycles):");
        let total = report.ptw_histogram.count() as f64;
        for (lower, count) in report.ptw_histogram.iter() {
            let share = count as f64 / total;
            println!(
                "  >= {lower:>7}: {:<40} {:.1}%",
                "#".repeat((share * 40.0).ceil() as usize),
                share * 100.0
            );
        }
        println!(
            "  p50 ~{} cyc, p99 ~{} cyc",
            report.ptw_histogram.quantile(0.5),
            report.ptw_histogram.quantile(0.99)
        );
    }
}
