#![forbid(unsafe_code)]
//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p ndp-bench --release --bin figures -- [--quick] [--jobs N] <what>...
//! ```
//!
//! `<what>` ∈ {table1, table2, fig4, fig5, fig6, fig7, fig8, pwc,
//! fig12, fig13, fig14, ablation, sweeps, all}. `--quick` uses small
//! footprints and windows (seconds instead of minutes); EXPERIMENTS.md
//! records the full-scale output. Every simulated table's header names
//! the scale it was produced at. `--jobs N` caps the parallel driver's
//! workers (wins over `NDP_THREADS`, exactly as in `ndpsim`).

use ndp_bench::cli::{exit_on_err, install_jobs, Args};
use ndp_bench::{pct, print_table, spd, AblationVariant};
use ndp_sim::experiment::{
    geomean_speedups, miss_rate_figure, motivation_figures, occupancy_figure, run, scaling_figure,
    speedup_figure, Scale,
};
use ndp_sim::{SimConfig, SystemKind};
use ndp_types::PtLevel;
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn main() {
    // Fail fast (and cleanly) on a malformed NDP_THREADS or --jobs
    // rather than panicking once the first sweep fans out; --jobs wins
    // over the env var, consistently with ndpsim.
    let args = Args::from_env();
    exit_on_err(install_jobs(&args));
    // A typo'd flag or figure name must error out, not silently run the
    // wrong (possibly hours-long, full-scale) set.
    exit_on_err(args.reject_unknown(&["--jobs", "--from-jsonl"], &["--quick", "--help"]));

    // Stored-row mode: render tables from a sweep JSONL file without
    // re-simulating anything (same renderer as the simulated path, same
    // group-mean code as `calibrate --check --from`).
    if let Some(path) = args.get("--from-jsonl") {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let tables = ndp_bench::calibration::jsonl_tables(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        });
        println!("\n=== Stored rows: {path} ===\n");
        print!("{tables}");
        return;
    }
    const WHATS: &[&str] = &[
        "table1",
        "table2",
        "calibration",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "pwc",
        "fig12",
        "fig13",
        "fig14",
        "ablation",
        "sweeps",
        "all",
    ];
    if args.has("--help") {
        eprintln!(
            "usage: figures [--quick] [--jobs N] <what>...\n\
             \x20      figures --from-jsonl FILE.jsonl   render tables from stored rows\n\
             <what>: {}",
            WHATS.join(", ")
        );
        return;
    }
    let quick = args.has("--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let jobs_value = args.get("--jobs");
    let what: Vec<&str> = args
        .raw()
        .iter()
        .filter(|a| !a.starts_with("--") && Some(*a) != jobs_value.as_ref())
        .map(String::as_str)
        .collect();
    for w in &what {
        if !WHATS.contains(w) {
            eprintln!(
                "error: unrecognized figure {w:?}; valid values: {}",
                WHATS.join(", ")
            );
            std::process::exit(2);
        }
    }
    let what = if what.is_empty() { vec!["all"] } else { what };
    let all = what.contains(&"all");

    let workloads = WorkloadId::ALL;

    if all || what.contains(&"table1") {
        table1();
    }
    if all || what.contains(&"table2") {
        table2();
    }
    if all || what.contains(&"calibration") {
        calibration_targets();
    }
    if all || what.contains(&"fig4") || what.contains(&"fig5") {
        fig4_fig5(scale, &workloads);
    }
    if all || what.contains(&"fig6") {
        fig6(scale, &workloads);
    }
    if all || what.contains(&"fig7") {
        fig7(scale, &workloads);
    }
    if all || what.contains(&"fig8") {
        fig8(scale, &workloads);
    }
    if all || what.contains(&"pwc") {
        pwc(scale);
    }
    for (arg, cores) in [("fig12", 1u32), ("fig13", 4), ("fig14", 8)] {
        if all || what.contains(&arg) {
            speedups(arg, cores, scale, &workloads);
        }
    }
    if all || what.contains(&"ablation") {
        ablation(scale);
    }
    if all || what.contains(&"sweeps") {
        sweeps(scale);
    }
}

fn sweeps(scale: Scale) {
    use ndp_sim::sweeps::{
        context_switch_sweep, fracturing_ablation, mlp_sweep, pwc_size_sweep, shared_llc_sweep,
        tlb_reach_sweep,
    };
    let base = scale.apply(SimConfig::new(
        SystemKind::Ndp,
        4,
        Mechanism::Radix,
        WorkloadId::Rnd,
    ));

    println!(
        "\n=== Extension: PWC-size sweep (RND, 4-core NDP) [{} scale] ===\n",
        scale.name()
    );
    let rows: Vec<Vec<String>> = pwc_size_sweep(WorkloadId::Rnd, &[8, 16, 64, 256, 1024], &base)
        .iter()
        .map(|p| {
            vec![
                p.entries.to_string(),
                format!("{:.1}", p.radix.avg_ptw_latency()),
                format!("{:.1}", p.ndpage.avg_ptw_latency()),
                spd(p.ndpage_speedup()),
            ]
        })
        .collect();
    print_table(
        &["PWC entries", "Radix PTW", "NDPage PTW", "NDPage speedup"],
        &rows,
    );

    println!(
        "\n=== Extension: L2-TLB reach sweep (RND, 4-core NDP) [{} scale] ===\n",
        scale.name()
    );
    let rows: Vec<Vec<String>> = tlb_reach_sweep(WorkloadId::Rnd, &[384, 1536, 6144], &base)
        .iter()
        .map(|p| {
            vec![
                p.entries.to_string(),
                pct(p.radix.tlb_walk_rate()),
                spd(p.ndpage.speedup_over(&p.radix)),
            ]
        })
        .collect();
    print_table(
        &["L2 TLB entries", "Radix walk rate", "NDPage speedup"],
        &rows,
    );

    println!(
        "\n=== Extension: Huge Page TLB-fracturing ablation (RND, 1-core) [{} scale] ===\n",
        scale.name()
    );
    let ab = fracturing_ablation(WorkloadId::Rnd, &base);
    let rows = vec![
        vec![
            "fractured (paper)".into(),
            pct(ab.fractured.tlb_walk_rate()),
            spd(ab.fractured.speedup_over(&ab.radix)),
        ],
        vec![
            "native 2MB entries".into(),
            pct(ab.native.tlb_walk_rate()),
            spd(ab.native.speedup_over(&ab.radix)),
        ],
    ];
    print_table(&["Huge Page TLB", "walk rate", "speedup vs Radix"], &rows);

    println!(
        "\n=== Extension: context-switch sweep (BFS, 2-core NDP, 2 procs/core) [{} scale] ===\n",
        scale.name()
    );
    let rows: Vec<Vec<String>> = context_switch_sweep(WorkloadId::Bfs, &[2_000, 10_000], &base)
        .iter()
        .map(|p| {
            vec![
                p.quantum.to_string(),
                format!("{:.3}x", p.flush_penalty(Mechanism::Radix)),
                format!("{:.3}x", p.flush_penalty(Mechanism::NdPage)),
                format!("{:.0} cyc", p.post_flush_walk_cost(Mechanism::Radix)),
                format!("{:.0} cyc", p.post_flush_walk_cost(Mechanism::NdPage)),
                format!("{:.2}x", p.ndpage_recovery_advantage()),
            ]
        })
        .collect();
    print_table(
        &[
            "quantum (ops)",
            "Radix flush penalty",
            "NDPage flush penalty",
            "Radix re-warm walk",
            "NDPage re-warm walk",
            "NDPage recovery adv.",
        ],
        &rows,
    );

    println!(
        "\n=== Extension: MLP sweep (BFS, 4-core NDP, MSHRs = window) [{} scale] ===\n",
        scale.name()
    );
    let rows: Vec<Vec<String>> = mlp_sweep(WorkloadId::Bfs, &[1, 2, 4, 8, 16], &base)
        .iter()
        .map(|p| {
            vec![
                p.window.to_string(),
                format!("{:.1}", p.radix.cpo()),
                format!("{:.1}", p.ndpage.cpo()),
                format!("{:.2}", p.radix.achieved_mlp()),
                format!("{:.0} cyc", p.radix.mlp.walker_queue_delay()),
                format!("{:.0} cyc", p.ndpage.mlp.walker_queue_delay()),
                spd(p.ndpage_speedup()),
            ]
        })
        .collect();
    print_table(
        &[
            "window",
            "Radix cyc/op",
            "NDPage cyc/op",
            "Radix MLP",
            "Radix walker wait",
            "NDPage walker wait",
            "NDPage speedup",
        ],
        &rows,
    );
    println!(
        "\nData misses overlap with the window; page walks still queue for\n\
         the hardware walker — so translation's share of every op grows\n\
         with MLP, and NDPage's one-fetch walks pay off more, not less."
    );

    println!(
        "\n=== Extension: shared-LLC interference sweep \
         (RND, 2-core NDP, 2 procs/core) [{} scale] ===\n",
        scale.name()
    );
    let rows: Vec<Vec<String>> = shared_llc_sweep(WorkloadId::Rnd, &[0, 256, 2048, 8192], &base)
        .iter()
        .map(|p| {
            let l3 = p.radix.l3.as_ref();
            vec![
                if p.l3_kb == 0 {
                    "off".into()
                } else {
                    format!("{} KB", p.l3_kb)
                },
                pct(p.radix_l3_metadata_hit_rate()),
                l3.map_or_else(|| "-".into(), |s| s.bank_conflicts.to_string()),
                l3.map_or_else(|| "-".into(), |s| s.back_invalidations.to_string()),
                spd(p.ndpage_speedup()),
            ]
        })
        .collect();
    print_table(
        &[
            "shared L3",
            "Radix PTE hit",
            "bank conflicts",
            "back-invals",
            "NDPage speedup",
        ],
        &rows,
    );
    println!(
        "\nOnly Radix's translation path depends on shared capacity: its PTE\n\
         fetches lose their L3 hits as co-runners squeeze the cache, while\n\
         NDPage's bypassed fetches never probe it — so the gap between the\n\
         mechanisms moves with cache pressure, the paper's central claim."
    );
}

fn table1() {
    println!("\n=== Table I: simulated system configuration ===\n");
    let rows = vec![
        vec![
            "Core".into(),
            "1/4/8 x86-64 2.6 GHz core(s)".into(),
            "same".into(),
        ],
        vec![
            "Cache".into(),
            "L1D 32KB/8w/4cyc only".into(),
            "L1D 32KB/8w/4cyc + L2 512KB/16w/16cyc + L3 2MB/core/16w/35cyc".into(),
        ],
        vec![
            "MMU".into(),
            "L1 DTLB 64e/4w/1cyc, L2 TLB 1536e/12cyc, 64e PWC per level".into(),
            "same".into(),
        ],
        vec![
            "Interconnect".into(),
            "mesh, 4-cycle hop (logic layer)".into(),
            "mesh, 4-cycle hop + off-chip penalty".into(),
        ],
        vec![
            "Memory".into(),
            "HBM2 16GB (vault view: 4ch x 6 banks)".into(),
            "DDR4-2400 16GB (2ch x 16 banks)".into(),
        ],
    ];
    print_table(&["component", "NDP system", "CPU system"], &rows);
}

fn table2() {
    println!("\n=== Table II: evaluated workloads ===\n");
    let rows: Vec<Vec<String>> = WorkloadId::ALL
        .iter()
        .map(|w| {
            vec![
                w.suite().to_string(),
                w.name().to_string(),
                format!("{} GB", w.table2_footprint() >> 30),
            ]
        })
        .collect();
    print_table(&["suite", "workload", "dataset"], &rows);
}

fn calibration_targets() {
    // Static (simulation-free): the reference points `calibrate --check`
    // gates against, straight from the embedded table.
    println!("\n=== Calibration: embedded paper targets (Figs 4/5/6/7) ===\n");
    print_table(
        &[
            "key",
            "figure",
            "description",
            "target",
            "unit",
            "tolerance",
        ],
        &ndp_bench::calibration::target_rows(),
    );
    println!("\nregenerate: cargo run -p ndp-bench --release --bin calibrate -- --out calibration.jsonl --resume --check");
}

fn fig4_fig5(scale: Scale, workloads: &[WorkloadId]) {
    println!(
        "\n=== Fig 4: avg PTW latency, 4-core Radix (NDP vs CPU) [{} scale] ===",
        scale.name()
    );
    println!("=== Fig 5: address-translation share of runtime ===\n");
    let rows_data = motivation_figures(scale, workloads);
    let mut rows = Vec::new();
    let (mut ndp_ptw, mut cpu_ptw, mut ndp_fr, mut cpu_fr) = (vec![], vec![], vec![], vec![]);
    for row in &rows_data {
        ndp_ptw.push(row.ndp.avg_ptw_latency());
        cpu_ptw.push(row.cpu.avg_ptw_latency());
        ndp_fr.push(row.ndp.translation_fraction());
        cpu_fr.push(row.cpu.translation_fraction());
        rows.push(vec![
            row.workload.name().into(),
            format!("{:.1}", row.ndp.avg_ptw_latency()),
            format!("{:.1}", row.cpu.avg_ptw_latency()),
            format!(
                "{:+.0}%",
                (row.ndp.avg_ptw_latency() / row.cpu.avg_ptw_latency() - 1.0) * 100.0
            ),
            pct(row.ndp.translation_fraction()),
            pct(row.cpu.translation_fraction()),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        format!("{:.1}", ndp_types::stats::mean(&ndp_ptw)),
        format!("{:.1}", ndp_types::stats::mean(&cpu_ptw)),
        format!(
            "{:+.0}%",
            (ndp_types::stats::mean(&ndp_ptw) / ndp_types::stats::mean(&cpu_ptw) - 1.0) * 100.0
        ),
        pct(ndp_types::stats::mean(&ndp_fr)),
        pct(ndp_types::stats::mean(&cpu_fr)),
    ]);
    print_table(
        &[
            "workload",
            "NDP PTW",
            "CPU PTW",
            "increment",
            "NDP trans%",
            "CPU trans%",
        ],
        &rows,
    );
    println!("\npaper: NDP avg PTW 474.56 cyc (+229% vs CPU); NDP 67.1% vs CPU 34.51% overhead");
}

fn fig6(scale: Scale, workloads: &[WorkloadId]) {
    println!(
        "\n=== Fig 6: scaling with core count (Radix) [{} scale] ===\n",
        scale.name()
    );
    let rows_data = scaling_figure(scale, workloads, &[1, 4, 8]);
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|(cores, system, ptw, frac)| {
            vec![
                system.to_string(),
                cores.to_string(),
                format!("{ptw:.1}"),
                pct(*frac),
            ]
        })
        .collect();
    print_table(
        &["system", "cores", "avg PTW (cyc)", "translation %"],
        &rows,
    );
    println!("\npaper: NDP PTW 242.85 -> 474.56 -> 551.83; CPU roughly flat");
}

fn fig7(scale: Scale, workloads: &[WorkloadId]) {
    println!(
        "\n=== Fig 7: L1 miss rates, 4-core NDP [{} scale] ===\n",
        scale.name()
    );
    let data = miss_rate_figure(scale, workloads);
    let mut rows = Vec::new();
    let (mut i, mut a, mut m) = (vec![], vec![], vec![]);
    for row in &data {
        i.push(row.data_ideal);
        a.push(row.data_actual);
        m.push(row.metadata);
        rows.push(vec![
            row.workload.name().into(),
            pct(row.data_ideal),
            pct(row.data_actual),
            pct(row.metadata),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        pct(ndp_types::stats::mean(&i)),
        pct(ndp_types::stats::mean(&a)),
        pct(ndp_types::stats::mean(&m)),
    ]);
    print_table(
        &[
            "workload",
            "data miss (ideal)",
            "data miss (actual)",
            "metadata miss",
        ],
        &rows,
    );
    println!("\npaper: ideal 26.16%, actual 35.89% (1.37x), metadata 98.28%");
}

fn fig8(scale: Scale, workloads: &[WorkloadId]) {
    println!(
        "\n=== Fig 8: radix page-table occupancy [{} scale] ===\n",
        scale.name()
    );
    let data = occupancy_figure(scale, workloads);
    let mut rows = Vec::new();
    let (mut p1, mut p2, mut p3, mut pc) = (vec![], vec![], vec![], vec![]);
    for (w, pl1, pl2, pl3, combined) in &data {
        p1.push(*pl1);
        p2.push(*pl2);
        p3.push(*pl3);
        pc.push(*combined);
        rows.push(vec![
            w.name().into(),
            pct(*pl1),
            pct(*pl2),
            pct(*pl3),
            pct(*combined),
        ]);
    }
    rows.push(vec![
        "avg".into(),
        pct(ndp_types::stats::mean(&p1)),
        pct(ndp_types::stats::mean(&p2)),
        pct(ndp_types::stats::mean(&p3)),
        pct(ndp_types::stats::mean(&pc)),
    ]);
    print_table(&["workload", "PL1", "PL2", "PL3", "PL2/PL1 merged"], &rows);
    println!("\npaper: PL1 97.97%, PL2 98.24%, PL3 3.12%, PL4 0.43%");
}

fn pwc(scale: Scale) {
    println!(
        "\n=== §V-C: page-walk-cache hit rates (4-core NDP, Radix) [{} scale] ===\n",
        scale.name()
    );
    let workloads = [
        WorkloadId::Bfs,
        WorkloadId::Rnd,
        WorkloadId::Xs,
        WorkloadId::Gen,
    ];
    let mut rows = Vec::new();
    for w in workloads {
        let r = run(scale.apply(SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, w)));
        rows.push(vec![
            w.name().into(),
            pct(r.pwc_hit_rate(PtLevel::L4).unwrap_or(0.0)),
            pct(r.pwc_hit_rate(PtLevel::L3).unwrap_or(0.0)),
            pct(r.pwc_hit_rate(PtLevel::L2).unwrap_or(0.0)),
            pct(r.pwc_hit_rate(PtLevel::L1).unwrap_or(0.0)),
        ]);
    }
    print_table(
        &["workload", "PL4 PWC", "PL3 PWC", "PL2 PWC", "PL1 PWC"],
        &rows,
    );
    println!("\npaper: L4 ~100%, L3 98.6%, L2/L1 ~15.4%");
}

fn speedups(label: &str, cores: u32, scale: Scale, workloads: &[WorkloadId]) {
    println!(
        "\n=== {label}: speedup over Radix, {cores}-core NDP [{} scale] ===\n",
        scale.name()
    );
    let rows_data = speedup_figure(cores, scale, workloads);
    let mut rows = Vec::new();
    for row in &rows_data {
        let mut cells = vec![row.workload.name().to_string()];
        cells.extend(row.speedups.iter().map(|(_, s)| spd(*s)));
        rows.push(cells);
    }
    let gm = geomean_speedups(&rows_data);
    let mut cells = vec!["geomean".to_string()];
    cells.extend(gm.iter().map(|(_, s)| spd(*s)));
    rows.push(cells);
    print_table(&["workload", "ECH", "Huge Page", "NDPage", "Ideal"], &rows);

    let g = |m: Mechanism| gm.iter().find(|(mm, _)| *mm == m).map_or(0.0, |(_, s)| *s);
    println!(
        "\nNDPage vs Radix {:+.1}%, vs second-best ECH {:+.1}%, vs Huge Page {:+.1}%",
        (g(Mechanism::NdPage) - 1.0) * 100.0,
        (g(Mechanism::NdPage) / g(Mechanism::Ech) - 1.0) * 100.0,
        (g(Mechanism::NdPage) / g(Mechanism::HugePage) - 1.0) * 100.0
    );
    match label {
        "fig12" => println!("paper: NDPage +34.4% vs Radix, +14.3% vs ECH, +24.4% vs Huge Page"),
        "fig13" => println!("paper: NDPage +42.6% vs Radix, +9.8% vs ECH"),
        "fig14" => println!("paper: NDPage +40.7% vs Radix, +30.5% vs ECH; Huge Page at 0.901x"),
        _ => {}
    }
}

fn ablation(scale: Scale) {
    println!(
        "\n=== Ablation: NDPage's mechanisms in isolation (4-core NDP) [{} scale] ===\n",
        scale.name()
    );
    let workloads = [WorkloadId::Bfs, WorkloadId::Rnd, WorkloadId::Xs];
    let mut rows = Vec::new();
    for w in workloads {
        let radix = run(scale.apply(AblationVariant::Radix.config(4, w)));
        let mut cells = vec![w.name().to_string()];
        for v in AblationVariant::ALL {
            let r = run(scale.apply(v.config(4, w)));
            cells.push(spd(r.speedup_over(&radix)));
        }
        rows.push(cells);
    }
    let headers: Vec<&str> = std::iter::once("workload")
        .chain(AblationVariant::ALL.iter().map(|v| v.name()))
        .collect();
    print_table(&headers, &rows);
    println!(
        "\nNote the synergy: bypass-only can *hurt* Radix (its PL2 fetches\n\
         lose their modest L1 hit rate), while flattening removes exactly\n\
         those fetches — leaving only never-hitting leaf fetches, which are\n\
         then safe to bypass. PWCs remain essential (paper SV-C)."
    );
}
