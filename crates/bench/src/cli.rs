//! Shared command-line plumbing for the `ndpsim` / `figures` /
//! `calibrate` binaries.
//!
//! One `Args` accessor, one error type, and one registry-driven
//! [`config_from_args`] replace the per-binary copies of `get`/`has`,
//! `num*`, `die_unknown` and the workload/mechanism name lists that each
//! binary used to carry (or go without). The flag table itself lives in
//! [`ndp_sim::spec::KNOBS`] — the single source of truth shared with
//! spec files and `--set` overrides — so a new `SimConfig` knob becomes
//! a CLI flag by adding exactly one registry entry.

use ndp_sim::parallel;
use ndp_sim::spec::{apply_knob, KNOBS};
use ndp_sim::SimConfig;
use std::fmt;

pub use ndp_sim::spec::{mechanism_names, parse_mechanism, parse_workload, workload_names};

/// A CLI failure: the message to print on stderr and the process exit
/// code (2 = usage/parse error, 1 = semantic/validation error — the
/// codes the pre-refactor binaries used).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError {
    /// Process exit code.
    pub code: i32,
    /// Message for stderr (already `error:`-prefixed where appropriate).
    pub message: String,
}

impl CliError {
    /// A usage/parse error (exit 2).
    #[must_use]
    pub fn usage(message: impl Into<String>) -> Self {
        CliError {
            code: 2,
            message: message.into(),
        }
    }

    /// A semantic error (exit 1), e.g. config validation.
    #[must_use]
    pub fn semantic(message: impl Into<String>) -> Self {
        CliError {
            code: 1,
            message: message.into(),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CliError {}

/// Prints the error and exits with its code.
pub fn exit_on_err<T>(result: Result<T, CliError>) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("{}", e.message);
        std::process::exit(e.code);
    })
}

/// The process arguments, with flag accessors.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures `std::env::args()` (program name skipped).
    #[must_use]
    pub fn from_env() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Wraps an explicit argument vector (tests).
    #[must_use]
    pub fn new(raw: Vec<String>) -> Self {
        Args { raw }
    }

    /// The raw arguments.
    #[must_use]
    pub fn raw(&self) -> &[String] {
        &self.raw
    }

    /// First value following `flag`, if present.
    #[must_use]
    pub fn get(&self, flag: &str) -> Option<String> {
        self.raw
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.raw.get(i + 1).cloned())
    }

    /// Every value following an occurrence of `flag` (for repeatable
    /// flags like `--set`).
    #[must_use]
    pub fn get_all(&self, flag: &str) -> Vec<String> {
        self.raw
            .iter()
            .enumerate()
            .filter(|(_, a)| *a == flag)
            .filter_map(|(i, _)| self.raw.get(i + 1).cloned())
            .collect()
    }

    /// Whether `flag` appears at all.
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.raw.iter().any(|a| a == flag)
    }

    /// Parses `flag`'s value as a non-negative integer. Absent is
    /// `Ok(None)`; present-but-malformed is a usage error naming the
    /// flag and the value — never a silent default.
    ///
    /// # Errors
    ///
    /// [`CliError::usage`] for a malformed value.
    pub fn num(&self, flag: &str) -> Result<Option<u64>, CliError> {
        self.get(flag)
            .map(|s| {
                s.parse().map_err(|_| {
                    CliError::usage(format!(
                        "error: {flag} expects a non-negative integer, got {s:?}"
                    ))
                })
            })
            .transpose()
    }

    /// [`Self::num`] with a `u32` range check (out-of-range is an error,
    /// never a silent wrap).
    ///
    /// # Errors
    ///
    /// [`CliError::usage`] for a malformed or out-of-range value.
    pub fn num_u32(&self, flag: &str) -> Result<Option<u32>, CliError> {
        self.num(flag)?
            .map(|n| {
                u32::try_from(n).map_err(|_| {
                    CliError::usage(format!("error: {flag} value {n} exceeds {}", u32::MAX))
                })
            })
            .transpose()
    }

    /// Rejects any `--flag` token not in `value_flags` (which consume
    /// the next token) or `bool_flags` (which don't). Catches typos like
    /// `--wndow 8` that the old parsers silently ignored.
    ///
    /// # Errors
    ///
    /// [`CliError::usage`] naming the unknown flag.
    pub fn reject_unknown(
        &self,
        value_flags: &[&str],
        bool_flags: &[&str],
    ) -> Result<(), CliError> {
        let mut i = 0;
        while i < self.raw.len() {
            let a = self.raw[i].as_str();
            if value_flags.contains(&a) {
                i += 2;
            } else if bool_flags.contains(&a) {
                i += 1;
            } else if a.starts_with("--") {
                let mut valid: Vec<&str> = value_flags.to_vec();
                valid.extend_from_slice(bool_flags);
                valid.sort_unstable();
                return Err(CliError::usage(format!(
                    "error: unrecognized flag {a:?}; valid flags: {}",
                    valid.join(", ")
                )));
            } else {
                i += 1;
            }
        }
        Ok(())
    }
}

/// Exits with a message listing the valid spellings — an unrecognised
/// value must never silently run some default configuration instead.
#[must_use]
pub fn die_unknown(flag: &str, got: &str, valid: &[String]) -> CliError {
    CliError::usage(format!(
        "error: unrecognized {flag} {got:?}; valid values: {}",
        valid.join(", ")
    ))
}

/// Installs a `--jobs N` override for the parallel driver (wins over
/// `NDP_THREADS`), and validates `NDP_THREADS` itself so a malformed
/// value fails up front instead of panicking mid-sweep.
///
/// # Errors
///
/// [`CliError::usage`] for a malformed `--jobs` or `NDP_THREADS` value.
pub fn install_jobs(args: &Args) -> Result<(), CliError> {
    if let Some(jobs) = args.num("--jobs")? {
        if jobs == 0 {
            return Err(CliError::usage(
                "error: --jobs must be a positive integer, got 0".to_string(),
            ));
        }
        parallel::set_jobs(jobs as usize);
    }
    parallel::env_thread_count()
        .map(|_| ())
        .map_err(|e| CliError::usage(format!("error: {e}")))
}

/// The `ndpsim` flags that take a value, derived from the knob registry
/// plus the run-local extras.
#[must_use]
pub fn ndpsim_value_flags() -> Vec<&'static str> {
    let mut flags: Vec<&'static str> = KNOBS.iter().filter_map(|k| k.flag).collect();
    flags.extend_from_slice(&["--set", "--jobs"]);
    flags
}

/// The `ndpsim` boolean flags (no value).
pub const NDPSIM_BOOL_FLAGS: &[&str] = &["--no-asid", "--no-fracture", "--histogram", "--help"];

/// Builds a [`SimConfig`] from `ndpsim`-style flags, entirely driven by
/// the knob registry: every registered knob with a flag is parsed here,
/// so flags can never drift from `SimConfig` again. On top of the
/// registry pass it applies the flag-layer conveniences the CLI has
/// always had — `--no-asid`, `--no-fracture`, `--window` implying
/// matching MSHRs unless `--mshrs` narrows them, and the fast CLI
/// defaults (1 GB footprint, 30 k ops, warmup = ops/3) — then `--set
/// knob=value` overrides (applied last, spec-file semantics), then
/// validation.
///
/// # Errors
///
/// Usage errors (exit 2) for malformed flags or values; a semantic
/// error (exit 1) when the final config fails [`SimConfig::validate`].
pub fn config_from_args(args: &Args) -> Result<SimConfig, CliError> {
    let mut cfg = SimConfig::cli_default();
    for k in KNOBS {
        let Some(flag) = k.flag else { continue };
        let Some(raw) = args.get(flag) else { continue };
        let value = if k.flag_scale == 1 {
            raw
        } else {
            // Scaled flags (--footprint-mb) parse here so the overflow
            // check happens before the multiply.
            let n: u64 = raw.parse().map_err(|_| {
                CliError::usage(format!(
                    "error: {flag} expects a non-negative integer, got {raw:?}"
                ))
            })?;
            n.checked_mul(k.flag_scale)
                .ok_or_else(|| CliError::usage(format!("error: {flag} value {n} is too large")))?
                .to_string()
        };
        (k.apply)(&mut cfg, &value).map_err(|e| CliError::usage(format!("error: {flag} {e}")))?;
    }

    if args.has("--no-asid") {
        cfg.tlb_tagging = false;
    }
    if args.has("--no-fracture") {
        cfg.tlb_fracture_huge = Some(false);
    }
    if args.get("--window").is_some() && args.get("--mshrs").is_none() {
        // A wider window usually wants matching MSHRs; default to that
        // unless --mshrs narrows the file.
        cfg.mshrs_per_core = cfg.mlp_window.max(1);
    }
    if args.get("--warmup").is_none() {
        cfg.warmup_ops = cfg.measure_ops / 3;
    }

    apply_sets(&mut cfg, args)?;

    cfg.validate()
        .map_err(|e| CliError::semantic(e.to_string()))?;
    Ok(cfg)
}

/// Applies every `--set knob=value` override in argument order.
///
/// # Errors
///
/// Usage errors for a missing `=` or an unknown knob / bad value (the
/// unknown-knob message lists every registered knob).
pub fn apply_sets(cfg: &mut SimConfig, args: &Args) -> Result<(), CliError> {
    for setting in args.get_all("--set") {
        let (name, value) = setting.split_once('=').ok_or_else(|| {
            CliError::usage(format!("error: --set expects knob=value, got {setting:?}"))
        })?;
        apply_knob(cfg, name.trim(), value.trim())
            .map_err(|e| CliError::usage(format!("error: --set: {e}")))?;
    }
    Ok(())
}

/// The knob table rendered for `--help`: one line per registered knob
/// with its CLI flag (if any) and help text — generated from the same
/// registry that parses the flags, so help can never go stale.
#[must_use]
pub fn knob_help_table() -> String {
    let mut out = String::from("knobs (spec files / --set; flagged ones also ndpsim flags):\n");
    for k in KNOBS {
        let flag = k.flag.unwrap_or("");
        out.push_str(&format!("  {:<28} {:<16} {}\n", k.name, flag, k.help));
    }
    out.push_str(
        "  (plus flag-only conveniences: --no-asid = tlb_tagging=false, \
         --no-fracture = tlb_fracture_huge=false)\n",
    );
    out
}

/// Splits a comma-separated workload list, validating every name.
///
/// # Errors
///
/// A usage error listing the valid workload names.
pub fn parse_workload_list(
    flag: &str,
    s: &str,
) -> Result<Vec<ndp_workloads::WorkloadId>, CliError> {
    s.split(',')
        .map(str::trim)
        .filter(|w| !w.is_empty())
        .map(|w| parse_workload(w).ok_or_else(|| die_unknown(flag, w, &workload_names())))
        .collect()
}

// --- shared flat-JSON field extraction (bench baselines; no serde) ---

/// Extracts `"key": <number>` from a flat JSON object.
#[must_use]
pub fn json_f64(text: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| c != '-' && c != '.' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": <integer>` losslessly (digests exceed f64's 53-bit
/// mantissa, so they must never round-trip through a float).
#[must_use]
pub fn json_u64(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts `"key": "<string>"` from a flat JSON object.
#[must_use]
pub fn json_str(text: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndpage::Mechanism;

    fn args(list: &[&str]) -> Args {
        Args::new(list.iter().map(|s| (*s).to_string()).collect())
    }

    #[test]
    fn accessors() {
        let a = args(&[
            "--workload",
            "RND",
            "--histogram",
            "--set",
            "x=1",
            "--set",
            "y=2",
        ]);
        assert_eq!(a.get("--workload").as_deref(), Some("RND"));
        assert!(a.has("--histogram"));
        assert!(!a.has("--quick"));
        assert_eq!(a.get_all("--set"), vec!["x=1", "y=2"]);
    }

    #[test]
    fn numeric_parsing_is_strict() {
        let a = args(&["--cores", "4"]);
        assert_eq!(a.num("--cores").unwrap(), Some(4));
        assert_eq!(a.num("--missing").unwrap(), None);
        let bad = args(&["--cores", "x"]);
        let err = bad.num("--cores").unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--cores") && err.message.contains('x'));
        let wide = args(&["--cores", "4294967297"]);
        let err = wide.num_u32("--cores").unwrap_err();
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn config_from_args_matches_legacy_defaults() {
        let cfg = config_from_args(&args(&[])).unwrap();
        assert_eq!(cfg.footprint_override, Some(1 << 30));
        assert_eq!(cfg.measure_ops, 30_000);
        assert_eq!(cfg.warmup_ops, 10_000);
        assert_eq!(cfg.mechanism, Mechanism::NdPage);
        assert_eq!(cfg.cores, 1);
    }

    #[test]
    fn window_implies_matching_mshrs_unless_narrowed() {
        let cfg = config_from_args(&args(&["--window", "8"])).unwrap();
        assert_eq!(cfg.mlp_window, 8);
        assert_eq!(cfg.mshrs_per_core, 8);
        let cfg = config_from_args(&args(&["--window", "8", "--mshrs", "2"])).unwrap();
        assert_eq!(cfg.mshrs_per_core, 2);
    }

    #[test]
    fn warmup_defaults_to_a_third_of_ops() {
        let cfg = config_from_args(&args(&["--ops", "9000"])).unwrap();
        assert_eq!(cfg.measure_ops, 9000);
        assert_eq!(cfg.warmup_ops, 3000);
        let cfg = config_from_args(&args(&["--ops", "9000", "--warmup", "10"])).unwrap();
        assert_eq!(cfg.warmup_ops, 10);
    }

    #[test]
    fn footprint_flag_scales_mib() {
        let cfg = config_from_args(&args(&["--footprint-mb", "256"])).unwrap();
        assert_eq!(cfg.footprint_override, Some(256 << 20));
    }

    #[test]
    fn bad_values_are_usage_errors() {
        let err = config_from_args(&args(&["--workload", "bsf"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("bsf") && err.message.contains("BFS"));
        let err = config_from_args(&args(&["--cores", "4294967297"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("exceeds"));
    }

    #[test]
    fn validation_failures_are_semantic_errors() {
        let err = config_from_args(&args(&["--window", "0"])).unwrap_err();
        assert_eq!(err.code, 1);
        assert!(err.message.contains("mlp_window"));
    }

    #[test]
    fn set_overrides_apply_last() {
        let cfg = config_from_args(&args(&["--cores", "2", "--set", "cores=4"])).unwrap();
        assert_eq!(cfg.cores, 4);
        let err = config_from_args(&args(&["--set", "nope=1"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("nope") && err.message.contains("valid knobs"));
        let err = config_from_args(&args(&["--set", "cores"])).unwrap_err();
        assert!(err.message.contains("knob=value"));
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let a = args(&["--wndow", "8"]);
        let err = a
            .reject_unknown(&ndpsim_value_flags(), NDPSIM_BOOL_FLAGS)
            .unwrap_err();
        assert!(err.message.contains("--wndow"));
        let ok = args(&["--window", "8", "--no-asid"]);
        assert!(ok
            .reject_unknown(&ndpsim_value_flags(), NDPSIM_BOOL_FLAGS)
            .is_ok());
    }

    #[test]
    fn help_table_covers_every_knob() {
        let help = knob_help_table();
        for k in KNOBS {
            assert!(help.contains(k.name), "missing {}", k.name);
        }
        assert!(help.contains("--no-asid"));
    }

    #[test]
    fn workload_lists_validate() {
        let ws = parse_workload_list("--workloads", "RND, bfs").unwrap();
        assert_eq!(ws.len(), 2);
        let err = parse_workload_list("--workloads", "RND,bogus").unwrap_err();
        assert!(err.message.contains("bogus") && err.message.contains("BFS"));
    }

    #[test]
    fn json_field_extraction() {
        let text =
            "{\"mode\": \"fast\", \"best_wall_s\": 1.25, \"report_digest\": 14763835927449417281}";
        assert_eq!(json_str(text, "mode").as_deref(), Some("fast"));
        assert_eq!(json_f64(text, "best_wall_s"), Some(1.25));
        assert_eq!(json_u64(text, "report_digest"), Some(14763835927449417281));
        assert_eq!(json_u64(text, "missing"), None);
    }
}
