//! The sweep supervisor: spawn shard workers, watch their heartbeats,
//! retry the failures, merge what survives.
//!
//! `ndpsim sweep --workers N` splits the grid into `N` stripes and runs
//! each as a `ndpsim sweep --shard I/N --resume` subprocess. The only
//! health signal a worker owes the supervisor is its shard stream: the
//! engine flushes one line per retired row, so **file growth is the
//! heartbeat** — no IPC, no pidfiles, and the signal is exactly the
//! thing we care about (rows landing on disk).
//!
//! Failure policy: a worker that exits nonzero or stalls past
//! `row_timeout` is killed and respawned with exponential backoff, up
//! to `max_retries` retries. Because workers always resume, a respawn
//! re-simulates only the rows its predecessor had not yet flushed.
//! When retries are exhausted the sweep degrades instead of dying:
//! every completed row is merged, the missing grid indices are listed
//! in a structured JSON summary on stdout, and the exit code tells the
//! caller which of full / partial / failed happened.

use crate::cli::CliError;
use ndp_sim::shard::{shard_path, stream_path, ShardSpec};
use ndp_sim::spec::{merge_sweep_jsonl, SweepSpec};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Every grid point completed and merged.
pub const EXIT_FULL: i32 = 0;
/// Some rows missing after retries were exhausted; completed rows kept.
pub const EXIT_PARTIAL: i32 = 3;
/// Nothing completed at all.
pub const EXIT_FAILED: i32 = 4;
/// The run was cancelled mid-flight (workers killed, completed rows
/// merged and kept). Only [`supervise_with_cancel`] returns this.
pub const EXIT_CANCELLED: i32 = 5;

/// Longest backoff between respawns, whatever the exponent says.
const BACKOFF_CAP: Duration = Duration::from_secs(10);
/// Supervisor poll cadence.
const POLL: Duration = Duration::from_millis(25);

/// Everything the supervisor needs to reconstruct worker command lines
/// and apply the retry policy.
#[derive(Debug, Clone)]
pub struct SupervisorConfig {
    /// Spec file path, forwarded to workers verbatim.
    pub spec_path: String,
    /// `--set knob=value` overrides, forwarded to workers in order.
    pub sets: Vec<String>,
    /// Final merged output path.
    pub out: PathBuf,
    /// Number of shard workers (stripes).
    pub workers: u64,
    /// Keep existing rows (otherwise the output and all shard state are
    /// cleared first).
    pub resume: bool,
    /// `--jobs` to forward to each worker (`None` = worker default).
    pub jobs: Option<u64>,
    /// Kill a worker whose shard stream has not grown for this long.
    pub row_timeout: Duration,
    /// Respawns allowed per shard after its first attempt.
    pub max_retries: u32,
    /// Base backoff before a respawn; doubles per failed attempt.
    pub backoff: Duration,
}

enum WorkerState {
    /// Waiting for its (re)spawn slot.
    Pending {
        at: Instant,
    },
    Running {
        child: Child,
        last_len: u64,
        last_progress: Instant,
    },
    Done,
    Failed,
}

struct Worker {
    shard: ShardSpec,
    path: PathBuf,
    attempts: u32,
    state: WorkerState,
}

/// Outcome of one shard, for the structured summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Stripe index.
    pub shard: u64,
    /// Spawns consumed (1 = no retries needed).
    pub attempts: u32,
    /// Whether the stripe completed.
    pub done: bool,
}

fn stream_len(path: &Path) -> u64 {
    std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
}

fn spawn_worker(cfg: &SupervisorConfig, shard: ShardSpec) -> Result<Child, CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| CliError::semantic(format!("error: cannot locate own binary: {e}")))?;
    let mut cmd = Command::new(exe);
    cmd.arg("sweep")
        .arg("--spec")
        .arg(&cfg.spec_path)
        .arg("--out")
        .arg(&cfg.out)
        .arg("--shard")
        .arg(shard.to_string())
        // Workers always resume: a respawn must pick up where the dead
        // attempt's shard stream ends, not start the stripe over.
        .arg("--resume");
    for set in &cfg.sets {
        cmd.arg("--set").arg(set);
    }
    if let Some(jobs) = cfg.jobs {
        cmd.arg("--jobs").arg(jobs.to_string());
    }
    // Worker stdout (its own summary lines) would interleave with the
    // supervisor's structured summary; stderr (warnings, fault notices)
    // passes through.
    cmd.stdout(Stdio::null()).stderr(Stdio::inherit());
    cmd.spawn()
        .map_err(|e| CliError::semantic(format!("error: cannot spawn shard {shard}: {e}")))
}

/// Marks a worker attempt as failed: schedules the respawn with
/// exponential backoff, or gives up past `max_retries`.
fn register_failure(cfg: &SupervisorConfig, w: &mut Worker, why: &str) {
    if w.attempts > cfg.max_retries {
        eprintln!(
            "supervisor: shard {} {why}; retries exhausted after {} attempt(s), giving up \
             (completed rows are kept)",
            w.shard, w.attempts
        );
        w.state = WorkerState::Failed;
        return;
    }
    let exp = w.attempts.saturating_sub(1).min(16);
    let delay = cfg.backoff.saturating_mul(1u32 << exp).min(BACKOFF_CAP);
    eprintln!(
        "supervisor: shard {} {why}; retrying in {} ms (attempt {}/{})",
        w.shard,
        delay.as_millis(),
        w.attempts + 1,
        cfg.max_retries + 1
    );
    w.state = WorkerState::Pending {
        at: Instant::now() + delay,
    };
}

/// Runs the supervised sweep end to end: spawn, monitor, retry, merge.
/// Returns the process exit code ([`EXIT_FULL`] / [`EXIT_PARTIAL`] /
/// [`EXIT_FAILED`]) after printing the structured summary on stdout.
///
/// # Errors
///
/// Setup failures (cannot clear stale output, cannot spawn at all) and
/// merge errors; worker failures are policy, not errors.
pub fn supervise(spec: &SweepSpec, cfg: &SupervisorConfig) -> Result<i32, CliError> {
    supervise_with_cancel(spec, cfg, None)
}

/// [`supervise`] with a cooperative cancellation flag (the experiment
/// service's `cancel` verb). When `cancel` flips true the supervisor
/// kills every running worker, skips pending respawns, merges the rows
/// that already landed — cancellation **keeps completed rows** — and
/// returns [`EXIT_CANCELLED`] (or [`EXIT_FULL`] when the grid happened
/// to complete before the flag was observed).
///
/// # Errors
///
/// Same as [`supervise`].
pub fn supervise_with_cancel(
    spec: &SweepSpec,
    cfg: &SupervisorConfig,
    cancel: Option<&AtomicBool>,
) -> Result<i32, CliError> {
    if !cfg.resume {
        // A fresh supervised run must not inherit stale rows.
        for stale in [cfg.out.clone(), stream_path(&cfg.out)]
            .into_iter()
            .chain(ndp_sim::shard::existing_shard_files(&cfg.out))
        {
            if stale.exists() {
                std::fs::remove_file(&stale).map_err(|e| {
                    CliError::semantic(format!("error: cannot clear {}: {e}", stale.display()))
                })?;
            }
        }
    }

    let mut workers: Vec<Worker> = (0..cfg.workers)
        .map(|i| {
            let shard = ShardSpec {
                index: i,
                count: cfg.workers,
            };
            Worker {
                shard,
                path: shard_path(&cfg.out, shard),
                attempts: 0,
                state: WorkerState::Pending { at: Instant::now() },
            }
        })
        .collect();

    let mut cancelled = false;
    loop {
        if !cancelled && cancel.is_some_and(|c| c.load(Ordering::SeqCst)) {
            // Cancellation: kill what runs, skip what waits; completed
            // rows stay on disk and merge below.
            cancelled = true;
            for w in &mut workers {
                match &mut w.state {
                    WorkerState::Running { child, .. } => {
                        let _ = child.kill();
                        let _ = child.wait();
                        eprintln!("supervisor: shard {} cancelled (worker killed)", w.shard);
                        w.state = WorkerState::Failed;
                    }
                    WorkerState::Pending { .. } => {
                        eprintln!("supervisor: shard {} cancelled (never spawned)", w.shard);
                        w.state = WorkerState::Failed;
                    }
                    WorkerState::Done | WorkerState::Failed => {}
                }
            }
        }
        let mut live = false;
        for w in &mut workers {
            match &mut w.state {
                WorkerState::Done | WorkerState::Failed => {}
                WorkerState::Pending { at } => {
                    live = true;
                    if Instant::now() >= *at {
                        w.attempts += 1;
                        let child = spawn_worker(cfg, w.shard)?;
                        eprintln!(
                            "supervisor: shard {} spawned (attempt {}, pid {})",
                            w.shard,
                            w.attempts,
                            child.id()
                        );
                        w.state = WorkerState::Running {
                            child,
                            last_len: stream_len(&w.path),
                            last_progress: Instant::now(),
                        };
                    }
                }
                WorkerState::Running {
                    child,
                    last_len,
                    last_progress,
                } => {
                    live = true;
                    // Heartbeat: each retired row is flushed to the
                    // shard stream, so growth == progress.
                    let len = stream_len(&w.path);
                    if len > *last_len {
                        *last_len = len;
                        *last_progress = Instant::now();
                    }
                    match child.try_wait() {
                        Ok(Some(status)) if status.success() => {
                            eprintln!("supervisor: shard {} done", w.shard);
                            w.state = WorkerState::Done;
                        }
                        Ok(Some(status)) => {
                            let why = match status.code() {
                                Some(code) => format!("exited with code {code}"),
                                None => "was killed by a signal".to_string(),
                            };
                            register_failure(cfg, w, &why);
                        }
                        Ok(None) => {
                            if last_progress.elapsed() > cfg.row_timeout {
                                let _ = child.kill();
                                let _ = child.wait();
                                let why = format!(
                                    "stalled (no row for {:.1} s)",
                                    cfg.row_timeout.as_secs_f64()
                                );
                                register_failure(cfg, w, &why);
                            }
                        }
                        Err(e) => {
                            let _ = child.kill();
                            let _ = child.wait();
                            register_failure(cfg, w, &format!("became unwaitable ({e})"));
                        }
                    }
                }
            }
        }
        if !live {
            break;
        }
        std::thread::sleep(POLL);
    }

    // Merge whatever landed. The merge runs in this process, which may
    // carry NDP_FAULT for its workers — merge_sweep_jsonl deliberately
    // never consults the fault plan.
    let merge = merge_sweep_jsonl(spec, &cfg.out)
        .map_err(|e| CliError::semantic(format!("error: merge: {e}")))?;
    for warning in &merge.warnings {
        eprintln!("warning: {warning}");
    }

    let outcomes: Vec<ShardOutcome> = workers
        .iter()
        .map(|w| ShardOutcome {
            shard: w.shard.index,
            attempts: w.attempts,
            done: matches!(w.state, WorkerState::Done),
        })
        .collect();
    let (outcome, code) = if merge.missing.is_empty() {
        // A cancel that raced completion is still a completed grid.
        ("full", EXIT_FULL)
    } else if cancelled {
        ("cancelled", EXIT_CANCELLED)
    } else if merge.merged > 0 {
        ("partial", EXIT_PARTIAL)
    } else {
        ("failed", EXIT_FAILED)
    };

    let missing: Vec<String> = merge.missing.iter().map(ToString::to_string).collect();
    let shards: Vec<String> = outcomes
        .iter()
        .map(|o| {
            format!(
                "{{\"shard\":{},\"attempts\":{},\"state\":\"{}\"}}",
                o.shard,
                o.attempts,
                if o.done { "done" } else { "failed" }
            )
        })
        .collect();
    // Not `println!`: when the supervisor runs inside `ndpsim serve`,
    // stdout may be a pipe the launcher closed after reading the
    // listening line — a macro panic on EPIPE would kill the executor
    // thread mid-job. The summary is best-effort; the exit code and the
    // merged file are the contract.
    let summary = format!(
        "{{\"sweep\":\"{}\",\"grid\":{},\"merged\":{},\"missing\":[{}],\"digest\":{},\
         \"outcome\":\"{outcome}\",\"shards\":[{}]}}",
        spec.name.replace('\\', "\\\\").replace('"', "\\\""),
        merge.grid,
        merge.merged,
        missing.join(","),
        merge.digest,
        shards.join(",")
    );
    use std::io::Write as _;
    let _ = writeln!(std::io::stdout(), "{summary}");
    Ok(code)
}
