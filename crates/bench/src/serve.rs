//! The long-running experiment service: `ndpsim serve` accepts sweep
//! specs over TCP, queues them, executes each through the PR-6
//! supervisor (sharded `--resume`-respawned worker subprocesses), and
//! streams completed rows back in grid order.
//!
//! **Protocol.** Newline-delimited JSON over a plain TCP connection,
//! parsed by the same serde-free parser the spec files use. Each
//! request is one line; each response is one or more JSON lines (or,
//! for `watch`, raw sweep JSONL rows) terminated by one **blank
//! line**. Connections are persistent: a malformed request line gets a
//! structured `{"ok":false,...}` error and the connection survives for
//! the next request.
//!
//! | verb       | request                                     | response                         |
//! |------------|---------------------------------------------|----------------------------------|
//! | `submit`   | `{"verb":"submit","spec":{...}}`            | `{"ok":true,"job":ID,...}`       |
//! | `status`   | `{"verb":"status"[,"job":ID]}`              | one record per job               |
//! | `watch`    | `{"verb":"watch","job":ID[,"from":N]}`      | sweep JSONL rows, grid order     |
//! | `cancel`   | `{"verb":"cancel","job":ID}`                | `{"ok":true,"state":...}`        |
//! | `shutdown` | `{"verb":"shutdown"}`                       | `{"ok":true,"state":"draining"}` |
//!
//! **Job identity** is deterministic: the id is the spec base's
//! [`config_fingerprint`] plus an order-sensitive digest of every grid
//! point's fingerprint, so re-submitting the same spec yields the same
//! job (and its already-computed rows) instead of a duplicate run.
//!
//! **Crash safety.** All job state lives under the `--state` directory:
//! `<state>/journal.jsonl` appends one record per job state transition
//! (queued → running → done/partial/failed/cancelled) and
//! `<state>/<job-id>/` holds the submitted spec plus the supervisor's
//! append-only shard streams and merged `rows.jsonl`. A killed or
//! restarted server re-ingests the journal (line-granular recovery: a
//! torn trailing record is dropped), re-enqueues every non-terminal
//! job, and the always-`--resume` supervisor reuses every row already
//! on disk — finished rows are never recomputed, and `watch` bytes
//! stay identical to an offline `ndpsim sweep` of the same spec.

use crate::cli::CliError;
use crate::supervisor::{
    supervise_with_cancel, SupervisorConfig, EXIT_CANCELLED, EXIT_FULL, EXIT_PARTIAL,
};
use ndp_sim::shard::{existing_shard_files, stream_path};
use ndp_sim::spec::{config_fingerprint, json_escape, parse_json, parse_jsonl, Json, SweepSpec};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Accept-loop and watch poll cadence.
const POLL: Duration = Duration::from_millis(50);

/// Everything the service needs: where to listen, where job state
/// lives, and the supervisor policy each job runs under.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// `HOST:PORT` to bind (port 0 picks an ephemeral port; the chosen
    /// address is printed as the first stdout line).
    pub addr: String,
    /// Job-state directory (journal, specs, row streams).
    pub state: PathBuf,
    /// Shard worker subprocesses per job.
    pub workers: u64,
    /// `--jobs` forwarded to each worker (`None` = worker default).
    pub jobs: Option<u64>,
    /// Supervisor heartbeat timeout per row.
    pub row_timeout: Duration,
    /// Supervisor respawns allowed per shard.
    pub max_retries: u32,
    /// Supervisor respawn backoff base.
    pub backoff: Duration,
}

/// Lifecycle of a job, journalled at every transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the executor.
    Queued,
    /// The supervisor is running its workers.
    Running,
    /// Every grid point completed and merged.
    Done,
    /// Retries exhausted on some rows; completed rows kept.
    Partial,
    /// Nothing completed (or the spec failed to load on restart).
    Failed,
    /// Cancelled; completed rows kept.
    Cancelled,
}

impl JobState {
    /// The journal/status wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Partial => "partial",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// Parses the wire name back.
    #[must_use]
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "done" => Some(JobState::Done),
            "partial" => Some(JobState::Partial),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            _ => None,
        }
    }

    /// Whether the state is final (no further transitions).
    #[must_use]
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Partial | JobState::Failed | JobState::Cancelled
        )
    }
}

/// One job as the registry tracks it.
struct Job {
    id: String,
    name: String,
    grid: usize,
    state: JobState,
    cancel: Arc<AtomicBool>,
    started: Option<Instant>,
    wall_s: f64,
}

/// In-memory job table, rebuilt from the journal on startup.
struct Registry {
    jobs: Vec<Job>,
    draining: bool,
    /// The executor exited (drain complete).
    finished: bool,
}

/// Poison-proof lock: a panicking connection thread must not wedge the
/// daemon, so a poisoned registry is recovered, not propagated.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The deterministic job id of a spec: base config fingerprint plus an
/// order-sensitive FNV-style fold of every grid point's fingerprint
/// (so any change to the grid — axes, filters, knob values, order —
/// changes the id).
///
/// # Errors
///
/// Spec expansion errors.
pub fn job_id(spec: &SweepSpec) -> Result<(String, usize), CliError> {
    let grid = spec
        .expand()
        .map_err(|e| CliError::semantic(format!("error: spec: {e}")))?;
    let base_fp = config_fingerprint(&spec.base);
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for p in &grid {
        digest = digest
            .wrapping_mul(0x0000_0100_0000_01b3)
            .wrapping_add(config_fingerprint(&p.config));
    }
    Ok((format!("{base_fp:016x}-{digest:016x}"), grid.len()))
}

/// `<state>/journal.jsonl`.
fn journal_path(state: &Path) -> PathBuf {
    state.join("journal.jsonl")
}

/// `<state>/<job-id>/`.
fn job_dir(state: &Path, id: &str) -> PathBuf {
    state.join(id)
}

/// `<state>/<job-id>/spec.json`.
fn spec_path(state: &Path, id: &str) -> PathBuf {
    job_dir(state, id).join("spec.json")
}

/// `<state>/<job-id>/rows.jsonl` (the supervisor's `--out`).
fn rows_path(state: &Path, id: &str) -> PathBuf {
    job_dir(state, id).join("rows.jsonl")
}

/// Appends one record to the journal with an immediate flush (the
/// append-only journal is the restart source of truth; a torn tail
/// from a hard kill is dropped on re-ingest).
fn journal_append(state: &Path, record: &str) -> Result<(), CliError> {
    let path = journal_path(state);
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .map_err(|e| CliError::semantic(format!("error: cannot open {}: {e}", path.display())))?;
    writeln!(f, "{record}")
        .and_then(|()| f.flush())
        .map_err(|e| CliError::semantic(format!("error: cannot append {}: {e}", path.display())))
}

/// One parsed journal record.
struct JournalRec {
    job: String,
    state: JobState,
    name: String,
    grid: usize,
    wall_s: f64,
}

/// Re-ingests the journal with the same line-granular recovery
/// semantics as the sweep streams: a torn or garbage **trailing** line
/// is dropped with a warning (the transition it recorded re-derives
/// from the job dir), a malformed line mid-file is an error.
fn ingest_journal(text: &str, source: &str) -> Result<Vec<JournalRec>, CliError> {
    let mut recs = Vec::new();
    let mut segments = text.split_inclusive('\n').peekable();
    let mut lineno = 0usize;
    while let Some(seg) = segments.next() {
        lineno += 1;
        let last = segments.peek().is_none();
        let terminated = seg.ends_with('\n');
        let content = seg.trim_end_matches('\n').trim_end_matches('\r');
        if content.trim().is_empty() {
            continue;
        }
        let parsed = parse_json(content).ok().and_then(|v| {
            let job = v.get("job")?.scalar()?;
            let state = JobState::parse(&v.get("state")?.scalar()?)?;
            let name = v.get("name").and_then(Json::scalar).unwrap_or_default();
            let grid = v
                .get("grid")
                .and_then(Json::scalar)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let wall_s = v
                .get("wall_s")
                .and_then(Json::scalar)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0.0);
            Some(JournalRec {
                job,
                state,
                name,
                grid,
                wall_s,
            })
        });
        match parsed {
            Some(rec) if terminated => recs.push(rec),
            Some(_) | None if last => {
                eprintln!(
                    "serve: {source}: dropping torn/garbage trailing journal line {lineno} \
                     (the transition re-derives from the job directory)"
                );
            }
            _ => {
                return Err(CliError::semantic(format!(
                    "error: {source}: corrupt journal record at line {lineno} \
                     (mid-file — not a torn tail; refusing to start over it)"
                )));
            }
        }
    }
    Ok(recs)
}

impl Registry {
    /// Rebuilds the job table from the on-disk journal: the last
    /// journalled state wins per job, and every non-terminal job is
    /// re-enqueued (its supervisor run always resumes, so rows already
    /// on disk are reused, never recomputed).
    fn load(state: &Path) -> Result<Registry, CliError> {
        let mut reg = Registry {
            jobs: Vec::new(),
            draining: false,
            finished: false,
        };
        let path = journal_path(state);
        let Ok(text) = std::fs::read_to_string(&path) else {
            return Ok(reg); // fresh state dir
        };
        for rec in ingest_journal(&text, &path.display().to_string())? {
            if let Some(job) = reg.jobs.iter_mut().find(|j| j.id == rec.job) {
                job.state = rec.state;
                job.wall_s = rec.wall_s;
                if !rec.name.is_empty() {
                    job.name = rec.name;
                }
                if rec.grid > 0 {
                    job.grid = rec.grid;
                }
            } else {
                reg.jobs.push(Job {
                    id: rec.job,
                    name: rec.name,
                    grid: rec.grid,
                    state: rec.state,
                    cancel: Arc::new(AtomicBool::new(false)),
                    started: None,
                    wall_s: rec.wall_s,
                });
            }
        }
        for job in &mut reg.jobs {
            if !job.state.terminal() {
                if spec_path(state, &job.id).is_file() {
                    eprintln!(
                        "serve: re-enqueueing interrupted job {} ({}, last state {})",
                        job.id,
                        job.name,
                        job.state.as_str()
                    );
                    job.state = JobState::Queued;
                } else {
                    eprintln!("serve: job {} has no spec file; marking failed", job.id);
                    job.state = JobState::Failed;
                }
            }
        }
        Ok(reg)
    }

    /// 1-based queue position of a queued job (0 otherwise).
    fn queue_position(&self, id: &str) -> usize {
        let mut pos = 0;
        for job in &self.jobs {
            if job.state == JobState::Queued {
                pos += 1;
                if job.id == id {
                    return pos;
                }
            }
        }
        0
    }
}

/// Every completed row currently on disk for a job, keyed by grid
/// index in ascending order (merged output, live `.tmp` stream and
/// shard files all count; later sources win). Lenient per-line parsing
/// — a half-written row is simply not a row yet.
fn collect_rows(out: &Path) -> Vec<(u64, String)> {
    let mut sources = vec![out.to_path_buf(), stream_path(out)];
    sources.extend(existing_shard_files(out));
    let mut map: Vec<(u64, String)> = Vec::new();
    for src in &sources {
        let Ok(text) = std::fs::read_to_string(src) else {
            continue;
        };
        for row in parse_jsonl(&text) {
            if let Some(entry) = map.iter_mut().find(|(i, _)| *i == row.index) {
                entry.1 = row.line;
            } else {
                map.push((row.index, row.line));
            }
        }
    }
    map.sort_by_key(|&(i, _)| i);
    map
}

/// Renders one status record for a job (the registry lock must be
/// released before the row scan — see `status_records`).
fn status_record(
    state: &Path,
    id: &str,
    name: &str,
    grid: usize,
    job_state: JobState,
    queue: usize,
    wall_s: f64,
) -> String {
    let rows_done = collect_rows(&rows_path(state, id)).len();
    format!(
        "{{\"job\":\"{}\",\"name\":\"{}\",\"state\":\"{}\",\"queue\":{queue},\
         \"rows_done\":{rows_done},\"rows_total\":{grid},\"wall_s\":{wall_s:.3}}}",
        json_escape(id),
        json_escape(name),
        job_state.as_str()
    )
}

/// A structured protocol error line.
fn err_record(code: &str, msg: &str) -> String {
    format!(
        "{{\"ok\":false,\"code\":\"{}\",\"error\":\"{}\"}}",
        json_escape(code),
        json_escape(msg)
    )
}

/// Runs one job under the supervisor (always resuming) and maps its
/// exit code to the terminal state.
fn run_job(cfg: &ServeConfig, id: &str, cancel: &AtomicBool) -> JobState {
    let spath = spec_path(&cfg.state, id);
    let text = match std::fs::read_to_string(&spath) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("serve: job {id}: cannot read {}: {e}", spath.display());
            return JobState::Failed;
        }
    };
    let spec = match SweepSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("serve: job {id}: spec no longer loads: {e}");
            return JobState::Failed;
        }
    };
    let scfg = SupervisorConfig {
        spec_path: spath.display().to_string(),
        sets: Vec::new(),
        out: rows_path(&cfg.state, id),
        workers: cfg.workers,
        // Always resume: a restarted server (or a re-submitted job)
        // must reuse every row already on disk.
        resume: true,
        jobs: cfg.jobs,
        row_timeout: cfg.row_timeout,
        max_retries: cfg.max_retries,
        backoff: cfg.backoff,
    };
    match supervise_with_cancel(&spec, &scfg, Some(cancel)) {
        Ok(code) if code == EXIT_FULL => JobState::Done,
        Ok(code) if code == EXIT_PARTIAL => JobState::Partial,
        Ok(code) if code == EXIT_CANCELLED => JobState::Cancelled,
        Ok(_) => JobState::Failed,
        Err(e) => {
            eprintln!("serve: job {id}: {e}");
            JobState::Failed
        }
    }
}

/// The job executor: one job at a time, submission order, drains the
/// queue on shutdown.
fn executor(reg: &Arc<Mutex<Registry>>, cfg: &ServeConfig) {
    loop {
        let next = {
            let mut r = lock(reg);
            match r.jobs.iter_mut().find(|j| j.state == JobState::Queued) {
                Some(job) => {
                    job.state = JobState::Running;
                    job.started = Some(Instant::now());
                    job.cancel.store(false, Ordering::SeqCst);
                    Some((job.id.clone(), job.cancel.clone()))
                }
                None => {
                    if r.draining {
                        r.finished = true;
                        return;
                    }
                    None
                }
            }
        };
        let Some((id, cancel)) = next else {
            std::thread::sleep(POLL);
            continue;
        };
        if let Err(e) = journal_append(
            &cfg.state,
            &format!("{{\"job\":\"{}\",\"state\":\"running\"}}", json_escape(&id)),
        ) {
            eprintln!("serve: {e}");
        }
        let t0 = Instant::now();
        // A panic inside one job (a macro hitting a closed pipe, a
        // supervisor bug) must fail that job, not silently kill the
        // executor thread and wedge every later submit at "queued".
        let state =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_job(cfg, &id, &cancel)))
                .unwrap_or_else(|_| {
                    let _ = writeln!(
                        std::io::stderr(),
                        "serve: job {id}: panicked; marking failed"
                    );
                    JobState::Failed
                });
        let wall_s = t0.elapsed().as_secs_f64();
        {
            let mut r = lock(reg);
            if let Some(job) = r.jobs.iter_mut().find(|j| j.id == id) {
                job.state = state;
                job.wall_s = wall_s;
            }
        }
        if let Err(e) = journal_append(
            &cfg.state,
            &format!(
                "{{\"job\":\"{}\",\"state\":\"{}\",\"wall_s\":{wall_s:.3}}}",
                json_escape(&id),
                state.as_str()
            ),
        ) {
            eprintln!("serve: {e}");
        }
        eprintln!("serve: job {id} -> {}", state.as_str());
    }
}

/// Handles `submit`: validate, dedupe by deterministic id, persist the
/// spec, journal the queued transition, enqueue.
fn handle_submit(req: &Json, reg: &Arc<Mutex<Registry>>, cfg: &ServeConfig) -> String {
    if lock(reg).draining {
        return err_record("draining", "server is draining; new submits are refused");
    }
    let Some(spec_json) = req.get("spec") else {
        return err_record("bad-request", "submit needs a \"spec\" object");
    };
    if !matches!(spec_json, Json::Obj(_)) {
        return err_record("bad-request", "submit \"spec\" must be an object");
    }
    let text = spec_json.render();
    let spec = match SweepSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => return err_record("bad-request", &format!("spec: {e}")),
    };
    if let Err(e) = spec.validate_axes() {
        return err_record("bad-request", &format!("spec: {e}"));
    }
    let (id, grid) = match job_id(&spec) {
        Ok(v) => v,
        Err(e) => return err_record("bad-request", &e.message),
    };
    {
        let r = lock(reg);
        if let Some(job) = r.jobs.iter().find(|j| j.id == id) {
            // Deterministic ids make re-submission idempotent.
            let queue = r.queue_position(&id);
            return format!(
                "{{\"ok\":true,\"job\":\"{}\",\"grid\":{},\"state\":\"{}\",\"queue\":{queue},\
                 \"note\":\"already submitted\"}}",
                json_escape(&id),
                job.grid,
                job.state.as_str()
            );
        }
    }
    let dir = job_dir(&cfg.state, &id);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        return err_record(
            "server-error",
            &format!("cannot create {}: {e}", dir.display()),
        );
    }
    // Land the spec atomically so a crash between submit and journal
    // cannot leave a half-written spec for the restart path to load.
    let spath = spec_path(&cfg.state, &id);
    let tmp = dir.join("spec.json.tmp");
    if let Err(e) = std::fs::write(&tmp, &text).and_then(|()| std::fs::rename(&tmp, &spath)) {
        return err_record(
            "server-error",
            &format!("cannot write {}: {e}", spath.display()),
        );
    }
    if let Err(e) = journal_append(
        &cfg.state,
        &format!(
            "{{\"job\":\"{}\",\"state\":\"queued\",\"name\":\"{}\",\"grid\":{grid}}}",
            json_escape(&id),
            json_escape(&spec.name)
        ),
    ) {
        return err_record("server-error", &e.message);
    }
    let queue = {
        let mut r = lock(reg);
        r.jobs.push(Job {
            id: id.clone(),
            name: spec.name.clone(),
            grid,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            started: None,
            wall_s: 0.0,
        });
        r.queue_position(&id)
    };
    format!(
        "{{\"ok\":true,\"job\":\"{}\",\"grid\":{grid},\"state\":\"queued\",\"queue\":{queue}}}",
        json_escape(&id)
    )
}

/// Handles `status`: one record for the named job, or one per job.
fn handle_status(req: &Json, reg: &Arc<Mutex<Registry>>, cfg: &ServeConfig) -> Vec<String> {
    let filter = req.get("job").and_then(Json::scalar);
    // Snapshot under the lock, scan row files after releasing it: the
    // row count is a directory scan and must not block the executor.
    let snapshot: Vec<(String, String, usize, JobState, usize, f64)> = {
        let r = lock(reg);
        r.jobs
            .iter()
            .filter(|j| filter.as_ref().is_none_or(|id| &j.id == id))
            .map(|j| {
                let wall = match (j.state, j.started) {
                    (JobState::Running, Some(t0)) => t0.elapsed().as_secs_f64(),
                    _ => j.wall_s,
                };
                (
                    j.id.clone(),
                    j.name.clone(),
                    j.grid,
                    j.state,
                    r.queue_position(&j.id),
                    wall,
                )
            })
            .collect()
    };
    if snapshot.is_empty() {
        if let Some(id) = filter {
            return vec![err_record("not-found", &format!("unknown job {id:?}"))];
        }
        return vec!["{\"jobs\":0}".to_string()];
    }
    snapshot
        .iter()
        .map(|(id, name, grid, state, queue, wall)| {
            status_record(&cfg.state, id, name, *grid, *state, *queue, *wall)
        })
        .collect()
}

/// Handles `cancel`: a queued job flips straight to cancelled; a
/// running one has its supervisor's cancel flag raised (workers are
/// killed, completed rows merged and kept); terminal jobs report their
/// state unchanged.
fn handle_cancel(req: &Json, reg: &Arc<Mutex<Registry>>, cfg: &ServeConfig) -> String {
    let Some(id) = req.get("job").and_then(Json::scalar) else {
        return err_record("bad-request", "cancel needs a \"job\" id");
    };
    let outcome = {
        let mut r = lock(reg);
        match r.jobs.iter_mut().find(|j| j.id == id) {
            None => None,
            Some(job) => match job.state {
                JobState::Queued => {
                    job.state = JobState::Cancelled;
                    Some(("cancelled", true))
                }
                JobState::Running => {
                    job.cancel.store(true, Ordering::SeqCst);
                    // The executor journals the terminal record when
                    // the supervisor actually stops.
                    Some(("cancelling", false))
                }
                state => Some((state.as_str(), false)),
            },
        }
    };
    match outcome {
        None => err_record("not-found", &format!("unknown job {id:?}")),
        Some((state, journal)) => {
            if journal {
                if let Err(e) = journal_append(
                    &cfg.state,
                    &format!(
                        "{{\"job\":\"{}\",\"state\":\"cancelled\",\"wall_s\":0.000}}",
                        json_escape(&id)
                    ),
                ) {
                    eprintln!("serve: {e}");
                }
            }
            format!(
                "{{\"ok\":true,\"job\":\"{}\",\"state\":\"{state}\"}}",
                json_escape(&id)
            )
        }
    }
}

/// Handles `watch`: streams completed rows as JSONL in grid order as
/// they retire. While the job runs only the contiguous prefix is
/// emitted (later rows may still fill earlier gaps); once it reaches a
/// terminal state every row on disk is flushed (a cancelled or partial
/// job yields its completed rows, with gaps). `from` skips the first N
/// stream rows, making an interrupted watch resumable.
fn handle_watch(
    req: &Json,
    reg: &Arc<Mutex<Registry>>,
    cfg: &ServeConfig,
    w: &mut impl Write,
) -> std::io::Result<()> {
    let Some(id) = req.get("job").and_then(Json::scalar) else {
        return writeln!(
            w,
            "{}",
            err_record("bad-request", "watch needs a \"job\" id")
        );
    };
    let from: usize = req
        .get("from")
        .and_then(Json::scalar)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    if !lock(reg).jobs.iter().any(|j| j.id == id) {
        // Satellite fix: an unknown job is a structured not-found
        // record, never a silently empty stream.
        return writeln!(
            w,
            "{}",
            err_record("not-found", &format!("unknown job {id:?}"))
        );
    }
    let out = rows_path(&cfg.state, &id);
    let mut sent = from;
    loop {
        let state = lock(reg).jobs.iter().find(|j| j.id == id).map(|j| j.state);
        let Some(state) = state else {
            return writeln!(
                w,
                "{}",
                err_record("not-found", &format!("job {id:?} vanished"))
            );
        };
        let rows = collect_rows(&out);
        if state.terminal() {
            for (_, line) in rows.iter().skip(sent) {
                writeln!(w, "{line}")?;
            }
            w.flush()?;
            return Ok(());
        }
        // Contiguous prefix only: row k is safe to emit once every
        // earlier grid index is on disk too.
        let mut prefix = 0;
        for (k, &(i, _)) in rows.iter().enumerate() {
            if i as usize == k {
                prefix = k + 1;
            } else {
                break;
            }
        }
        let mut progressed = false;
        while sent < prefix {
            writeln!(w, "{}", rows[sent].1)?;
            sent += 1;
            progressed = true;
        }
        if progressed {
            w.flush()?;
        }
        std::thread::sleep(POLL);
    }
}

/// Dispatches one request line; returns the response lines already
/// written (watch streams directly). The blank-line terminator is
/// written by the caller.
fn respond(
    line: &str,
    reg: &Arc<Mutex<Registry>>,
    cfg: &ServeConfig,
    w: &mut impl Write,
) -> std::io::Result<()> {
    let req = match parse_json(line.trim()) {
        Ok(v) if matches!(v, Json::Obj(_)) => v,
        Ok(_) => {
            return writeln!(
                w,
                "{}",
                err_record("bad-request", "request must be a JSON object")
            );
        }
        Err(e) => {
            return writeln!(
                w,
                "{}",
                err_record("bad-request", &format!("malformed request: {e}"))
            );
        }
    };
    let Some(verb) = req.get("verb").and_then(Json::scalar) else {
        return writeln!(
            w,
            "{}",
            err_record("bad-request", "request has no \"verb\"")
        );
    };
    match verb.as_str() {
        "submit" => writeln!(w, "{}", handle_submit(&req, reg, cfg)),
        "status" => {
            for rec in handle_status(&req, reg, cfg) {
                writeln!(w, "{rec}")?;
            }
            Ok(())
        }
        "watch" => handle_watch(&req, reg, cfg, w),
        "cancel" => writeln!(w, "{}", handle_cancel(&req, reg, cfg)),
        "shutdown" => {
            let pending = {
                let mut r = lock(reg);
                r.draining = true;
                r.jobs.iter().filter(|j| !j.state.terminal()).count()
            };
            eprintln!("serve: draining ({pending} job(s) pending), refusing new submits");
            writeln!(
                w,
                "{{\"ok\":true,\"state\":\"draining\",\"jobs_pending\":{pending}}}"
            )
        }
        other => writeln!(
            w,
            "{}",
            err_record(
                "bad-request",
                &format!("unknown verb {other:?}; valid: submit, status, watch, cancel, shutdown")
            )
        ),
    }
}

/// One connection: a loop of request lines, each answered by response
/// lines plus a blank terminator. Errors (including malformed lines)
/// are structured records; only I/O failure ends the connection.
fn handle_conn(stream: TcpStream, reg: &Arc<Mutex<Registry>>, cfg: &ServeConfig) {
    // A dead peer must not pin the thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(3600)));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut w = std::io::BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return, // peer closed / timed out
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        if respond(&line, reg, cfg, &mut w).is_err() {
            return;
        }
        // Response terminator; flush so one-shot clients see it now.
        if writeln!(w).and_then(|()| w.flush()).is_err() {
            return;
        }
    }
}

/// Runs the service until a `shutdown` request drains the queue.
/// Prints one `{"serve":"listening","addr":...}` line on stdout once
/// the socket is bound (with the resolved port — `--addr host:0` binds
/// an ephemeral one).
///
/// # Errors
///
/// Bind/setup failures and journal corruption; per-connection and
/// per-job failures are handled in-protocol.
pub fn serve(cfg: &ServeConfig) -> Result<(), CliError> {
    std::fs::create_dir_all(&cfg.state).map_err(|e| {
        CliError::semantic(format!(
            "error: cannot create state dir {}: {e}",
            cfg.state.display()
        ))
    })?;
    let reg = Arc::new(Mutex::new(Registry::load(&cfg.state)?));
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| CliError::semantic(format!("error: cannot bind {}: {e}", cfg.addr)))?;
    let local = listener
        .local_addr()
        .map_err(|e| CliError::semantic(format!("error: cannot resolve bound address: {e}")))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| CliError::semantic(format!("error: cannot set nonblocking accept: {e}")))?;
    println!(
        "{{\"serve\":\"listening\",\"addr\":\"{local}\",\"state\":\"{}\",\"workers\":{}}}",
        json_escape(&cfg.state.display().to_string()),
        cfg.workers
    );
    // stdout is the machine-readable channel (tests read the bound
    // address from it); make sure the line is out before accepting.
    let _ = std::io::stdout().flush();

    let exec_reg = Arc::clone(&reg);
    let exec_cfg = cfg.clone();
    let exec = std::thread::spawn(move || executor(&exec_reg, &exec_cfg));

    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let conn_reg = Arc::clone(&reg);
                let conn_cfg = cfg.clone();
                std::thread::spawn(move || handle_conn(stream, &conn_reg, &conn_cfg));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if lock(&reg).finished {
                    break;
                }
                std::thread::sleep(POLL);
            }
            Err(e) => {
                return Err(CliError::semantic(format!("error: accept failed: {e}")));
            }
        }
    }
    let _ = exec.join();
    eprintln!("serve: drained; exiting");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_states_round_trip_and_classify() {
        for s in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Partial,
            JobState::Failed,
            JobState::Cancelled,
        ] {
            assert_eq!(JobState::parse(s.as_str()), Some(s));
            assert_eq!(
                s.terminal(),
                !matches!(s, JobState::Queued | JobState::Running)
            );
        }
        assert_eq!(JobState::parse("nope"), None);
    }

    #[test]
    fn journal_ingest_drops_torn_tail_and_rejects_midfile_garbage() {
        let good = "{\"job\":\"a\",\"state\":\"queued\",\"name\":\"n\",\"grid\":4}\n";
        let recs = ingest_journal(good, "j").unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].job, "a");
        assert_eq!(recs[0].state, JobState::Queued);
        assert_eq!(recs[0].grid, 4);

        // Torn tail (no newline) is dropped.
        let torn = format!("{good}{{\"job\":\"b\",\"sta");
        assert_eq!(ingest_journal(&torn, "j").unwrap().len(), 1);
        // Unterminated but valid final line is also treated as torn.
        let unterminated = format!("{good}{}", good.trim_end());
        assert_eq!(ingest_journal(&unterminated, "j").unwrap().len(), 1);
        // Garbage mid-file is an error.
        let corrupt = format!("garbage\n{good}");
        assert!(ingest_journal(&corrupt, "j").is_err());
    }

    #[test]
    fn job_id_is_deterministic_and_grid_sensitive() {
        let spec = SweepSpec::new(ndp_sim::SimConfig::cli_default()).axis("pwc_entries", &[16, 64]);
        let (id1, grid1) = job_id(&spec).unwrap();
        let (id2, _) = job_id(&spec).unwrap();
        assert_eq!(id1, id2);
        assert_eq!(grid1, 2);
        let wider =
            SweepSpec::new(ndp_sim::SimConfig::cli_default()).axis("pwc_entries", &[16, 64, 256]);
        assert_ne!(job_id(&wider).unwrap().0, id1);
    }
}
