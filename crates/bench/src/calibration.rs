//! Paper-target calibration: embedded Fig 4/5/6/7 reference points,
//! tolerance bands, and the pass/fail evaluation behind
//! `calibrate --check`.
//!
//! The evaluation is file-driven: it consumes the calibration sweep's
//! JSONL rows (each row carries the raw counters — walk counts, PTW
//! cycles, translation cycles, TLB and L1 hit/miss totals — alongside
//! the grid coordinates), derives the paper's headline metrics per
//! `(system, cores, mechanism)` group as the arithmetic mean over the
//! workloads present, and compares each embedded target against its
//! tolerance band. Everything needed to re-check a finished run is in
//! the JSONL file; no simulation state survives into this module.

use crate::cli::{json_f64, json_str, json_u64};
use ndp_sim::spec::{mechanism_names, SweepSpec};
use ndp_sim::SimConfig;

/// The `(system, cores)` pairs the paper's figures evaluate: NDP
/// scaling from 1 to 8 cores plus the 4-core CPU baseline.
pub const SYSTEM_CORES: [(&str, &str); 4] =
    [("ndp", "1"), ("ndp", "4"), ("ndp", "8"), ("cpu", "4")];

/// The calibration grid over `base`: workload (slowest-varying) x
/// paired `(system, cores)` x mechanism (fastest). Shared by the
/// `calibrate` binary and the `ndpsim bench` calibration pass so the
/// two can never sweep different grids.
#[must_use]
pub fn grid(base: SimConfig, workloads: &[&str]) -> SweepSpec {
    SweepSpec::new(base)
        .named("calibration")
        .axis("workload", workloads)
        .paired_axis(
            SYSTEM_CORES
                .iter()
                .map(|(s, c)| vec![("system", (*s).to_string()), ("cores", (*c).to_string())])
                .collect(),
        )
        .axis("mechanism", &mechanism_names())
}

/// Which derived metric a [`PaperTarget`] pins down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Mean page-table-walk latency in cycles (`ptw_cycles / walks`).
    AvgPtwLatency,
    /// Fraction of core time spent translating
    /// (`translation_cycles / (avg_core_cycles * cores)`).
    TranslationFraction,
    /// L1 data-cache miss rate.
    L1DataMissRate,
    /// L1 metadata-cache miss rate (page-table traffic).
    L1MetadataMissRate,
}

impl Metric {
    /// Short unit-bearing label for report tables.
    #[must_use]
    pub fn unit(self) -> &'static str {
        match self {
            Metric::AvgPtwLatency => "cycles",
            Metric::TranslationFraction | Metric::L1DataMissRate | Metric::L1MetadataMissRate => {
                "fraction"
            }
        }
    }

    /// Formats a metric value for the report (cycles plain, rates as %).
    #[must_use]
    pub fn fmt(self, v: f64) -> String {
        match self {
            Metric::AvgPtwLatency => format!("{v:.2}"),
            _ => format!("{:.2}%", v * 100.0),
        }
    }
}

/// A tolerance band around a target value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Relative band: `target * (1 ± r)`.
    Rel(f64),
    /// Absolute band: `target ± a` (in the metric's own unit).
    Abs(f64),
}

impl Tolerance {
    /// Parses `"25%"` as a relative band and a plain number as an
    /// absolute band.
    ///
    /// # Errors
    ///
    /// Empty, non-numeric, negative or non-finite bands.
    pub fn parse(s: &str) -> Result<Tolerance, String> {
        let s = s.trim();
        let (raw, rel) = match s.strip_suffix('%') {
            Some(head) => (head, true),
            None => (s, false),
        };
        let v: f64 = raw
            .trim()
            .parse()
            .map_err(|_| format!("tolerance {s:?} is not a number (use e.g. \"25%\" or 0.05)"))?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("tolerance {s:?} must be finite and non-negative"));
        }
        Ok(if rel {
            Tolerance::Rel(v / 100.0)
        } else {
            Tolerance::Abs(v)
        })
    }

    /// The band's absolute half-width around `target`.
    #[must_use]
    pub fn half_width(self, target: f64) -> f64 {
        match self {
            Tolerance::Rel(r) => r * target.abs(),
            Tolerance::Abs(a) => a,
        }
    }

    /// Renders the band the way it parses (`"25%"` / `"0.05"`).
    #[must_use]
    pub fn render(self) -> String {
        match self {
            Tolerance::Rel(r) => format!("{:.0}%", r * 100.0),
            Tolerance::Abs(a) => format!("{a}"),
        }
    }
}

/// One embedded reference point from the paper's evaluation.
#[derive(Debug, Clone, Copy)]
pub struct PaperTarget {
    /// Stable key, used by `--tolerance KEY=BAND` overrides.
    pub key: &'static str,
    /// Which figure the number comes from.
    pub figure: &'static str,
    /// Human description for the report table.
    pub what: &'static str,
    /// `system` knob value the group must match.
    pub system: &'static str,
    /// `cores` knob value the group must match.
    pub cores: u32,
    /// `mechanism` knob value the group must match.
    pub mechanism: &'static str,
    /// The derived metric being pinned.
    pub metric: Metric,
    /// The paper's value.
    pub value: f64,
    /// Default tolerance band.
    pub tolerance: Tolerance,
}

/// The embedded paper-target table: Fig 4 (4-core PTW latency), Fig 5
/// (translation overhead fraction), Fig 6 (PTW latency vs core count)
/// and Fig 7 (NDP L1 data/metadata miss rates). CPU 4-core PTW is
/// derived from Fig 4's "+229%" (474.56 / 3.29).
pub const TARGETS: &[PaperTarget] = &[
    PaperTarget {
        key: "ndp_radix_ptw_1c",
        figure: "Fig 6",
        what: "NDP radix avg PTW latency, 1 core",
        system: "ndp",
        cores: 1,
        mechanism: "radix",
        metric: Metric::AvgPtwLatency,
        value: 242.85,
        tolerance: Tolerance::Rel(0.25),
    },
    PaperTarget {
        key: "ndp_radix_ptw_4c",
        figure: "Fig 4",
        what: "NDP radix avg PTW latency, 4 cores",
        system: "ndp",
        cores: 4,
        mechanism: "radix",
        metric: Metric::AvgPtwLatency,
        value: 474.56,
        tolerance: Tolerance::Rel(0.25),
    },
    PaperTarget {
        key: "ndp_radix_ptw_8c",
        figure: "Fig 6",
        what: "NDP radix avg PTW latency, 8 cores",
        system: "ndp",
        cores: 8,
        mechanism: "radix",
        metric: Metric::AvgPtwLatency,
        value: 551.83,
        tolerance: Tolerance::Rel(0.25),
    },
    PaperTarget {
        key: "cpu_radix_ptw_4c",
        figure: "Fig 4",
        what: "CPU radix avg PTW latency, 4 cores",
        system: "cpu",
        cores: 4,
        mechanism: "radix",
        metric: Metric::AvgPtwLatency,
        value: 144.24,
        tolerance: Tolerance::Rel(0.25),
    },
    PaperTarget {
        key: "ndp_radix_trans_frac_4c",
        figure: "Fig 5",
        what: "NDP radix translation fraction, 4 cores",
        system: "ndp",
        cores: 4,
        mechanism: "radix",
        metric: Metric::TranslationFraction,
        value: 0.671,
        tolerance: Tolerance::Rel(0.20),
    },
    PaperTarget {
        key: "cpu_radix_trans_frac_4c",
        figure: "Fig 5",
        what: "CPU radix translation fraction, 4 cores",
        system: "cpu",
        cores: 4,
        mechanism: "radix",
        metric: Metric::TranslationFraction,
        value: 0.3451,
        tolerance: Tolerance::Rel(0.25),
    },
    PaperTarget {
        key: "ndp_radix_l1_data_miss_4c",
        figure: "Fig 7",
        what: "NDP radix L1 data miss rate, 4 cores",
        system: "ndp",
        cores: 4,
        mechanism: "radix",
        metric: Metric::L1DataMissRate,
        value: 0.3589,
        tolerance: Tolerance::Rel(0.20),
    },
    PaperTarget {
        key: "ndp_ideal_l1_data_miss_4c",
        figure: "Fig 7",
        what: "NDP ideal-translation L1 data miss rate, 4 cores",
        system: "ndp",
        cores: 4,
        mechanism: "ideal",
        metric: Metric::L1DataMissRate,
        value: 0.2616,
        tolerance: Tolerance::Rel(0.20),
    },
    PaperTarget {
        key: "ndp_radix_l1_meta_miss_4c",
        figure: "Fig 7",
        what: "NDP radix L1 metadata miss rate, 4 cores",
        system: "ndp",
        cores: 4,
        mechanism: "radix",
        metric: Metric::L1MetadataMissRate,
        value: 0.9828,
        tolerance: Tolerance::Abs(0.05),
    },
];

/// Looks up an embedded target by key.
#[must_use]
pub fn target(key: &str) -> Option<&'static PaperTarget> {
    TARGETS.iter().find(|t| t.key == key)
}

/// One parsed calibration JSONL row: the grid coordinates plus every
/// counter the derived metrics need.
#[derive(Debug, Clone, PartialEq)]
pub struct CalRow {
    /// `workload` coordinate.
    pub workload: String,
    /// `system` coordinate.
    pub system: String,
    /// `cores` coordinate.
    pub cores: u32,
    /// `mechanism` coordinate.
    pub mechanism: String,
    /// Cycles cores spent waiting on translation.
    pub translation_cycles: u64,
    /// Completed page-table walks.
    pub walks: u64,
    /// Total cycles spent in those walks.
    pub ptw_cycles: u64,
    /// Mean per-core busy cycles.
    pub avg_core_cycles: f64,
    /// L1 TLB hits.
    pub tlb_l1_hits: u64,
    /// L1 TLB misses.
    pub tlb_l1_misses: u64,
    /// L2 TLB misses (i.e. walks started).
    pub tlb_l2_misses: u64,
    /// L1 data-cache hits.
    pub l1d_hits: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// L1 metadata-cache hits.
    pub l1m_hits: u64,
    /// L1 metadata-cache misses.
    pub l1m_misses: u64,
}

fn ratio(num: f64, den: f64) -> Option<f64> {
    (den > 0.0).then(|| num / den)
}

impl CalRow {
    /// Mean PTW latency in cycles, `None` with no walks.
    #[must_use]
    pub fn avg_ptw_latency(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        ratio(self.ptw_cycles as f64, self.walks as f64)
    }

    /// Fraction of core time spent translating.
    #[must_use]
    pub fn translation_fraction(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        ratio(
            self.translation_cycles as f64,
            self.avg_core_cycles * f64::from(self.cores),
        )
    }

    /// Walks per TLB access (the paper's walk rate).
    #[must_use]
    pub fn tlb_walk_rate(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        ratio(
            self.tlb_l2_misses as f64,
            (self.tlb_l1_hits + self.tlb_l1_misses) as f64,
        )
    }

    /// L1 data-cache miss rate.
    #[must_use]
    pub fn l1_data_miss_rate(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        ratio(
            self.l1d_misses as f64,
            (self.l1d_hits + self.l1d_misses) as f64,
        )
    }

    /// L1 metadata-cache miss rate.
    #[must_use]
    pub fn l1_metadata_miss_rate(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        ratio(
            self.l1m_misses as f64,
            (self.l1m_hits + self.l1m_misses) as f64,
        )
    }

    /// The row's value for `metric`, `None` when the denominator is 0.
    #[must_use]
    pub fn metric(&self, metric: Metric) -> Option<f64> {
        match metric {
            Metric::AvgPtwLatency => self.avg_ptw_latency(),
            Metric::TranslationFraction => self.translation_fraction(),
            Metric::L1DataMissRate => self.l1_data_miss_rate(),
            Metric::L1MetadataMissRate => self.l1_metadata_miss_rate(),
        }
    }
}

/// Parses one calibration JSONL line.
///
/// # Errors
///
/// Names the missing field (older-format rows without the calibration
/// counters are rejected with a hint to re-run the sweep).
pub fn parse_row(line: &str) -> Result<CalRow, String> {
    let s =
        |key: &str| json_str(line, key).ok_or_else(|| format!("row is missing coordinate {key:?}"));
    let n = |key: &str| {
        json_u64(line, key).ok_or_else(|| {
            format!(
                "row is missing counter {key:?} (pre-calibration JSONL format? \
                 re-run the sweep to regenerate it)"
            )
        })
    };
    let cores_raw = s("cores")?;
    let cores: u32 = cores_raw
        .parse()
        .map_err(|_| format!("coordinate \"cores\"={cores_raw:?} is not an integer"))?;
    Ok(CalRow {
        workload: s("workload")?,
        system: s("system")?,
        cores,
        mechanism: s("mechanism")?,
        translation_cycles: n("translation_cycles")?,
        walks: n("walks")?,
        ptw_cycles: n("ptw_cycles")?,
        avg_core_cycles: json_f64(line, "avg_core_cycles")
            .ok_or_else(|| "row is missing counter \"avg_core_cycles\"".to_string())?,
        tlb_l1_hits: n("tlb_l1_hits")?,
        tlb_l1_misses: n("tlb_l1_misses")?,
        tlb_l2_misses: n("tlb_l2_misses")?,
        l1d_hits: n("l1d_hits")?,
        l1d_misses: n("l1d_misses")?,
        l1m_hits: n("l1m_hits")?,
        l1m_misses: n("l1m_misses")?,
    })
}

/// Parses a whole JSONL stream, naming the first bad line.
///
/// # Errors
///
/// Empty input or any malformed row (with its 1-based line number).
pub fn parse_rows(text: &str) -> Result<Vec<CalRow>, String> {
    let rows: Vec<CalRow> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_row(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect::<Result<_, _>>()?;
    if rows.is_empty() {
        return Err("no rows (empty JSONL)".to_string());
    }
    Ok(rows)
}

/// The mean of `metric` over the rows in a target's
/// `(system, cores, mechanism)` group, with the workload count.
#[must_use]
pub fn group_mean(rows: &[CalRow], t: &PaperTarget) -> (Option<f64>, usize) {
    let vals: Vec<f64> = rows
        .iter()
        .filter(|r| r.system == t.system && r.cores == t.cores && r.mechanism == t.mechanism)
        .filter_map(|r| r.metric(t.metric))
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let mean = (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64);
    (mean, vals.len())
}

/// One target's evaluation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The target evaluated.
    pub target: &'static PaperTarget,
    /// Measured group mean, `None` when the sweep has no matching rows.
    pub measured: Option<f64>,
    /// Workloads contributing to the mean.
    pub workloads: usize,
    /// Effective band half-width after overrides and scaling.
    pub band: f64,
    /// The band rendered the way it was specified (pre-scaling).
    pub band_spec: String,
    /// Whether the measured mean lies inside the band.
    pub pass: bool,
}

impl Finding {
    /// `|measured - target| / |target|`, `None` without a measurement.
    #[must_use]
    pub fn rel_deviation(&self) -> Option<f64> {
        self.measured
            .map(|m| (m - self.target.value).abs() / self.target.value.abs())
    }
}

/// Evaluates every embedded target against the sweep rows.
///
/// `overrides` replaces individual bands (`--tolerance KEY=BAND`);
/// `scale` multiplies every effective half-width (`--tolerance-scale`),
/// letting quick-scale CI runs reuse the full-scale table with wider,
/// deterministic-stable bands.
///
/// # Errors
///
/// Unknown override keys (valid keys listed) or a non-positive scale.
pub fn evaluate(
    rows: &[CalRow],
    overrides: &[(String, Tolerance)],
    scale: f64,
) -> Result<Vec<Finding>, String> {
    if !scale.is_finite() || scale <= 0.0 {
        return Err(format!("--tolerance-scale must be positive, got {scale}"));
    }
    for (key, _) in overrides {
        if target(key).is_none() {
            let keys: Vec<&str> = TARGETS.iter().map(|t| t.key).collect();
            return Err(format!(
                "unknown calibration target {key:?}; valid targets: {}",
                keys.join(", ")
            ));
        }
    }
    Ok(TARGETS
        .iter()
        .map(|t| {
            let tol = overrides
                .iter()
                .rev()
                .find(|(k, _)| k == t.key)
                .map_or(t.tolerance, |(_, tol)| *tol);
            let band = tol.half_width(t.value) * scale;
            let (measured, workloads) = group_mean(rows, t);
            // An exactly-on-band measurement passes: widen by a hair of
            // float slack so `x ± band` endpoints are inside.
            let pass = measured.is_some_and(|m| (m - t.value).abs() <= band + 1e-9 * t.value.abs());
            Finding {
                target: t,
                measured,
                workloads,
                band,
                band_spec: tol.render(),
                pass,
            }
        })
        .collect())
}

/// Whether every finding passed.
#[must_use]
pub fn all_pass(findings: &[Finding]) -> bool {
    findings.iter().all(|f| f.pass)
}

/// The largest relative deviation across measured findings (0 when
/// nothing measured).
#[must_use]
pub fn max_rel_deviation(findings: &[Finding]) -> f64 {
    findings
        .iter()
        .filter_map(Finding::rel_deviation)
        .fold(0.0, f64::max)
}

/// Renders the pass/fail report as table rows for
/// [`crate::print_table`].
#[must_use]
pub fn report_rows(findings: &[Finding]) -> Vec<Vec<String>> {
    findings
        .iter()
        .map(|f| {
            let t = f.target;
            vec![
                t.key.to_string(),
                t.figure.to_string(),
                t.metric.fmt(t.value),
                f.measured
                    .map_or_else(|| "-".to_string(), |m| t.metric.fmt(m)),
                f.rel_deviation()
                    .map_or_else(|| "-".to_string(), |d| format!("{:.1}%", d * 100.0)),
                f.band_spec.clone(),
                if f.pass {
                    "pass".to_string()
                } else {
                    "FAIL".to_string()
                },
            ]
        })
        .collect()
}

/// Renders the embedded target table itself (no measurements) for
/// `figures --calibration` and `calibrate --targets`.
#[must_use]
pub fn target_rows() -> Vec<Vec<String>> {
    TARGETS
        .iter()
        .map(|t| {
            vec![
                t.key.to_string(),
                t.figure.to_string(),
                t.what.to_string(),
                t.metric.fmt(t.value),
                t.metric.unit().to_string(),
                t.tolerance.render(),
            ]
        })
        .collect()
}

/// Headers of the per-group shape table — the one definition shared by
/// `calibrate` and `figures --from-jsonl`, so the two renderings can
/// never drift.
pub const GROUP_HEADERS: [&str; 9] = [
    "system",
    "cores",
    "mechanism",
    "n",
    "ptw",
    "trans",
    "walkrate",
    "L1d miss",
    "L1m miss",
];

/// The per-group shape summary (`system/cores/mechanism` → derived
/// metrics), in grid order of first appearance — the human-readable
/// view `calibrate` prints after a run.
#[must_use]
pub fn group_rows(rows: &[CalRow]) -> Vec<Vec<String>> {
    let fmt = |v: Option<f64>, m: Metric| v.map_or_else(|| "-".to_string(), |x| m.fmt(x));
    let mut groups: Vec<(String, u32, String)> = Vec::new();
    for r in rows {
        let g = (r.system.clone(), r.cores, r.mechanism.clone());
        if !groups.contains(&g) {
            groups.push(g);
        }
    }
    groups
        .iter()
        .map(|(system, cores, mechanism)| {
            let members: Vec<&CalRow> = rows
                .iter()
                .filter(|r| &r.system == system && r.cores == *cores && &r.mechanism == mechanism)
                .collect();
            let mean = |metric: Metric| {
                let vals: Vec<f64> = members.iter().filter_map(|r| r.metric(metric)).collect();
                #[allow(clippy::cast_precision_loss)]
                (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
            };
            let walk_rate = {
                let vals: Vec<f64> = members.iter().filter_map(|r| r.tlb_walk_rate()).collect();
                #[allow(clippy::cast_precision_loss)]
                (!vals.is_empty()).then(|| vals.iter().sum::<f64>() / vals.len() as f64)
            };
            vec![
                system.clone(),
                cores.to_string(),
                mechanism.clone(),
                members.len().to_string(),
                fmt(mean(Metric::AvgPtwLatency), Metric::AvgPtwLatency),
                fmt(
                    mean(Metric::TranslationFraction),
                    Metric::TranslationFraction,
                ),
                walk_rate.map_or_else(|| "-".to_string(), |x| format!("{:.2}%", x * 100.0)),
                fmt(mean(Metric::L1DataMissRate), Metric::L1DataMissRate),
                fmt(mean(Metric::L1MetadataMissRate), Metric::L1MetadataMissRate),
            ]
        })
        .collect()
}

/// Renders stored sweep JSONL as tables without re-simulating — the
/// `figures --from-jsonl` engine.
///
/// Every stream gets a generic per-row table: grid index, the knob
/// coordinates (first-seen order across rows; `-` where a row lacks
/// one), then the derived per-row metrics computable from the raw
/// counters alone (cycles, cycles/op, mean PTW latency, walk rate, L1
/// miss rates). When the rows also carry the calibration coordinates
/// (`workload`/`system`/`cores`/`mechanism`), the same per-group shape
/// table `calibrate --check --from` prints is appended, through the
/// same [`group_rows`]/[`GROUP_HEADERS`] code, so the two paths emit
/// identical bytes for identical rows.
///
/// # Errors
///
/// Empty input or a malformed line (named by 1-based number).
pub fn jsonl_tables(text: &str) -> Result<String, String> {
    use ndp_sim::spec::{parse_json, Json};

    /// One parsed stream line: grid index, knob coordinates, raw text.
    type ParsedRow = (u64, Vec<(String, String)>, String);
    let mut knob_names: Vec<String> = Vec::new();
    let mut parsed: Vec<ParsedRow> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = parse_json(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        let index = v
            .get("i")
            .and_then(Json::scalar)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("line {}: row has no grid index \"i\"", lineno + 1))?;
        let mut knobs = Vec::new();
        if let Some(Json::Obj(pairs)) = v.get("knobs") {
            for (k, val) in pairs {
                let val = val.scalar().unwrap_or_default();
                if !knob_names.contains(k) {
                    knob_names.push(k.clone());
                }
                knobs.push((k.clone(), val));
            }
        }
        parsed.push((index, knobs, line.to_string()));
    }
    if parsed.is_empty() {
        return Err("no rows (empty JSONL)".to_string());
    }

    let ratio = |num: Option<u64>, den: Option<u64>| -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match (num, den) {
            (Some(n), Some(d)) if d > 0 => Some(n as f64 / d as f64),
            _ => None,
        }
    };
    let fmt = |v: Option<f64>, f: &dyn Fn(f64) -> String| v.map_or_else(|| "-".to_string(), f);
    let mut headers: Vec<&str> = vec!["i"];
    headers.extend(knob_names.iter().map(String::as_str));
    headers.extend_from_slice(&[
        "cycles", "cyc/op", "ptw", "walkrate", "L1d miss", "L1m miss",
    ]);
    let rows: Vec<Vec<String>> = parsed
        .iter()
        .map(|(index, knobs, line)| {
            let n = |key: &str| json_u64(line, key);
            let mut cells = vec![index.to_string()];
            for name in &knob_names {
                cells.push(
                    knobs
                        .iter()
                        .find(|(k, _)| k == name)
                        .map_or_else(|| "-".to_string(), |(_, v)| v.clone()),
                );
            }
            cells.push(n("cycles").map_or_else(|| "-".to_string(), |c| c.to_string()));
            cells.push(fmt(ratio(n("cycles"), n("ops")), &|x| format!("{x:.1}")));
            cells.push(fmt(ratio(n("ptw_cycles"), n("walks")), &|x| {
                format!("{x:.1}")
            }));
            let tlb_accesses = n("tlb_l1_hits").zip(n("tlb_l1_misses")).map(|(h, m)| h + m);
            cells.push(fmt(ratio(n("tlb_l2_misses"), tlb_accesses), &|x| {
                format!("{:.2}%", x * 100.0)
            }));
            let l1d = n("l1d_hits").zip(n("l1d_misses")).map(|(h, m)| h + m);
            cells.push(fmt(ratio(n("l1d_misses"), l1d), &|x| {
                format!("{:.2}%", x * 100.0)
            }));
            let l1m = n("l1m_hits").zip(n("l1m_misses")).map(|(h, m)| h + m);
            cells.push(fmt(ratio(n("l1m_misses"), l1m), &|x| {
                format!("{:.2}%", x * 100.0)
            }));
            cells
        })
        .collect();
    let mut out = format!("rows ({}):\n", parsed.len());
    out.push_str(&crate::table_string(&headers, &rows));

    // The calibration view rides along whenever the coordinates allow
    // it — same parse, same grouping, same headers as `calibrate`.
    if let Ok(cal) = parse_rows(text) {
        out.push_str(&format!(
            "\nper-group shape metrics ({} rows):\n",
            cal.len()
        ));
        out.push_str(&crate::table_string(&GROUP_HEADERS, &group_rows(&cal)));
    }
    Ok(out)
}

/// Builds the flat-JSON `calibration` fields for `BENCH_end_to_end.json`
/// (targets hit, max relative deviation, wall time).
#[must_use]
pub fn bench_json_fields(findings: &[Finding], wall_s: f64) -> String {
    let hit = findings.iter().filter(|f| f.pass).count();
    format!(
        "\"cal_targets\": {},\n    \"cal_hit\": {},\n    \"cal_max_rel_dev\": {:.4},\n    \"cal_wall_s\": {:.2}",
        findings.len(),
        hit,
        max_rel_deviation(findings),
        wall_s
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(system: &str, cores: u32, mechanism: &str, workload: &str) -> CalRow {
        CalRow {
            workload: workload.to_string(),
            system: system.to_string(),
            cores,
            mechanism: mechanism.to_string(),
            translation_cycles: 500,
            walks: 10,
            ptw_cycles: 4746, // avg 474.6, inside the 4c NDP band
            avg_core_cycles: 1000.0,
            tlb_l1_hits: 90,
            tlb_l1_misses: 10,
            tlb_l2_misses: 10,
            l1d_hits: 65,
            l1d_misses: 35,
            l1m_hits: 2,
            l1m_misses: 98,
        }
    }

    #[test]
    fn tolerance_parses_percent_as_relative() {
        assert_eq!(Tolerance::parse("25%").unwrap(), Tolerance::Rel(0.25));
        assert_eq!(Tolerance::parse(" 10% ").unwrap(), Tolerance::Rel(0.10));
        assert_eq!(Tolerance::parse("0.05").unwrap(), Tolerance::Abs(0.05));
        assert_eq!(Tolerance::parse("3").unwrap(), Tolerance::Abs(3.0));
    }

    #[test]
    fn tolerance_rejects_junk() {
        for bad in ["", "%", "abc", "-1", "-5%", "nan", "inf%"] {
            assert!(Tolerance::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn tolerance_band_widths() {
        assert!((Tolerance::Rel(0.10).half_width(200.0) - 20.0).abs() < 1e-12);
        assert!((Tolerance::Abs(0.05).half_width(200.0) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn targets_are_unique_and_self_consistent() {
        for (i, t) in TARGETS.iter().enumerate() {
            assert!(t.value > 0.0, "{} target must be positive", t.key);
            assert!(
                TARGETS.iter().skip(i + 1).all(|u| u.key != t.key),
                "duplicate target key {}",
                t.key
            );
        }
        assert_eq!(target("ndp_radix_ptw_4c").unwrap().value, 474.56);
        assert!(target("nope").is_none());
    }

    #[test]
    fn row_metrics_derive_from_counters() {
        let r = row("ndp", 4, "radix", "RND");
        assert!((r.avg_ptw_latency().unwrap() - 474.6).abs() < 1e-9);
        assert!((r.translation_fraction().unwrap() - 0.125).abs() < 1e-9);
        assert!((r.tlb_walk_rate().unwrap() - 0.10).abs() < 1e-9);
        assert!((r.l1_data_miss_rate().unwrap() - 0.35).abs() < 1e-9);
        assert!((r.l1_metadata_miss_rate().unwrap() - 0.98).abs() < 1e-9);
    }

    #[test]
    fn zero_denominators_yield_none() {
        let mut r = row("ndp", 4, "radix", "RND");
        r.walks = 0;
        r.tlb_l1_hits = 0;
        r.tlb_l1_misses = 0;
        assert!(r.avg_ptw_latency().is_none());
        assert!(r.tlb_walk_rate().is_none());
    }

    #[test]
    fn jsonl_row_round_trips_through_parse() {
        let line = "{\"i\":3,\"cfg\":7,\"knobs\":{\"workload\":\"RND\",\"system\":\"ndp\",\
                    \"cores\":\"4\",\"mechanism\":\"radix\"},\"cycles\":9,\"ops\":5,\
                    \"mem_ops\":4,\"translation_cycles\":500,\"os_cycles\":0,\"walks\":10,\
                    \"ptw_cycles\":4746,\"avg_core_cycles\":1000,\"tlb_l1_hits\":90,\
                    \"tlb_l1_misses\":10,\"tlb_l2_misses\":10,\"l1d_hits\":65,\
                    \"l1d_misses\":35,\"l1m_hits\":2,\"l1m_misses\":98,\"fp\":1}";
        let r = parse_row(line).unwrap();
        assert_eq!(r, row("ndp", 4, "radix", "RND"));
    }

    #[test]
    fn old_format_rows_are_rejected_with_hint() {
        let line = "{\"i\":0,\"cfg\":1,\"knobs\":{\"workload\":\"RND\",\"system\":\"ndp\",\
                    \"cores\":\"4\",\"mechanism\":\"radix\"},\"cycles\":9,\"ops\":5,\
                    \"mem_ops\":4,\"translation_cycles\":500,\"os_cycles\":0,\"walks\":10,\"fp\":1}";
        let err = parse_row(line).unwrap_err();
        assert!(err.contains("ptw_cycles"), "{err}");
        assert!(err.contains("re-run"), "{err}");
    }

    #[test]
    fn parse_rows_names_bad_line() {
        let err = parse_rows("not json\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        assert!(parse_rows("").is_err());
    }

    #[test]
    fn evaluate_passes_inside_band_and_fails_outside() {
        let rows = vec![row("ndp", 4, "radix", "RND")];
        let findings = evaluate(&rows, &[], 1.0).unwrap();
        let f4 = findings
            .iter()
            .find(|f| f.target.key == "ndp_radix_ptw_4c")
            .unwrap();
        assert!(f4.pass, "474.6 sits inside 474.56 ± 25%");
        assert_eq!(f4.workloads, 1);

        // Shrinking every band to (effectively) zero fails the same
        // finding; targets with no matching rows fail either way.
        let tight = evaluate(&rows, &[], 1e-9).unwrap();
        assert!(
            !tight
                .iter()
                .find(|f| f.target.key == "ndp_radix_ptw_4c")
                .unwrap()
                .pass
        );
        assert!(
            !all_pass(&findings),
            "1-core / 8-core / cpu groups are absent"
        );
        let missing = findings
            .iter()
            .find(|f| f.target.key == "ndp_radix_ptw_1c")
            .unwrap();
        assert!(missing.measured.is_none() && !missing.pass);
    }

    #[test]
    fn evaluate_honours_overrides_and_rejects_unknown_keys() {
        let rows = vec![row("ndp", 4, "radix", "RND")];
        let wide = evaluate(
            &rows,
            &[("ndp_radix_ptw_4c".to_string(), Tolerance::Abs(0.001))],
            1.0,
        )
        .unwrap();
        // 474.6 vs 474.56 is off by 0.04 > 0.001: the override tightened
        // the band below the deviation.
        assert!(
            !wide
                .iter()
                .find(|f| f.target.key == "ndp_radix_ptw_4c")
                .unwrap()
                .pass
        );

        let err = evaluate(&rows, &[("bogus".to_string(), Tolerance::Rel(1.0))], 1.0).unwrap_err();
        assert!(
            err.contains("bogus") && err.contains("ndp_radix_ptw_4c"),
            "{err}"
        );
        assert!(evaluate(&rows, &[], 0.0).is_err());
    }

    #[test]
    fn deviation_and_json_fields() {
        let rows = vec![row("ndp", 4, "radix", "RND")];
        let findings = evaluate(&rows, &[], 1.0).unwrap();
        let dev = max_rel_deviation(&findings);
        assert!(dev > 0.0 && dev.is_finite());
        let json = bench_json_fields(&findings, 1.5);
        assert!(json.contains("\"cal_targets\": 9"), "{json}");
        assert!(json.contains("\"cal_wall_s\": 1.50"), "{json}");
    }

    #[test]
    fn report_and_group_rows_render() {
        let rows = vec![row("ndp", 4, "radix", "RND"), row("ndp", 4, "radix", "BFS")];
        let findings = evaluate(&rows, &[], 1.0).unwrap();
        let table = report_rows(&findings);
        assert_eq!(table.len(), TARGETS.len());
        assert!(table.iter().all(|r| r.len() == 7));
        let groups = group_rows(&rows);
        assert_eq!(
            groups.len(),
            1,
            "two workloads, one (system,cores,mechanism) group"
        );
        assert_eq!(groups[0][3], "2");
        assert_eq!(target_rows().len(), TARGETS.len());
    }
}
