//! Criterion microbenches for the page-table designs: map, translate and
//! walk-path generation per design (supports the Fig 12–14 mechanism
//! comparisons with component-level numbers).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ndp_types::Vpn;
use ndpage::alloc::FrameAllocator;
use ndpage::table::PageTable;
use ndpage::Mechanism;

const PAGES: u64 = 50_000;

fn mapped_table(mechanism: Mechanism) -> (FrameAllocator, Box<dyn PageTable>) {
    let mut alloc = FrameAllocator::new(8 << 30);
    let mut table = mechanism.build_table(&mut alloc).expect("real mechanism");
    for i in 0..PAGES {
        table.map(Vpn::new(i * 613), &mut alloc);
    }
    (alloc, table)
}

fn bench_map(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagetable_map");
    for mechanism in Mechanism::REAL {
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.name()),
            &mechanism,
            |b, &m| {
                b.iter_batched(
                    || {
                        let mut alloc = FrameAllocator::new(8 << 30);
                        let table = m.build_table(&mut alloc).expect("real");
                        (alloc, table, 0u64)
                    },
                    |(mut alloc, mut table, mut i)| {
                        for _ in 0..64 {
                            table.map(Vpn::new(i * 613), &mut alloc);
                            i += 1;
                        }
                        black_box(table.mapped_pages())
                    },
                    criterion::BatchSize::SmallInput,
                );
            },
        );
    }
    group.finish();
}

fn bench_translate(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagetable_translate");
    for mechanism in Mechanism::REAL {
        let (_alloc, table) = mapped_table(mechanism);
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.name()),
            &table,
            |b, table| {
                let mut i = 0u64;
                b.iter(|| {
                    i = (i + 1) % PAGES;
                    black_box(table.translate(Vpn::new(i * 613)))
                });
            },
        );
    }
    group.finish();
}

fn bench_walk_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagetable_walk_path");
    for mechanism in Mechanism::REAL {
        let (_alloc, table) = mapped_table(mechanism);
        group.bench_with_input(
            BenchmarkId::from_parameter(mechanism.name()),
            &table,
            |b, table| {
                let mut i = 0u64;
                b.iter(|| {
                    i = (i + 1) % PAGES;
                    black_box(table.walk_path(Vpn::new(i * 613)))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_map, bench_translate, bench_walk_path
}
criterion_main!(benches);
