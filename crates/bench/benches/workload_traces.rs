//! Criterion benches for trace generation: ops/sec per Table II workload
//! (the simulator's front-end cost).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ndp_workloads::{TraceParams, WorkloadId};

fn bench_traces(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    group.throughput(Throughput::Elements(4096));
    for w in WorkloadId::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(w.name()), &w, |b, &w| {
            let params = TraceParams::new(1).with_footprint(1 << 30);
            let mut trace = w.trace(params);
            b.iter(|| {
                let mut acc = 0u64;
                for _ in 0..4096 {
                    if let Some(op) = trace.next() {
                        acc ^= op.addr().map_or(1, |a| a.as_u64());
                    }
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_traces
}
criterion_main!(benches);
