//! Criterion microbenches for the memory substrate: set-associative cache
//! access/fill, DRAM device timing, and controller contention (backs the
//! Fig 6 contention analysis with component-level numbers).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ndp_cache::hierarchy::CacheHierarchy;
use ndp_mem::controller::MemoryController;
use ndp_mem::dram::DramConfig;
use ndp_types::{AccessClass, Cycles, PhysAddr, RwKind};

type HierarchyCtor = fn() -> CacheHierarchy;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    let variants: [(&str, HierarchyCtor); 2] = [
        ("ndp_l1", CacheHierarchy::ndp),
        ("cpu_l1l2l3", || CacheHierarchy::cpu(4)),
    ];
    for (name, mk) in variants {
        group.bench_with_input(BenchmarkId::new("lookup_fill", name), &mk, |b, mk| {
            let mut caches = mk();
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let addr = PhysAddr::new((i.wrapping_mul(0x9E37_79B9)) & 0x3FFF_FFC0);
                if !caches
                    .lookup(addr, RwKind::Read, AccessClass::Data)
                    .is_hit()
                {
                    black_box(caches.fill(addr, AccessClass::Data, false));
                }
            });
        });
    }
    group.finish();
}

fn bench_dram(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram");
    for (name, cfg) in [
        ("hbm2_vault", DramConfig::hbm2_vault()),
        ("ddr4_2400", DramConfig::ddr4_2400()),
    ] {
        group.bench_with_input(BenchmarkId::new("request", name), &cfg, |b, cfg| {
            let mut mc = MemoryController::new(*cfg);
            let mut now = Cycles::ZERO;
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                now += Cycles::new(100);
                black_box(mc.request(
                    PhysAddr::new((i.wrapping_mul(0xABCD_EF12)) & 0x3FFF_FFC0),
                    RwKind::Read,
                    AccessClass::Data,
                    now,
                ))
            });
        });
    }
    group.finish();
}

/// Measures queueing growth under offered load — the mechanism behind the
/// paper's Fig 6a PTW scaling. Not a wall-clock benchmark of the model
/// code, but of the model's own simulated latency under contention.
fn bench_contention(c: &mut Criterion) {
    let mut group = c.benchmark_group("dram_contention_model");
    for issuers in [1u64, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(issuers),
            &issuers,
            |b, &issuers| {
                b.iter(|| {
                    let mut mc = MemoryController::new(DramConfig::hbm2_vault());
                    let mut total = Cycles::ZERO;
                    for t in 0..200u64 {
                        for core in 0..issuers {
                            let addr = PhysAddr::new(
                                ((t * issuers + core).wrapping_mul(0x9E37_79B9)) & 0x3FFF_FFC0,
                            );
                            let now = Cycles::new(t * 120);
                            let done = mc.request(addr, RwKind::Read, AccessClass::Metadata, now);
                            total += done - now;
                        }
                    }
                    black_box(total)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_cache, bench_dram, bench_contention
}
criterion_main!(benches);
