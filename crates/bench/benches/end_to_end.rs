//! End-to-end simulation benches: one tiny run per translation mechanism
//! (Figs 12–14's engine) and per system (Figs 4–5's engine), measuring the
//! simulator's own throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ndp_sim::{Machine, SimConfig, SystemKind};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

fn tiny(system: SystemKind, cores: u32, m: Mechanism) -> SimConfig {
    SimConfig::new(system, cores, m, WorkloadId::Rnd)
        .with_ops(2_000, 4_000)
        .with_footprint(256 << 20)
}

fn bench_mechanisms(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_mechanism");
    group.sample_size(10);
    for m in Mechanism::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &m, |b, &m| {
            b.iter(|| black_box(Machine::new(tiny(SystemKind::Ndp, 1, m)).run()));
        });
    }
    group.finish();
}

fn bench_systems(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_system");
    group.sample_size(10);
    for (name, system, cores) in [
        ("ndp_x1", SystemKind::Ndp, 1u32),
        ("ndp_x4", SystemKind::Ndp, 4),
        ("cpu_x4", SystemKind::Cpu, 4),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(Machine::new(tiny(system, cores, Mechanism::Radix)).run()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mechanisms, bench_systems);
criterion_main!(benches);
