//! Criterion microbenches for the three hot probe loops the epoch-batched
//! kernel leans on: the TLB set scan, the PWC probe/fill cycle, and the
//! MSHR live-fill scan. Each loop is a branch-light linear pass over a
//! struct-of-arrays layout; these benches pin their per-probe cost so a
//! layout regression shows up as a ns/iter jump rather than only as noise
//! in `ndpsim bench`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ndp_cache::mshr::MshrFile;
use ndp_mmu::pwc::PwcSet;
use ndp_mmu::tlb::TlbHierarchy;
use ndp_types::{Asid, Cycles, LineAddr, PageSize, Pfn, PhysAddr, PtLevel, Vpn};

/// Resident lookups across a warm working set: every probe scans a full
/// set's tag lane and hits, the steady state of an epoch's address burst.
fn bench_tlb_set_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_loops");
    group.bench_function("tlb_set_scan_hit", |b| {
        let mut tlb = TlbHierarchy::table1();
        // Enough pages to populate many sets, few enough to stay resident.
        let pages = 1024u64;
        for i in 0..pages {
            tlb.fill(Asid::ZERO, Vpn::new(i), Pfn::new(i + 7), PageSize::Size4K);
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % pages;
            black_box(tlb.lookup(Asid::ZERO, Vpn::new(i)))
        });
    });
    group.bench_function("tlb_set_scan_miss", |b| {
        let mut tlb = TlbHierarchy::table1();
        let mut i = 0u64;
        b.iter(|| {
            // Strided misses: tags never match, so each lookup pays the
            // full per-set scan at every level.
            i += 1;
            black_box(tlb.lookup(Asid::ZERO, Vpn::new(i.wrapping_mul(0x9E37_79B9))))
        });
    });
    group.finish();
}

/// The four-level probe/fill cycle a page walk issues per miss.
fn bench_pwc_probe_fill(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_loops");
    group.bench_function("pwc_probe_fill", |b| {
        let mut set = PwcSet::enabled();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let vpn = Vpn::new(i.wrapping_mul(613) % (1 << 27));
            for level in [PtLevel::L4, PtLevel::L3, PtLevel::L2, PtLevel::L1] {
                if !set.access(level, Asid::ZERO, vpn) {
                    set.fill(level, Asid::ZERO, vpn);
                }
            }
            black_box(&set);
        });
    });
    group.finish();
}

/// Live-fill scans over a populated MSHR file: `fill_in_flight` walks the
/// lines lane, `in_flight` the dones lane; both at history capacity.
fn bench_mshr_live_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("probe_loops");
    group.bench_function("mshr_live_fill_scan", |b| {
        let mut mshr = MshrFile::new(16);
        // Fill the file plus its history slack so scans run at max length.
        for i in 0..80u64 {
            let line = LineAddr::of(PhysAddr::new(i << 6));
            mshr.allocate(line, Cycles::new(i), Cycles::new(i + 10));
        }
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let line = LineAddr::of(PhysAddr::new((i % 96) << 6));
            black_box(mshr.fill_in_flight(line, Cycles::new(40)))
        });
    });
    group.bench_function("mshr_in_flight_count", |b| {
        let mut mshr = MshrFile::new(16);
        for i in 0..80u64 {
            let line = LineAddr::of(PhysAddr::new(i << 6));
            mshr.allocate(line, Cycles::new(i), Cycles::new(i + 10));
        }
        let mut now = 0u64;
        b.iter(|| {
            now = (now + 1) % 300;
            black_box(mshr.in_flight(Cycles::new(now)))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_tlb_set_scan, bench_pwc_probe_fill, bench_mshr_live_scan,
}
criterion_main!(benches);
