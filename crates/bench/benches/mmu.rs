//! Criterion microbenches for the MMU: TLB lookups/fills, PWC probes and
//! full walk planning (backs the §V-C PWC analysis).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ndp_mmu::pwc::PwcSet;
use ndp_mmu::tlb::TlbHierarchy;
use ndp_mmu::walker::PageTableWalker;
use ndp_types::{Asid, PageSize, Pfn, PtLevel, Vpn};
use ndpage::alloc::FrameAllocator;
use ndpage::radix::Radix4;
use ndpage::table::PageTable;

fn bench_tlb(c: &mut Criterion) {
    let mut group = c.benchmark_group("tlb");
    group.bench_function("lookup_miss_heavy", |b| {
        let mut tlb = TlbHierarchy::table1();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(tlb.lookup(Asid::ZERO, Vpn::new(i.wrapping_mul(0x9E37_79B9))))
        });
    });
    group.bench_function("fill_then_hit", |b| {
        let mut tlb = TlbHierarchy::table1();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let vpn = Vpn::new(i % 32);
            tlb.fill(Asid::ZERO, vpn, Pfn::new(i), PageSize::Size4K);
            black_box(tlb.lookup(Asid::ZERO, vpn))
        });
    });
    group.finish();
}

fn bench_pwc(c: &mut Criterion) {
    let mut group = c.benchmark_group("pwc");
    group.bench_function("probe_fill_cycle", |b| {
        let mut set = PwcSet::enabled();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let vpn = Vpn::new(i.wrapping_mul(613));
            for level in [PtLevel::L4, PtLevel::L3, PtLevel::L2, PtLevel::L1] {
                if !set.access(level, Asid::ZERO, vpn) {
                    set.fill(level, Asid::ZERO, vpn);
                }
            }
            black_box(&set);
        });
    });
    group.finish();
}

fn bench_walker(c: &mut Criterion) {
    let mut alloc = FrameAllocator::new(4 << 30);
    let mut table = Radix4::new(&mut alloc);
    let vpns: Vec<Vpn> = (0..10_000u64).map(|i| Vpn::new(i * 613)).collect();
    for &vpn in &vpns {
        table.map(vpn, &mut alloc);
    }
    let paths: Vec<_> = vpns
        .iter()
        .map(|&v| table.walk_path(v).expect("mapped"))
        .collect();

    let mut group = c.benchmark_group("walker");
    group.bench_function("plan_radix_walks", |b| {
        let mut walker = PageTableWalker::with_pwcs();
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % vpns.len();
            black_box(walker.plan(Asid::ZERO, vpns[i], &paths[i]))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_tlb, bench_pwc, bench_walker
}
criterion_main!(benches);
