//! `calibrate` harness tests: flag validation (the `--footprint-mb 0`
//! shift bug must stay fixed), resumable JSONL byte-identity, the
//! `--check` exit-code contract, and the `--emit-spec` round-trip into
//! the `ndpsim sweep` executor.

use std::path::PathBuf;
use std::process::Command;

fn calibrate() -> Command {
    Command::new(env!("CARGO_BIN_EXE_calibrate"))
}

fn ndpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ndpsim"))
}

fn tmp(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "ndp_calibrate_cli_{}_{tag}.{ext}",
        std::process::id()
    ))
}

/// Flags for a grid tiny enough for debug-build tests (20 points of a
/// few hundred ops each) while still covering every (system, cores,
/// mechanism) group the embedded targets reference.
const TINY: &[&str] = &["--workloads", "RND", "--footprint-mb", "8", "--ops", "300"];

// ---------------------------------------------------------------------------
// Flag validation (all exit 2, no simulation).
// ---------------------------------------------------------------------------

#[test]
fn rejects_zero_footprint_by_knob_name() {
    // The old scratchpad shifted `--footprint-mb 0` straight into the
    // config and simulated an empty address space.
    let out = calibrate().args(["--footprint-mb", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--footprint-mb"), "{stderr}");
    assert!(stderr.contains("footprint"), "names the knob: {stderr}");
}

#[test]
fn rejects_overflowing_footprint() {
    // 2^44 MiB << 20 would wrap; the checked multiply must reject it.
    let out = calibrate()
        .args(["--footprint-mb", "17592186044416"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("overflows"));
}

#[test]
fn rejects_unknown_flags_and_workloads() {
    let out = calibrate().args(["--fotprint-mb", "64"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--fotprint-mb") && stderr.contains("--footprint-mb"),
        "{stderr}"
    );

    let out = calibrate()
        .args(["--workloads", "RND,NOPE"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("NOPE"));
}

#[test]
fn rejects_malformed_tolerance_flags() {
    let out = calibrate()
        .args(["--tolerance", "ndp_radix_ptw_4c"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("KEY=BAND"));

    let out = calibrate()
        .args(["--tolerance", "ndp_radix_ptw_4c=abc"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("not a number"));

    let out = calibrate()
        .args(["--tolerance-scale", "wide"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--tolerance-scale"));
}

#[test]
fn rejects_shard_check_and_orphan_stream_flags() {
    // A single stripe is not the grid: checking it would report every
    // other group as missing.
    let out = calibrate()
        .args(TINY)
        .args(["--out", "/tmp/x.jsonl", "--shard", "0/2", "--check"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--shard"));

    let out = calibrate().args(["--resume"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));

    let out = calibrate()
        .args(["--out", "/tmp/x.jsonl", "--shard", "nope"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn check_from_missing_file_is_a_semantic_error() {
    let out = calibrate()
        .args(["--check", "--from", "/nonexistent/cal.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cal.jsonl"));
}

// ---------------------------------------------------------------------------
// Static outputs (no simulation).
// ---------------------------------------------------------------------------

#[test]
fn targets_table_lists_every_embedded_key() {
    let out = calibrate().arg("--targets").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for t in ndp_bench::calibration::TARGETS {
        assert!(stdout.contains(t.key), "missing {}", t.key);
    }
}

#[test]
fn emit_spec_round_trips_into_the_sweep_executor() {
    let spec = tmp("emit", "json");
    let out = calibrate()
        .args(TINY)
        .args(["--emit-spec", spec.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&spec).unwrap();
    assert!(text.contains("\"calibration\"") && text.contains("\"axes\""));

    // The emitted spec must load and expand to the same grid.
    let dry = ndpsim()
        .args(["sweep", "--spec", spec.to_str().unwrap(), "--dry-run"])
        .output()
        .unwrap();
    assert!(
        dry.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&dry.stderr)
    );
    let stdout = String::from_utf8_lossy(&dry.stdout);
    assert!(stdout.contains("20 grid points"), "{stdout}");
    std::fs::remove_file(&spec).ok();
}

// ---------------------------------------------------------------------------
// End-to-end: stream, resume, check (one tiny grid, reused across
// assertions to keep debug-build runtime down).
// ---------------------------------------------------------------------------

#[test]
fn streamed_jsonl_resumes_byte_identically_and_check_gates() {
    let out_path = tmp("stream", "jsonl");
    let run = calibrate()
        .args(TINY)
        .args(["--out", out_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run.stderr)
    );
    let bytes = std::fs::read(&out_path).unwrap();
    let text = String::from_utf8(bytes.clone()).unwrap();
    assert_eq!(text.lines().count(), 20, "full grid streamed");

    // Interrupt after three rows; resume must re-run exactly the missing
    // points and reproduce the file byte-for-byte.
    let head: String = text.lines().take(3).map(|l| format!("{l}\n")).collect();
    std::fs::write(&out_path, head).unwrap();
    let resumed = calibrate()
        .args(TINY)
        .args(["--out", out_path.to_str().unwrap(), "--resume"])
        .output()
        .unwrap();
    assert!(resumed.status.success());
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(stdout.contains("17 executed, 3 reused"), "{stdout}");
    assert_eq!(std::fs::read(&out_path).unwrap(), bytes);

    // --check --from on the finished stream: wide bands pass (exit 0),
    // near-zero bands fail (exit 1) — deterministically.
    let pass = calibrate()
        .args(["--check", "--from", out_path.to_str().unwrap()])
        .args(["--tolerance-scale", "1000000"])
        .output()
        .unwrap();
    assert_eq!(
        pass.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&pass.stderr)
    );
    assert!(String::from_utf8_lossy(&pass.stdout).contains("9/9 targets in band"));

    let fail = calibrate()
        .args(["--check", "--from", out_path.to_str().unwrap()])
        .args(["--tolerance-scale", "0.0000001"])
        .output()
        .unwrap();
    assert_eq!(fail.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&fail.stderr).contains("out of band"));

    // Per-target overrides reach the evaluation: an absurd band on one
    // key must flip only that key's verdict.
    let overridden = calibrate()
        .args(["--check", "--from", out_path.to_str().unwrap()])
        .args(["--tolerance-scale", "1000000"])
        .args(["--tolerance", "ndp_radix_ptw_4c=0.0000001"])
        .output()
        .unwrap();
    assert_eq!(overridden.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&overridden.stderr).contains("1 target(s) out of band"));

    let unknown = calibrate()
        .args(["--check", "--from", out_path.to_str().unwrap()])
        .args(["--tolerance", "bogus=25%"])
        .output()
        .unwrap();
    assert_eq!(unknown.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("bogus"));

    std::fs::remove_file(&out_path).ok();
}
