//! Integration tests for the supervised multi-worker sweep executor:
//! `ndpsim sweep --workers N` must merge byte-identically to a serial
//! run, recover from aborted / hung / torn-write workers via respawn,
//! and degrade gracefully (keep completed rows, report missing grid
//! indices) once retries are exhausted.
//!
//! Fault injection uses the `NDP_FAULT` knob (`abort|hang|torn@INDEX`,
//! optional `:once=MARKER` to make the fault one-shot across respawns).

use std::path::PathBuf;
use std::process::Command;

fn ndpsim() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ndpsim"));
    // Never inherit a fault plan from the ambient environment; tests
    // that want one set it explicitly.
    cmd.env_remove("NDP_FAULT");
    cmd
}

fn tmp(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ndp_supervisor_{}_{tag}.{ext}", std::process::id()))
}

/// 2x2 grid (pwc_entries x mechanism), sized to finish in well under a
/// second per point.
const QUAD_SPEC: &str = r#"{
  "name": "quad",
  "base": {"workload": "RND", "warmup_ops": 100, "measure_ops": 300,
           "footprint": 134217728},
  "axes": [{"knob": "pwc_entries", "values": [16, 64]},
           {"knob": "mechanism", "values": ["radix", "ndpage"]}]
}"#;

struct Fixture {
    spec: PathBuf,
    out: PathBuf,
    reference: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let spec = tmp(tag, "json");
        std::fs::write(&spec, QUAD_SPEC).unwrap();
        let fx = Fixture {
            spec,
            out: tmp(&format!("{tag}_out"), "jsonl"),
            reference: tmp(&format!("{tag}_ref"), "jsonl"),
        };
        fx.clean_outputs();
        fx
    }

    fn clean_outputs(&self) {
        for p in [&self.out, &self.reference] {
            std::fs::remove_file(p).ok();
            std::fs::remove_file(p.with_extension("jsonl.tmp")).ok();
        }
        for sh in ndp_sim::shard::existing_shard_files(&self.out) {
            std::fs::remove_file(sh).ok();
        }
    }

    /// Serial `--jobs 1` reference bytes (no fault plan).
    fn serial_reference(&self) -> String {
        let out = ndpsim()
            .args(["sweep", "--spec", self.spec.to_str().unwrap()])
            .args(["--out", self.reference.to_str().unwrap(), "--jobs", "1"])
            .output()
            .unwrap();
        assert!(out.status.success(), "serial reference run failed");
        std::fs::read_to_string(&self.reference).unwrap()
    }

    /// Base supervised invocation: `--workers 2` with a short backoff.
    fn supervised(&self) -> Command {
        let mut cmd = ndpsim();
        cmd.args(["sweep", "--spec", self.spec.to_str().unwrap()])
            .args(["--out", self.out.to_str().unwrap()])
            .args(["--workers", "2", "--backoff-ms", "20"]);
        cmd
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        self.clean_outputs();
        std::fs::remove_file(&self.spec).ok();
    }
}

#[test]
fn supervised_run_matches_serial_bytes() {
    let fx = Fixture::new("baseline");
    let reference = fx.serial_reference();

    let out = fx.supervised().output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"outcome\":\"full\""), "stdout: {stdout}");
    assert_eq!(std::fs::read_to_string(&fx.out).unwrap(), reference);
    // Shard intermediates are cleaned up after a full merge.
    assert!(ndp_sim::shard::existing_shard_files(&fx.out).is_empty());
}

#[test]
fn supervisor_recovers_from_an_injected_abort() {
    let fx = Fixture::new("abort");
    let reference = fx.serial_reference();
    let marker = tmp("abort_marker", "flag");
    std::fs::remove_file(&marker).ok();

    let out = fx
        .supervised()
        .env(
            "NDP_FAULT",
            format!("abort@2:once={}", marker.to_str().unwrap()),
        )
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("retrying"), "stderr: {stderr}");
    assert_eq!(std::fs::read_to_string(&fx.out).unwrap(), reference);
    std::fs::remove_file(&marker).ok();
}

#[test]
fn supervisor_recovers_from_a_hung_worker() {
    let fx = Fixture::new("hang");
    let reference = fx.serial_reference();
    let marker = tmp("hang_marker", "flag");
    std::fs::remove_file(&marker).ok();

    let out = fx
        .supervised()
        .env(
            "NDP_FAULT",
            format!("hang@0:once={}", marker.to_str().unwrap()),
        )
        .args(["--row-timeout", "1.5"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    assert!(stderr.contains("stalled"), "stderr: {stderr}");
    assert_eq!(std::fs::read_to_string(&fx.out).unwrap(), reference);
    std::fs::remove_file(&marker).ok();
}

#[test]
fn supervisor_recovers_from_a_torn_write() {
    let fx = Fixture::new("torn");
    let reference = fx.serial_reference();
    let marker = tmp("torn_marker", "flag");
    std::fs::remove_file(&marker).ok();

    let out = fx
        .supervised()
        .env(
            "NDP_FAULT",
            format!("torn@1:once={}", marker.to_str().unwrap()),
        )
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(0), "stderr: {stderr}");
    // The respawned worker must detect the half-written row and redo it.
    assert!(stderr.contains("trailing line"), "stderr: {stderr}");
    assert_eq!(std::fs::read_to_string(&fx.out).unwrap(), reference);
    std::fs::remove_file(&marker).ok();
}

#[test]
fn retries_exhausted_keeps_completed_rows_and_reports_missing() {
    let fx = Fixture::new("exhaust");
    let reference = fx.serial_reference();

    // Persistent abort at grid index 2 (no `once=` marker): the owning
    // shard fails on every attempt.
    let out = fx
        .supervised()
        .env("NDP_FAULT", "abort@2")
        .args(["--max-retries", "1"])
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(3), "stderr: {stderr}");
    assert!(stderr.contains("retries exhausted"), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"missing\":[2]"), "stdout: {stdout}");
    assert!(
        stdout.contains("\"outcome\":\"partial\""),
        "stdout: {stdout}"
    );

    // The three completed rows survive, in grid order, byte-identical
    // to the corresponding serial lines.
    let partial = std::fs::read_to_string(&fx.out).unwrap();
    let kept: Vec<&str> = partial.lines().collect();
    let want: Vec<&str> = reference
        .lines()
        .enumerate()
        .filter(|(i, _)| *i != 2)
        .map(|(_, l)| l)
        .collect();
    assert_eq!(kept, want);

    // A fault-free resume finishes the grid and matches serial bytes.
    let out = fx.supervised().arg("--resume").output().unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(std::fs::read_to_string(&fx.out).unwrap(), reference);
}

/// Exit-code audit: the documented 0/3/4 ladder's bottom rung. With a
/// single worker owning the whole grid and a *persistent* abort at
/// index 0, no row ever lands — the outcome is `failed` with exit 4,
/// distinct from `partial`'s exit 3 above.
#[test]
fn zero_merged_rows_is_failed_exit_4() {
    let fx = Fixture::new("failed");

    let out = ndpsim()
        .args(["sweep", "--spec", fx.spec.to_str().unwrap()])
        .args(["--out", fx.out.to_str().unwrap()])
        .args(["--workers", "1", "--backoff-ms", "20", "--max-retries", "1"])
        .env("NDP_FAULT", "abort@0")
        .output()
        .unwrap();
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(out.status.code(), Some(4), "stderr: {stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"outcome\":\"failed\""),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("\"merged\":0"), "stdout: {stdout}");
}
