//! Integration tests for the experiment service: `ndpsim serve` plus
//! the `submit`/`status`/`watch`/`cancel`/`shutdown` client verbs, all
//! over a real loopback socket.
//!
//! The acceptance bar is the same as every execution layer before it:
//! the bytes `watch` streams must be identical to an offline
//! `ndpsim sweep` of the same spec — including with an injected worker
//! fault and across a mid-job server kill+restart — and cancellation
//! must keep completed rows with the journal recording the terminal
//! state.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn ndpsim() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ndpsim"));
    // Never inherit a fault plan from the ambient environment; tests
    // that want one set it explicitly.
    cmd.env_remove("NDP_FAULT");
    cmd
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ndp_serve_{}_{tag}", std::process::id()))
}

/// 2x2 grid (pwc_entries x mechanism), sized to finish in well under a
/// second per point.
const QUAD_SPEC: &str = r#"{
  "name": "quad",
  "base": {"workload": "RND", "warmup_ops": 100, "measure_ops": 300,
           "footprint": 134217728},
  "axes": [{"knob": "pwc_entries", "values": [16, 64]},
           {"knob": "mechanism", "values": ["radix", "ndpage"]}]
}"#;

/// The same grid with ~seconds-per-row cost, for tests that must catch
/// a job mid-flight (cancel, server kill).
const SLOW_SPEC: &str = r#"{
  "name": "quad_slow",
  "base": {"workload": "RND", "warmup_ops": 20000, "measure_ops": 400000,
           "footprint": 134217728},
  "axes": [{"knob": "pwc_entries", "values": [16, 64]},
           {"knob": "mechanism", "values": ["radix", "ndpage"]}]
}"#;

fn json_field<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\":\"");
    let rest = &text[text.find(&needle)? + needle.len()..];
    Some(&rest[..rest.find('"')?])
}

fn json_num(text: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let rest = &text[text.find(&needle)? + needle.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A running `ndpsim serve` child bound to an ephemeral loopback port.
struct Server {
    child: Child,
    addr: String,
    state: PathBuf,
}

impl Server {
    fn start(state: &std::path::Path, envs: &[(&str, String)]) -> Server {
        let mut cmd = ndpsim();
        cmd.args(["serve", "--addr", "127.0.0.1:0"])
            .args(["--state", state.to_str().unwrap()])
            .args(["--workers", "2", "--backoff-ms", "20"])
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().unwrap();
        let mut line = String::new();
        BufReader::new(child.stdout.take().unwrap())
            .read_line(&mut line)
            .unwrap();
        let addr = json_field(&line, "addr")
            .unwrap_or_else(|| panic!("no addr in listening line: {line:?}"))
            .to_string();
        Server {
            child,
            addr,
            state: state.to_path_buf(),
        }
    }

    /// Runs one client verb against this server.
    fn client(&self, verb_and_flags: &[&str]) -> Output {
        ndpsim()
            .args(verb_and_flags)
            .args(["--addr", &self.addr])
            .output()
            .unwrap()
    }

    /// Submits a spec string, returning the job id.
    fn submit(&self, spec: &str, tag: &str) -> String {
        let path = tmp(&format!("{tag}_spec.json"));
        std::fs::write(&path, spec).unwrap();
        let out = self.client(&["submit", "--spec", path.to_str().unwrap()]);
        std::fs::remove_file(&path).ok();
        let stdout = String::from_utf8_lossy(&out.stdout).to_string();
        assert_eq!(out.status.code(), Some(0), "submit failed: {stdout}");
        json_field(&stdout, "job")
            .unwrap_or_else(|| panic!("no job id in {stdout:?}"))
            .to_string()
    }

    /// Polls `status --job` until `pred(status_line)` holds.
    fn wait_status(&self, job: &str, what: &str, pred: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            let out = self.client(&["status", "--job", job]);
            let line = String::from_utf8_lossy(&out.stdout).to_string();
            if pred(&line) {
                return line;
            }
            assert!(
                Instant::now() < deadline,
                "timed out waiting for {what}; last status: {line}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    fn shutdown_and_wait(mut self) {
        let out = self.client(&["shutdown"]);
        assert_eq!(out.status.code(), Some(0));
        let status = self.child.wait().unwrap();
        assert!(status.success(), "server exit: {status:?}");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
        std::fs::remove_dir_all(&self.state).ok();
    }
}

/// Offline `ndpsim sweep` reference bytes for a spec.
fn offline_reference(spec: &str, tag: &str) -> String {
    let spec_path = tmp(&format!("{tag}_ref_spec.json"));
    let out_path = tmp(&format!("{tag}_ref.jsonl"));
    std::fs::write(&spec_path, spec).unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", spec_path.to_str().unwrap()])
        .args(["--out", out_path.to_str().unwrap(), "--jobs", "1"])
        .output()
        .unwrap();
    assert!(out.status.success(), "offline reference failed");
    let text = std::fs::read_to_string(&out_path).unwrap();
    std::fs::remove_file(&spec_path).ok();
    std::fs::remove_file(&out_path).ok();
    text
}

#[test]
fn submit_status_watch_round_trip_matches_offline_bytes() {
    let reference = offline_reference(QUAD_SPEC, "rt");
    let state = tmp("rt_state");
    let server = Server::start(&state, &[]);

    let job = server.submit(QUAD_SPEC, "rt");
    // Deterministic ids make re-submission idempotent.
    let again = server.submit(QUAD_SPEC, "rt2");
    assert_eq!(job, again);

    let done = server.wait_status(&job, "job done", |s| s.contains("\"state\":\"done\""));
    assert_eq!(json_num(&done, "rows_done"), Some(4));
    assert_eq!(json_num(&done, "rows_total"), Some(4));

    // The tentpole acceptance bar: watch bytes == offline sweep bytes.
    let out = server.client(&["watch", "--job", &job]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout), reference);

    // Resumable: --from N skips the first N stream rows.
    let out = server.client(&["watch", "--job", &job, "--from", "2"]);
    let tail: Vec<&str> = reference.lines().skip(2).collect();
    let got: Vec<String> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(str::to_string)
        .collect();
    assert_eq!(got, tail);

    server.shutdown_and_wait();
}

#[test]
fn watch_streams_while_running_and_fault_recovery_matches_offline_bytes() {
    let reference = offline_reference(QUAD_SPEC, "fault");
    let state = tmp("fault_state");
    let marker = tmp("fault_marker");
    std::fs::remove_file(&marker).ok();
    // The one-shot abort plan reaches the server's worker subprocesses
    // through the inherited environment: the first worker owning grid
    // index 2 dies mid-row, the supervisor respawns it, and the stream
    // the watcher sees must be indistinguishable from a clean run.
    let server = Server::start(
        &state,
        &[(
            "NDP_FAULT",
            format!("abort@2:once={}", marker.to_str().unwrap()),
        )],
    );

    let job = server.submit(QUAD_SPEC, "fault");
    // Start watching before the job finishes: rows arrive as they
    // retire, then the connection closes at the terminal state.
    let out = server.client(&["watch", "--job", &job]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout), reference);

    std::fs::remove_file(&marker).ok();
    server.shutdown_and_wait();
}

#[test]
fn server_kill_and_restart_resumes_from_journal_with_identical_bytes() {
    let reference = offline_reference(SLOW_SPEC, "restart");
    let state = tmp("restart_state");
    let job;
    {
        let mut server = Server::start(&state, &[]);
        job = server.submit(SLOW_SPEC, "restart");
        server.wait_status(&job, "job running", |s| s.contains("\"state\":\"running\""));
        // Hard-kill the server mid-job (workers are orphaned and keep
        // streaming their shards; the journal's last record is
        // `running`).
        server.child.kill().unwrap();
        server.child.wait().unwrap();
        // Drop must not delete the state dir: forget the fixture after
        // taking ownership of cleanup.
        server.state = tmp("restart_nonexistent");
    }

    // Wait for the orphaned workers to finish their shards so the
    // restarted supervisor's workers never race them on the same files.
    let rows_dir = state.join(&job);
    let shard_rows = || {
        ndp_sim::shard::existing_shard_files(&rows_dir.join("rows.jsonl"))
            .iter()
            .filter_map(|p| std::fs::read_to_string(p).ok())
            .map(|t| ndp_sim::spec::parse_jsonl(&t).len())
            .sum::<usize>()
    };
    let deadline = Instant::now() + Duration::from_secs(120);
    while shard_rows() < 4 {
        assert!(Instant::now() < deadline, "orphan workers never finished");
        std::thread::sleep(Duration::from_millis(100));
    }

    // Restart on the same state dir: the journal re-enqueues the job,
    // the always-resume supervisor reuses every row on disk, and watch
    // bytes stay identical to the offline sweep.
    let server = Server::start(&state, &[]);
    server.wait_status(&job, "resumed job done", |s| {
        s.contains("\"state\":\"done\"")
    });
    let out = server.client(&["watch", "--job", &job]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout), reference);
    server.shutdown_and_wait();
}

#[test]
fn cancel_kills_workers_keeps_rows_and_journals_terminal_state() {
    let state = tmp("cancel_state");
    let server = Server::start(&state, &[]);
    let job = server.submit(SLOW_SPEC, "cancel");

    // Let at least one row land, then cancel mid-flight.
    server.wait_status(&job, "first row", |s| {
        json_num(s, "rows_done").is_some_and(|n| n >= 1)
    });
    let out = server.client(&["cancel", "--job", &job]);
    assert_eq!(out.status.code(), Some(0));
    let cancelled =
        server.wait_status(&job, "cancelled", |s| s.contains("\"state\":\"cancelled\""));
    let kept = json_num(&cancelled, "rows_done").unwrap();
    assert!(
        (1..4).contains(&kept),
        "cancel mid-flight kept {kept} of 4 rows: {cancelled}"
    );

    // Watch on a cancelled job flushes the completed rows (gaps
    // allowed) instead of hanging.
    let out = server.client(&["watch", "--job", &job]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).lines().count(),
        kept as usize
    );

    // The journal records the terminal transition.
    let journal = std::fs::read_to_string(state.join("journal.jsonl")).unwrap();
    assert!(
        journal.contains("\"state\":\"cancelled\""),
        "journal: {journal}"
    );
    server.shutdown_and_wait();
}

#[test]
fn malformed_lines_get_structured_errors_and_the_connection_survives() {
    let state = tmp("proto_state");
    let server = Server::start(&state, &[]);

    let mut stream = TcpStream::connect(&server.addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |req: &str| {
        writeln!(stream, "{req}").unwrap();
        stream.flush().unwrap();
        // Read lines until the blank terminator.
        let mut lines = Vec::new();
        loop {
            let mut line = String::new();
            assert!(reader.read_line(&mut line).unwrap() > 0, "server hung up");
            let content = line.trim_end().to_string();
            if content.is_empty() {
                return lines;
            }
            lines.push(content);
        }
    };

    // Garbage, a non-object, and an unknown verb each get a structured
    // error on the same connection.
    for (req, expect) in [
        ("this is not json", "malformed request"),
        ("[1,2,3]", "must be a JSON object"),
        ("{\"verb\":\"frobnicate\"}", "unknown verb"),
        // The quotes around `verb` arrive JSON-escaped inside the
        // error string.
        ("{\"nope\":1}", "no \\\"verb\\\""),
    ] {
        let lines = send(req);
        assert_eq!(lines.len(), 1, "one error record for {req:?}");
        assert!(lines[0].starts_with("{\"ok\":false"), "got {}", lines[0]);
        assert!(lines[0].contains(expect), "got {}", lines[0]);
    }

    // ...and the connection still serves real requests afterwards.
    let lines = send("{\"verb\":\"status\"}");
    assert_eq!(lines, vec!["{\"jobs\":0}".to_string()]);

    // Unknown job ids are structured not-found records, not empty
    // streams — on watch, status and cancel alike.
    for verb in ["watch", "status", "cancel"] {
        let lines = send(&format!("{{\"verb\":\"{verb}\",\"job\":\"bogus\"}}"));
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].contains("\"code\":\"not-found\""),
            "{verb}: {}",
            lines[0]
        );
    }

    // The client maps structured errors to exit code 1.
    let out = server.client(&["watch", "--job", "bogus"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("not-found"));

    server.shutdown_and_wait();
}

#[test]
fn submit_validates_specs_and_draining_refuses_new_jobs() {
    let state = tmp("validate_state");
    let server = Server::start(&state, &[]);

    // A spec with an unregistered axis knob is rejected with the
    // registry list, before anything is enqueued or journalled.
    let bad = r#"{"name": "bad", "base": {}, "axes": [{"knob": "bogus_knob", "values": [1]}]}"#;
    let path = tmp("bad_spec.json");
    std::fs::write(&path, bad).unwrap();
    let out = server.client(&["submit", "--spec", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("bogus_knob") && stdout.contains("valid knobs"),
        "stdout: {stdout}"
    );
    assert!(!state.join("journal.jsonl").exists());

    // After shutdown the server drains and refuses submits.
    let out = server.client(&["shutdown"]);
    assert_eq!(out.status.code(), Some(0));
    let path = tmp("late_spec.json");
    std::fs::write(&path, QUAD_SPEC).unwrap();
    let out = server.client(&["submit", "--spec", path.to_str().unwrap()]);
    std::fs::remove_file(&path).ok();
    // Either the drain refusal or (if the server already exited) a
    // connection failure ("cannot connect" / "Connection reset") —
    // never an accepted job.
    if out.status.code() == Some(1) {
        let text = (String::from_utf8_lossy(&out.stdout).to_string()
            + &String::from_utf8_lossy(&out.stderr))
            .to_lowercase();
        assert!(
            text.contains("draining") || text.contains("connect"),
            "{text}"
        );
    }
}

/// `serve` with a corrupt journal mid-file refuses to start; a torn
/// trailing record is tolerated.
#[test]
fn corrupt_journal_refuses_startup_torn_tail_does_not() {
    let state = tmp("journal_state");
    std::fs::create_dir_all(&state).unwrap();
    std::fs::write(
        state.join("journal.jsonl"),
        "garbage mid-file\n{\"job\":\"x\",\"state\":\"queued\",\"name\":\"n\",\"grid\":1}\n",
    )
    .unwrap();
    let out = ndpsim()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(["--state", state.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("corrupt journal record"));

    // A torn tail is dropped with a warning and startup proceeds.
    std::fs::write(
        state.join("journal.jsonl"),
        "{\"job\":\"x\",\"state\":\"queued\",\"name\":\"n\",\"grid\":1}\n{\"job\":\"y\",\"sta",
    )
    .unwrap();
    let mut child = ndpsim()
        .args(["serve", "--addr", "127.0.0.1:0"])
        .args(["--state", state.to_str().unwrap()])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let mut line = String::new();
    BufReader::new(child.stdout.take().unwrap())
        .read_line(&mut line)
        .unwrap();
    assert!(line.contains("listening"), "got {line:?}");
    child.kill().ok();
    child.wait().ok();
    std::fs::remove_dir_all(&state).ok();
}

/// The raw protocol supports pipelining independent requests on one
/// connection and the server stays up across client disconnects.
#[test]
fn abrupt_client_disconnects_leave_the_server_healthy() {
    let state = tmp("disconnect_state");
    let server = Server::start(&state, &[]);

    // Open a connection, send half a request, and slam it shut.
    {
        let mut stream = TcpStream::connect(&server.addr).unwrap();
        stream.write_all(b"{\"verb\":\"stat").unwrap();
    }
    // And one that connects and says nothing.
    drop(TcpStream::connect(&server.addr).unwrap());

    // The server still answers on a fresh connection.
    let out = server.client(&["status"]);
    assert_eq!(out.status.code(), Some(0));
    let got = String::from_utf8_lossy(&out.stdout);
    assert!(got.contains("\"jobs\":0"), "status: {got}");

    server.shutdown_and_wait();
}
