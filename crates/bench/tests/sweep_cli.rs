//! `ndpsim sweep` subcommand tests and the flags ⇄ spec round-trip: any
//! configuration expressible via `ndpsim` flags must be reproducible
//! through the registry (`--set` / spec files), and the subcommand must
//! reject unknown knobs with the full table.

use ndp_bench::cli::{apply_sets, config_from_args, Args};
use ndp_sim::spec::{apply_knob, config_fingerprint, config_knobs, KNOBS};
use ndp_sim::SimConfig;
use std::path::PathBuf;
use std::process::Command;

fn ndpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ndpsim"))
}

fn args(list: &[&str]) -> Args {
    Args::new(list.iter().map(|s| (*s).to_string()).collect())
}

fn tmp(tag: &str, ext: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ndp_sweep_cli_{}_{tag}.{ext}", std::process::id()))
}

const TINY_SPEC: &str = r#"{
  "name": "tiny",
  "base": {"workload": "RND", "warmup_ops": 200, "measure_ops": 500,
           "footprint": 268435456},
  "axes": [{"knob": "mechanism", "values": ["radix", "ndpage"]}]
}"#;

// ---------------------------------------------------------------------------
// Round-trip: flags -> config -> knobs -> config.
// ---------------------------------------------------------------------------

/// Every flag-expressible configuration round-trips through the knob
/// registry: serializing the flags-built config as knob assignments and
/// replaying them onto the spec base reproduces it exactly. This is the
/// acceptance property behind `ndpsim sweep --spec`/`--set` being able
/// to reproduce any flag configuration.
#[test]
fn flag_configs_round_trip_through_the_registry() {
    let flag_sets: [&[&str]; 5] = [
        &[],
        &["--workload", "RND", "--mechanism", "radix", "--cores", "4"],
        &[
            "--workload",
            "XS",
            "--mechanism",
            "huge-page",
            "--system",
            "cpu",
            "--footprint-mb",
            "512",
            "--ops",
            "5000",
            "--warmup",
            "100",
            "--seed",
            "7",
            "--pwc-entries",
            "128",
            "--tlb-l2",
            "768",
            "--no-fracture",
        ],
        &[
            "--procs",
            "2",
            "--quantum",
            "500",
            "--switch-cost",
            "100",
            "--no-asid",
            "--window",
            "8",
            "--walkers",
            "2",
        ],
        &[
            "--l3-kb",
            "2048",
            "--l3-ways",
            "8",
            "--l3-banks",
            "4",
            "--l3-policy",
            "exclusive",
            "--vault-kb",
            "128",
        ],
    ];
    for flags in flag_sets {
        let via_flags = config_from_args(&args(flags)).unwrap();
        let mut via_registry = SimConfig::cli_default();
        for (name, value) in config_knobs(&via_flags) {
            apply_knob(&mut via_registry, name, &value).unwrap();
        }
        assert_eq!(
            config_fingerprint(&via_flags),
            config_fingerprint(&via_registry),
            "flags {flags:?} must round-trip"
        );
    }
}

/// The same round-trip expressed the way a user would: `--set` overrides
/// on the spec base reproduce the flags-built config.
#[test]
fn set_overrides_reproduce_flag_configs() {
    let via_flags = config_from_args(&args(&[
        "--workload",
        "BFS",
        "--mechanism",
        "ndpage",
        "--cores",
        "2",
        "--window",
        "8",
        "--l3-kb",
        "1024",
    ]))
    .unwrap();
    let mut sets = vec!["ignored-bin".to_string()];
    for (name, value) in config_knobs(&via_flags) {
        sets.push("--set".to_string());
        sets.push(format!("{name}={value}"));
    }
    let mut via_sets = SimConfig::cli_default();
    apply_sets(&mut via_sets, &Args::new(sets[1..].to_vec())).unwrap();
    assert_eq!(
        config_fingerprint(&via_flags),
        config_fingerprint(&via_sets)
    );
    assert_eq!(via_sets.mshrs_per_core, 8, "window-implied MSHRs carried");
}

/// Every registered flag is parsed by `config_from_args` — setting it
/// must change the config away from the default (no dead table rows).
#[test]
fn every_registered_flag_reaches_the_config() {
    let default_fp = config_fingerprint(&config_from_args(&args(&[])).unwrap());
    let sample: &[(&str, &str)] = &[
        ("--system", "cpu"),
        ("--cores", "3"),
        ("--mechanism", "ech"),
        ("--workload", "GEN"),
        ("--warmup", "123"),
        ("--ops", "77777"),
        ("--footprint-mb", "300"),
        ("--seed", "99"),
        ("--pwc-entries", "32"),
        ("--tlb-l2", "768"),
        ("--procs", "2"),
        ("--quantum", "123"),
        ("--switch-cost", "55"),
        ("--window", "4"),
        ("--mshrs", "2"),
        ("--walkers", "2"),
        ("--l3-kb", "1024"),
        ("--l3-ways", "8"),
        ("--l3-banks", "2"),
        ("--l3-policy", "exclusive"),
        ("--vault-kb", "64"),
        ("--epoch", "128"),
    ];
    let flagged: Vec<&str> = KNOBS.iter().filter_map(|k| k.flag).collect();
    assert_eq!(
        sample.len(),
        flagged.len(),
        "sample list must cover every registered flag: {flagged:?}"
    );
    for (flag, value) in sample {
        assert!(flagged.contains(flag), "{flag} not in the registry");
        let cfg = config_from_args(&args(&[flag, value]))
            .unwrap_or_else(|e| panic!("{flag} {value}: {e}"));
        assert_ne!(
            config_fingerprint(&cfg),
            default_fp,
            "{flag} must reach the config"
        );
    }
}

// ---------------------------------------------------------------------------
// The sweep subcommand (subprocess).
// ---------------------------------------------------------------------------

#[test]
fn sweep_requires_a_spec_file() {
    let out = ndpsim().arg("sweep").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--spec"));
}

#[test]
fn sweep_rejects_resume_without_out() {
    let path = tmp("resume_no_out", "json");
    std::fs::write(&path, TINY_SPEC).unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap(), "--resume"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_rejects_unknown_knobs_listing_the_table() {
    let path = tmp("bad_knob", "json");
    std::fs::write(&path, r#"{"axes": [{"knob": "wndow", "values": [1, 8]}]}"#).unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap(), "--dry-run"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("wndow"), "echoes the bad knob: {stderr}");
    assert!(
        stderr.contains("mlp_window") && stderr.contains("l3_policy"),
        "lists valid knobs: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_rejects_malformed_spec_json() {
    let path = tmp("bad_json", "json");
    std::fs::write(&path, "{\"base\": ").unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("spec"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_rejects_missing_spec_file() {
    let out = ndpsim()
        .args(["sweep", "--spec", "/nonexistent/nope.json"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("nope.json"));
}

#[test]
fn sweep_dry_run_lists_the_grid_without_running() {
    let path = tmp("dry", "json");
    std::fs::write(&path, TINY_SPEC).unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap(), "--dry-run"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 grid points"), "{stdout}");
    assert!(stdout.contains("mechanism=radix") && stdout.contains("mechanism=ndpage"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_set_overrides_reach_the_grid() {
    let path = tmp("set", "json");
    std::fs::write(&path, TINY_SPEC).unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap()])
        .args(["--set", "cores=2", "--dry-run"])
        .output()
        .unwrap();
    assert!(out.status.success());
    // An unknown --set knob dies with the table.
    let bad = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap()])
        .args(["--set", "nope=1", "--dry-run"])
        .output()
        .unwrap();
    assert_eq!(bad.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&bad.stderr).contains("valid knobs"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_jsonl_is_jobs_invariant_and_resumable() {
    let spec_path = tmp("run", "json");
    std::fs::write(&spec_path, TINY_SPEC).unwrap();
    let spec = spec_path.to_str().unwrap();
    let out1 = tmp("run_j1", "jsonl");
    let out2 = tmp("run_j2", "jsonl");

    let run1 = ndpsim()
        .args([
            "sweep",
            "--spec",
            spec,
            "--out",
            out1.to_str().unwrap(),
            "--jobs",
            "1",
        ])
        .output()
        .unwrap();
    assert!(
        run1.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&run1.stderr)
    );
    let run2 = ndpsim()
        .args([
            "sweep",
            "--spec",
            spec,
            "--out",
            out2.to_str().unwrap(),
            "--jobs",
            "2",
        ])
        .output()
        .unwrap();
    assert!(run2.status.success());
    let bytes1 = std::fs::read(&out1).unwrap();
    let bytes2 = std::fs::read(&out2).unwrap();
    assert_eq!(bytes1, bytes2, "worker count must not change a byte");

    // Interrupt after one row, resume, and expect identical bytes.
    let text = String::from_utf8(bytes1.clone()).unwrap();
    let first_line: String = text.lines().take(1).map(|l| format!("{l}\n")).collect();
    std::fs::write(&out1, first_line).unwrap();
    let resumed = ndpsim()
        .args([
            "sweep",
            "--spec",
            spec,
            "--out",
            out1.to_str().unwrap(),
            "--resume",
        ])
        .output()
        .unwrap();
    assert!(resumed.status.success());
    let stdout = String::from_utf8_lossy(&resumed.stdout);
    assert!(stdout.contains("1 executed, 1 reused"), "{stdout}");
    assert_eq!(std::fs::read(&out1).unwrap(), bytes1);

    std::fs::remove_file(&spec_path).ok();
    std::fs::remove_file(&out1).ok();
    std::fs::remove_file(&out2).ok();
}

#[test]
fn sweep_rejects_a_knob_on_two_axes() {
    let path = tmp("dup_axis", "json");
    std::fs::write(
        &path,
        r#"{
          "name": "dup",
          "base": {"workload": "RND"},
          "axes": [{"knob": "seed", "values": [1, 2]},
                   {"knob": "mechanism", "values": ["radix"]},
                   {"knob": "seed", "values": [3]}]
        }"#,
    )
    .unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap(), "--dry-run"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("\"seed\""), "names the knob: {stderr}");
    assert!(
        stderr.contains("axis 1") && stderr.contains("axis 3"),
        "names both axes: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_rejects_an_axis_with_zero_values() {
    let path = tmp("empty_axis", "json");
    std::fs::write(&path, r#"{"axes": [{"knob": "mechanism", "values": []}]}"#).unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap(), "--dry-run"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("mechanism") && stderr.contains("values"),
        "names the empty axis: {stderr}"
    );
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_rejects_malformed_shard_and_worker_flags() {
    let path = tmp("shardflags", "json");
    std::fs::write(&path, TINY_SPEC).unwrap();
    let spec = path.to_str().unwrap();
    for shard in ["2", "a/2", "2/2", "0/0"] {
        let out = ndpsim()
            .args(["sweep", "--spec", spec, "--out", "/tmp/x.jsonl"])
            .args(["--shard", shard])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "--shard {shard}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("--shard"));
    }
    // --shard / --workers need --out, and exclude each other.
    let out = ndpsim()
        .args(["sweep", "--spec", spec, "--shard", "0/2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
    let out = ndpsim()
        .args(["sweep", "--spec", spec, "--out", "/tmp/x.jsonl"])
        .args(["--shard", "0/2", "--workers", "2"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn sweep_rejects_a_malformed_fault_plan_up_front() {
    let path = tmp("badfault", "json");
    std::fs::write(&path, TINY_SPEC).unwrap();
    let out = ndpsim()
        .env("NDP_FAULT", "explode@oops")
        .args(["sweep", "--spec", path.to_str().unwrap()])
        .args(["--out", "/tmp/x.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("NDP_FAULT"));
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_path_rejects_unknown_flags() {
    let out = ndpsim()
        .args(["--wndow", "8", "--workload", "RND"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--wndow"), "{stderr}");
    assert!(
        stderr.contains("--window"),
        "suggests the real flags: {stderr}"
    );
}

#[test]
fn help_lists_every_knob() {
    let out = ndpsim().arg("--help").output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    for k in KNOBS {
        assert!(stderr.contains(k.name), "help missing {}", k.name);
    }
    let out = ndpsim().args(["sweep", "--help"]).output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("axes") && stderr.contains("mlp_window"));
}

// ---------------------------------------------------------------------------
// figures: the shared flag validation applies there too.
// ---------------------------------------------------------------------------

fn figures() -> Command {
    Command::new(env!("CARGO_BIN_EXE_figures"))
}

#[test]
fn figures_rejects_typod_flags() {
    // --quik must not silently fall back to the (hours-long) full scale.
    let out = figures().args(["--quik", "table1"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--quik"), "{stderr}");
    assert!(stderr.contains("--quick"), "lists valid flags: {stderr}");
}

#[test]
fn figures_rejects_unknown_figure_names() {
    let out = figures().args(["--quick", "fig99"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("fig99") && stderr.contains("fig12"),
        "{stderr}"
    );
}

#[test]
fn figures_static_tables_stay_fast_and_tagged() {
    // table1/table2 are simulation-free: safe to run in a test.
    let out = figures().args(["--quick", "table2"]).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Table II"), "{stdout}");
}

// ---------------------------------------------------------------------------
// Filtered specs at the CLI, and figures --from-jsonl.
// ---------------------------------------------------------------------------

fn example_spec(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/specs")
        .join(name)
}

/// The shipped `filtered.json` example: `--dry-run` shows the pruned,
/// compactly re-indexed grid, and the supervised path merges it
/// byte-identically to a serial run — filters change *which* points
/// exist, never how they stream, shard or merge.
#[test]
fn filtered_example_spec_is_pruned_and_workers_invariant() {
    let spec = example_spec("filtered.json");
    let spec = spec.to_str().unwrap();

    let out = ndpsim()
        .args(["sweep", "--spec", spec, "--dry-run"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    // 3x2 cross product, two clauses keep pwc<=64 x ndpage = 2 points.
    assert!(stdout.contains("2 grid points"), "{stdout}");
    assert!(
        stdout.contains("[  0]") && stdout.contains("[  1]"),
        "{stdout}"
    );

    let serial = tmp("filtered_serial", "jsonl");
    let merged = tmp("filtered_workers", "jsonl");
    for p in [&serial, &merged] {
        std::fs::remove_file(p).ok();
    }
    let out = ndpsim()
        .args(["sweep", "--spec", spec, "--jobs", "1"])
        .args(["--out", serial.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = ndpsim()
        .env_remove("NDP_FAULT")
        .args(["sweep", "--spec", spec, "--workers", "2"])
        .args(["--out", merged.to_str().unwrap(), "--backoff-ms", "20"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(
        std::fs::read_to_string(&merged).unwrap(),
        std::fs::read_to_string(&serial).unwrap(),
        "supervised merge of a filtered grid must match serial bytes"
    );
    for p in [&serial, &merged] {
        std::fs::remove_file(p).ok();
    }
}

#[test]
fn sweep_rejects_bad_filter_clauses_with_usage_errors() {
    // Unknown knob in a filter clause: registry list, exit 2.
    let path = tmp("bad_filter", "json");
    std::fs::write(
        &path,
        r#"{"axes": [{"knob": "cores", "values": [1, 2]}],
            "filter": ["bogus_knob = 1"]}"#,
    )
    .unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap(), "--dry-run"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bogus_knob") && stderr.contains("pwc_entries"),
        "filter errors list the registry: {stderr}"
    );

    // A filter that rejects the whole grid is an error, not a no-op run.
    std::fs::write(
        &path,
        r#"{"axes": [{"knob": "cores", "values": [1, 2]}],
            "filter": ["cores > 2"]}"#,
    )
    .unwrap();
    let out = ndpsim()
        .args(["sweep", "--spec", path.to_str().unwrap(), "--dry-run"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("rejects every grid point"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&path).ok();
}

/// `figures --from-jsonl` renders stored rows through exactly the code
/// the simulated path uses: its stdout must equal the in-process
/// `run_sweep` -> `to_jsonl` -> `jsonl_tables` bytes for the shipped CI
/// spec, and the stored file itself must match the in-process rows.
#[test]
fn figures_from_jsonl_matches_the_simulated_path_byte_for_byte() {
    let spec_path = example_spec("ci_quick.json");
    let rows_path = tmp("figures_rows", "jsonl");
    std::fs::remove_file(&rows_path).ok();

    let out = ndpsim()
        .args(["sweep", "--spec", spec_path.to_str().unwrap()])
        .args(["--out", rows_path.to_str().unwrap(), "--jobs", "1"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stored = std::fs::read_to_string(&rows_path).unwrap();

    // Simulated path, in-process: same spec, same rows, same bytes.
    let spec_text = std::fs::read_to_string(&spec_path).unwrap();
    let spec = ndp_sim::spec::SweepSpec::from_json(&spec_text).unwrap();
    let simulated = ndp_sim::spec::run_sweep(&spec).unwrap();
    assert_eq!(simulated.to_jsonl(), stored, "CLI rows == in-process rows");
    let expected_tables = ndp_bench::calibration::jsonl_tables(&stored).unwrap();

    let out = figures()
        .args(["--from-jsonl", rows_path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    let want = format!(
        "\n=== Stored rows: {} ===\n\n{expected_tables}",
        rows_path.to_str().unwrap()
    );
    assert_eq!(stdout, want, "stored-row tables == simulated-path tables");
    std::fs::remove_file(&rows_path).ok();

    // Garbage input is a structured error, not a panic or empty table.
    let bad = tmp("figures_bad", "jsonl");
    std::fs::write(&bad, "not json at all\n").unwrap();
    let out = figures()
        .args(["--from-jsonl", bad.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    std::fs::remove_file(&bad).ok();
    let out = figures()
        .args(["--from-jsonl", "/nonexistent/x.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}
