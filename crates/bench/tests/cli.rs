//! CLI regression tests: `ndpsim` must reject unrecognised values with an
//! error listing the valid names instead of silently substituting
//! defaults, and must honour the multiprogramming flags.

use std::process::Command;

fn ndpsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ndpsim"))
}

/// A fast but real simulation: 1 GB footprint would premap a while, so
/// shrink everything.
const FAST: &[&str] = &["--footprint-mb", "256", "--ops", "2000", "--warmup", "500"];

#[test]
fn rejects_unknown_workload_listing_valid_names() {
    let out = ndpsim().args(["--workload", "bsf"]).output().unwrap();
    assert!(!out.status.success(), "bad workload must fail");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bsf"), "echoes the bad value: {stderr}");
    assert!(stderr.contains("BFS") && stderr.contains("RND") && stderr.contains("DLRM"));
}

#[test]
fn rejects_unknown_mechanism_listing_valid_names() {
    let out = ndpsim().args(["--mechanism", "foo"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ndpage") && stderr.contains("radix") && stderr.contains("hugepage"));
}

#[test]
fn rejects_unknown_system() {
    let out = ndpsim().args(["--system", "foo"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ndp") && stderr.contains("cpu"));
}

#[test]
fn rejects_malformed_numeric_flags() {
    for (flag, value) in [("--procs", "two"), ("--quantum", "5k"), ("--cores", "x")] {
        let out = ndpsim()
            .args(["--workload", "RND", flag, value])
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "{flag} {value} must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(flag) && stderr.contains(value),
            "names flag and value: {stderr}"
        );
    }
}

#[test]
fn rejects_out_of_range_numeric_flags() {
    // 2^32 + 1 would silently wrap to 1 core under an `as u32` cast.
    let out = ndpsim()
        .args(["--workload", "RND", "--cores", "4294967297"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--cores") && stderr.contains("exceeds"),
        "overflow is an error, not a wrap: {stderr}"
    );
}

#[test]
fn rejects_malformed_ndp_threads() {
    let out = ndpsim()
        .env("NDP_THREADS", "abc")
        .args(["--workload", "RND"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("NDP_THREADS") && stderr.contains("abc"),
        "names the variable and the bad value: {stderr}"
    );
}

#[test]
fn accepts_valid_run() {
    let out = ndpsim()
        .args(["--workload", "RND", "--mechanism", "radix"])
        .args(FAST)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RND") && stdout.contains("translation"));
    assert!(!stdout.contains("sched:"), "no sched line at 1 proc/core");
}

#[test]
fn window_flags_reach_the_report() {
    let out = ndpsim()
        .args(["--workload", "RND", "--mechanism", "ndpage"])
        .args(["--window", "8", "--mshrs", "8", "--walkers", "2"])
        .args(FAST)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("mlp: window 8"),
        "mlp line present: {stdout}"
    );
    assert!(stdout.contains("in flight"));
}

#[test]
fn blocking_run_prints_no_mlp_line() {
    let out = ndpsim()
        .args(["--workload", "RND", "--mechanism", "ndpage"])
        .args(FAST)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        !stdout.contains("mlp:"),
        "no mlp line at window 1: {stdout}"
    );
}

#[test]
fn rejects_out_of_range_window() {
    let out = ndpsim()
        .args(["--workload", "RND", "--window", "0"])
        .args(FAST)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "validation must reject it");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("mlp_window"), "names the knob: {stderr}");
    let out = ndpsim()
        .args(["--workload", "RND", "--window", "8", "--walkers", "99"])
        .args(FAST)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("walkers_per_core"));
}

#[test]
fn shared_llc_flags_round_trip_into_the_report() {
    let out = ndpsim()
        .args(["--workload", "RND", "--mechanism", "radix"])
        .args(["--l3-kb", "1024", "--l3-ways", "8", "--l3-banks", "4"])
        .args(["--l3-policy", "exclusive", "--vault-kb", "128"])
        .args(FAST)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("l3: 1x 1024 KB 8w/4b exclusive"),
        "accepted values round-trip into the report: {stdout}"
    );
    assert!(
        stdout.contains("vault: 4x 128 KB"),
        "vault block present: {stdout}"
    );
}

#[test]
fn rejects_unknown_l3_policy_listing_valid_names() {
    let out = ndpsim()
        .args([
            "--workload",
            "RND",
            "--l3-kb",
            "1024",
            "--l3-policy",
            "bogus",
        ])
        .args(FAST)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("bogus"), "echoes the bad value: {stderr}");
    assert!(
        stderr.contains("inclusive") && stderr.contains("exclusive"),
        "lists valid policies: {stderr}"
    );
}

#[test]
fn rejects_invalid_l3_geometry() {
    let out = ndpsim()
        .args(["--workload", "RND", "--l3-kb", "1024", "--l3-ways", "32"])
        .args(FAST)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "validation must reject it");
    assert!(String::from_utf8_lossy(&out.stderr).contains("l3_ways"));
}

#[test]
fn l3_knobs_are_inert_without_l3_kb() {
    // Geometry/policy knobs without --l3-kb run the disabled engine: no
    // shared-LLC lines in the report, same output as no knobs at all.
    let with_knobs = ndpsim()
        .args(["--workload", "RND", "--mechanism", "radix"])
        .args([
            "--l3-ways",
            "8",
            "--l3-banks",
            "2",
            "--l3-policy",
            "exclusive",
        ])
        .args(FAST)
        .output()
        .unwrap();
    assert!(
        with_knobs.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&with_knobs.stderr)
    );
    let knobs_stdout = String::from_utf8_lossy(&with_knobs.stdout);
    assert!(!knobs_stdout.contains("l3:"), "no l3 line: {knobs_stdout}");
    assert!(!knobs_stdout.contains("vault:"));
    let plain = ndpsim()
        .args(["--workload", "RND", "--mechanism", "radix"])
        .args(FAST)
        .output()
        .unwrap();
    assert_eq!(
        knobs_stdout,
        String::from_utf8_lossy(&plain.stdout),
        "inert knobs must not change a single reported counter"
    );
}

#[test]
fn multiprogramming_flags_reach_the_report() {
    let out = ndpsim()
        .args(["--workload", "RND", "--mechanism", "ndpage"])
        .args(["--procs", "2", "--quantum", "500", "--no-asid"])
        .args(FAST)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("sched: 2 procs/core"),
        "sched line present: {stdout}"
    );
    assert!(stdout.contains("switches"));
}
