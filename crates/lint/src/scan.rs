//! Lexical scrubbing and test-region detection.
//!
//! The rules never want to fire on a forbidden token that only appears
//! inside a comment or a string literal, and most rules exempt test
//! code. Instead of a full parser, the scanner produces a *scrubbed*
//! copy of each source file — byte-for-byte the same length, with the
//! contents of comments, string literals and char literals blanked to
//! spaces — plus a per-line mask of which lines sit inside test-only
//! regions (`#[cfg(test)]` / `#[test]` items).

/// One source file prepared for rule matching.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes (diagnostic key).
    pub rel: String,
    /// Raw text as read from disk.
    pub raw: String,
    /// Same length as `raw`, with comment/string/char contents blanked.
    pub scrubbed: String,
    /// `test_lines[i]` is true when 1-indexed line `i + 1` is inside a
    /// `#[cfg(test)]` or `#[test]` item.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    /// Prepares a file for rule matching.
    #[must_use]
    pub fn new(rel: &str, raw: &str) -> Self {
        let scrubbed = scrub(raw);
        let test_lines = test_line_mask(&scrubbed);
        SourceFile {
            rel: rel.to_string(),
            raw: raw.to_string(),
            scrubbed,
            test_lines,
        }
    }

    /// Whether the whole file is test/dev-only by location: under a
    /// `tests/`, `benches/` or `examples/` directory.
    #[must_use]
    pub fn is_test_file(&self) -> bool {
        let r = &self.rel;
        ["tests/", "benches/", "examples/"]
            .iter()
            .any(|d| r.starts_with(d) || r.contains(&format!("/{d}")))
    }

    /// Whether 1-indexed `line` is inside a test-only region (or the
    /// whole file is test-only).
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.is_test_file()
            || self
                .test_lines
                .get(line.saturating_sub(1))
                .copied()
                .unwrap_or(false)
    }

    /// The scrubbed lines, 1-indexed by position in the iterator + 1.
    pub fn scrubbed_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.scrubbed.lines().enumerate().map(|(i, l)| (i + 1, l))
    }

    /// The raw text of 1-indexed `line` (empty when out of range).
    #[must_use]
    pub fn raw_line(&self, line: usize) -> &str {
        self.raw.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }
}

/// Converts a byte offset into a 1-indexed line number.
#[must_use]
pub fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Blanks comments, string literals and char literals to spaces,
/// preserving length and newlines, so structural matching (braces,
/// identifiers, attributes) sees only real code.
#[must_use]
pub fn scrub(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    // Keep newlines everywhere so line numbers survive blanking.
    for (j, &c) in b.iter().enumerate() {
        if c == b'\n' {
            out[j] = b'\n';
        }
    }
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw string r"..." / r#"..."# (optionally b-prefixed), only when
        // the `r` does not terminate a longer identifier.
        let ident_before =
            |k: usize| k > 0 && (b[k - 1].is_ascii_alphanumeric() || b[k - 1] == b'_');
        let raw_start = if (c == b'r' || c == b'b') && !ident_before(i) {
            let mut k = i + 1;
            if c == b'b' && b.get(k) == Some(&b'r') {
                k += 1;
            }
            let hash_from = k;
            while b.get(k) == Some(&b'#') {
                k += 1;
            }
            (b.get(k) == Some(&b'"') && (c == b'r' || k > i + 1)).then_some((k, k - hash_from))
        } else {
            None
        };
        if let Some((quote, hashes)) = raw_start {
            let mut closer = vec![b'"'];
            closer.resize(hashes + 1, b'#');
            let mut k = quote + 1;
            while k < b.len() && !b[k..].starts_with(&closer) {
                k += 1;
            }
            i = (k + closer.len()).min(b.len());
            continue;
        }
        // Plain (or byte) string literal.
        if c == b'"' || (c == b'b' && b.get(i + 1) == Some(&b'"') && !ident_before(i)) {
            i += if c == b'b' { 2 } else { 1 };
            while i < b.len() && b[i] != b'"' {
                i += if b[i] == b'\\' { 2 } else { 1 };
            }
            i += 1;
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals; 'ident is a
        // lifetime (no closing quote right after one element).
        if c == b'\'' {
            let is_char = match b.get(i + 1) {
                Some(b'\\') => true,
                Some(_) => b.get(i + 2) == Some(&b'\''),
                None => false,
            };
            if is_char {
                i += 1;
                while i < b.len() && b[i] != b'\'' {
                    i += if b[i] == b'\\' { 2 } else { 1 };
                }
                i += 1;
            } else {
                out[i] = b'\'';
                i += 1;
            }
            continue;
        }
        out[i] = c;
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Marks the lines belonging to `#[cfg(test)]` / `#[test]` items in a
/// scrubbed source.
fn test_line_mask(scrubbed: &str) -> Vec<bool> {
    let lines = scrubbed.lines().count();
    let mut mask = vec![false; lines];
    let b = scrubbed.as_bytes();
    let mut i = 0;
    while let Some(pos) = scrubbed[i..].find("#[") {
        let attr_start = i + pos;
        let Some(attr_end) = matching(b, attr_start + 1, b'[', b']') else {
            break;
        };
        let content = &scrubbed[attr_start + 2..attr_end];
        i = attr_end + 1;
        if !is_test_attr(content) {
            continue;
        }
        // Skip whitespace and any further attributes, then span the item:
        // to the matching `}` of its first top-level brace, or to the
        // first top-level `;` (attribute on a brace-less item).
        let mut k = attr_end + 1;
        let mut end = None;
        while k < b.len() {
            match b[k] {
                b'#' if b.get(k + 1) == Some(&b'[') => match matching(b, k + 1, b'[', b']') {
                    Some(e) => k = e + 1,
                    None => break,
                },
                b'(' => match matching(b, k, b'(', b')') {
                    Some(e) => k = e + 1,
                    None => break,
                },
                b'[' => match matching(b, k, b'[', b']') {
                    Some(e) => k = e + 1,
                    None => break,
                },
                b'{' => {
                    end = matching(b, k, b'{', b'}');
                    break;
                }
                b';' => {
                    end = Some(k);
                    break;
                }
                _ => k += 1,
            }
        }
        if let Some(end) = end {
            let first = line_of(scrubbed, attr_start) - 1;
            let last = line_of(scrubbed, end) - 1;
            for m in mask.iter_mut().take(last + 1).skip(first) {
                *m = true;
            }
            i = end + 1;
        }
    }
    mask
}

/// Whether an attribute body denotes test-only code. `cfg(not(test))`
/// deliberately does not match.
fn is_test_attr(content: &str) -> bool {
    let c = content.trim();
    c == "test"
        || c.contains("cfg(test")
        || c.contains("all(test")
        || c.contains("any(test")
        || c.contains("test,")
}

/// Byte offset of the bracket matching `open` at `start` (which must
/// point at `open`), honouring nesting.
#[must_use]
pub fn matching(b: &[u8], start: usize, open: u8, close: u8) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &c) in b.iter().enumerate().skip(start) {
        if c == open {
            depth += 1;
        } else if c == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Whether `ident` occurs in `text` as a whole token (not as a substring
/// of a longer identifier).
#[must_use]
pub fn has_token(text: &str, ident: &str) -> bool {
    let b = text.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut from = 0;
    while let Some(pos) = text[from..].find(ident) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let after = at + ident.len();
        let after_ok = after >= b.len() || !is_ident(b[after]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_blanks_comments_and_strings() {
        let src = "let x = \"HashMap\"; // HashMap here\nlet y = 1; /* HashMap */ let z = 2;\n";
        let s = scrub(src);
        assert_eq!(s.len(), src.len());
        assert!(!s.contains("HashMap"), "{s:?}");
        assert!(s.contains("let x ="));
        assert!(s.contains("let z = 2;"));
        assert_eq!(s.matches('\n').count(), 2);
    }

    #[test]
    fn scrub_handles_raw_strings_and_escapes() {
        let src =
            r####"let a = r#"Instant::now"#; let b = "q\"Instant\""; let c = br"SystemTime";"####;
        let s = scrub(src);
        assert!(!s.contains("Instant"));
        assert!(!s.contains("SystemTime"));
        assert!(s.contains("let b ="));
        assert!(s.ends_with(';'));
    }

    #[test]
    fn scrub_keeps_lifetimes_but_blanks_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = '{'; let d = '\\''; }";
        let s = scrub(src);
        assert!(s.contains("<'a>"), "{s:?}");
        // The brace inside the char literal is blanked: only the fn-body
        // braces remain.
        assert_eq!(s.matches('{').count(), 1, "{s:?}");
        assert_eq!(s.matches('}').count(), 1);
    }

    #[test]
    fn scrub_handles_nested_block_comments() {
        let s = scrub("a /* x /* y */ z */ b");
        assert_eq!(s.trim(), "a                   b".trim());
        assert!(s.contains('a') && s.contains('b'));
        assert!(!s.contains('x') && !s.contains('z'));
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "pub fn live() {}\n#[cfg(test)]\nmod tests {\n    use super::*;\n    #[test]\n    fn t() {}\n}\npub fn after() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2), "attribute line itself");
        assert!(f.is_test_line(4), "mod body");
        assert!(f.is_test_line(7), "closing brace");
        assert!(!f.is_test_line(8), "code after the mod");
    }

    #[test]
    fn test_mask_covers_single_test_fn_and_braceless_items() {
        let src = "#[test]\nfn t() {\n    let x = 1;\n}\nfn live() {}\n#[cfg(test)]\nuse foo::bar;\nfn live2() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(f.is_test_line(3));
        assert!(!f.is_test_line(5));
        assert!(f.is_test_line(7), "brace-less cfg(test) use item");
        assert!(!f.is_test_line(8));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let src = "#[cfg(not(test))]\nfn shipping() { let x = 1; }\n";
        let f = SourceFile::new("crates/x/src/lib.rs", src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn tests_dir_files_are_wholly_test() {
        let f = SourceFile::new("tests/spec_api.rs", "fn anything() {}\n");
        assert!(f.is_test_line(1));
        let f = SourceFile::new("crates/cache/tests/prop_cache.rs", "fn x() {}\n");
        assert!(f.is_test_file());
        let f = SourceFile::new("crates/cache/src/mshr.rs", "fn x() {}\n");
        assert!(!f.is_test_file());
    }

    #[test]
    fn token_matching_respects_identifier_boundaries() {
        assert!(has_token("self.ptw.count.hash(&mut h);", "ptw"));
        assert!(!has_token("self.ptw_histogram.foo", "ptw"));
        assert!(has_token("x (HashMap :: new)", "HashMap"));
        assert!(!has_token("FastHashMapLike", "HashMap"));
    }

    #[test]
    fn line_of_is_one_indexed() {
        assert_eq!(line_of("a\nb\nc", 0), 1);
        assert_eq!(line_of("a\nb\nc", 2), 2);
        assert_eq!(line_of("a\nb\nc", 4), 3);
    }
}
