//! The five rule families.
//!
//! Every rule walks prepared [`SourceFile`]s — no filesystem access —
//! so each family's tests seed violations into synthetic workspaces.

use crate::diag::Diagnostic;
use crate::scan::{has_token, line_of, matching, SourceFile};

/// The workspace as the rules see it.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Every Rust source file, with workspace-relative paths.
    pub files: Vec<SourceFile>,
    /// `README.md` text (flag-documentation rule).
    pub readme: String,
}

impl Workspace {
    /// Looks a file up by exact relative path.
    #[must_use]
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// Where `SimConfig` lives.
pub const CONFIG_RS: &str = "crates/sim/src/config.rs";
/// Where the `KNOBS` registry lives.
pub const SPEC_RS: &str = "crates/sim/src/spec.rs";
/// Where `RunReport` and its stats sub-structs live.
pub const REPORT_RS: &str = "crates/sim/src/report.rs";

/// Crates whose non-test code must be deterministic: no unordered std
/// maps, no wall-clock time, no ambient RNG. `crates/bench` (and the
/// vendored shims) are deliberately absent — the supervisor and the
/// bench harness legitimately need wall-clock timeouts.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "crates/types/src/",
    "crates/core/src/",
    "crates/mmu/src/",
    "crates/cache/src/",
    "crates/mem/src/",
    "crates/workloads/src/",
    "crates/sim/src/",
];

/// The arena module that owns all page-table PTE storage.
pub const ARENA_RS: &str = "crates/core/src/arena.rs";

/// I/O-path files where `unwrap`/`expect`/`panic!` must not appear in
/// non-test code: ingest, resume and supervision surface errors instead
/// of crashing mid-sweep.
pub const PANIC_FREE_FILES: &[&str] = &[
    "crates/bench/src/supervisor.rs",
    "crates/bench/src/cli.rs",
    "crates/bench/src/serve.rs",
    "crates/bench/src/client.rs",
    "crates/sim/src/spec.rs",
];

/// Runs every rule family over the workspace (allowlist not applied).
#[must_use]
pub fn run_all(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(registry_rule(ws));
    out.extend(digest_rule(ws));
    out.extend(determinism_rule(ws));
    out.extend(arena_rule(ws));
    out.extend(panic_free_rule(ws));
    out.extend(registry_construction_rule(ws));
    out.extend(forbid_unsafe_rule(ws));
    out
}

// ---------------------------------------------------------------------------
// Shared parsing helpers.
// ---------------------------------------------------------------------------

/// A `pub` field parsed out of a struct body.
#[derive(Debug, Clone)]
struct Field {
    name: String,
    line: usize,
}

/// Byte range (exclusive of the braces) of `pub struct <name> { ... }`
/// in a scrubbed source, or None when absent.
fn struct_body(f: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let needle = format!("pub struct {name}");
    let mut from = 0;
    while let Some(pos) = f.scrubbed[from..].find(&needle) {
        let at = from + pos;
        let after = at + needle.len();
        // Reject prefixes of longer names (SharedLlcStats vs SharedLlc).
        let boundary = f.scrubbed[after..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            let open = at + f.scrubbed[at..].find('{')?;
            let close = matching(f.scrubbed.as_bytes(), open, b'{', b'}')?;
            return Some((open + 1, close));
        }
        from = after;
    }
    None
}

/// `pub` fields declared in a scrubbed byte range of `f`.
fn pub_fields(f: &SourceFile, range: (usize, usize)) -> Vec<Field> {
    let (start, end) = range;
    let mut fields = Vec::new();
    let mut offset = start;
    for line in f.scrubbed[start..end].lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub ") {
            if let Some(colon) = rest.find(':') {
                let name = rest[..colon].trim();
                if !name.is_empty()
                    && name.chars().all(|c| c.is_alphanumeric() || c == '_')
                    // `pub fn`/`pub const` etc. never parse as a lone
                    // identifier before `:`, but be explicit anyway.
                    && !matches!(name, "fn" | "const" | "static" | "struct" | "enum" | "use")
                {
                    fields.push(Field {
                        name: name.to_string(),
                        line: line_of(&f.scrubbed, offset),
                    });
                }
            }
        }
        offset += line.len() + 1;
    }
    fields
}

/// Body byte range of `fn <name>(...) { ... }` in a scrubbed source.
fn fn_body(f: &SourceFile, name: &str) -> Option<(usize, usize)> {
    let needle = format!("fn {name}(");
    let at = f.scrubbed.find(&needle)?;
    let open = at + f.scrubbed[at..].find('{')?;
    let close = matching(f.scrubbed.as_bytes(), open, b'{', b'}')?;
    Some((open + 1, close))
}

// ---------------------------------------------------------------------------
// Rule family 1: registry completeness.
// ---------------------------------------------------------------------------

/// A `KnobDef` literal parsed out of the `KNOBS` table.
#[derive(Debug, Clone)]
struct Knob {
    name: String,
    name_line: usize,
    flag: Option<(String, usize)>,
}

/// Parses the `KNOBS` table from `spec.rs` raw text (the names live in
/// string literals, so the scrubbed copy only guides bracket matching).
fn parse_knobs(spec: &SourceFile) -> Vec<Knob> {
    let Some(at) = spec.scrubbed.find("pub static KNOBS") else {
        return Vec::new();
    };
    // The array literal's `[` is the first one after the `=` (the one
    // before it belongs to the `&[KnobDef]` type annotation).
    let Some(eq_rel) = spec.scrubbed[at..].find('=') else {
        return Vec::new();
    };
    let eq = at + eq_rel;
    let Some(open_rel) = spec.scrubbed[eq..].find('[') else {
        return Vec::new();
    };
    let open = eq + open_rel;
    let Some(close) = matching(spec.scrubbed.as_bytes(), open, b'[', b']') else {
        return Vec::new();
    };
    let mut knobs: Vec<Knob> = Vec::new();
    let mut offset = open;
    for line in spec.raw[open..close].lines() {
        let lineno = line_of(&spec.raw, offset);
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("name: \"") {
            if let Some(q) = rest.find('"') {
                knobs.push(Knob {
                    name: rest[..q].to_string(),
                    name_line: lineno,
                    flag: None,
                });
            }
        } else if let Some(rest) = t.strip_prefix("flag: Some(\"") {
            if let (Some(q), Some(last)) = (rest.find('"'), knobs.last_mut()) {
                if last.flag.is_none() {
                    last.flag = Some((rest[..q].to_string(), lineno));
                }
            }
        }
        offset += line.len() + 1;
    }
    knobs
}

/// Registry completeness: every `pub` field of `SimConfig` has a `KNOBS`
/// entry (the `_override` suffix maps to the bare knob name), knob names
/// and flags are unique, and every flag appears in README.md.
#[must_use]
pub fn registry_rule(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let (Some(config), Some(spec)) = (ws.file(CONFIG_RS), ws.file(SPEC_RS)) else {
        return out;
    };
    let Some(body) = struct_body(config, "SimConfig") else {
        out.push(Diagnostic::new(
            CONFIG_RS,
            1,
            "registry-completeness",
            "cannot find `pub struct SimConfig` — the registry rule has nothing to check",
            "",
        ));
        return out;
    };
    let fields = pub_fields(config, body);
    let knobs = parse_knobs(spec);
    if knobs.is_empty() {
        out.push(Diagnostic::new(
            SPEC_RS,
            1,
            "registry-completeness",
            "cannot find the `pub static KNOBS` table",
            "",
        ));
        return out;
    }

    for f in &fields {
        let bare = f.name.strip_suffix("_override").unwrap_or(&f.name);
        let covered = knobs.iter().any(|k| k.name == f.name || k.name == bare);
        if !covered {
            out.push(Diagnostic::new(
                CONFIG_RS,
                f.line,
                "registry-completeness",
                format!(
                    "pub field `SimConfig::{}` has no KNOBS entry (expected a knob named `{}`); \
                     register it in crates/sim/src/spec.rs so specs, flags and fingerprints see it",
                    f.name, bare
                ),
                config.raw_line(f.line),
            ));
        }
    }

    for (i, k) in knobs.iter().enumerate() {
        if knobs[..i].iter().any(|p| p.name == k.name) {
            out.push(Diagnostic::new(
                SPEC_RS,
                k.name_line,
                "registry-completeness",
                format!("knob name `{}` is registered twice", k.name),
                spec.raw_line(k.name_line),
            ));
        }
        if let Some((flag, line)) = &k.flag {
            if knobs[..i]
                .iter()
                .any(|p| p.flag.as_ref().is_some_and(|(pf, _)| pf == flag))
            {
                out.push(Diagnostic::new(
                    SPEC_RS,
                    *line,
                    "registry-completeness",
                    format!("flag `{flag}` is bound to two knobs"),
                    spec.raw_line(*line),
                ));
            }
            if !ws.readme.contains(flag.as_str()) {
                out.push(Diagnostic::new(
                    SPEC_RS,
                    *line,
                    "flag-docs",
                    format!(
                        "flag `{flag}` (knob `{}`) is not documented in README.md",
                        k.name
                    ),
                    spec.raw_line(*line),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule family 2: digest coverage.
// ---------------------------------------------------------------------------

/// Digest coverage: every `pub` field of every `pub` struct in
/// `report.rs` must be referenced inside `RunReport::fingerprint()` (or
/// carry a `lint.allow` entry with a reason). A report field the digest
/// silently ignores makes every CI digest gate vacuous for it.
#[must_use]
pub fn digest_rule(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let Some(report) = ws.file(REPORT_RS) else {
        return out;
    };
    let Some((body_start, body_end)) = fn_body(report, "fingerprint") else {
        out.push(Diagnostic::new(
            REPORT_RS,
            1,
            "digest-coverage",
            "cannot find `fn fingerprint(` — the digest rule has nothing to check",
            "",
        ));
        return out;
    };
    let fingerprint = &report.raw[body_start..body_end];

    // Every pub struct declared in report.rs is part of the report
    // surface: RunReport itself plus its stats sub-structs.
    let mut from = 0;
    while let Some(pos) = report.scrubbed[from..].find("pub struct ") {
        let at = from + pos;
        let name: String = report.scrubbed[at + "pub struct ".len()..]
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        from = at + "pub struct ".len();
        if name.is_empty() {
            continue;
        }
        let Some(range) = struct_body(report, &name) else {
            continue;
        };
        for f in pub_fields(report, range) {
            if !has_token(fingerprint, &f.name) {
                out.push(Diagnostic::new(
                    REPORT_RS,
                    f.line,
                    "digest-coverage",
                    format!(
                        "pub field `{}::{}` is not referenced in RunReport::fingerprint(); \
                         hash it, or allowlist it in lint.allow with a reason",
                        name, f.name
                    ),
                    report.raw_line(f.line),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule family 3: determinism.
// ---------------------------------------------------------------------------

/// Forbidden tokens and what to use instead.
const DETERMINISM_TOKENS: &[(&str, &str)] = &[
    (
        "HashMap",
        "use ndp_types::FastMap (fixed-seed, deterministic iteration)",
    ),
    (
        "HashSet",
        "use ndp_types::FastSet (fixed-seed, deterministic iteration)",
    ),
    (
        "Instant",
        "simulated time only — wall-clock reads make runs unreproducible",
    ),
    (
        "SystemTime",
        "simulated time only — wall-clock reads make runs unreproducible",
    ),
    (
        "thread_rng",
        "use the vendored seedable rand::Rng with an explicit seed",
    ),
];

/// Determinism: hot-path crates must not reach for unordered std maps,
/// wall-clock time or ambient RNG outside test code.
#[must_use]
pub fn determinism_rule(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !DETERMINISTIC_CRATES.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        for (lineno, line) in f.scrubbed_lines() {
            if f.is_test_line(lineno) {
                continue;
            }
            for (token, fix) in DETERMINISM_TOKENS {
                if has_token(line, token) {
                    out.push(Diagnostic::new(
                        &f.rel,
                        lineno,
                        "determinism",
                        format!("`{token}` is forbidden in deterministic crates; {fix}"),
                        f.raw_line(lineno),
                    ));
                }
            }
        }
    }
    out
}

/// Arena allocation (determinism family): page-table nodes draw their
/// PTE storage from the contiguous `PteArena` slab; a per-node
/// `Vec<Pte>` outside `arena.rs` reintroduces the pointer-chasing
/// layout the arena replaced and scatters walk state across the heap.
/// Construction-time code that legitimately owns a PTE vector (e.g. the
/// cuckoo hash ways, which are not tree nodes) carries a `lint.allow`
/// entry with its reason.
#[must_use]
pub fn arena_rule(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !f.rel.starts_with("crates/core/src/") || f.rel == ARENA_RS {
            continue;
        }
        for (lineno, line) in f.scrubbed_lines() {
            if f.is_test_line(lineno) {
                continue;
            }
            if line.contains("Vec<Pte>") {
                out.push(Diagnostic::new(
                    &f.rel,
                    lineno,
                    "arena-allocation",
                    "per-node `Vec<Pte>` allocation outside arena.rs; carve PTE storage \
                     from `PteArena` (or allowlist construction-time code in lint.allow \
                     with a reason)",
                    f.raw_line(lineno),
                ));
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule family 4: panic-freedom in I/O paths.
// ---------------------------------------------------------------------------

/// Panic-prone constructs that must not appear on I/O paths.
const PANIC_TOKENS: &[&str] = &[".unwrap()", ".expect(", "panic!", "unreachable!"];

/// Panic freedom: ingest/resume/supervision code surfaces errors instead
/// of crashing a sweep mid-run.
#[must_use]
pub fn panic_free_rule(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rel in PANIC_FREE_FILES {
        let Some(f) = ws.file(rel) else { continue };
        for (lineno, line) in f.scrubbed_lines() {
            if f.is_test_line(lineno) {
                continue;
            }
            for token in PANIC_TOKENS {
                if line.contains(token) {
                    out.push(Diagnostic::new(
                        &f.rel,
                        lineno,
                        "panic-free-io",
                        format!(
                            "`{token}` is forbidden in I/O-path code; return the error \
                             (these paths must survive torn files and dying workers)",
                            token = token.trim_start_matches('.')
                        ),
                        f.raw_line(lineno),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule family: registry-driven config construction.
// ---------------------------------------------------------------------------

/// Binaries whose `SimConfig`s must be built through the knob registry
/// (`SimConfig::cli_default()` + `apply_knob`/`config_from_args`/
/// `--set`), never the ad-hoc `SimConfig::new(..).with_*(..)`
/// constructors: their grids feed spec files and JSONL coordinates, so
/// a config assembled outside the registry silently drifts from what
/// `--emit-spec` round-trips and what `calibrate --check` re-derives.
pub const REGISTRY_CONSTRUCTION_FILES: &[&str] = &["crates/bench/src/bin/calibrate.rs"];

/// Construction tokens that bypass the knob registry.
const AD_HOC_CONFIG_TOKENS: &[&str] = &["SimConfig::new(", ".with_ops(", ".with_footprint("];

/// Registry construction: calibration configs come from
/// `SimConfig::cli_default()` + `apply_knob`, keeping the registry the
/// single source of truth for every coordinate the harness emits.
#[must_use]
pub fn registry_construction_rule(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for rel in REGISTRY_CONSTRUCTION_FILES {
        let Some(f) = ws.file(rel) else { continue };
        for (lineno, line) in f.scrubbed_lines() {
            if f.is_test_line(lineno) {
                continue;
            }
            for token in AD_HOC_CONFIG_TOKENS {
                if line.contains(token) {
                    out.push(Diagnostic::new(
                        &f.rel,
                        lineno,
                        "registry-construction",
                        format!(
                            "`{token}..` bypasses the knob registry; build the config \
                             with `SimConfig::cli_default()` + `apply_knob` (or \
                             `config_from_args`) so spec files and JSONL coordinates \
                             cannot drift"
                        ),
                        f.raw_line(lineno),
                    ));
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Rule family (satellite): forbid(unsafe_code) on every crate root.
// ---------------------------------------------------------------------------

/// Whether a path is a crate root (`src/lib.rs`, `src/main.rs`, or a
/// `src/bin/*.rs` binary root).
#[must_use]
pub fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || (rel.contains("/src/bin/") && rel.ends_with(".rs"))
}

/// Unsafe-freedom: the workspace has zero `unsafe` today; every crate
/// root must carry `#![forbid(unsafe_code)]` so new code keeps it that
/// way (and new crates inherit the guarantee the moment this rule sees
/// their root).
#[must_use]
pub fn forbid_unsafe_rule(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for f in &ws.files {
        if !is_crate_root(&f.rel) {
            continue;
        }
        if !f.scrubbed.contains("#![forbid(unsafe_code)]") {
            out.push(Diagnostic::new(
                &f.rel,
                1,
                "forbid-unsafe",
                "crate root is missing `#![forbid(unsafe_code)]`",
                f.raw_line(1),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)], readme: &str) -> Workspace {
        Workspace {
            files: files.iter().map(|(r, t)| SourceFile::new(r, t)).collect(),
            readme: readme.to_string(),
        }
    }

    const CONFIG_FIXTURE: &str = "pub struct SimConfig {\n    /// Seed.\n    pub seed: u64,\n    pub footprint_override: Option<u64>,\n    pub mlp_window: u32,\n}\n";

    fn spec_fixture(entries: &[(&str, Option<&str>)]) -> String {
        let mut s = String::from("pub static KNOBS: &[KnobDef] = &[\n");
        for (name, flag) in entries {
            s.push_str(&format!("    KnobDef {{\n        name: \"{name}\",\n"));
            match flag {
                Some(f) => s.push_str(&format!("        flag: Some(\"{f}\"),\n")),
                None => s.push_str("        flag: None,\n"),
            }
            s.push_str("        help: \"h\",\n    },\n");
        }
        s.push_str("];\n");
        s
    }

    #[test]
    fn registry_clean_when_every_field_covered() {
        let spec = spec_fixture(&[
            ("seed", Some("--seed")),
            ("footprint", Some("--footprint-mb")),
            ("mlp_window", Some("--window")),
        ]);
        let w = ws(
            &[(CONFIG_RS, CONFIG_FIXTURE), (SPEC_RS, &spec)],
            "--seed --footprint-mb --window",
        );
        assert_eq!(registry_rule(&w), vec![], "clean fixture must not fire");
    }

    #[test]
    fn registry_flags_missing_knob() {
        // Seeded violation: `mlp_window` has no KNOBS entry.
        let spec = spec_fixture(&[("seed", Some("--seed")), ("footprint", None)]);
        let w = ws(&[(CONFIG_RS, CONFIG_FIXTURE), (SPEC_RS, &spec)], "--seed");
        let d = registry_rule(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "registry-completeness");
        assert_eq!(d[0].file, CONFIG_RS);
        assert_eq!(d[0].line, 5, "anchors at the field declaration");
        assert!(d[0].message.contains("mlp_window"));
    }

    #[test]
    fn registry_maps_override_suffix_to_bare_knob() {
        // `footprint_override` is covered by a knob named `footprint`.
        let spec = spec_fixture(&[("seed", None), ("footprint", None), ("mlp_window", None)]);
        let w = ws(&[(CONFIG_RS, CONFIG_FIXTURE), (SPEC_RS, &spec)], "");
        assert_eq!(registry_rule(&w), vec![]);
    }

    #[test]
    fn registry_flags_duplicates_and_undocumented_flags() {
        let spec = spec_fixture(&[
            ("seed", Some("--seed")),
            ("seed", Some("--seed")),
            ("footprint", Some("--footprint-mb")),
            ("mlp_window", None),
        ]);
        let w = ws(
            &[(CONFIG_RS, CONFIG_FIXTURE), (SPEC_RS, &spec)],
            "--seed only",
        );
        let d = registry_rule(&w);
        let rules: Vec<_> = d.iter().map(|x| (x.rule, x.message.clone())).collect();
        assert!(
            d.iter().any(|x| x.message.contains("registered twice")),
            "{rules:?}"
        );
        assert!(
            d.iter().any(|x| x.message.contains("bound to two knobs")),
            "{rules:?}"
        );
        let docs: Vec<_> = d.iter().filter(|x| x.rule == "flag-docs").collect();
        assert_eq!(docs.len(), 1, "{rules:?}");
        assert!(docs[0].message.contains("--footprint-mb"));
        assert_eq!(docs[0].file, SPEC_RS);
    }

    const REPORT_CLEAN: &str = "pub struct FaultCounts {\n    pub minor_4k: u64,\n}\n\npub struct RunReport {\n    pub ops: u64,\n    pub faults: FaultCounts,\n}\n\nimpl RunReport {\n    pub fn fingerprint(&self) -> u64 {\n        self.ops.hash(&mut h);\n        self.faults.minor_4k.hash(&mut h);\n        h.finish()\n    }\n}\n";

    #[test]
    fn digest_clean_when_every_field_hashed() {
        let w = ws(&[(REPORT_RS, REPORT_CLEAN)], "");
        assert_eq!(digest_rule(&w), vec![]);
    }

    #[test]
    fn digest_flags_unhashed_field_in_report_and_substructs() {
        // Seeded violation: a new stat forgotten in fingerprint().
        let report = REPORT_CLEAN.replace(
            "pub minor_4k: u64,\n",
            "pub minor_4k: u64,\n    pub forgotten_stat: u64,\n",
        );
        let w = ws(&[(REPORT_RS, &report)], "");
        let d = digest_rule(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "digest-coverage");
        assert_eq!(d[0].file, REPORT_RS);
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("FaultCounts::forgotten_stat"));
        assert!(d[0].line_text.contains("forgotten_stat"));
    }

    #[test]
    fn digest_field_name_must_match_as_whole_token() {
        // `ptw` in the fingerprint must not cover `ptw_histogram`.
        let report = "pub struct RunReport {\n    pub ptw: u64,\n    pub ptw_histogram: u64,\n}\nimpl RunReport {\n    pub fn fingerprint(&self) -> u64 {\n        self.ptw.hash(&mut h);\n        0\n    }\n}\n";
        let w = ws(&[(REPORT_RS, report)], "");
        let d = digest_rule(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ptw_histogram"));
    }

    #[test]
    fn determinism_flags_live_code_only() {
        let src = "use std::collections::HashMap;\npub fn f() { let t = Instant::now(); }\n#[cfg(test)]\nmod tests {\n    fn t() { let s = std::collections::HashSet::new(); }\n}\n";
        let w = ws(&[("crates/core/src/radix.rs", src)], "");
        let d = determinism_rule(&w);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "determinism"));
        assert_eq!(d[0].line, 1);
        assert!(d[0].message.contains("HashMap"));
        assert_eq!(d[1].line, 2);
        assert!(d[1].message.contains("Instant"));
    }

    #[test]
    fn determinism_ignores_comments_strings_and_foreign_crates() {
        let commented =
            "// a HashMap in a comment\npub fn f() { let s = \"HashSet in a string\"; }\n";
        let bench = "use std::time::Instant;\npub fn t() { let _ = Instant::now(); }\n";
        let w = ws(
            &[
                ("crates/mmu/src/tlb.rs", commented),
                ("crates/bench/src/supervisor.rs", bench),
                ("tests/spec_api.rs", "use std::collections::HashMap;\n"),
            ],
            "",
        );
        assert_eq!(determinism_rule(&w), vec![]);
    }

    #[test]
    fn arena_flags_vec_pte_outside_arena_module() {
        // Seeded violation: a table growing its own PTE vector per node.
        let src = "pub struct Node {\n    ptes: Vec<Pte>,\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let v: Vec<Pte> = Vec::new(); }\n}\n";
        let w = ws(&[("crates/core/src/radix.rs", src)], "");
        let d = arena_rule(&w);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, "arena-allocation");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("PteArena"));
    }

    #[test]
    fn arena_ignores_the_arena_module_comments_and_foreign_crates() {
        let arena = "pub struct PteArena {\n    ptes: Vec<Pte>,\n}\n";
        let commented = "// the old Vec<Pte> layout\npub fn f() {}\n";
        let w = ws(
            &[
                (ARENA_RS, arena),
                ("crates/core/src/flat.rs", commented),
                ("crates/sim/src/machine.rs", "pub a: Vec<Pte>,\n"),
            ],
            "",
        );
        assert_eq!(arena_rule(&w), vec![]);
    }

    #[test]
    fn panic_free_flags_unwrap_expect_panic_outside_tests() {
        let src = "pub fn load() {\n    let x = read().unwrap();\n    let y = parse().expect(\"boom\");\n    panic!(\"no\");\n}\n#[cfg(test)]\nmod tests {\n    fn t() { other().unwrap(); }\n}\n";
        let w = ws(&[("crates/bench/src/supervisor.rs", src)], "");
        let d = panic_free_rule(&w);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "panic-free-io"));
        assert_eq!(d.iter().map(|x| x.line).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn panic_free_allows_unwrap_or_variants_and_other_files() {
        let src =
            "pub fn f() { let x = v.unwrap_or_else(Default::default); let y = v.unwrap_or(0); }\n";
        let elsewhere = "pub fn f() { x.unwrap(); }\n";
        let w = ws(
            &[
                ("crates/bench/src/cli.rs", src),
                ("crates/sim/src/machine.rs", elsewhere),
            ],
            "",
        );
        assert_eq!(panic_free_rule(&w), vec![]);
    }

    #[test]
    fn registry_construction_flags_ad_hoc_config_in_calibrate() {
        let src = "fn main() {\n    let cfg = SimConfig::new(system, cores, m, w)\n        .with_ops(10, 30)\n        .with_footprint(mb << 20);\n}\n#[cfg(test)]\nmod tests {\n    fn t() { let c = SimConfig::new(s, 1, m, w); }\n}\n";
        let w = ws(&[("crates/bench/src/bin/calibrate.rs", src)], "");
        let d = registry_construction_rule(&w);
        assert_eq!(d.len(), 3, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "registry-construction"));
        assert_eq!(d.iter().map(|x| x.line).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn registry_construction_ignores_other_files_and_registry_calls() {
        let clean = "fn main() {\n    let mut cfg = SimConfig::cli_default();\n    apply_knob(&mut cfg, \"footprint\", \"1024\").unwrap();\n}\n";
        let elsewhere = "pub fn f() { let c = SimConfig::new(s, 1, m, w).with_ops(1, 2); }\n";
        let w = ws(
            &[
                ("crates/bench/src/bin/calibrate.rs", clean),
                ("crates/bench/src/bin/figures.rs", elsewhere),
            ],
            "",
        );
        assert_eq!(registry_construction_rule(&w), vec![]);
    }

    #[test]
    fn forbid_unsafe_checks_all_crate_roots() {
        let w = ws(
            &[
                (
                    "crates/types/src/lib.rs",
                    "#![forbid(unsafe_code)]\npub mod x;\n",
                ),
                ("crates/cache/src/lib.rs", "//! Doc.\npub mod y;\n"),
                ("crates/bench/src/bin/ndpsim.rs", "fn main() {}\n"),
                ("crates/cache/src/set_assoc.rs", "pub fn not_a_root() {}\n"),
                ("src/lib.rs", "#![forbid(unsafe_code)]\n"),
            ],
            "",
        );
        let d = forbid_unsafe_rule(&w);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().all(|x| x.rule == "forbid-unsafe"));
        let files: Vec<_> = d.iter().map(|x| x.file.as_str()).collect();
        assert!(files.contains(&"crates/cache/src/lib.rs"));
        assert!(files.contains(&"crates/bench/src/bin/ndpsim.rs"));
    }

    #[test]
    fn crate_root_classification() {
        assert!(is_crate_root("src/lib.rs"));
        assert!(is_crate_root("crates/lint/src/main.rs"));
        assert!(is_crate_root("vendor/rand/src/lib.rs"));
        assert!(is_crate_root("crates/bench/src/bin/figures.rs"));
        assert!(!is_crate_root("crates/bench/src/cli.rs"));
        assert!(!is_crate_root("tests/spec_api.rs"));
    }
}
