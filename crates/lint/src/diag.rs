//! Clippy-style diagnostics: `file:line: rule-name: message`.

use std::fmt;

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line the violation anchors to.
    pub line: usize,
    /// Rule family that fired (kebab-case).
    pub rule: &'static str,
    /// What is wrong and how to fix it.
    pub message: String,
    /// Raw text of the offending line — what `lint.allow` patterns match
    /// against. Empty for diagnostics with no meaningful anchor line.
    pub line_text: String,
}

impl Diagnostic {
    /// Builds a diagnostic anchored to `line` of `file`.
    #[must_use]
    pub fn new(
        file: &str,
        line: usize,
        rule: &'static str,
        message: impl Into<String>,
        line_text: &str,
    ) -> Self {
        Diagnostic {
            file: file.to_string(),
            line,
            rule,
            message: message.into(),
            line_text: line_text.trim().to_string(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_clippy_style() {
        let d = Diagnostic::new(
            "crates/core/src/radix.rs",
            346,
            "determinism",
            "std::collections::HashSet is forbidden here; use ndp_types::FastSet",
            "  let mut seen = std::collections::HashSet::new();",
        );
        assert_eq!(
            d.to_string(),
            "crates/core/src/radix.rs:346: determinism: \
             std::collections::HashSet is forbidden here; use ndp_types::FastSet"
        );
        assert_eq!(
            d.line_text,
            "let mut seen = std::collections::HashSet::new();"
        );
    }
}
