//! The `lint.allow` exemption file.
//!
//! Format, one entry per line (blank lines and `#`-comment lines are
//! skipped):
//!
//! ```text
//! path/to/file.rs: line-pattern # reason the exemption is sound
//! ```
//!
//! An entry suppresses every diagnostic whose file equals `path` and
//! whose offending line *contains* `line-pattern`. Hygiene is itself a
//! rule: an entry with no path, no pattern or no reason is an error, and
//! so is a *stale* entry — one that suppressed nothing in this run — so
//! exemptions cannot outlive the code they excuse.

use crate::diag::Diagnostic;

/// One parsed `lint.allow` entry.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// 1-indexed line in `lint.allow`.
    pub line: usize,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Substring the offending source line must contain.
    pub pattern: String,
    /// Why the exemption is sound (required).
    pub reason: String,
}

/// The parsed allowlist plus the diagnostics its own parsing produced.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Well-formed entries.
    pub entries: Vec<AllowEntry>,
    /// Malformed-entry diagnostics (`allow-hygiene`).
    pub problems: Vec<Diagnostic>,
}

/// The `lint.allow` file name at the workspace root.
pub const ALLOW_FILE: &str = "lint.allow";

/// Parses `lint.allow` text.
#[must_use]
pub fn parse(text: &str) -> Allowlist {
    let mut out = Allowlist::default();
    for (i, raw_line) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let malformed = |what: &str| {
            Diagnostic::new(
                ALLOW_FILE,
                lineno,
                "allow-hygiene",
                format!("malformed entry ({what}); expected `path: line-pattern # reason`"),
                raw_line,
            )
        };
        // The reason comes after the *last* ` # ` so patterns may contain
        // `#` when spaced tightly.
        let Some(hash) = line.rfind(" # ").map(|p| p + 1) else {
            out.problems.push(malformed("missing ` # reason`"));
            continue;
        };
        let (head, reason) = line.split_at(hash);
        let reason = reason[1..].trim();
        if reason.is_empty() {
            out.problems.push(malformed("empty reason"));
            continue;
        }
        let head = head.trim().trim_end_matches('#').trim();
        let Some(colon) = head.find(": ").or_else(|| head.find(':')) else {
            out.problems.push(malformed("missing `path:` prefix"));
            continue;
        };
        let path = head[..colon].trim();
        let pattern = head[colon + 1..].trim();
        if path.is_empty() {
            out.problems.push(malformed("empty path"));
            continue;
        }
        if pattern.is_empty() {
            out.problems.push(malformed("empty line-pattern"));
            continue;
        }
        out.entries.push(AllowEntry {
            line: lineno,
            path: path.to_string(),
            pattern: pattern.to_string(),
            reason: reason.to_string(),
        });
    }
    out
}

/// Applies the allowlist: returns the surviving diagnostics, appending a
/// `stale-allow` diagnostic for every entry that suppressed nothing and
/// the malformed-entry problems from parsing.
#[must_use]
pub fn apply(allow: &Allowlist, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut used = vec![false; allow.entries.len()];
    let mut out: Vec<Diagnostic> = Vec::new();
    for d in diags {
        let mut suppressed = false;
        for (i, e) in allow.entries.iter().enumerate() {
            if e.path == d.file && d.line_text.contains(&e.pattern) {
                used[i] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            out.push(d);
        }
    }
    for (i, e) in allow.entries.iter().enumerate() {
        if !used[i] {
            out.push(Diagnostic::new(
                ALLOW_FILE,
                e.line,
                "stale-allow",
                format!(
                    "entry `{}: {}` no longer matches any violation; delete it (reason was: {})",
                    e.path, e.pattern, e.reason
                ),
                &format!("{}: {}", e.path, e.pattern),
            ));
        }
    }
    out.extend(allow.problems.iter().cloned());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(file: &str, line_text: &str) -> Diagnostic {
        Diagnostic::new(file, 10, "determinism", "forbidden token", line_text)
    }

    #[test]
    fn parses_entries_and_comments() {
        let a = parse(
            "# header comment\n\
             \n\
             crates/types/src/fastmap.rs: Hash # definition site of the fixed-seed aliases\n",
        );
        assert!(a.problems.is_empty());
        assert_eq!(a.entries.len(), 1);
        let e = &a.entries[0];
        assert_eq!(e.path, "crates/types/src/fastmap.rs");
        assert_eq!(e.pattern, "Hash");
        assert!(e.reason.contains("definition site"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn malformed_entries_are_diagnostics() {
        let a = parse("no reason here\npath only # why\n: pat # why\np: # why\n");
        assert_eq!(a.entries.len(), 0, "{:?}", a.entries);
        assert_eq!(a.problems.len(), 4);
        for p in &a.problems {
            assert_eq!(p.rule, "allow-hygiene");
            assert_eq!(p.file, ALLOW_FILE);
        }
    }

    #[test]
    fn suppresses_matching_and_flags_stale() {
        let a = parse(
            "a.rs: HashSet # test helper\n\
             b.rs: never-matches # obsolete\n",
        );
        let diags = vec![
            diag("a.rs", "let s = HashSet::new();"),
            diag("a.rs", "let m = HashMap::new();"),
        ];
        let out = apply(&a, diags);
        // HashSet suppressed; HashMap survives; stale entry flagged.
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().any(|d| d.line_text.contains("HashMap")));
        let stale: Vec<_> = out.iter().filter(|d| d.rule == "stale-allow").collect();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].file, ALLOW_FILE);
        assert_eq!(stale[0].line, 2);
        assert!(stale[0].message.contains("never-matches"));
    }

    #[test]
    fn one_entry_may_suppress_many_lines() {
        let a = parse("f.rs: Hash # alias definitions\n");
        let out = apply(
            &a,
            vec![
                diag("f.rs", "pub type FastMap<K, V> = HashMap<K, V, S>;"),
                diag("f.rs", "pub type FastSet<T> = HashSet<T, S>;"),
            ],
        );
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn path_must_match_exactly() {
        let a = parse("crates/a/src/x.rs: token # why\n");
        let out = apply(&a, vec![diag("crates/b/src/x.rs", "token here")]);
        // The diagnostic survives AND the entry is stale.
        assert_eq!(out.len(), 2);
    }
}
