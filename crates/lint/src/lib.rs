#![forbid(unsafe_code)]
//! `ndp-lint`: the workspace invariant checker.
//!
//! The repo's correctness story rests on conventions no compiler
//! checks: every `SimConfig` knob registered in `KNOBS`, every report
//! stat hashed into `RunReport::fingerprint()`, hot-path crates free of
//! unordered maps and wall-clock time, I/O paths free of panics. This
//! crate is a hand-rolled, dependency-free Rust source scanner — in-repo
//! character, like the serde-free JSON parser — that turns those tribal
//! rules into machine-checked ones:
//!
//! * [`rules::registry_rule`] — **registry-completeness** / **flag-docs**:
//!   every `pub` field of `SimConfig` has a `KNOBS` entry, knob names and
//!   flags are unique, every flag is documented in README.md.
//! * [`rules::digest_rule`] — **digest-coverage**: every field of
//!   `RunReport` and its stats sub-structs is referenced inside
//!   `fingerprint()` or allowlisted with a reason.
//! * [`rules::determinism_rule`] — **determinism**: no
//!   `std::collections::{HashMap,HashSet}`, `Instant`, `SystemTime` or
//!   `thread_rng` in non-test code of the deterministic crates.
//! * [`rules::panic_free_rule`] — **panic-free-io**: no
//!   `unwrap()`/`expect()`/`panic!` outside tests in supervisor, CLI and
//!   spec ingest/resume code.
//! * [`rules::forbid_unsafe_rule`] — **forbid-unsafe**: every crate root
//!   carries `#![forbid(unsafe_code)]`.
//! * [`allow`] — **allow-hygiene** / **stale-allow**: `lint.allow`
//!   entries are `path: line-pattern # reason`, and an entry that no
//!   longer suppresses anything is itself an error.
//!
//! Diagnostics are clippy-style `file:line: rule-name: message`; the
//! binary exits nonzero on any.

pub mod allow;
pub mod diag;
pub mod rules;
pub mod scan;

use diag::Diagnostic;
use rules::Workspace;

/// Runs every rule family and applies the allowlist; the returned
/// diagnostics are what the binary prints (empty = clean tree).
#[must_use]
pub fn check(ws: &Workspace, allow_text: &str) -> Vec<Diagnostic> {
    let allowlist = allow::parse(allow_text);
    let mut diags = allow::apply(&allowlist, rules::run_all(ws));
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    #[test]
    fn check_applies_allowlist_and_flags_stale_entries() {
        let ws = Workspace {
            files: vec![SourceFile::new(
                "crates/core/src/radix.rs",
                "use std::collections::HashSet;\n",
            )],
            readme: String::new(),
        };
        // Unsuppressed: one determinism diagnostic.
        let out = check(&ws, "");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].rule, "determinism");

        // Suppressed by a matching entry: clean.
        let out = check(
            &ws,
            "crates/core/src/radix.rs: HashSet # seeded fixture exemption\n",
        );
        assert!(out.is_empty(), "{out:?}");

        // A deliberately-stale entry is itself an error.
        let out = check(
            &ws,
            "crates/core/src/radix.rs: HashSet # fixture\n\
             crates/core/src/radix.rs: NoSuchToken # stale on purpose\n",
        );
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "stale-allow");
        assert_eq!(out[0].file, "lint.allow");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn diagnostics_sort_stably_by_file_then_line() {
        let ws = Workspace {
            files: vec![
                SourceFile::new("crates/sim/src/b.rs", "use std::collections::HashMap;\n"),
                SourceFile::new(
                    "crates/core/src/a.rs",
                    "pub fn f() {}\nuse std::collections::HashMap;\n",
                ),
            ],
            readme: String::new(),
        };
        let out = check(&ws, "");
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].file, "crates/core/src/a.rs");
        assert_eq!(out[1].file, "crates/sim/src/b.rs");
    }
}
