#![forbid(unsafe_code)]
//! The `ndp-lint` binary: walks the workspace, runs every rule family,
//! prints clippy-style diagnostics and exits nonzero on any violation.
//!
//! ```text
//! cargo run -p ndp-lint            # check the workspace you're in
//! cargo run -p ndp-lint -- --root /path/to/workspace
//! ```

use ndp_lint::allow::ALLOW_FILE;
use ndp_lint::rules::Workspace;
use ndp_lint::scan::SourceFile;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Directories never scanned.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "ndp-lint: workspace invariant checker\n\
                     usage: ndp-lint [--root <workspace-dir>]\n\
                     Checks registry completeness, digest coverage, determinism,\n\
                     panic-free I/O paths, forbid(unsafe_code) and lint.allow hygiene.\n\
                     Exits 0 when clean, 1 on any diagnostic, 2 on usage/IO errors."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unrecognized argument {other:?}")),
        }
    }
    let root = match root.map_or_else(find_workspace_root, Ok) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ndp-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut files = Vec::new();
    if let Err(e) = collect_rs(&root, &root, &mut files) {
        eprintln!("ndp-lint: walking {}: {e}", root.display());
        return ExitCode::from(2);
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap_or_default();
    let allow_text = std::fs::read_to_string(root.join(ALLOW_FILE)).unwrap_or_default();

    let file_count = files.len();
    let ws = Workspace { files, readme };
    let diags = ndp_lint::check(&ws, &allow_text);
    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        eprintln!("ndp-lint: {file_count} files checked, 0 problems");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ndp-lint: {file_count} files checked, {} problem{}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("ndp-lint: {msg} (try --help)");
    ExitCode::from(2)
}

/// Ascends from the current directory to the first one holding a
/// `Cargo.toml` with a `[workspace]` table.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory; pass --root".into());
        }
    }
}

/// Recursively collects `.rs` files under `dir` as [`SourceFile`]s keyed
/// by workspace-relative path.
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let raw = std::fs::read_to_string(&path)?;
            out.push(SourceFile::new(&rel, &raw));
        }
    }
    Ok(())
}
