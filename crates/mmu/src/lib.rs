#![forbid(unsafe_code)]
//! The memory-management unit of the simulated cores: TLBs, page-walk
//! caches, and the hardware page-table walker.
//!
//! Matches Table I's MMU: a 64-entry 4-way L1 DTLB (1-cycle), a 128-entry
//! 4-way L1 ITLB (modelled but idle — traces are data-only), and a
//! 1536-entry L2 TLB (12-cycle). On an L2 miss the [`walker`] executes the
//! page table's [`WalkPath`], consulting per-level page-walk caches
//! ([`pwc`]) exactly as §V-C describes: NDPage keeps the near-perfect
//! PL4/PL3 PWCs and confines the poorly-hitting bottom levels to a single
//! flattened lookup.
//!
//! [`WalkPath`]: ndpage::walk::WalkPath
//!
//! # Examples
//!
//! TLB entries, PWC tags and walker state are tagged by [`Asid`], so
//! multiprogrammed cores keep several address spaces resident and flush
//! selectively ([`Tlb::flush_asid`]) or entirely ([`Tlb::flush_all`], the
//! untagged-TLB context-switch penalty).
//!
//! [`Asid`]: ndp_types::Asid
//! [`Tlb::flush_asid`]: tlb::Tlb::flush_asid
//! [`Tlb::flush_all`]: tlb::Tlb::flush_all
//!
//! ```
//! use ndp_mmu::tlb::{TlbConfig, TlbHierarchy};
//! use ndp_types::{Asid, PageSize, Pfn, Vpn};
//!
//! let mut tlb = TlbHierarchy::table1();
//! let vpn = Vpn::new(0x1234);
//! assert!(tlb.lookup(Asid::ZERO, vpn).outcome.is_miss());
//! tlb.fill(Asid::ZERO, vpn, Pfn::new(0x99), PageSize::Size4K);
//! assert!(!tlb.lookup(Asid::ZERO, vpn).outcome.is_miss());
//! // A second address space never sees the first one's entries.
//! assert!(tlb.lookup(Asid(1), vpn).outcome.is_miss());
//! # let _ = TlbConfig::l1_dtlb();
//! ```

pub mod pwc;
pub mod tlb;
pub mod walker;

pub use pwc::{Pwc, PwcSet};
pub use tlb::{Tlb, TlbConfig, TlbHierarchy};
pub use walker::{PageTableWalker, PteFetch, WalkPlan};
