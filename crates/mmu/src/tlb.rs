//! Translation lookaside buffers.
//!
//! Set-associative, LRU, with split 4 KB / 2 MB tagging: a huge-page entry
//! is tagged by the VPN's 2 MB-aligned prefix and covers all 512 base pages
//! beneath it — the reach advantage that makes the Huge Page baseline
//! strong at low core counts.
//!
//! Entries additionally carry an [`Asid`] tag so multiprogrammed cores can
//! keep several address spaces resident at once: lookups and fills are
//! keyed by `(asid, vpn)`, [`Tlb::flush_asid`] models a targeted shootdown
//! and [`Tlb::flush_all`] the untagged-TLB full flush a context switch
//! forces. Single-address-space runs pass [`Asid::ZERO`] everywhere and
//! behave bit-identically to an untagged TLB.

use ndp_types::stats::HitMiss;
use ndp_types::{Asid, Cycles, PageSize, Pfn, Vpn};

/// Geometry and latency of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Human-readable name.
    pub name: &'static str,
    /// Total entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Lookup latency.
    pub latency: Cycles,
}

impl TlbConfig {
    /// Table I L1 DTLB: 64-entry, 4-way, 1-cycle.
    #[must_use]
    pub const fn l1_dtlb() -> Self {
        TlbConfig {
            name: "L1 DTLB",
            entries: 64,
            ways: 4,
            latency: Cycles::new(1),
        }
    }

    /// Table I L1 ITLB: 128-entry, 4-way, 1-cycle.
    #[must_use]
    pub const fn l1_itlb() -> Self {
        TlbConfig {
            name: "L1 ITLB",
            entries: 128,
            ways: 4,
            latency: Cycles::new(1),
        }
    }

    /// Table I L2 TLB: 1536-entry, 12-cycle (12-way here; Table I gives no
    /// associativity).
    #[must_use]
    pub const fn l2_stlb() -> Self {
        TlbConfig {
            name: "L2 TLB",
            entries: 1536,
            ways: 12,
            latency: Cycles::new(12),
        }
    }

    /// Sets implied by geometry.
    ///
    /// # Panics
    ///
    /// Panics if entries don't divide by ways into a power of two.
    #[must_use]
    pub fn sets(&self) -> usize {
        let sets = (self.entries / self.ways) as usize;
        assert!(sets > 0, "TLB too small for its associativity");
        assert!(sets.is_power_of_two(), "TLB sets must be a power of two");
        sets
    }
}

/// Tag of an empty way. Live tags pack a ≤ 37-bit page key with a 16-bit
/// ASID at [`Asid::TAG_SHIFT`], so they can never reach the sentinel.
const INVALID_TAG: u64 = u64::MAX;

/// Bits of a tag that hold the ASID.
const ASID_MASK: u64 = !0u64 << Asid::TAG_SHIFT;

/// A translation returned by a TLB probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbHit {
    /// Frame of the 4 KB page containing the address.
    pub pfn: Pfn,
    /// Size of the underlying mapping.
    pub size: PageSize,
}

/// One set-associative TLB level.
///
/// Probe state is struct-of-arrays (the `PwcSet` treatment): `tags[i]`
/// packs the page key with the owning ASID so a set probe is one `u64`
/// compare per way over a contiguous row, `stamps[i]` carries LRU age
/// (zeroed on invalidation — valid stamps are always ≥ 1, so the victim
/// scan needs no validity branch), and `pfns[i]` is the payload, touched
/// only on a hit. The mapping size is not stored: the key's low bit *is*
/// the 4 KB / 2 MB namespace.
#[derive(Debug, Clone)]
pub struct Tlb {
    config: TlbConfig,
    sets: usize,
    tags: Vec<u64>,
    stamps: Vec<u64>,
    pfns: Vec<Pfn>,
    tick: u64,
    stats: HitMiss,
}

impl Tlb {
    /// Builds a TLB from its configuration.
    #[must_use]
    pub fn new(config: TlbConfig) -> Self {
        let sets = config.sets();
        let ways = sets * config.ways as usize;
        Tlb {
            config,
            sets,
            tags: vec![INVALID_TAG; ways],
            stamps: vec![0; ways],
            pfns: vec![Pfn::new(0); ways],
            tick: 0,
            stats: HitMiss::default(),
        }
    }

    /// The level configuration.
    #[must_use]
    pub fn config(&self) -> &TlbConfig {
        &self.config
    }

    /// Hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> &HitMiss {
        &self.stats
    }

    fn key_for(vpn: Vpn, size: PageSize) -> u64 {
        match size {
            PageSize::Size4K => vpn.as_u64() << 1,
            // Huge entries tag the 2 MB-aligned prefix; low bit
            // distinguishes the namespaces.
            PageSize::Size2M => ((vpn.as_u64() >> 9) << 1) | 1,
        }
    }

    fn probe_key(&mut self, asid: Asid, key: u64) -> Option<(Pfn, PageSize)> {
        let set = (key as usize >> 1) & (self.sets - 1);
        let ways = self.config.ways as usize;
        let tag = key | asid.tag_bits();
        let base = set * ways;
        for w in base..base + ways {
            if self.tags[w] == tag {
                self.stamps[w] = self.tick;
                let size = if key & 1 == 1 {
                    PageSize::Size2M
                } else {
                    PageSize::Size4K
                };
                return Some((self.pfns[w], size));
            }
        }
        None
    }

    /// Looks up `vpn` in address space `asid`, probing both the 4 KB and
    /// 2 MB namespaces, and records a hit or miss. Entries of other ASIDs
    /// never hit.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> Option<TlbHit> {
        self.tick += 1;
        let hit = self
            .probe_key(asid, Self::key_for(vpn, PageSize::Size4K))
            .map(|(pfn, size)| TlbHit { pfn, size })
            .or_else(|| {
                self.probe_key(asid, Self::key_for(vpn, PageSize::Size2M))
                    .map(|(base, size)| TlbHit {
                        // Reconstruct the 4 KB frame within the huge page.
                        pfn: base.add(vpn.l1_index() as u64),
                        size,
                    })
            });
        self.stats.record(hit.is_some());
        hit
    }

    /// Installs a translation for address space `asid`. For 2 MB mappings
    /// pass the *huge page base* PFN (512-frame aligned).
    pub fn fill(&mut self, asid: Asid, vpn: Vpn, pfn: Pfn, size: PageSize) {
        self.tick += 1;
        let key = Self::key_for(vpn, size);
        let set = (key as usize >> 1) & (self.sets - 1);
        let ways = self.config.ways as usize;
        let tag = key | asid.tag_bits();
        let base = set * ways;
        // One pass: refresh if present (the size lives in the key, so a
        // refresh can never change it), else first-minimum-stamp victim —
        // invalidated ways scan as stamp 0, below every live stamp.
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for w in base..base + ways {
            if self.tags[w] == tag {
                self.stamps[w] = self.tick;
                self.pfns[w] = pfn;
                return;
            }
            if self.stamps[w] < victim_stamp {
                victim = w;
                victim_stamp = self.stamps[w];
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.tick;
        self.pfns[victim] = pfn;
    }

    /// Invalidates every entry of `asid` (a targeted shootdown), returning
    /// how many entries were dropped. Statistics and other address spaces
    /// are untouched.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        let tag_bits = asid.tag_bits();
        let mut dropped = 0;
        for w in 0..self.tags.len() {
            if self.tags[w] != INVALID_TAG && self.tags[w] & ASID_MASK == tag_bits {
                self.tags[w] = INVALID_TAG;
                self.stamps[w] = 0;
                dropped += 1;
            }
        }
        dropped
    }

    /// Invalidates every entry (the untagged-TLB context-switch flush),
    /// returning how many entries were dropped. Statistics survive — a
    /// flush loses state, not history.
    pub fn flush_all(&mut self) -> u64 {
        let mut dropped = 0;
        for w in 0..self.tags.len() {
            if self.tags[w] != INVALID_TAG {
                self.tags[w] = INVALID_TAG;
                self.stamps[w] = 0;
                dropped += 1;
            }
        }
        dropped
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(INVALID_TAG);
        self.stamps.fill(0);
        self.pfns.fill(Pfn::new(0));
        self.tick = 0;
        self.stats = HitMiss::default();
    }

    /// Clears statistics only, preserving contents.
    pub fn clear_stats(&mut self) {
        self.stats = HitMiss::default();
    }
}

/// Where a hierarchy lookup was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TlbOutcome {
    /// Hit in the L1 TLB.
    L1Hit,
    /// Missed L1, hit the L2 TLB.
    L2Hit,
    /// Missed both levels; a page-table walk is required.
    Miss,
}

impl TlbOutcome {
    /// Whether a walk is required.
    #[must_use]
    pub fn is_miss(self) -> bool {
        matches!(self, TlbOutcome::Miss)
    }
}

/// Result of a hierarchy lookup: outcome, translation (if hit), and the
/// lookup latency spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbLookup {
    /// Where the lookup resolved.
    pub outcome: TlbOutcome,
    /// The translation, when either level hit.
    pub hit: Option<TlbHit>,
    /// Probe latency accumulated across levels.
    pub latency: Cycles,
}

/// The two-level data-TLB hierarchy of Table I.
#[derive(Debug, Clone)]
pub struct TlbHierarchy {
    l1: Tlb,
    l2: Tlb,
    fracture_huge: bool,
}

impl TlbHierarchy {
    /// Builds the Table I configuration (L1 DTLB + L2 STLB), with 2 MB
    /// fills *fractured* into 4 KB entries — the paper evaluates Huge Page
    /// purely as a shorter (3-level) walk (§VII-A), which corresponds to a
    /// TLB that does not hold native 2 MB entries.
    #[must_use]
    pub fn table1() -> Self {
        TlbHierarchy {
            l1: Tlb::new(TlbConfig::l1_dtlb()),
            l2: Tlb::new(TlbConfig::l2_stlb()),
            fracture_huge: true,
        }
    }

    /// Builds from explicit configurations (fracturing enabled).
    #[must_use]
    pub fn new(l1: TlbConfig, l2: TlbConfig) -> Self {
        TlbHierarchy {
            l1: Tlb::new(l1),
            l2: Tlb::new(l2),
            fracture_huge: true,
        }
    }

    /// Enables or disables 2 MB fracturing (for reach ablations).
    #[must_use]
    pub fn with_fracturing(mut self, fracture: bool) -> Self {
        self.fracture_huge = fracture;
        self
    }

    /// L1 statistics.
    #[must_use]
    pub fn l1_stats(&self) -> &HitMiss {
        self.l1.stats()
    }

    /// L2 statistics.
    #[must_use]
    pub fn l2_stats(&self) -> &HitMiss {
        self.l2.stats()
    }

    /// Fraction of L1 lookups that missed both levels and required a walk
    /// (the paper's end-to-end "TLB miss rate", 91.27% in §IV-A).
    #[must_use]
    pub fn walk_rate(&self) -> f64 {
        let l1_total = self.l1.stats().total();
        if l1_total == 0 {
            0.0
        } else {
            self.l2.stats().misses as f64 / l1_total as f64
        }
    }

    /// Looks up `(asid, vpn)` through L1 then L2, promoting L2 hits into L1.
    pub fn lookup(&mut self, asid: Asid, vpn: Vpn) -> TlbLookup {
        let mut latency = self.l1.config().latency;
        if let Some(hit) = self.l1.lookup(asid, vpn) {
            return TlbLookup {
                outcome: TlbOutcome::L1Hit,
                hit: Some(hit),
                latency,
            };
        }
        latency += self.l2.config().latency;
        if let Some(hit) = self.l2.lookup(asid, vpn) {
            // Promote into L1 (store the mapping-granularity base).
            let base = match hit.size {
                PageSize::Size4K => hit.pfn,
                PageSize::Size2M => Pfn::new((hit.pfn.as_u64() >> 9) << 9),
            };
            self.l1.fill(asid, vpn, base, hit.size);
            return TlbLookup {
                outcome: TlbOutcome::L2Hit,
                hit: Some(hit),
                latency,
            };
        }
        TlbLookup {
            outcome: TlbOutcome::Miss,
            hit: None,
            latency,
        }
    }

    /// Installs a walked translation into the hierarchy for address space
    /// `asid`. For 2 MB mappings pass the huge page base PFN.
    ///
    /// With fracturing enabled (the default, matching the paper's Huge
    /// Page treatment), a 2 MB translation installs only the 4 KB entry
    /// for `vpn`; the mapping's reach advantage is forfeited and Huge Page
    /// benefits purely from its shorter walk.
    pub fn fill(&mut self, asid: Asid, vpn: Vpn, pfn_base: Pfn, size: PageSize) {
        if self.fracture_huge && size == PageSize::Size2M {
            let exact = pfn_base.add(vpn.l1_index() as u64);
            self.l1.fill(asid, vpn, exact, PageSize::Size4K);
            self.l2.fill(asid, vpn, exact, PageSize::Size4K);
            return;
        }
        self.l1.fill(asid, vpn, pfn_base, size);
        self.l2.fill(asid, vpn, pfn_base, size);
    }

    /// Invalidates both levels' entries of `asid` (a targeted shootdown),
    /// returning how many entries were dropped. Statistics survive.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        self.l1.flush_asid(asid) + self.l2.flush_asid(asid)
    }

    /// Invalidates both levels entirely (the untagged-TLB context-switch
    /// flush), returning how many entries were dropped. Statistics survive.
    pub fn flush_all(&mut self) -> u64 {
        self.l1.flush_all() + self.l2.flush_all()
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.l1.reset();
        self.l2.reset();
    }

    /// Clears statistics of both levels, preserving contents.
    pub fn clear_stats(&mut self) {
        self.l1.clear_stats();
        self.l2.clear_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_fill_hit() {
        let mut t = Tlb::new(TlbConfig::l1_dtlb());
        let vpn = Vpn::new(0xabc);
        assert!(t.lookup(Asid::ZERO, vpn).is_none());
        t.fill(Asid::ZERO, vpn, Pfn::new(0x123), PageSize::Size4K);
        let hit = t.lookup(Asid::ZERO, vpn).unwrap();
        assert_eq!(hit.pfn, Pfn::new(0x123));
        assert_eq!(t.stats().hits, 1);
        assert_eq!(t.stats().misses, 1);
    }

    #[test]
    fn huge_entry_covers_whole_region() {
        let mut t = Tlb::new(TlbConfig::l1_dtlb());
        let base_vpn = Vpn::new(512 * 7);
        t.fill(Asid::ZERO, base_vpn, Pfn::new(1024), PageSize::Size2M);
        // Any page in the same 2 MB region hits and maps to consecutive frames.
        for off in [0u64, 1, 255, 511] {
            let hit = t.lookup(Asid::ZERO, base_vpn.add(off)).unwrap();
            assert_eq!(hit.pfn, Pfn::new(1024 + off), "offset {off}");
            assert_eq!(hit.size, PageSize::Size2M);
        }
        // Outside the region: miss.
        assert!(t.lookup(Asid::ZERO, Vpn::new(512 * 8)).is_none());
    }

    #[test]
    fn lru_eviction_within_set() {
        // 1-way "TLB" with 16 sets: two VPNs in the same set conflict.
        let cfg = TlbConfig {
            name: "tiny",
            entries: 16,
            ways: 1,
            latency: Cycles::new(1),
        };
        let mut t = Tlb::new(cfg);
        let a = Vpn::new(0);
        let b = Vpn::new(16); // same set (16 sets)
        t.fill(Asid::ZERO, a, Pfn::new(1), PageSize::Size4K);
        t.fill(Asid::ZERO, b, Pfn::new(2), PageSize::Size4K);
        assert!(t.lookup(Asid::ZERO, a).is_none(), "evicted by b");
        assert!(t.lookup(Asid::ZERO, b).is_some());
    }

    #[test]
    fn hierarchy_promotes_l2_hits() {
        let mut h = TlbHierarchy::table1();
        let vpn = Vpn::new(0x777);
        assert_eq!(h.lookup(Asid::ZERO, vpn).outcome, TlbOutcome::Miss);
        h.fill(Asid::ZERO, vpn, Pfn::new(9), PageSize::Size4K);
        // Evict from L1 by filling conflicting entries.
        for i in 0..64u64 {
            h.l1.fill(
                Asid::ZERO,
                Vpn::new(vpn.as_u64() + (i + 1) * 16),
                Pfn::new(i),
                PageSize::Size4K,
            );
        }
        let l2_hit = h.lookup(Asid::ZERO, vpn);
        assert!(matches!(
            l2_hit.outcome,
            TlbOutcome::L2Hit | TlbOutcome::L1Hit
        ));
        // Immediately after, it should be back in L1.
        let l1_hit = h.lookup(Asid::ZERO, vpn);
        assert_eq!(l1_hit.outcome, TlbOutcome::L1Hit);
        assert_eq!(l1_hit.latency, Cycles::new(1));
    }

    #[test]
    fn hierarchy_latencies_match_table1() {
        let mut h = TlbHierarchy::table1();
        let miss = h.lookup(Asid::ZERO, Vpn::new(1));
        assert_eq!(miss.latency, Cycles::new(13)); // 1 + 12
        h.fill(Asid::ZERO, Vpn::new(1), Pfn::new(1), PageSize::Size4K);
        let hit = h.lookup(Asid::ZERO, Vpn::new(1));
        assert_eq!(hit.latency, Cycles::new(1));
    }

    #[test]
    fn huge_promotion_reconstructs_base() {
        let mut h = TlbHierarchy::table1();
        let region = Vpn::new(512 * 3);
        h.l2.fill(Asid::ZERO, region, Pfn::new(2048), PageSize::Size2M);
        let probe_vpn = region.add(17);
        let hit = h.lookup(Asid::ZERO, probe_vpn).hit.unwrap();
        assert_eq!(hit.pfn, Pfn::new(2048 + 17));
        // And the L1 promotion preserves correctness for other offsets.
        let hit2 = h.lookup(Asid::ZERO, region.add(33)).hit.unwrap();
        assert_eq!(hit2.pfn, Pfn::new(2048 + 33));
    }

    #[test]
    fn reset_clears() {
        let mut h = TlbHierarchy::table1();
        h.fill(Asid::ZERO, Vpn::new(5), Pfn::new(5), PageSize::Size4K);
        h.lookup(Asid::ZERO, Vpn::new(5));
        h.reset();
        assert_eq!(h.l1_stats().total(), 0);
        assert!(h.lookup(Asid::ZERO, Vpn::new(5)).outcome.is_miss());
    }

    #[test]
    fn asids_partition_the_tlb() {
        let mut t = Tlb::new(TlbConfig::l1_dtlb());
        let vpn = Vpn::new(0xabc);
        t.fill(Asid(1), vpn, Pfn::new(0x100), PageSize::Size4K);
        t.fill(Asid(2), vpn, Pfn::new(0x200), PageSize::Size4K);
        assert_eq!(t.lookup(Asid(1), vpn).unwrap().pfn, Pfn::new(0x100));
        assert_eq!(t.lookup(Asid(2), vpn).unwrap().pfn, Pfn::new(0x200));
        assert!(t.lookup(Asid(3), vpn).is_none(), "foreign ASID misses");
    }

    #[test]
    fn flush_asid_drops_one_space_and_keeps_stats() {
        let mut t = Tlb::new(TlbConfig::l1_dtlb());
        let vpn = Vpn::new(0x7);
        t.fill(Asid(1), vpn, Pfn::new(1), PageSize::Size4K);
        t.fill(Asid(2), vpn, Pfn::new(2), PageSize::Size4K);
        assert!(t.lookup(Asid(1), vpn).is_some());
        let stats_before = *t.stats();
        assert_eq!(t.flush_asid(Asid(1)), 1);
        assert_eq!(*t.stats(), stats_before, "shootdowns keep statistics");
        assert!(t.lookup(Asid(1), vpn).is_none());
        assert!(t.lookup(Asid(2), vpn).is_some());
    }

    #[test]
    fn flush_all_empties_every_space() {
        let mut h = TlbHierarchy::table1();
        h.fill(Asid(0), Vpn::new(1), Pfn::new(1), PageSize::Size4K);
        h.fill(Asid(1), Vpn::new(2), Pfn::new(2), PageSize::Size4K);
        // Each hierarchy fill installs into both levels.
        assert_eq!(h.flush_all(), 4);
        assert!(h.lookup(Asid(0), Vpn::new(1)).outcome.is_miss());
        assert!(h.lookup(Asid(1), Vpn::new(2)).outcome.is_miss());
        assert_eq!(h.flush_all(), 0, "second flush finds nothing");
    }

    #[test]
    fn hierarchy_flush_asid_counts_both_levels() {
        let mut h = TlbHierarchy::table1();
        h.fill(Asid(3), Vpn::new(9), Pfn::new(9), PageSize::Size4K);
        h.fill(Asid(4), Vpn::new(9), Pfn::new(10), PageSize::Size4K);
        assert_eq!(h.flush_asid(Asid(3)), 2);
        assert!(h.lookup(Asid(3), Vpn::new(9)).outcome.is_miss());
        assert!(!h.lookup(Asid(4), Vpn::new(9)).outcome.is_miss());
    }

    #[test]
    fn table1_geometries() {
        assert_eq!(TlbConfig::l1_dtlb().sets(), 16);
        assert_eq!(TlbConfig::l1_itlb().sets(), 32);
        assert_eq!(TlbConfig::l2_stlb().sets(), 128);
    }
}
