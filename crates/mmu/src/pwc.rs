//! Page-walk caches (§V-C).
//!
//! One small fully-associative LRU cache per page-table level, tagged by
//! the virtual-address prefix that selects the PTE at that level:
//!
//! | level     | tag bits (of the VPN)            | distinct tags per 8 GB |
//! |-----------|----------------------------------|------------------------|
//! | PL4       | bits 35..27 (9)                  | 1                      |
//! | PL3       | bits 35..18 (18)                 | 8                      |
//! | PL2       | bits 35..9  (27)                 | 4096                   |
//! | PL1       | all 36                           | 2 M                    |
//! | PL2/PL1   | all 36                           | 2 M                    |
//!
//! The tag population explains the paper's measured hit rates directly:
//! PL4/PL3 tags fit trivially in a 64-entry cache (≈100% / 98.6%) while
//! PL2/PL1 tags outnumber it by orders of magnitude (≈15.4%). NDPage's
//! flattening keeps the good PWCs and collapses the two bad ones into a
//! single miss per walk.

use ndp_types::stats::HitMiss;
use ndp_types::{PtLevel, Vpn};
use std::collections::BTreeMap;

/// Entries per per-level PWC (Victima-style: 64 entries).
pub const PWC_ENTRIES: usize = 64;

/// A single level's page-walk cache.
#[derive(Debug, Clone)]
pub struct Pwc {
    level: PtLevel,
    /// (tag, stamp) pairs, fully associative.
    entries: Vec<(u64, u64)>,
    capacity: usize,
    tick: u64,
    stats: HitMiss,
}

impl Pwc {
    /// Builds an empty PWC for `level` with [`PWC_ENTRIES`] entries.
    #[must_use]
    pub fn new(level: PtLevel) -> Self {
        Self::with_capacity(level, PWC_ENTRIES)
    }

    /// Builds with an explicit capacity (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(level: PtLevel, capacity: usize) -> Self {
        assert!(capacity > 0, "PWC needs at least one entry");
        Pwc {
            level,
            entries: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: HitMiss::default(),
        }
    }

    /// The level this PWC serves.
    #[must_use]
    pub fn level(&self) -> PtLevel {
        self.level
    }

    /// Hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> &HitMiss {
        &self.stats
    }

    /// The VA prefix tag a level uses.
    #[must_use]
    pub fn tag_for(level: PtLevel, vpn: Vpn) -> u64 {
        let v = vpn.as_u64();
        match level {
            PtLevel::L4 => v >> 27,
            PtLevel::L3 => v >> 18,
            PtLevel::L2 => v >> 9,
            PtLevel::L1 | PtLevel::FlatL2L1 => v,
            PtLevel::HashWay(_) => v, // unused: hashed tables have no PWC
        }
    }

    /// Probes (and on hit refreshes) the PWC; records statistics.
    pub fn access(&mut self, vpn: Vpn) -> bool {
        self.tick += 1;
        let tag = Self::tag_for(self.level, vpn);
        if let Some(e) = self.entries.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.tick;
            self.stats.record(true);
            return true;
        }
        self.stats.record(false);
        false
    }

    /// Installs the tag after a successful memory fetch of this level.
    pub fn fill(&mut self, vpn: Vpn) {
        self.tick += 1;
        let tag = Self::tag_for(self.level, vpn);
        if let Some(e) = self.entries.iter_mut().find(|(t, _)| *t == tag) {
            e.1 = self.tick;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((tag, self.tick));
            return;
        }
        let victim = self
            .entries
            .iter_mut()
            .min_by_key(|(_, s)| *s)
            .expect("capacity > 0");
        *victim = (tag, self.tick);
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.entries.clear();
        self.tick = 0;
        self.stats = HitMiss::default();
    }

    /// Clears statistics only, preserving contents.
    pub fn clear_stats(&mut self) {
        self.stats = HitMiss::default();
    }
}

/// The per-level PWC bank of one MMU.
///
/// PWCs are created lazily per level on first use, so the same type serves
/// the 4-level radix walker (PL4..PL1), NDPage's 3-level walker
/// (PL4, PL3, PL2/PL1) and the Huge Page walker.
#[derive(Debug, Clone)]
pub struct PwcSet {
    pwcs: BTreeMap<PtLevel, Pwc>,
    enabled: bool,
    capacity: usize,
}

impl Default for PwcSet {
    fn default() -> Self {
        Self::enabled()
    }
}

impl PwcSet {
    /// An enabled, empty PWC bank with the default [`PWC_ENTRIES`] per
    /// level.
    #[must_use]
    pub fn enabled() -> Self {
        Self::enabled_with_capacity(PWC_ENTRIES)
    }

    /// An enabled bank with `capacity` entries per level (for the PWC-size
    /// sweep experiments).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn enabled_with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "PWC needs at least one entry");
        PwcSet {
            pwcs: BTreeMap::new(),
            enabled: true,
            capacity,
        }
    }

    /// A disabled bank: every probe misses, fills are ignored (the ECH and
    /// no-PWC-ablation configurations).
    #[must_use]
    pub fn disabled() -> Self {
        PwcSet {
            pwcs: BTreeMap::new(),
            enabled: false,
            capacity: PWC_ENTRIES,
        }
    }

    /// Whether the bank is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Probes the PWC for `level`; always misses when disabled.
    pub fn access(&mut self, level: PtLevel, vpn: Vpn) -> bool {
        if !self.enabled {
            return false;
        }
        let capacity = self.capacity;
        self.pwcs
            .entry(level)
            .or_insert_with(|| Pwc::with_capacity(level, capacity))
            .access(vpn)
    }

    /// Fills the PWC for `level` (no-op when disabled).
    pub fn fill(&mut self, level: PtLevel, vpn: Vpn) {
        if !self.enabled {
            return;
        }
        let capacity = self.capacity;
        self.pwcs
            .entry(level)
            .or_insert_with(|| Pwc::with_capacity(level, capacity))
            .fill(vpn);
    }

    /// Per-level hit/miss statistics, in level order.
    pub fn stats(&self) -> impl Iterator<Item = (PtLevel, &HitMiss)> {
        self.pwcs.iter().map(|(l, p)| (*l, p.stats()))
    }

    /// Statistics for one level, if it has been touched.
    #[must_use]
    pub fn level_stats(&self, level: PtLevel) -> Option<&HitMiss> {
        self.pwcs.get(&level).map(Pwc::stats)
    }

    /// Clears contents and statistics of all levels.
    pub fn reset(&mut self) {
        for pwc in self.pwcs.values_mut() {
            pwc.reset();
        }
    }

    /// Clears statistics of all levels, preserving contents.
    pub fn clear_stats(&mut self) {
        for pwc in self.pwcs.values_mut() {
            pwc.clear_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_follow_prefix_widths() {
        let vpn = Vpn::new(0xF_FFFF_FFFF);
        assert_eq!(Pwc::tag_for(PtLevel::L4, vpn), 0xF_FFFF_FFFF >> 27);
        assert_eq!(Pwc::tag_for(PtLevel::L3, vpn), 0xF_FFFF_FFFF >> 18);
        assert_eq!(Pwc::tag_for(PtLevel::L2, vpn), 0xF_FFFF_FFFF >> 9);
        assert_eq!(Pwc::tag_for(PtLevel::L1, vpn), 0xF_FFFF_FFFF);
        assert_eq!(Pwc::tag_for(PtLevel::FlatL2L1, vpn), 0xF_FFFF_FFFF);
    }

    #[test]
    fn miss_fill_hit() {
        let mut pwc = Pwc::new(PtLevel::L4);
        let vpn = Vpn::new(0x123);
        assert!(!pwc.access(vpn));
        pwc.fill(vpn);
        assert!(pwc.access(vpn));
        assert_eq!(pwc.stats().hits, 1);
        assert_eq!(pwc.stats().misses, 1);
    }

    #[test]
    fn l4_pwc_absorbs_all_same_region_vpns() {
        // Two VPNs gigabytes apart share the PL4 tag if within 128 GB.
        let mut pwc = Pwc::new(PtLevel::L4);
        let a = Vpn::new(0);
        let b = Vpn::new((8u64 << 30) >> 12); // 8 GB away
        pwc.fill(a);
        assert!(pwc.access(b), "same 128 GB region → same PL4 tag");
    }

    #[test]
    fn l1_pwc_thrashes_over_many_pages() {
        let mut pwc = Pwc::new(PtLevel::L1);
        // Stream over far more pages than entries: everything misses.
        for i in 0..1000u64 {
            pwc.access(Vpn::new(i));
            pwc.fill(Vpn::new(i));
        }
        // Re-streaming misses again (LRU evicted old tags).
        let mut hits = 0;
        for i in 0..1000u64 {
            if pwc.access(Vpn::new(i)) {
                hits += 1;
            }
        }
        assert!(hits < 100, "PL1 PWC cannot cover the stream, hits={hits}");
    }

    #[test]
    fn lru_within_capacity_retains_hot_tags() {
        let mut pwc = Pwc::with_capacity(PtLevel::L1, 2);
        let hot = Vpn::new(1);
        pwc.fill(hot);
        pwc.fill(Vpn::new(2));
        pwc.access(hot); // refresh
        pwc.fill(Vpn::new(3)); // evicts vpn 2
        assert!(pwc.access(hot));
        assert!(!pwc.access(Vpn::new(2)));
    }

    #[test]
    fn disabled_set_never_hits() {
        let mut set = PwcSet::disabled();
        set.fill(PtLevel::L4, Vpn::new(1));
        assert!(!set.access(PtLevel::L4, Vpn::new(1)));
        assert!(!set.is_enabled());
        assert_eq!(set.stats().count(), 0);
    }

    #[test]
    fn enabled_set_tracks_per_level() {
        let mut set = PwcSet::enabled();
        let vpn = Vpn::new(0x42);
        assert!(!set.access(PtLevel::L4, vpn));
        set.fill(PtLevel::L4, vpn);
        assert!(set.access(PtLevel::L4, vpn));
        assert!(!set.access(PtLevel::L2, vpn));
        let l4 = set.level_stats(PtLevel::L4).unwrap();
        assert_eq!(l4.hits, 1);
        assert_eq!(l4.misses, 1);
        assert_eq!(set.level_stats(PtLevel::L2).unwrap().misses, 1);
        assert!(set.level_stats(PtLevel::L1).is_none());
    }

    #[test]
    fn reset_clears_levels() {
        let mut set = PwcSet::enabled();
        set.fill(PtLevel::L3, Vpn::new(9));
        set.access(PtLevel::L3, Vpn::new(9));
        set.reset();
        assert_eq!(set.level_stats(PtLevel::L3).unwrap().total(), 0);
        assert!(!set.access(PtLevel::L3, Vpn::new(9)));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Pwc::with_capacity(PtLevel::L4, 0);
    }
}
