//! Page-walk caches (§V-C).
//!
//! One small fully-associative LRU cache per page-table level, tagged by
//! the virtual-address prefix that selects the PTE at that level:
//!
//! | level     | tag bits (of the VPN)            | distinct tags per 8 GB |
//! |-----------|----------------------------------|------------------------|
//! | PL4       | bits 35..27 (9)                  | 1                      |
//! | PL3       | bits 35..18 (18)                 | 8                      |
//! | PL2       | bits 35..9  (27)                 | 4096                   |
//! | PL1       | all 36                           | 2 M                    |
//! | PL2/PL1   | all 36                           | 2 M                    |
//!
//! The tag population explains the paper's measured hit rates directly:
//! PL4/PL3 tags fit trivially in a 64-entry cache (≈100% / 98.6%) while
//! PL2/PL1 tags outnumber it by orders of magnitude (≈15.4%). NDPage's
//! flattening keeps the good PWCs and collapses the two bad ones into a
//! single miss per walk.

use ndp_types::stats::HitMiss;
use ndp_types::{Asid, PtLevel, Vpn};

/// Entries per per-level PWC (Victima-style: 64 entries).
pub const PWC_ENTRIES: usize = 64;

/// Packs an ASID above a VPN-prefix tag: level prefixes occupy at most
/// 36 bits, so the ASID lives at [`Asid::TAG_SHIFT`] and `Asid::ZERO`
/// leaves the tag bit-identical to the untagged layout. Keeping the
/// combined tag a single `u64` preserves the dense vectorisable scan.
#[inline]
fn tagged(asid: Asid, tag: u64) -> u64 {
    tag | asid.tag_bits()
}

/// A single level's page-walk cache.
///
/// Tags and LRU stamps live in parallel arrays (not `(tag, stamp)`
/// tuples): the per-walk-step tag scan then reads a dense `u64` array the
/// compiler can vectorise, and the eviction scan reads only stamps.
#[derive(Debug, Clone)]
pub struct Pwc {
    level: PtLevel,
    /// Fully associative tags, parallel to `stamps`.
    tags: Vec<u64>,
    /// LRU stamps, parallel to `tags`.
    stamps: Vec<u64>,
    capacity: usize,
    tick: u64,
    stats: HitMiss,
}

impl Pwc {
    /// Builds an empty PWC for `level` with [`PWC_ENTRIES`] entries.
    #[must_use]
    pub fn new(level: PtLevel) -> Self {
        Self::with_capacity(level, PWC_ENTRIES)
    }

    /// Builds with an explicit capacity (for ablations).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_capacity(level: PtLevel, capacity: usize) -> Self {
        assert!(capacity > 0, "PWC needs at least one entry");
        Pwc {
            level,
            tags: Vec::with_capacity(capacity),
            stamps: Vec::with_capacity(capacity),
            capacity,
            tick: 0,
            stats: HitMiss::default(),
        }
    }

    /// Index of `tag`, if cached. Written without an early exit so the
    /// scan vectorises; tags are unique, so the last match is the match.
    #[inline]
    fn find(&self, tag: u64) -> Option<usize> {
        let mut found = usize::MAX;
        for (i, &t) in self.tags.iter().enumerate() {
            if t == tag {
                found = i;
            }
        }
        (found != usize::MAX).then_some(found)
    }

    /// Installs `tag` with the current tick, evicting the LRU entry when
    /// full. Caller guarantees `tag` is absent.
    #[inline]
    fn insert(&mut self, tag: u64) {
        if self.tags.len() < self.capacity {
            self.tags.push(tag);
            self.stamps.push(self.tick);
            return;
        }
        // First-minimum scan, matching the seed's `min_by_key` choice.
        let mut victim = 0usize;
        let mut oldest = u64::MAX;
        for (i, &s) in self.stamps.iter().enumerate() {
            if s < oldest {
                oldest = s;
                victim = i;
            }
        }
        self.tags[victim] = tag;
        self.stamps[victim] = self.tick;
    }

    /// The level this PWC serves.
    #[must_use]
    pub fn level(&self) -> PtLevel {
        self.level
    }

    /// Hit/miss statistics.
    #[must_use]
    pub fn stats(&self) -> &HitMiss {
        &self.stats
    }

    /// The VA prefix tag a level uses.
    #[must_use]
    pub fn tag_for(level: PtLevel, vpn: Vpn) -> u64 {
        let v = vpn.as_u64();
        match level {
            PtLevel::L4 => v >> 27,
            PtLevel::L3 => v >> 18,
            PtLevel::L2 => v >> 9,
            PtLevel::L1 | PtLevel::FlatL2L1 => v,
            PtLevel::HashWay(_) => v, // unused: hashed tables have no PWC
        }
    }

    /// Probes (and on hit refreshes) the PWC for address space `asid`;
    /// records statistics. Tags of other ASIDs never hit.
    #[inline]
    pub fn access(&mut self, asid: Asid, vpn: Vpn) -> bool {
        self.tick += 1;
        let tag = tagged(asid, Self::tag_for(self.level, vpn));
        if let Some(i) = self.find(tag) {
            self.stamps[i] = self.tick;
            self.stats.record(true);
            return true;
        }
        self.stats.record(false);
        false
    }

    /// Installs the tag after a successful memory fetch of this level.
    #[inline]
    pub fn fill(&mut self, asid: Asid, vpn: Vpn) {
        self.tick += 1;
        let tag = tagged(asid, Self::tag_for(self.level, vpn));
        if let Some(i) = self.find(tag) {
            self.stamps[i] = self.tick;
            return;
        }
        self.insert(tag);
    }

    /// [`Self::access`] and, on a miss, [`Self::fill`] in one call with a
    /// single tag scan — the walker probes and then installs every missed
    /// level, so the separate calls scanned twice. Tick arithmetic and
    /// statistics match the two-call sequence exactly.
    #[inline]
    pub fn probe_fill(&mut self, asid: Asid, vpn: Vpn) -> bool {
        self.tick += 1;
        let tag = tagged(asid, Self::tag_for(self.level, vpn));
        if let Some(i) = self.find(tag) {
            self.stamps[i] = self.tick;
            self.stats.record(true);
            return true;
        }
        self.stats.record(false);
        // The fill half of the pair advances the clock again, exactly as
        // a separate fill() call would; the tag is known absent.
        self.tick += 1;
        self.insert(tag);
        false
    }

    /// Drops every tag of `asid` (a targeted shootdown), returning how
    /// many were dropped. Statistics and other ASIDs survive.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        let mut dropped = 0;
        let mut keep = 0;
        for i in 0..self.tags.len() {
            if self.tags[i] >> Asid::TAG_SHIFT == u64::from(asid.as_u16()) {
                dropped += 1;
            } else {
                self.tags[keep] = self.tags[i];
                self.stamps[keep] = self.stamps[i];
                keep += 1;
            }
        }
        self.tags.truncate(keep);
        self.stamps.truncate(keep);
        dropped
    }

    /// Drops every tag (the untagged-walker context-switch flush),
    /// returning how many were dropped. Statistics and the LRU clock
    /// survive — a flush loses state, not history.
    pub fn flush_all(&mut self) -> u64 {
        let dropped = self.tags.len() as u64;
        self.tags.clear();
        self.stamps.clear();
        dropped
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.clear();
        self.stamps.clear();
        self.tick = 0;
        self.stats = HitMiss::default();
    }

    /// Clears statistics only, preserving contents.
    pub fn clear_stats(&mut self) {
        self.stats = HitMiss::default();
    }
}

/// The per-level PWC bank of one MMU.
///
/// PWCs are created lazily per level on first use, so the same type serves
/// the 4-level radix walker (PL4..PL1), NDPage's 3-level walker
/// (PL4, PL3, PL2/PL1) and the Huge Page walker.
///
/// The bank is a fixed-size array indexed by [`PtLevel::pwc_slot`] — the
/// level set is a tiny closed enum, and the per-walk-step probe is one of
/// the simulator's hottest operations, so an O(1) array index replaces the
/// seed's `BTreeMap` descent (kept under `legacy_hotpath` for baseline
/// benchmarking). Slot order equals level order, so statistics iterate
/// identically to the map-backed layout.
#[derive(Debug, Clone)]
pub struct PwcSet {
    pwcs: PwcStore,
    enabled: bool,
    capacity: usize,
}

#[cfg(not(feature = "legacy_hotpath"))]
type PwcStore = [Option<Pwc>; PtLevel::PWC_SLOTS];

#[cfg(feature = "legacy_hotpath")]
type PwcStore = std::collections::BTreeMap<PtLevel, Pwc>;

#[cfg(not(feature = "legacy_hotpath"))]
fn empty_store() -> PwcStore {
    core::array::from_fn(|_| None)
}

#[cfg(feature = "legacy_hotpath")]
fn empty_store() -> PwcStore {
    std::collections::BTreeMap::new()
}

impl Default for PwcSet {
    fn default() -> Self {
        Self::enabled()
    }
}

impl PwcSet {
    /// An enabled, empty PWC bank with the default [`PWC_ENTRIES`] per
    /// level.
    #[must_use]
    pub fn enabled() -> Self {
        Self::enabled_with_capacity(PWC_ENTRIES)
    }

    /// An enabled bank with `capacity` entries per level (for the PWC-size
    /// sweep experiments).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn enabled_with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "PWC needs at least one entry");
        PwcSet {
            pwcs: empty_store(),
            enabled: true,
            capacity,
        }
    }

    /// A disabled bank: every probe misses, fills are ignored (the ECH and
    /// no-PWC-ablation configurations).
    #[must_use]
    pub fn disabled() -> Self {
        PwcSet {
            pwcs: empty_store(),
            enabled: false,
            capacity: PWC_ENTRIES,
        }
    }

    /// Whether the bank is active.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The live (touched) PWC for `level`, creating it on first use.
    #[cfg(not(feature = "legacy_hotpath"))]
    #[inline]
    fn level_pwc(&mut self, level: PtLevel) -> &mut Pwc {
        let capacity = self.capacity;
        self.pwcs[level.pwc_slot()].get_or_insert_with(|| Pwc::with_capacity(level, capacity))
    }

    #[cfg(feature = "legacy_hotpath")]
    fn level_pwc(&mut self, level: PtLevel) -> &mut Pwc {
        let capacity = self.capacity;
        self.pwcs
            .entry(level)
            .or_insert_with(|| Pwc::with_capacity(level, capacity))
    }

    /// Probes the PWC for `level` in address space `asid`; always misses
    /// when disabled.
    #[inline]
    pub fn access(&mut self, level: PtLevel, asid: Asid, vpn: Vpn) -> bool {
        if !self.enabled {
            return false;
        }
        self.level_pwc(level).access(asid, vpn)
    }

    /// Fills the PWC for `level` in address space `asid` (no-op when
    /// disabled).
    #[inline]
    pub fn fill(&mut self, level: PtLevel, asid: Asid, vpn: Vpn) {
        if !self.enabled {
            return;
        }
        self.level_pwc(level).fill(asid, vpn);
    }

    /// Probes `level` and installs the tag on a miss with a single scan
    /// (see [`Pwc::probe_fill`]); equivalent to `access` + `fill`-on-miss.
    /// Always misses (and fills nothing) when disabled. Under
    /// `legacy_hotpath` this runs the seed's two-call sequence.
    #[inline]
    pub fn probe_fill(&mut self, level: PtLevel, asid: Asid, vpn: Vpn) -> bool {
        if !self.enabled {
            return false;
        }
        #[cfg(not(feature = "legacy_hotpath"))]
        {
            self.level_pwc(level).probe_fill(asid, vpn)
        }
        #[cfg(feature = "legacy_hotpath")]
        {
            let hit = self.level_pwc(level).access(asid, vpn);
            if !hit {
                self.level_pwc(level).fill(asid, vpn);
            }
            hit
        }
    }

    /// Drops every level's tags of `asid` (a targeted shootdown),
    /// returning how many were dropped. Statistics survive.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        self.touched_mut().map(|p| p.flush_asid(asid)).sum()
    }

    /// Drops every level's tags entirely (the untagged-walker
    /// context-switch flush), returning how many were dropped.
    /// Statistics survive.
    pub fn flush_all(&mut self) -> u64 {
        self.touched_mut().map(Pwc::flush_all).sum()
    }

    /// Per-level hit/miss statistics, in level order.
    pub fn stats(&self) -> impl Iterator<Item = (PtLevel, &HitMiss)> {
        self.touched().map(|p| (p.level(), p.stats()))
    }

    /// Statistics for one level, if it has been touched.
    #[cfg(not(feature = "legacy_hotpath"))]
    #[must_use]
    pub fn level_stats(&self, level: PtLevel) -> Option<&HitMiss> {
        self.pwcs[level.pwc_slot()].as_ref().map(Pwc::stats)
    }

    /// Statistics for one level, if it has been touched.
    #[cfg(feature = "legacy_hotpath")]
    #[must_use]
    pub fn level_stats(&self, level: PtLevel) -> Option<&HitMiss> {
        self.pwcs.get(&level).map(Pwc::stats)
    }

    #[cfg(not(feature = "legacy_hotpath"))]
    fn touched(&self) -> impl Iterator<Item = &Pwc> {
        self.pwcs.iter().filter_map(Option::as_ref)
    }

    #[cfg(feature = "legacy_hotpath")]
    fn touched(&self) -> impl Iterator<Item = &Pwc> {
        self.pwcs.values()
    }

    #[cfg(not(feature = "legacy_hotpath"))]
    fn touched_mut(&mut self) -> impl Iterator<Item = &mut Pwc> {
        self.pwcs.iter_mut().filter_map(Option::as_mut)
    }

    #[cfg(feature = "legacy_hotpath")]
    fn touched_mut(&mut self) -> impl Iterator<Item = &mut Pwc> {
        self.pwcs.values_mut()
    }

    /// Clears contents and statistics of all levels.
    pub fn reset(&mut self) {
        for pwc in self.touched_mut() {
            pwc.reset();
        }
    }

    /// Clears statistics of all levels, preserving contents.
    pub fn clear_stats(&mut self) {
        for pwc in self.touched_mut() {
            pwc.clear_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_follow_prefix_widths() {
        let vpn = Vpn::new(0xF_FFFF_FFFF);
        assert_eq!(Pwc::tag_for(PtLevel::L4, vpn), 0xF_FFFF_FFFF >> 27);
        assert_eq!(Pwc::tag_for(PtLevel::L3, vpn), 0xF_FFFF_FFFF >> 18);
        assert_eq!(Pwc::tag_for(PtLevel::L2, vpn), 0xF_FFFF_FFFF >> 9);
        assert_eq!(Pwc::tag_for(PtLevel::L1, vpn), 0xF_FFFF_FFFF);
        assert_eq!(Pwc::tag_for(PtLevel::FlatL2L1, vpn), 0xF_FFFF_FFFF);
    }

    #[test]
    fn miss_fill_hit() {
        let mut pwc = Pwc::new(PtLevel::L4);
        let vpn = Vpn::new(0x123);
        assert!(!pwc.access(Asid::ZERO, vpn));
        pwc.fill(Asid::ZERO, vpn);
        assert!(pwc.access(Asid::ZERO, vpn));
        assert_eq!(pwc.stats().hits, 1);
        assert_eq!(pwc.stats().misses, 1);
    }

    #[test]
    fn l4_pwc_absorbs_all_same_region_vpns() {
        // Two VPNs gigabytes apart share the PL4 tag if within 128 GB.
        let mut pwc = Pwc::new(PtLevel::L4);
        let a = Vpn::new(0);
        let b = Vpn::new((8u64 << 30) >> 12); // 8 GB away
        pwc.fill(Asid::ZERO, a);
        assert!(
            pwc.access(Asid::ZERO, b),
            "same 128 GB region → same PL4 tag"
        );
    }

    #[test]
    fn l1_pwc_thrashes_over_many_pages() {
        let mut pwc = Pwc::new(PtLevel::L1);
        // Stream over far more pages than entries: everything misses.
        for i in 0..1000u64 {
            pwc.access(Asid::ZERO, Vpn::new(i));
            pwc.fill(Asid::ZERO, Vpn::new(i));
        }
        // Re-streaming misses again (LRU evicted old tags).
        let mut hits = 0;
        for i in 0..1000u64 {
            if pwc.access(Asid::ZERO, Vpn::new(i)) {
                hits += 1;
            }
        }
        assert!(hits < 100, "PL1 PWC cannot cover the stream, hits={hits}");
    }

    #[test]
    fn lru_within_capacity_retains_hot_tags() {
        let mut pwc = Pwc::with_capacity(PtLevel::L1, 2);
        let hot = Vpn::new(1);
        pwc.fill(Asid::ZERO, hot);
        pwc.fill(Asid::ZERO, Vpn::new(2));
        pwc.access(Asid::ZERO, hot); // refresh
        pwc.fill(Asid::ZERO, Vpn::new(3)); // evicts vpn 2
        assert!(pwc.access(Asid::ZERO, hot));
        assert!(!pwc.access(Asid::ZERO, Vpn::new(2)));
    }

    #[test]
    fn disabled_set_never_hits() {
        let mut set = PwcSet::disabled();
        set.fill(PtLevel::L4, Asid::ZERO, Vpn::new(1));
        assert!(!set.access(PtLevel::L4, Asid::ZERO, Vpn::new(1)));
        assert!(!set.is_enabled());
        assert_eq!(set.stats().count(), 0);
    }

    #[test]
    fn enabled_set_tracks_per_level() {
        let mut set = PwcSet::enabled();
        let vpn = Vpn::new(0x42);
        assert!(!set.access(PtLevel::L4, Asid::ZERO, vpn));
        set.fill(PtLevel::L4, Asid::ZERO, vpn);
        assert!(set.access(PtLevel::L4, Asid::ZERO, vpn));
        assert!(!set.access(PtLevel::L2, Asid::ZERO, vpn));
        let l4 = set.level_stats(PtLevel::L4).unwrap();
        assert_eq!(l4.hits, 1);
        assert_eq!(l4.misses, 1);
        assert_eq!(set.level_stats(PtLevel::L2).unwrap().misses, 1);
        assert!(set.level_stats(PtLevel::L1).is_none());
    }

    #[test]
    fn reset_clears_levels() {
        let mut set = PwcSet::enabled();
        set.fill(PtLevel::L3, Asid::ZERO, Vpn::new(9));
        set.access(PtLevel::L3, Asid::ZERO, Vpn::new(9));
        set.reset();
        assert_eq!(set.level_stats(PtLevel::L3).unwrap().total(), 0);
        assert!(!set.access(PtLevel::L3, Asid::ZERO, Vpn::new(9)));
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        let _ = Pwc::with_capacity(PtLevel::L4, 0);
    }

    #[test]
    fn hash_ways_are_independent_levels() {
        let mut set = PwcSet::enabled();
        let vpn = Vpn::new(0x99);
        set.fill(PtLevel::HashWay(0), Asid::ZERO, vpn);
        assert!(set.access(PtLevel::HashWay(0), Asid::ZERO, vpn));
        assert!(
            !set.access(PtLevel::HashWay(1), Asid::ZERO, vpn),
            "ways do not alias"
        );
        let levels: Vec<PtLevel> = set.stats().map(|(l, _)| l).collect();
        assert_eq!(levels, vec![PtLevel::HashWay(0), PtLevel::HashWay(1)]);
    }

    #[test]
    fn asids_partition_pwc_tags() {
        let mut pwc = Pwc::new(PtLevel::L2);
        let vpn = Vpn::new(0x42);
        pwc.fill(Asid(1), vpn);
        assert!(pwc.access(Asid(1), vpn));
        assert!(!pwc.access(Asid(2), vpn), "same prefix, foreign ASID");
    }

    #[test]
    fn flush_asid_keeps_other_spaces_and_stats() {
        let mut set = PwcSet::enabled();
        let vpn = Vpn::new(0x9);
        set.fill(PtLevel::L4, Asid(1), vpn);
        set.fill(PtLevel::L4, Asid(2), vpn);
        set.fill(PtLevel::L3, Asid(1), vpn);
        assert!(set.access(PtLevel::L4, Asid(1), vpn));
        let hits_before = set.level_stats(PtLevel::L4).unwrap().hits;
        assert_eq!(set.flush_asid(Asid(1)), 2);
        assert_eq!(
            set.level_stats(PtLevel::L4).unwrap().hits,
            hits_before,
            "shootdowns keep statistics"
        );
        assert!(!set.access(PtLevel::L4, Asid(1), vpn));
        assert!(set.access(PtLevel::L4, Asid(2), vpn));
    }

    #[test]
    fn flush_all_drops_every_tag() {
        let mut set = PwcSet::enabled();
        set.fill(PtLevel::L4, Asid(0), Vpn::new(1));
        set.fill(PtLevel::L3, Asid(5), Vpn::new(2));
        assert_eq!(set.flush_all(), 2);
        assert!(!set.access(PtLevel::L4, Asid(0), Vpn::new(1)));
        assert!(!set.access(PtLevel::L3, Asid(5), Vpn::new(2)));
        assert_eq!(set.flush_all(), 0);
    }

    #[test]
    fn stats_iterate_in_level_order() {
        let mut set = PwcSet::enabled();
        let vpn = Vpn::new(0x5);
        // Touch out of order; iteration must still be level-ordered.
        set.fill(PtLevel::FlatL2L1, Asid::ZERO, vpn);
        set.fill(PtLevel::L2, Asid::ZERO, vpn);
        set.fill(PtLevel::L4, Asid::ZERO, vpn);
        let levels: Vec<PtLevel> = set.stats().map(|(l, _)| l).collect();
        assert_eq!(levels, vec![PtLevel::L4, PtLevel::L2, PtLevel::FlatL2L1]);
    }
}
