//! The hardware page-table walker.
//!
//! Given a [`WalkPath`] from a page-table design, the walker consults the
//! per-level PWCs and produces a [`WalkPlan`]: the rounds of PTE fetches
//! that must actually reach the memory system (steps whose PWC hit are
//! skipped). The simulator executes the plan against the cache/DRAM timing
//! model; keeping the walker free of timing concerns lets the same logic
//! serve every mechanism and every system configuration.

use crate::pwc::PwcSet;
use ndp_types::{Asid, Cycles, InlineVec, PhysAddr, PtLevel, Vpn};
use ndpage::walk::WalkPath;

/// Most hardware walkers a core can be configured with.
pub const MAX_WALKERS: usize = 8;

/// One PTE fetch of a walk plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteFetch {
    /// Physical address of the PTE.
    pub addr: PhysAddr,
    /// Page-table level being read.
    pub level: PtLevel,
}

impl Default for PteFetch {
    fn default() -> Self {
        PteFetch {
            addr: PhysAddr::new(0),
            level: PtLevel::L4,
        }
    }
}

/// One parallel round of PTE fetches (at most the hash-way bound wide).
pub type WalkRound = InlineVec<PteFetch, { PtLevel::MAX_HASH_WAYS }>;

/// Most sequential rounds any walk needs (a full 4-level radix walk).
pub const MAX_WALK_ROUNDS: usize = 4;

/// The memory work of one page-table walk, as parallel rounds to issue in
/// order. Rounds whose every step PWC-hit are absent entirely.
///
/// Plans are built and discarded once per TLB miss, so rounds are stored
/// inline ([`InlineVec`]) — the seed's nested `Vec`s cost several heap
/// round-trips on that path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkPlan {
    /// Sequential rounds; fetches within a round overlap.
    pub rounds: InlineVec<WalkRound, MAX_WALK_ROUNDS>,
    /// Steps skipped thanks to PWC hits.
    pub pwc_skips: u32,
}

impl WalkPlan {
    /// Total PTE fetches that reach the memory system.
    #[must_use]
    pub fn memory_fetches(&self) -> usize {
        self.rounds.iter().map(|round| round.len()).sum()
    }

    /// Number of dependent (serialised) memory rounds.
    #[must_use]
    pub fn sequential_rounds(&self) -> usize {
        self.rounds.len()
    }
}

/// Statistics of the walker itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalkerStats {
    /// Walks planned.
    pub walks: u64,
    /// PTE fetches sent to memory.
    pub fetches: u64,
    /// PTE fetches avoided by PWC hits.
    pub pwc_skips: u64,
    /// Walks that found every hardware walker busy and had to queue.
    pub queued_walks: u64,
    /// Total cycles walks spent waiting for a free hardware walker.
    pub queue_cycles: u64,
}

/// Plans page-table walks through the PWC bank, and tracks the occupancy
/// of the core's hardware walkers.
///
/// A core has a small fixed number of walker state machines; when more
/// TLB misses are outstanding than walkers, the excess walks *queue*.
/// This is the structural asymmetry the non-blocking pipeline exposes:
/// overlapped data misses each get an MSHR, but overlapped radix walks
/// serialise behind the walker file — four dependent fetches at a time —
/// while NDPage's flattened single-fetch walks turn walkers around fast.
#[derive(Debug, Clone)]
pub struct PageTableWalker {
    pwcs: PwcSet,
    /// Per-walker busy-until timestamps (length = configured walkers).
    walker_free_at: InlineVec<Cycles, MAX_WALKERS>,
    stats: WalkerStats,
}

impl PageTableWalker {
    /// Hardware walkers per core when not overridden: one, as fits the
    /// simple in-order cores this simulator models (x86-class OoO cores
    /// ship two; see [`PageTableWalker::with_walkers`]).
    pub const DEFAULT_WALKERS: usize = 1;

    fn slots(n: usize) -> InlineVec<Cycles, MAX_WALKERS> {
        assert!(
            (1..=MAX_WALKERS).contains(&n),
            "walker count must be in 1..={MAX_WALKERS}"
        );
        (0..n).map(|_| Cycles::ZERO).collect()
    }

    /// A walker with PWCs enabled (Radix, Huge Page, NDPage).
    #[must_use]
    pub fn with_pwcs() -> Self {
        PageTableWalker {
            pwcs: PwcSet::enabled(),
            walker_free_at: Self::slots(Self::DEFAULT_WALKERS),
            stats: WalkerStats::default(),
        }
    }

    /// A walker whose PWCs hold `capacity` entries per level (PWC-size
    /// sweep experiments).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_pwc_capacity(capacity: usize) -> Self {
        PageTableWalker {
            pwcs: PwcSet::enabled_with_capacity(capacity),
            walker_free_at: Self::slots(Self::DEFAULT_WALKERS),
            stats: WalkerStats::default(),
        }
    }

    /// A walker without PWCs (ECH; PWC-off ablation).
    #[must_use]
    pub fn without_pwcs() -> Self {
        PageTableWalker {
            pwcs: PwcSet::disabled(),
            walker_free_at: Self::slots(Self::DEFAULT_WALKERS),
            stats: WalkerStats::default(),
        }
    }

    /// Overrides the number of hardware walkers (the `walkers_per_core`
    /// knob).
    ///
    /// # Panics
    ///
    /// Panics if `walkers` is zero or exceeds [`MAX_WALKERS`].
    #[must_use]
    pub fn with_walkers(mut self, walkers: usize) -> Self {
        self.walker_free_at = Self::slots(walkers);
        self
    }

    /// Number of hardware walkers.
    #[must_use]
    pub fn walkers(&self) -> usize {
        self.walker_free_at.len()
    }

    /// Admits a walk that wants to start at `now`: picks the
    /// earliest-free hardware walker and returns `(slot, start)` where
    /// `start = max(now, that walker's free time)`. Queueing (a start
    /// later than `now`) is recorded in [`WalkerStats`]. The caller runs
    /// the walk and must hand the slot back via
    /// [`PageTableWalker::release`].
    pub fn admit(&mut self, now: Cycles) -> (usize, Cycles) {
        let (slot, free_at) = self
            .walker_free_at
            .iter()
            .enumerate()
            .min_by_key(|&(_, free)| *free)
            .map(|(i, free)| (i, *free))
            .expect("at least one walker");
        let start = now.max(free_at);
        if start > now {
            self.stats.queued_walks += 1;
            self.stats.queue_cycles += (start - now).as_u64();
        }
        (slot, start)
    }

    /// Marks `slot` (from [`PageTableWalker::admit`]) busy until `done`.
    pub fn release(&mut self, slot: usize, done: Cycles) {
        self.walker_free_at.as_mut_slice()[slot] = done;
    }

    /// The PWC bank (for statistics reporting).
    #[must_use]
    pub fn pwcs(&self) -> &PwcSet {
        &self.pwcs
    }

    /// Walker statistics.
    #[must_use]
    pub fn stats(&self) -> &WalkerStats {
        &self.stats
    }

    /// Probes PWCs for every step of `path` in address space `asid` and
    /// returns the fetches that must go to memory. Fetched levels are
    /// filled into their PWCs (hardware installs translations on the way
    /// back up).
    pub fn plan(&mut self, asid: Asid, vpn: Vpn, path: &WalkPath) -> WalkPlan {
        self.stats.walks += 1;
        let mut plan = WalkPlan::default();
        for group in path.groups() {
            let mut round = WalkRound::new();
            for step in group {
                if self.pwcs.probe_fill(step.level, asid, vpn) {
                    plan.pwc_skips += 1;
                    self.stats.pwc_skips += 1;
                } else {
                    round.push(PteFetch {
                        addr: step.addr,
                        level: step.level,
                    });
                    self.stats.fetches += 1;
                }
            }
            if !round.is_empty() {
                plan.rounds.push(round);
            }
        }
        plan
    }

    /// Drops PWC state of `asid` (a targeted shootdown), returning how
    /// many tags were dropped. Statistics survive.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        self.pwcs.flush_asid(asid)
    }

    /// Drops all PWC state (the untagged-walker context-switch flush),
    /// returning how many tags were dropped. Statistics survive.
    pub fn flush_all(&mut self) -> u64 {
        self.pwcs.flush_all()
    }

    /// Clears PWC contents, walker occupancy and statistics.
    pub fn reset(&mut self) {
        self.pwcs.reset();
        for free in self.walker_free_at.as_mut_slice() {
            *free = Cycles::ZERO;
        }
        self.stats = WalkerStats::default();
    }

    /// Clears statistics (walker + PWC) while keeping PWC contents warm.
    pub fn clear_stats(&mut self) {
        self.pwcs.clear_stats();
        self.stats = WalkerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::Asid;
    use ndpage::alloc::FrameAllocator;
    use ndpage::flat::FlattenedL2L1;
    use ndpage::radix::Radix4;
    use ndpage::table::PageTable;

    fn radix_fixture() -> (FrameAllocator, Radix4, Vpn) {
        let mut alloc = FrameAllocator::new(1 << 30);
        let mut t = Radix4::new(&mut alloc);
        let vpn = Vpn::new(0x1_2345);
        t.map(vpn, &mut alloc);
        (alloc, t, vpn)
    }

    #[test]
    fn cold_walk_fetches_everything() {
        let (_, t, vpn) = radix_fixture();
        let mut w = PageTableWalker::with_pwcs();
        let plan = w.plan(Asid::ZERO, vpn, &t.walk_path(vpn).unwrap());
        assert_eq!(plan.memory_fetches(), 4);
        assert_eq!(plan.sequential_rounds(), 4);
        assert_eq!(plan.pwc_skips, 0);
    }

    #[test]
    fn warm_walk_skips_everything() {
        let (_, t, vpn) = radix_fixture();
        let mut w = PageTableWalker::with_pwcs();
        let path = t.walk_path(vpn).unwrap();
        w.plan(Asid::ZERO, vpn, &path);
        let plan = w.plan(Asid::ZERO, vpn, &path);
        assert_eq!(plan.memory_fetches(), 0);
        assert_eq!(plan.pwc_skips, 4);
        assert_eq!(plan.sequential_rounds(), 0);
    }

    #[test]
    fn upper_levels_stay_warm_across_pages() {
        let mut alloc = FrameAllocator::new(1 << 30);
        let mut t = Radix4::new(&mut alloc);
        let mut w = PageTableWalker::with_pwcs();
        // Touch many pages within the same 1 GB region: PL4/PL3 warm,
        // PL2/PL1 churn.
        let mut vpns = Vec::new();
        for i in 0..500u64 {
            let vpn = Vpn::new(i * 613); // spread over many 2 MB regions
            t.map(vpn, &mut alloc);
            vpns.push(vpn);
        }
        for &vpn in &vpns {
            w.plan(Asid::ZERO, vpn, &t.walk_path(vpn).unwrap());
        }
        let l4 = w.pwcs().level_stats(PtLevel::L4).unwrap();
        let l1 = w.pwcs().level_stats(PtLevel::L1).unwrap();
        assert!(l4.hit_rate() > 0.95, "PL4 ≈ 100%: {}", l4.hit_rate());
        assert!(l1.hit_rate() < 0.3, "PL1 low: {}", l1.hit_rate());
    }

    #[test]
    fn disabled_pwcs_never_skip() {
        let (_, t, vpn) = radix_fixture();
        let mut w = PageTableWalker::without_pwcs();
        let path = t.walk_path(vpn).unwrap();
        w.plan(Asid::ZERO, vpn, &path);
        let plan = w.plan(Asid::ZERO, vpn, &path);
        assert_eq!(plan.memory_fetches(), 4);
        assert_eq!(w.stats().fetches, 8);
        assert_eq!(w.stats().pwc_skips, 0);
    }

    #[test]
    fn flattened_walk_costs_one_fetch_when_upper_levels_hit() {
        let mut alloc = FrameAllocator::new(1 << 30);
        let mut t = FlattenedL2L1::new(&mut alloc);
        let mut w = PageTableWalker::with_pwcs();
        let a = Vpn::new(100);
        let b = Vpn::new(200_000); // same 1 GB region → same L4/L3 tags
        t.map(a, &mut alloc);
        t.map(b, &mut alloc);
        w.plan(Asid::ZERO, a, &t.walk_path(a).unwrap());
        let plan = w.plan(Asid::ZERO, b, &t.walk_path(b).unwrap());
        assert_eq!(
            plan.memory_fetches(),
            1,
            "PL4+PL3 PWC hits leave only the flat fetch"
        );
        assert_eq!(plan.rounds[0][0].level, PtLevel::FlatL2L1);
    }

    #[test]
    fn walker_occupancy_queues_when_all_busy() {
        let mut w = PageTableWalker::with_pwcs().with_walkers(2);
        assert_eq!(w.walkers(), 2);
        // Two walks admitted at t=0 start immediately on distinct slots.
        let (s0, t0) = w.admit(Cycles::ZERO);
        w.release(s0, Cycles::new(400));
        let (s1, t1) = w.admit(Cycles::ZERO);
        w.release(s1, Cycles::new(500));
        assert_eq!((t0, t1), (Cycles::ZERO, Cycles::ZERO));
        assert_ne!(s0, s1);
        assert_eq!(w.stats().queued_walks, 0);
        // A third concurrent walk queues behind the earliest-free walker.
        let (s2, t2) = w.admit(Cycles::new(100));
        assert_eq!(t2, Cycles::new(400), "waits for slot {s0}");
        assert_eq!(s2, s0);
        assert_eq!(w.stats().queued_walks, 1);
        assert_eq!(w.stats().queue_cycles, 300);
    }

    #[test]
    fn walker_admit_is_free_once_prior_walk_finished() {
        // The blocking engine's pattern: each walk fully completes before
        // the next is admitted, so occupancy never queues and never
        // perturbs timing.
        let mut w = PageTableWalker::with_pwcs().with_walkers(1);
        let (s, t) = w.admit(Cycles::new(10));
        assert_eq!(t, Cycles::new(10));
        w.release(s, Cycles::new(200));
        let (_, t) = w.admit(Cycles::new(200));
        assert_eq!(t, Cycles::new(200), "boundary admit does not queue");
        assert_eq!(w.stats().queued_walks, 0);
        assert_eq!(w.stats().queue_cycles, 0);
    }

    #[test]
    #[should_panic(expected = "walker count")]
    fn zero_walkers_rejected() {
        let _ = PageTableWalker::with_pwcs().with_walkers(0);
    }

    #[test]
    fn reset_clears_pwc_state() {
        let (_, t, vpn) = radix_fixture();
        let mut w = PageTableWalker::with_pwcs();
        let path = t.walk_path(vpn).unwrap();
        w.plan(Asid::ZERO, vpn, &path);
        w.reset();
        let plan = w.plan(Asid::ZERO, vpn, &path);
        assert_eq!(plan.memory_fetches(), 4, "PWCs cold again");
        assert_eq!(w.stats().walks, 1);
    }
}
