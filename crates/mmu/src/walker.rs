//! The hardware page-table walker.
//!
//! Given a [`WalkPath`] from a page-table design, the walker consults the
//! per-level PWCs and produces a [`WalkPlan`]: the rounds of PTE fetches
//! that must actually reach the memory system (steps whose PWC hit are
//! skipped). The simulator executes the plan against the cache/DRAM timing
//! model; keeping the walker free of timing concerns lets the same logic
//! serve every mechanism and every system configuration.

use crate::pwc::PwcSet;
use ndp_types::{Asid, InlineVec, PhysAddr, PtLevel, Vpn};
use ndpage::walk::WalkPath;

/// One PTE fetch of a walk plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PteFetch {
    /// Physical address of the PTE.
    pub addr: PhysAddr,
    /// Page-table level being read.
    pub level: PtLevel,
}

impl Default for PteFetch {
    fn default() -> Self {
        PteFetch {
            addr: PhysAddr::new(0),
            level: PtLevel::L4,
        }
    }
}

/// One parallel round of PTE fetches (at most the hash-way bound wide).
pub type WalkRound = InlineVec<PteFetch, { PtLevel::MAX_HASH_WAYS }>;

/// Most sequential rounds any walk needs (a full 4-level radix walk).
pub const MAX_WALK_ROUNDS: usize = 4;

/// The memory work of one page-table walk, as parallel rounds to issue in
/// order. Rounds whose every step PWC-hit are absent entirely.
///
/// Plans are built and discarded once per TLB miss, so rounds are stored
/// inline ([`InlineVec`]) — the seed's nested `Vec`s cost several heap
/// round-trips on that path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalkPlan {
    /// Sequential rounds; fetches within a round overlap.
    pub rounds: InlineVec<WalkRound, MAX_WALK_ROUNDS>,
    /// Steps skipped thanks to PWC hits.
    pub pwc_skips: u32,
}

impl WalkPlan {
    /// Total PTE fetches that reach the memory system.
    #[must_use]
    pub fn memory_fetches(&self) -> usize {
        self.rounds.iter().map(|round| round.len()).sum()
    }

    /// Number of dependent (serialised) memory rounds.
    #[must_use]
    pub fn sequential_rounds(&self) -> usize {
        self.rounds.len()
    }
}

/// Statistics of the walker itself.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalkerStats {
    /// Walks planned.
    pub walks: u64,
    /// PTE fetches sent to memory.
    pub fetches: u64,
    /// PTE fetches avoided by PWC hits.
    pub pwc_skips: u64,
}

/// Plans page-table walks through the PWC bank.
#[derive(Debug, Clone)]
pub struct PageTableWalker {
    pwcs: PwcSet,
    stats: WalkerStats,
}

impl PageTableWalker {
    /// A walker with PWCs enabled (Radix, Huge Page, NDPage).
    #[must_use]
    pub fn with_pwcs() -> Self {
        PageTableWalker {
            pwcs: PwcSet::enabled(),
            stats: WalkerStats::default(),
        }
    }

    /// A walker whose PWCs hold `capacity` entries per level (PWC-size
    /// sweep experiments).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn with_pwc_capacity(capacity: usize) -> Self {
        PageTableWalker {
            pwcs: PwcSet::enabled_with_capacity(capacity),
            stats: WalkerStats::default(),
        }
    }

    /// A walker without PWCs (ECH; PWC-off ablation).
    #[must_use]
    pub fn without_pwcs() -> Self {
        PageTableWalker {
            pwcs: PwcSet::disabled(),
            stats: WalkerStats::default(),
        }
    }

    /// The PWC bank (for statistics reporting).
    #[must_use]
    pub fn pwcs(&self) -> &PwcSet {
        &self.pwcs
    }

    /// Walker statistics.
    #[must_use]
    pub fn stats(&self) -> &WalkerStats {
        &self.stats
    }

    /// Probes PWCs for every step of `path` in address space `asid` and
    /// returns the fetches that must go to memory. Fetched levels are
    /// filled into their PWCs (hardware installs translations on the way
    /// back up).
    pub fn plan(&mut self, asid: Asid, vpn: Vpn, path: &WalkPath) -> WalkPlan {
        self.stats.walks += 1;
        let mut plan = WalkPlan::default();
        for group in path.groups() {
            let mut round = WalkRound::new();
            for step in group {
                if self.pwcs.probe_fill(step.level, asid, vpn) {
                    plan.pwc_skips += 1;
                    self.stats.pwc_skips += 1;
                } else {
                    round.push(PteFetch {
                        addr: step.addr,
                        level: step.level,
                    });
                    self.stats.fetches += 1;
                }
            }
            if !round.is_empty() {
                plan.rounds.push(round);
            }
        }
        plan
    }

    /// Drops PWC state of `asid` (a targeted shootdown), returning how
    /// many tags were dropped. Statistics survive.
    pub fn flush_asid(&mut self, asid: Asid) -> u64 {
        self.pwcs.flush_asid(asid)
    }

    /// Drops all PWC state (the untagged-walker context-switch flush),
    /// returning how many tags were dropped. Statistics survive.
    pub fn flush_all(&mut self) -> u64 {
        self.pwcs.flush_all()
    }

    /// Clears PWC contents and statistics.
    pub fn reset(&mut self) {
        self.pwcs.reset();
        self.stats = WalkerStats::default();
    }

    /// Clears statistics (walker + PWC) while keeping PWC contents warm.
    pub fn clear_stats(&mut self) {
        self.pwcs.clear_stats();
        self.stats = WalkerStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::Asid;
    use ndpage::alloc::FrameAllocator;
    use ndpage::flat::FlattenedL2L1;
    use ndpage::radix::Radix4;
    use ndpage::table::PageTable;

    fn radix_fixture() -> (FrameAllocator, Radix4, Vpn) {
        let mut alloc = FrameAllocator::new(1 << 30);
        let mut t = Radix4::new(&mut alloc);
        let vpn = Vpn::new(0x1_2345);
        t.map(vpn, &mut alloc);
        (alloc, t, vpn)
    }

    #[test]
    fn cold_walk_fetches_everything() {
        let (_, t, vpn) = radix_fixture();
        let mut w = PageTableWalker::with_pwcs();
        let plan = w.plan(Asid::ZERO, vpn, &t.walk_path(vpn).unwrap());
        assert_eq!(plan.memory_fetches(), 4);
        assert_eq!(plan.sequential_rounds(), 4);
        assert_eq!(plan.pwc_skips, 0);
    }

    #[test]
    fn warm_walk_skips_everything() {
        let (_, t, vpn) = radix_fixture();
        let mut w = PageTableWalker::with_pwcs();
        let path = t.walk_path(vpn).unwrap();
        w.plan(Asid::ZERO, vpn, &path);
        let plan = w.plan(Asid::ZERO, vpn, &path);
        assert_eq!(plan.memory_fetches(), 0);
        assert_eq!(plan.pwc_skips, 4);
        assert_eq!(plan.sequential_rounds(), 0);
    }

    #[test]
    fn upper_levels_stay_warm_across_pages() {
        let mut alloc = FrameAllocator::new(1 << 30);
        let mut t = Radix4::new(&mut alloc);
        let mut w = PageTableWalker::with_pwcs();
        // Touch many pages within the same 1 GB region: PL4/PL3 warm,
        // PL2/PL1 churn.
        let mut vpns = Vec::new();
        for i in 0..500u64 {
            let vpn = Vpn::new(i * 613); // spread over many 2 MB regions
            t.map(vpn, &mut alloc);
            vpns.push(vpn);
        }
        for &vpn in &vpns {
            w.plan(Asid::ZERO, vpn, &t.walk_path(vpn).unwrap());
        }
        let l4 = w.pwcs().level_stats(PtLevel::L4).unwrap();
        let l1 = w.pwcs().level_stats(PtLevel::L1).unwrap();
        assert!(l4.hit_rate() > 0.95, "PL4 ≈ 100%: {}", l4.hit_rate());
        assert!(l1.hit_rate() < 0.3, "PL1 low: {}", l1.hit_rate());
    }

    #[test]
    fn disabled_pwcs_never_skip() {
        let (_, t, vpn) = radix_fixture();
        let mut w = PageTableWalker::without_pwcs();
        let path = t.walk_path(vpn).unwrap();
        w.plan(Asid::ZERO, vpn, &path);
        let plan = w.plan(Asid::ZERO, vpn, &path);
        assert_eq!(plan.memory_fetches(), 4);
        assert_eq!(w.stats().fetches, 8);
        assert_eq!(w.stats().pwc_skips, 0);
    }

    #[test]
    fn flattened_walk_costs_one_fetch_when_upper_levels_hit() {
        let mut alloc = FrameAllocator::new(1 << 30);
        let mut t = FlattenedL2L1::new(&mut alloc);
        let mut w = PageTableWalker::with_pwcs();
        let a = Vpn::new(100);
        let b = Vpn::new(200_000); // same 1 GB region → same L4/L3 tags
        t.map(a, &mut alloc);
        t.map(b, &mut alloc);
        w.plan(Asid::ZERO, a, &t.walk_path(a).unwrap());
        let plan = w.plan(Asid::ZERO, b, &t.walk_path(b).unwrap());
        assert_eq!(
            plan.memory_fetches(),
            1,
            "PL4+PL3 PWC hits leave only the flat fetch"
        );
        assert_eq!(plan.rounds[0][0].level, PtLevel::FlatL2L1);
    }

    #[test]
    fn reset_clears_pwc_state() {
        let (_, t, vpn) = radix_fixture();
        let mut w = PageTableWalker::with_pwcs();
        let path = t.walk_path(vpn).unwrap();
        w.plan(Asid::ZERO, vpn, &path);
        w.reset();
        let plan = w.plan(Asid::ZERO, vpn, &path);
        assert_eq!(plan.memory_fetches(), 4, "PWCs cold again");
        assert_eq!(w.stats().walks, 1);
    }
}
