//! Property tests for the TLB hierarchy against a reference mapping:
//! whatever the TLB returns must be what was last installed for that page.

use ndp_mmu::tlb::{Tlb, TlbConfig, TlbHierarchy};
use ndp_types::{Asid, Cycles, PageSize, Pfn, Vpn};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A TLB is allowed to forget, never to lie: every hit must return the
    /// frame most recently filled for that VPN.
    #[test]
    fn hits_are_always_truthful(ops in vec((0u64..4096, 0u64..100_000), 1..500)) {
        let mut tlb = Tlb::new(TlbConfig::l1_dtlb());
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(vpn_raw, pfn_raw) in &ops {
            let vpn = Vpn::new(vpn_raw);
            if let Some(hit) = tlb.lookup(Asid::ZERO, vpn) {
                let expected = truth.get(&vpn_raw);
                prop_assert_eq!(
                    Some(&hit.pfn.as_u64()),
                    expected,
                    "hit for {:#x} contradicts the last fill",
                    vpn_raw
                );
            }
            tlb.fill(Asid::ZERO, vpn, Pfn::new(pfn_raw), PageSize::Size4K);
            truth.insert(vpn_raw, pfn_raw);
        }
    }

    /// ASID isolation: with per-address-space fills interleaved at random,
    /// a tagged lookup must never return a frame installed by a different
    /// ASID — the invariant that makes warm-entry retention across context
    /// switches safe.
    #[test]
    fn tagged_lookups_never_cross_asids(
        ops in vec((0u16..4, 0u64..512, 0u64..100_000), 1..500),
    ) {
        let mut tlb = Tlb::new(TlbConfig::l1_dtlb());
        let mut truth: HashMap<(u16, u64), u64> = HashMap::new();
        for &(asid_raw, vpn_raw, pfn_seed) in &ops {
            let asid = Asid(asid_raw);
            let vpn = Vpn::new(vpn_raw);
            if let Some(hit) = tlb.lookup(asid, vpn) {
                prop_assert_eq!(
                    Some(&hit.pfn.as_u64()),
                    truth.get(&(asid_raw, vpn_raw)),
                    "asid {} vpn {:#x} returned a foreign or stale frame",
                    asid_raw,
                    vpn_raw
                );
            }
            // Give every (asid, vpn) pair a distinct frame so cross-ASID
            // leakage cannot hide behind equal PFNs.
            let pfn = pfn_seed * 4 + u64::from(asid_raw);
            tlb.fill(asid, vpn, Pfn::new(pfn), PageSize::Size4K);
            truth.insert((asid_raw, vpn_raw), pfn);
        }
    }

    /// A targeted shootdown empties exactly one address space: the flushed
    /// ASID loses every entry while other ASIDs keep theirs (modulo normal
    /// capacity eviction, which `ways * sets` fills below cannot trigger
    /// at <= 16 distinct VPNs per ASID).
    #[test]
    fn flush_asid_is_surgical(vpns in vec(0u64..16, 1..16)) {
        let mut tlb = Tlb::new(TlbConfig::l2_stlb());
        for &v in &vpns {
            tlb.fill(Asid(1), Vpn::new(v), Pfn::new(v + 1), PageSize::Size4K);
            tlb.fill(Asid(2), Vpn::new(v), Pfn::new(v + 2), PageSize::Size4K);
        }
        tlb.flush_asid(Asid(1));
        for &v in &vpns {
            prop_assert!(tlb.lookup(Asid(1), Vpn::new(v)).is_none());
            let hit = tlb.lookup(Asid(2), Vpn::new(v));
            prop_assert_eq!(hit.map(|h| h.pfn.as_u64()), Some(v + 2));
        }
    }

    /// Fractured 2 MB fills behave exactly like the equivalent 4 KB fill:
    /// the returned frame is base + page offset within the region.
    #[test]
    fn fracturing_preserves_translations(
        regions in vec((0u64..512, 0u64..1_000), 1..100),
        probe_offsets in vec(0u64..512, 1..50),
    ) {
        let mut tlb = TlbHierarchy::table1();
        let mut truth: HashMap<u64, u64> = HashMap::new();
        for &(region, base_frame) in &regions {
            let base_vpn = Vpn::new(region * 512);
            let base_pfn = Pfn::new(base_frame * 512);
            for &off in &probe_offsets {
                let vpn = base_vpn.add(off);
                tlb.fill(Asid::ZERO, vpn, base_pfn, PageSize::Size2M);
                truth.insert(vpn.as_u64(), base_pfn.as_u64() + off);
            }
        }
        for (&vpn_raw, &pfn_raw) in &truth {
            if let Some(hit) = tlb.lookup(Asid::ZERO, Vpn::new(vpn_raw)).hit {
                prop_assert_eq!(hit.pfn.as_u64(), pfn_raw, "vpn {:#x}", vpn_raw);
            }
        }
    }

    /// Without fracturing, one 2 MB fill covers its whole region.
    #[test]
    fn native_huge_entries_cover_regions(region in 0u64..1024, offs in vec(0u64..512, 1..40)) {
        let mut tlb = TlbHierarchy::table1().with_fracturing(false);
        let base_vpn = Vpn::new(region * 512);
        let base_pfn = Pfn::new(0x4_0000);
        tlb.fill(Asid::ZERO, base_vpn, base_pfn, PageSize::Size2M);
        for &off in &offs {
            let hit = tlb.lookup(Asid::ZERO, base_vpn.add(off)).hit;
            prop_assert!(hit.is_some(), "offset {off} must hit the huge entry");
            prop_assert_eq!(hit.unwrap().pfn.as_u64(), base_pfn.as_u64() + off);
        }
        // Neighbouring region untouched.
        prop_assert!(tlb.lookup(Asid::ZERO, Vpn::new((region + 1) * 512)).hit.is_none());
    }

    /// Hierarchy statistics reconcile: L2 probes equal L1 misses.
    #[test]
    fn hierarchy_stats_reconcile(ops in vec(0u64..4096, 1..400)) {
        let mut tlb = TlbHierarchy::table1();
        for &vpn_raw in &ops {
            let vpn = Vpn::new(vpn_raw);
            if tlb.lookup(Asid::ZERO, vpn).hit.is_none() {
                tlb.fill(Asid::ZERO, vpn, Pfn::new(vpn_raw + 1), PageSize::Size4K);
            }
        }
        prop_assert_eq!(tlb.l1_stats().total(), ops.len() as u64);
        prop_assert_eq!(tlb.l2_stats().total(), tlb.l1_stats().misses);
        let _ = Cycles::ZERO;
    }
}
