//! DLRM sparse-length-sum (DLRM): embedding-table gathers.
//!
//! Each inference batch gathers a few dozen embedding rows selected by
//! skewed categorical features. A row read is a short *sequential* burst
//! (256 B), but consecutive rows are far apart — a gather-scatter pattern
//! with high TLB pressure and moderate cache-line locality, followed by a
//! dense compute phase (the MLP).

use crate::region::RegionLayout;
use crate::sampler::{hot_cold, rng};
use crate::spec::{TraceParams, WorkloadId};
use crate::Trace;
use ndp_types::Op;
use rand::rngs::SmallRng;
use std::collections::VecDeque;

/// Embedding rows gathered per batch (sum of sparse feature lookups).
const GATHERS_PER_BATCH: u64 = 32;
/// Bytes per embedding row.
const ROW_BYTES: u64 = 256;
/// Sequential 8 B reads issued per row (spanning its cache lines).
const READS_PER_ROW: u64 = 4;
/// MLP compute cycles per batch.
const COMPUTE_PER_BATCH: u32 = 96;

struct DlrmGen {
    emb: crate::region::Region,
    out: crate::region::Region,
    rows: u64,
    rng: SmallRng,
    batch: u64,
    buf: VecDeque<Op>,
}

impl DlrmGen {
    fn run_batch(&mut self) {
        for _ in 0..GATHERS_PER_BATCH {
            // Categorical features follow a strong popularity skew:
            // popular items form a hot set, the long tail is uniform.
            let row = hot_cold(&mut self.rng, self.rows);
            let base = row * ROW_BYTES;
            for r in 0..READS_PER_ROW {
                self.buf.push_back(Op::Load(
                    self.emb.at(base + r * (ROW_BYTES / READS_PER_ROW)),
                ));
            }
        }
        self.buf.push_back(Op::Compute(COMPUTE_PER_BATCH));
        // Write the pooled output vector (sequential).
        let out_slot = self.batch % self.out.elems(64).max(1);
        self.buf.push_back(Op::Store(self.out.elem(out_slot, 64)));
        self.batch += 1;
    }
}

impl Iterator for DlrmGen {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        while self.buf.is_empty() {
            self.run_batch();
        }
        self.buf.pop_front()
    }
}

/// The virtual regions the DLRM trace touches.
#[must_use]
pub fn regions(params: TraceParams) -> Vec<crate::region::Region> {
    let footprint = params.footprint_for(WorkloadId::Dlrm);
    let mut layout = RegionLayout::new();
    let out_bytes = (footprint / 64).max(4096);
    let emb = layout.carve(footprint - out_bytes);
    let out = layout.carve(out_bytes);
    vec![emb, out]
}

/// Builds the DLRM trace.
#[must_use]
pub fn trace(params: TraceParams) -> Trace {
    let footprint = params.footprint_for(WorkloadId::Dlrm);
    let mut layout = RegionLayout::new();
    let out_bytes = (footprint / 64).max(4096);
    let emb = layout.carve(footprint - out_bytes);
    let out = layout.carve(out_bytes);
    let rows = (emb.bytes / ROW_BYTES).max(1);
    Box::new(DlrmGen {
        emb,
        out,
        rows,
        rng: rng(params.seed ^ 0x444c_524d),
        batch: 0,
        buf: VecDeque::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::FastSet;

    #[test]
    fn batches_gather_then_compute_then_store() {
        let params = TraceParams::new(0).with_footprint(64 << 20);
        let ops: Vec<Op> = trace(params).take(200).collect();
        let loads = ops.iter().filter(|o| matches!(o, Op::Load(_))).count();
        let stores = ops.iter().filter(|o| matches!(o, Op::Store(_))).count();
        let computes = ops.iter().filter(|o| !o.is_memory()).count();
        assert!(loads > 100);
        assert!(stores >= 1);
        assert!(computes >= 1);
    }

    #[test]
    fn rows_read_as_sequential_bursts() {
        let params = TraceParams::new(1).with_footprint(64 << 20);
        let ops: Vec<Op> = trace(params).take(8).collect();
        // First four loads cover one row at 64 B strides.
        let a0 = ops[0].addr().unwrap().as_u64();
        for (i, op) in ops.iter().take(4).enumerate() {
            assert_eq!(op.addr().unwrap().as_u64(), a0 + i as u64 * 64);
        }
    }

    #[test]
    fn gathers_are_skewed_but_wide() {
        let params = TraceParams::new(2).with_footprint(512 << 20);
        let pages: FastSet<u64> = trace(params)
            .take(60_000)
            .filter_map(|o| o.addr())
            .map(|a| a.vpn().as_u64())
            .collect();
        assert!(pages.len() > 300, "{} pages", pages.len());
    }
}
