//! Deterministic samplers used by the trace generators.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded fast RNG; one per generator so traces are reproducible and
/// per-core streams are independent.
#[must_use]
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xDEAD_BEEF)
}

/// Samples `[0, n)` with a power-law (Zipf-like) popularity skew.
///
/// Uses the inverse-CDF of a bounded Pareto: `floor(n * u^exponent)`.
/// `exponent = 1` is uniform; larger values concentrate probability on low
/// indices (hot vertices), matching the degree skew of GraphBIG's inputs.
pub fn zipf_like(rng: &mut SmallRng, n: u64, exponent: f64) -> u64 {
    debug_assert!(n > 0);
    debug_assert!(exponent >= 1.0);
    let u: f64 = rng.gen_range(0.0..1.0);
    let idx = (n as f64 * u.powf(exponent)) as u64;
    idx.min(n - 1)
}

/// Uniform sample of `[0, n)`.
pub fn uniform(rng: &mut SmallRng, n: u64) -> u64 {
    debug_assert!(n > 0);
    rng.gen_range(0..n)
}

/// Fraction of the index space forming the hot working set of
/// [`hot_cold`].
pub const HOT_FRACTION: u64 = 16;

/// Probability that a [`hot_cold`] sample lands in the hot set.
pub const HOT_PROBABILITY: f64 = 0.7;

/// Samples `[0, n)` with a two-tier working set: 70% of samples fall
/// uniformly in a hot 1/16th of the space, the rest uniformly anywhere.
///
/// This is the locality structure of real data-intensive irregular codes:
/// the hot set is far too large for TLB reach (so translation pressure
/// stays extreme), but its *page-table lines* (1/512 of its size) fit in
/// a CPU's multi-MB L2/L3 — and not in an NDP core's 32 KB L1. That
/// asymmetry is the paper's §III motivation.
pub fn hot_cold(rng: &mut SmallRng, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n >= HOT_FRACTION && rng.gen_bool(HOT_PROBABILITY) {
        rng.gen_range(0..n / HOT_FRACTION)
    } else {
        rng.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = rng(7);
            (0..10).map(|_| uniform(&mut r, 1000)).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng(7);
            (0..10).map(|_| uniform(&mut r, 1000)).collect()
        };
        let c: Vec<u64> = {
            let mut r = rng(8);
            (0..10).map(|_| uniform(&mut r, 1000)).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_skews_low() {
        let mut r = rng(1);
        let n = 1_000_000u64;
        let samples: Vec<u64> = (0..20_000).map(|_| zipf_like(&mut r, n, 4.0)).collect();
        let low = samples.iter().filter(|&&s| s < n / 10).count();
        assert!(
            low as f64 / samples.len() as f64 > 0.4,
            "hot head expected, got {low}"
        );
        assert!(samples.iter().all(|&s| s < n));
    }

    #[test]
    fn zipf_exponent_one_is_roughly_uniform() {
        let mut r = rng(2);
        let n = 1000u64;
        let samples: Vec<u64> = (0..50_000).map(|_| zipf_like(&mut r, n, 1.0)).collect();
        let low = samples.iter().filter(|&&s| s < n / 2).count();
        let frac = low as f64 / samples.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn uniform_in_range() {
        let mut r = rng(3);
        for _ in 0..1000 {
            assert!(uniform(&mut r, 17) < 17);
        }
    }
}
