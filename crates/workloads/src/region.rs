//! Virtual-address regions: the arrays a workload's address stream walks.

use ndp_types::VirtAddr;

/// A contiguous virtual-address range holding one logical array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First byte of the region.
    pub base: VirtAddr,
    /// Length in bytes.
    pub bytes: u64,
}

impl Region {
    /// Creates a region.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    #[must_use]
    pub fn new(base: u64, bytes: u64) -> Self {
        assert!(bytes > 0, "region must be non-empty");
        Region {
            base: VirtAddr::new(base),
            bytes,
        }
    }

    /// Number of `elem_bytes`-sized elements that fit.
    #[must_use]
    pub fn elems(&self, elem_bytes: u64) -> u64 {
        self.bytes / elem_bytes
    }

    /// Address of element `idx` (wrapping modulo the region so samplers
    /// can't escape it).
    #[must_use]
    pub fn elem(&self, idx: u64, elem_bytes: u64) -> VirtAddr {
        let n = self.elems(elem_bytes).max(1);
        self.base.add((idx % n) * elem_bytes)
    }

    /// Address at byte `offset` (wrapping).
    #[must_use]
    pub fn at(&self, offset: u64) -> VirtAddr {
        self.base.add(offset % self.bytes)
    }

    /// The end address (exclusive).
    #[must_use]
    pub fn end(&self) -> VirtAddr {
        self.base.add(self.bytes)
    }

    /// Whether `addr` lies inside the region.
    #[must_use]
    pub fn contains(&self, addr: VirtAddr) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Lays regions out back-to-back from a base address, each aligned up to a
/// 2 MB boundary (as an allocator backing large arrays would).
#[derive(Debug, Clone)]
pub struct RegionLayout {
    cursor: u64,
}

impl RegionLayout {
    /// The canonical heap base used by all workloads.
    pub const HEAP_BASE: u64 = 0x2000_0000_0000;
    const ALIGN: u64 = 2 * 1024 * 1024;

    /// Starts laying out at [`Self::HEAP_BASE`].
    #[must_use]
    pub fn new() -> Self {
        RegionLayout {
            cursor: Self::HEAP_BASE,
        }
    }

    /// Carves the next region of `bytes`.
    pub fn carve(&mut self, bytes: u64) -> Region {
        let base = self.cursor;
        let len = bytes.max(1);
        self.cursor = (base + len).div_ceil(Self::ALIGN) * Self::ALIGN;
        Region::new(base, len)
    }
}

impl Default for RegionLayout {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elem_addresses_wrap() {
        let r = Region::new(0x1000, 64);
        assert_eq!(r.elems(8), 8);
        assert_eq!(r.elem(0, 8).as_u64(), 0x1000);
        assert_eq!(r.elem(7, 8).as_u64(), 0x1000 + 56);
        assert_eq!(r.elem(8, 8).as_u64(), 0x1000, "wraps");
    }

    #[test]
    fn contains_and_end() {
        let r = Region::new(0x1000, 0x100);
        assert!(r.contains(VirtAddr::new(0x1000)));
        assert!(r.contains(VirtAddr::new(0x10ff)));
        assert!(!r.contains(VirtAddr::new(0x1100)));
        assert_eq!(r.end().as_u64(), 0x1100);
    }

    #[test]
    fn layout_is_2mb_aligned_and_disjoint() {
        let mut l = RegionLayout::new();
        let a = l.carve(3 << 20);
        let b = l.carve(10);
        assert_eq!(a.base.as_u64() % (2 << 20), 0);
        assert_eq!(b.base.as_u64() % (2 << 20), 0);
        assert!(b.base >= a.end());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_region_rejected() {
        let _ = Region::new(0, 0);
    }
}
