//! GenomicsBench k-mer counting (GEN): a streaming scan of a huge genome
//! with random hash-table updates.
//!
//! The reference stream is perfectly sequential (prefetch-friendly) but
//! every position hashes its k-mer into a counting table with a uniformly
//! random slot — so the *stores* are as irregular as GUPS while the loads
//! are streaming, a mix that stresses translation without saturating the
//! cache the way pure random access does.

use crate::region::RegionLayout;
use crate::sampler::{rng, uniform};
use crate::spec::{TraceParams, WorkloadId};
use crate::Trace;
use ndp_types::Op;
use rand::rngs::SmallRng;
use std::collections::VecDeque;

/// Bytes consumed from the genome per hash update (k-mer stride).
const SCAN_STRIDE: u64 = 8;
/// Compute cycles per k-mer (encode + hash).
const COMPUTE_PER_KMER: u32 = 3;

struct GenomicsGen {
    genome: crate::region::Region,
    table: crate::region::Region,
    table_slots: u64,
    cursor: u64,
    rng: SmallRng,
    buf: VecDeque<Op>,
}

impl GenomicsGen {
    fn step(&mut self) {
        // Sequential genome read.
        self.buf.push_back(Op::Load(self.genome.at(self.cursor)));
        self.cursor = (self.cursor + SCAN_STRIDE) % self.genome.bytes;
        self.buf.push_back(Op::Compute(COMPUTE_PER_KMER));
        // Random counting-table RMW.
        let slot = uniform(&mut self.rng, self.table_slots);
        self.buf.push_back(Op::Load(self.table.elem(slot, 8)));
        self.buf.push_back(Op::Store(self.table.elem(slot, 8)));
    }
}

impl Iterator for GenomicsGen {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        while self.buf.is_empty() {
            self.step();
        }
        self.buf.pop_front()
    }
}

/// The virtual regions the GEN trace touches.
#[must_use]
pub fn regions(params: TraceParams) -> Vec<crate::region::Region> {
    let footprint = params.footprint_for(WorkloadId::Gen);
    let mut layout = RegionLayout::new();
    let genome = layout.carve(footprint * 2 / 3);
    let table = layout.carve(footprint - footprint * 2 / 3);
    vec![genome, table]
}

/// Builds the GEN trace.
#[must_use]
pub fn trace(params: TraceParams) -> Trace {
    let footprint = params.footprint_for(WorkloadId::Gen);
    let mut layout = RegionLayout::new();
    // Genome ~2/3, counting table ~1/3 of the 33 GB dataset.
    let genome = layout.carve(footprint * 2 / 3);
    let table = layout.carve(footprint - footprint * 2 / 3);
    let table_slots = table.elems(8).max(1);
    Box::new(GenomicsGen {
        genome,
        table,
        table_slots,
        cursor: 0,
        rng: rng(params.seed ^ 0x4b4d_4552),
        buf: VecDeque::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::FastSet;

    #[test]
    fn scan_is_sequential_updates_are_random() {
        let params = TraceParams::new(0).with_footprint(96 << 20);
        let ops: Vec<Op> = trace(params).take(4000).collect();
        let mut layout = RegionLayout::new();
        let genome = layout.carve((96 << 20) * 2 / 3);
        let genome_addrs: Vec<u64> = ops
            .iter()
            .filter_map(|o| o.addr())
            .filter(|a| genome.contains(*a))
            .map(|a| a.as_u64())
            .collect();
        // Sequential: strictly increasing by the stride until wrap.
        for w in genome_addrs.windows(2) {
            assert!(w[1] == w[0] + SCAN_STRIDE || w[1] < w[0], "scan order");
        }
    }

    #[test]
    fn every_kmer_does_a_table_rmw() {
        let params = TraceParams::new(1).with_footprint(96 << 20);
        let ops: Vec<Op> = trace(params).take(40).collect();
        let stores = ops.iter().filter(|o| matches!(o, Op::Store(_))).count();
        assert!(stores >= 9, "one store per k-mer step, got {stores}");
    }

    #[test]
    fn table_updates_span_many_pages() {
        let params = TraceParams::new(2).with_footprint(1 << 30);
        let pages: FastSet<u64> = trace(params)
            .take(40_000)
            .filter(|o| matches!(o, Op::Store(_)))
            .filter_map(|o| o.addr())
            .map(|a| a.vpn().as_u64())
            .collect();
        assert!(pages.len() > 1000, "{} pages", pages.len());
    }
}
