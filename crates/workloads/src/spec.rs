//! Workload identities, Table II metadata, and trace construction.

use crate::{dlrm, genomics, graph, gups, xsbench, Trace};
use std::fmt;

/// Benchmark suite of origin (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// GraphBIG graph analytics.
    GraphBig,
    /// XSBench Monte Carlo neutronics.
    XsBench,
    /// HPCC RandomAccess.
    Gups,
    /// Deep-learning recommendation (sparse-length sum).
    Dlrm,
    /// GenomicsBench k-mer counting.
    GenomicsBench,
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::GraphBig => f.write_str("GraphBIG"),
            Suite::XsBench => f.write_str("XSBench"),
            Suite::Gups => f.write_str("GUPS"),
            Suite::Dlrm => f.write_str("DLRM"),
            Suite::GenomicsBench => f.write_str("GenomicsBench"),
        }
    }
}

/// The 11 evaluated workloads (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// Betweenness centrality.
    Bc,
    /// Breadth-first search.
    Bfs,
    /// Connected components.
    Cc,
    /// Graph coloring.
    Gc,
    /// PageRank.
    Pr,
    /// Triangle counting.
    Tc,
    /// Shortest path.
    Sp,
    /// XSBench particle simulation.
    Xs,
    /// GUPS random access.
    Rnd,
    /// DLRM sparse-length sum.
    Dlrm,
    /// k-mer counting.
    Gen,
}

impl WorkloadId {
    /// All 11 workloads in Table II order.
    pub const ALL: [WorkloadId; 11] = [
        WorkloadId::Bc,
        WorkloadId::Bfs,
        WorkloadId::Cc,
        WorkloadId::Gc,
        WorkloadId::Pr,
        WorkloadId::Tc,
        WorkloadId::Sp,
        WorkloadId::Xs,
        WorkloadId::Rnd,
        WorkloadId::Dlrm,
        WorkloadId::Gen,
    ];

    /// Short name used in the paper's figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadId::Bc => "BC",
            WorkloadId::Bfs => "BFS",
            WorkloadId::Cc => "CC",
            WorkloadId::Gc => "GC",
            WorkloadId::Pr => "PR",
            WorkloadId::Tc => "TC",
            WorkloadId::Sp => "SP",
            WorkloadId::Xs => "XS",
            WorkloadId::Rnd => "RND",
            WorkloadId::Dlrm => "DLRM",
            WorkloadId::Gen => "GEN",
        }
    }

    /// Suite of origin.
    #[must_use]
    pub fn suite(self) -> Suite {
        match self {
            WorkloadId::Bc
            | WorkloadId::Bfs
            | WorkloadId::Cc
            | WorkloadId::Gc
            | WorkloadId::Pr
            | WorkloadId::Tc
            | WorkloadId::Sp => Suite::GraphBig,
            WorkloadId::Xs => Suite::XsBench,
            WorkloadId::Rnd => Suite::Gups,
            WorkloadId::Dlrm => Suite::Dlrm,
            WorkloadId::Gen => Suite::GenomicsBench,
        }
    }

    /// Dataset size from Table II, in bytes.
    #[must_use]
    pub fn table2_footprint(self) -> u64 {
        match self.suite() {
            Suite::GraphBig => 8 << 30,
            Suite::XsBench => 9 << 30,
            Suite::Gups | Suite::Dlrm => 10 << 30,
            Suite::GenomicsBench => 33 << 30,
        }
    }

    /// The virtual-address regions this workload's trace stays within.
    #[must_use]
    pub fn regions(self, params: TraceParams) -> Vec<crate::region::Region> {
        match self {
            WorkloadId::Bc
            | WorkloadId::Bfs
            | WorkloadId::Cc
            | WorkloadId::Gc
            | WorkloadId::Pr
            | WorkloadId::Tc
            | WorkloadId::Sp => graph::regions(self, params),
            WorkloadId::Xs => xsbench::regions(params),
            WorkloadId::Rnd => gups::regions(params),
            WorkloadId::Dlrm => dlrm::regions(params),
            WorkloadId::Gen => genomics::regions(params),
        }
    }

    /// Builds this workload's operation stream.
    #[must_use]
    pub fn trace(self, params: TraceParams) -> Trace {
        match self {
            WorkloadId::Bc
            | WorkloadId::Bfs
            | WorkloadId::Cc
            | WorkloadId::Gc
            | WorkloadId::Pr
            | WorkloadId::Tc
            | WorkloadId::Sp => graph::trace(self, params),
            WorkloadId::Xs => xsbench::trace(params),
            WorkloadId::Rnd => gups::trace(params),
            WorkloadId::Dlrm => dlrm::trace(params),
            WorkloadId::Gen => genomics::trace(params),
        }
    }
}

impl fmt::Display for WorkloadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parameters of one trace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceParams {
    /// RNG seed; give each simulated core a distinct seed.
    pub seed: u64,
    /// Footprint override in bytes; `None` uses the Table II size.
    /// Experiments typically scale footprints down (recorded in
    /// EXPERIMENTS.md) to keep simulation turnaround practical — the
    /// translation-pressure *shape* is preserved because even scaled
    /// footprints dwarf TLB and PWC reach.
    pub footprint: Option<u64>,
}

impl TraceParams {
    /// Parameters with the Table II footprint.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TraceParams {
            seed,
            footprint: None,
        }
    }

    /// Overrides the footprint.
    #[must_use]
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint = Some(bytes);
        self
    }

    /// The effective footprint for `workload`.
    #[must_use]
    pub fn footprint_for(&self, workload: WorkloadId) -> u64 {
        self.footprint
            .unwrap_or_else(|| workload.table2_footprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_workloads() {
        assert_eq!(WorkloadId::ALL.len(), 11);
        let graphbig = WorkloadId::ALL
            .iter()
            .filter(|w| w.suite() == Suite::GraphBig)
            .count();
        assert_eq!(graphbig, 7);
    }

    #[test]
    fn table2_sizes() {
        assert_eq!(WorkloadId::Bfs.table2_footprint(), 8 << 30);
        assert_eq!(WorkloadId::Xs.table2_footprint(), 9 << 30);
        assert_eq!(WorkloadId::Rnd.table2_footprint(), 10 << 30);
        assert_eq!(WorkloadId::Dlrm.table2_footprint(), 10 << 30);
        assert_eq!(WorkloadId::Gen.table2_footprint(), 33 << 30);
    }

    #[test]
    fn footprint_override() {
        let p = TraceParams::new(0).with_footprint(1 << 20);
        assert_eq!(p.footprint_for(WorkloadId::Gen), 1 << 20);
        assert_eq!(TraceParams::new(0).footprint_for(WorkloadId::Gen), 33 << 30);
    }

    #[test]
    fn every_workload_produces_ops() {
        let params = TraceParams::new(42).with_footprint(64 << 20);
        for w in WorkloadId::ALL {
            let ops: Vec<_> = w.trace(params).take(50).collect();
            assert_eq!(ops.len(), 50, "{w}");
            assert!(ops.iter().any(|o| o.is_memory()), "{w} must touch memory");
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let params = TraceParams::new(7).with_footprint(64 << 20);
        for w in WorkloadId::ALL {
            let a: Vec<_> = w.trace(params).take(200).collect();
            let b: Vec<_> = w.trace(params).take(200).collect();
            assert_eq!(a, b, "{w}");
        }
    }

    #[test]
    fn seeds_differentiate_streams() {
        let a: Vec<_> = WorkloadId::Rnd
            .trace(TraceParams::new(1).with_footprint(64 << 20))
            .take(100)
            .collect();
        let b: Vec<_> = WorkloadId::Rnd
            .trace(TraceParams::new(2).with_footprint(64 << 20))
            .take(100)
            .collect();
        assert_ne!(a, b);
    }

    #[test]
    fn names_and_suites_display() {
        assert_eq!(WorkloadId::Dlrm.to_string(), "DLRM");
        assert_eq!(Suite::GraphBig.to_string(), "GraphBIG");
    }
}
