//! XSBench (XS): Monte Carlo neutron-transport macroscopic-cross-section
//! lookups.
//!
//! Each "particle history" samples a random energy, binary-searches the
//! unionized energy grid (a chain of *dependent* loads hopping across a
//! multi-GB array — worst case for TLBs and caches), then reads a handful
//! of nuclide cross-section rows and accumulates with floating-point work.

use crate::region::RegionLayout;
use crate::sampler::{hot_cold, rng, uniform};
use crate::spec::{TraceParams, WorkloadId};
use crate::Trace;
use ndp_types::Op;
use rand::rngs::SmallRng;
use std::collections::VecDeque;

/// Nuclides read per lookup (XSBench's `lookups` inner loop).
const NUCLIDES_PER_LOOKUP: u64 = 5;
/// Sequential 8 B reads per nuclide row.
const READS_PER_NUCLIDE: u64 = 2;
/// Compute cycles per lookup (FLOP accumulation).
const COMPUTE_PER_LOOKUP: u32 = 12;

struct XsGen {
    grid: crate::region::Region,
    xs_data: crate::region::Region,
    grid_points: u64,
    rng: SmallRng,
    buf: VecDeque<Op>,
}

impl XsGen {
    fn lookup(&mut self) {
        // Binary search: dependent loads at halving strides.
        let target = uniform(&mut self.rng, self.grid_points);
        let mut lo = 0u64;
        let mut hi = self.grid_points;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            self.buf.push_back(Op::Load(self.grid.elem(mid, 8)));
            if mid <= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Nuclide row reads + accumulate.
        let rows = self.xs_data.elems(8 * READS_PER_NUCLIDE).max(1);
        for _ in 0..NUCLIDES_PER_LOOKUP {
            // Common isotopes dominate lookups (hot working set).
            let row = hot_cold(&mut self.rng, rows);
            for r in 0..READS_PER_NUCLIDE {
                self.buf
                    .push_back(Op::Load(self.xs_data.elem(row * READS_PER_NUCLIDE + r, 8)));
            }
        }
        self.buf.push_back(Op::Compute(COMPUTE_PER_LOOKUP));
    }
}

impl Iterator for XsGen {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        while self.buf.is_empty() {
            self.lookup();
        }
        self.buf.pop_front()
    }
}

/// The virtual regions the XS trace touches.
#[must_use]
pub fn regions(params: TraceParams) -> Vec<crate::region::Region> {
    let footprint = params.footprint_for(WorkloadId::Xs);
    let mut layout = RegionLayout::new();
    let grid = layout.carve(footprint / 3);
    let xs_data = layout.carve(footprint - footprint / 3);
    vec![grid, xs_data]
}

/// Builds the XS trace.
#[must_use]
pub fn trace(params: TraceParams) -> Trace {
    let footprint = params.footprint_for(WorkloadId::Xs);
    let mut layout = RegionLayout::new();
    // ~1/3 unionized grid, ~2/3 nuclide data (XSBench's large-problem split).
    let grid = layout.carve(footprint / 3);
    let xs_data = layout.carve(footprint - footprint / 3);
    let grid_points = grid.elems(8).max(2);
    Box::new(XsGen {
        grid,
        xs_data,
        grid_points,
        rng: rng(params.seed ^ 0x5842_656e),
        buf: VecDeque::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::FastSet;

    #[test]
    fn lookups_include_dependent_search_chain() {
        let params = TraceParams::new(1).with_footprint(64 << 20);
        let ops: Vec<Op> = trace(params).take(100).collect();
        let loads = ops.iter().filter(|o| matches!(o, Op::Load(_))).count();
        // A 64 MB footprint has ~2.8 M grid points → ~21 search hops.
        assert!(loads > 20, "loads = {loads}");
    }

    #[test]
    fn addresses_in_carved_regions() {
        let params = TraceParams::new(2).with_footprint(64 << 20);
        let mut layout = RegionLayout::new();
        let grid = layout.carve((64 << 20) / 3);
        let xs = layout.carve((64 << 20) - (64 << 20) / 3);
        for op in trace(params).take(3000) {
            if let Some(a) = op.addr() {
                assert!(grid.contains(a) || xs.contains(a), "{a}");
            }
        }
    }

    #[test]
    fn search_spans_many_pages() {
        let params = TraceParams::new(3).with_footprint(256 << 20);
        let pages: FastSet<u64> = trace(params)
            .take(30_000)
            .filter_map(|o| o.addr())
            .map(|a| a.vpn().as_u64())
            .collect();
        assert!(pages.len() > 500, "{} pages", pages.len());
    }

    #[test]
    fn stream_has_compute_phases() {
        let params = TraceParams::new(4).with_footprint(64 << 20);
        assert!(trace(params).take(200).any(|o| !o.is_memory()));
    }
}
