//! GUPS / HPCC RandomAccess (RND): uniformly random 8 B read-modify-writes
//! over a huge table — the canonical translation-torture workload. Nearly
//! every access touches a new page; TLB and cache hit rates collapse.

use crate::region::RegionLayout;
use crate::sampler::{rng, uniform};
use crate::spec::{TraceParams, WorkloadId};
use crate::Trace;
use ndp_types::Op;
use rand::rngs::SmallRng;

struct GupsGen {
    table: crate::region::Region,
    slots: u64,
    rng: SmallRng,
    phase: u8,
    pending: u64,
}

impl Iterator for GupsGen {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        // RMW triplet: load, xor (1 compute cycle), store — then next slot.
        let op = match self.phase {
            0 => {
                self.pending = uniform(&mut self.rng, self.slots);
                Op::Load(self.table.elem(self.pending, 8))
            }
            1 => Op::Compute(1),
            _ => Op::Store(self.table.elem(self.pending, 8)),
        };
        self.phase = (self.phase + 1) % 3;
        Some(op)
    }
}

/// The virtual regions the RND trace touches.
#[must_use]
pub fn regions(params: TraceParams) -> Vec<crate::region::Region> {
    let footprint = params.footprint_for(WorkloadId::Rnd);
    let mut layout = RegionLayout::new();
    vec![layout.carve(footprint)]
}

/// Builds the RND trace.
#[must_use]
pub fn trace(params: TraceParams) -> Trace {
    let footprint = params.footprint_for(WorkloadId::Rnd);
    let mut layout = RegionLayout::new();
    let table = layout.carve(footprint);
    let slots = table.elems(8).max(1);
    Box::new(GupsGen {
        table,
        slots,
        rng: rng(params.seed ^ 0x4755_5053),
        phase: 0,
        pending: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::FastSet;

    #[test]
    fn rmw_triplets() {
        let params = TraceParams::new(0).with_footprint(16 << 20);
        let ops: Vec<Op> = trace(params).take(9).collect();
        for chunk in ops.chunks(3) {
            assert!(matches!(chunk[0], Op::Load(_)));
            assert!(matches!(chunk[1], Op::Compute(1)));
            assert!(matches!(chunk[2], Op::Store(_)));
            assert_eq!(chunk[0].addr(), chunk[2].addr(), "store hits same slot");
        }
    }

    #[test]
    fn accesses_are_page_hostile() {
        let params = TraceParams::new(1).with_footprint(1 << 30);
        let addrs: Vec<u64> = trace(params)
            .take(30_000)
            .filter_map(|o| o.addr())
            .map(|a| a.vpn().as_u64())
            .collect();
        let distinct: FastSet<_> = addrs.iter().collect();
        // 10k RMW slots over 256k pages: nearly every access is a new page.
        assert!(
            distinct.len() as f64 / (addrs.len() as f64 / 2.0) > 0.9,
            "distinct pages {} of {} refs",
            distinct.len(),
            addrs.len()
        );
    }

    #[test]
    fn stays_in_table() {
        let params = TraceParams::new(2).with_footprint(16 << 20);
        let mut layout = RegionLayout::new();
        let table = layout.carve(16 << 20);
        for op in trace(params).take(1000) {
            if let Some(a) = op.addr() {
                assert!(table.contains(a));
            }
        }
    }
}
