//! GraphBIG kernel traces: BC, BFS, CC, GC, PR, TC, SP.
//!
//! All seven kernels traverse the same implicit CSR representation —
//! an `offsets` array (sequential pair-reads), an `edges` array (short
//! sequential runs), and per-vertex property arrays (random accesses at
//! neighbour indices, the irregular part that batters the TLB). The
//! kernels differ in vertex-selection order, property traffic per edge,
//! store ratio, pointer-chase depth (union-find in CC) and compute
//! density — captured by a [`KernelSpec`] per workload.

use crate::region::{Region, RegionLayout};
use crate::sampler::{hot_cold, rng, uniform, zipf_like};
use crate::spec::{TraceParams, WorkloadId};
use crate::Trace;
use ndp_types::Op;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// Average CSR out-degree of the synthetic graphs.
pub const AVG_DEGREE: u64 = 16;

/// Shape parameters of one GraphBIG kernel.
#[derive(Debug, Clone, Copy)]
pub struct KernelSpec {
    /// Property arrays per vertex (8 B each).
    pub props_per_vertex: u64,
    /// Vertex selection: true = popularity-skewed frontier (BFS-like),
    /// false = sequential sweep (PR-like).
    pub frontier_driven: bool,
    /// Random property accesses per traversed edge.
    pub prop_accesses_per_edge: f64,
    /// Fraction of property accesses that are stores.
    pub store_fraction: f64,
    /// Probability per edge of peeking at the *neighbour's* adjacency
    /// metadata (offsets + first edges) — frontier expansion. These reads
    /// scatter across the multi-GB edge array and are the bulk of the
    /// translation-hostile traffic in frontier kernels.
    pub adjacency_peek: f64,
    /// Dependent random hops per visit (union-find chases in CC).
    pub pointer_chase_depth: u32,
    /// Extra sequential edge-runs per visit (adjacency intersection in TC).
    pub extra_edge_runs: u32,
    /// Compute cycles interleaved per edge.
    pub compute_per_edge: u32,
}

impl KernelSpec {
    /// The spec for a GraphBIG workload.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a GraphBIG workload.
    #[must_use]
    pub fn for_workload(id: WorkloadId) -> KernelSpec {
        match id {
            WorkloadId::Bfs => KernelSpec {
                props_per_vertex: 2,
                frontier_driven: true,
                prop_accesses_per_edge: 1.0,
                store_fraction: 0.3,
                adjacency_peek: 0.5,
                pointer_chase_depth: 0,
                extra_edge_runs: 0,
                compute_per_edge: 1,
            },
            WorkloadId::Bc => KernelSpec {
                props_per_vertex: 4,
                frontier_driven: true,
                prop_accesses_per_edge: 2.0,
                store_fraction: 0.4,
                adjacency_peek: 0.6,
                pointer_chase_depth: 0,
                extra_edge_runs: 0,
                compute_per_edge: 2,
            },
            WorkloadId::Cc => KernelSpec {
                props_per_vertex: 1,
                frontier_driven: false,
                prop_accesses_per_edge: 1.0,
                store_fraction: 0.4,
                adjacency_peek: 0.4,
                pointer_chase_depth: 3,
                extra_edge_runs: 0,
                compute_per_edge: 1,
            },
            WorkloadId::Gc => KernelSpec {
                props_per_vertex: 2,
                frontier_driven: false,
                prop_accesses_per_edge: 1.0,
                store_fraction: 0.15,
                adjacency_peek: 0.35,
                pointer_chase_depth: 0,
                extra_edge_runs: 0,
                compute_per_edge: 2,
            },
            WorkloadId::Pr => KernelSpec {
                props_per_vertex: 2,
                frontier_driven: false,
                prop_accesses_per_edge: 1.0,
                store_fraction: 0.1,
                adjacency_peek: 0.3,
                pointer_chase_depth: 0,
                extra_edge_runs: 0,
                compute_per_edge: 3,
            },
            WorkloadId::Tc => KernelSpec {
                props_per_vertex: 1,
                frontier_driven: false,
                prop_accesses_per_edge: 0.5,
                store_fraction: 0.0,
                adjacency_peek: 0.7,
                pointer_chase_depth: 0,
                extra_edge_runs: 1,
                compute_per_edge: 5,
            },
            WorkloadId::Sp => KernelSpec {
                props_per_vertex: 2,
                frontier_driven: true,
                prop_accesses_per_edge: 1.5,
                store_fraction: 0.4,
                adjacency_peek: 0.5,
                pointer_chase_depth: 0,
                extra_edge_runs: 0,
                compute_per_edge: 2,
            },
            other => panic!("{other} is not a GraphBIG kernel"),
        }
    }
}

/// The implicit CSR graph layout for a given footprint.
#[derive(Debug, Clone)]
pub struct GraphLayout {
    /// Vertex count.
    pub vertices: u64,
    /// Edge count.
    pub edges: u64,
    /// `offsets[v]` array (8 B entries, V+1 of them).
    pub offsets: Region,
    /// Edge-target array (8 B entries).
    pub edge_array: Region,
    /// Property arrays, concatenated (8 B × props × V).
    pub properties: Region,
}

impl GraphLayout {
    /// Sizes a CSR graph of `footprint` bytes with `props` property arrays.
    #[must_use]
    pub fn new(footprint: u64, props: u64) -> Self {
        // footprint = 8(V+1) + 8·dV + 8·props·V  ⇒  V ≈ footprint / (8(1+d+props))
        let vertices = (footprint / (8 * (1 + AVG_DEGREE + props))).max(1024);
        let edges = vertices * AVG_DEGREE;
        let mut layout = RegionLayout::new();
        let offsets = layout.carve(8 * (vertices + 1));
        let edge_array = layout.carve(8 * edges);
        let properties = layout.carve(8 * props * vertices);
        GraphLayout {
            vertices,
            edges,
            offsets,
            edge_array,
            properties,
        }
    }
}

struct GraphGen {
    spec: KernelSpec,
    layout: GraphLayout,
    rng: SmallRng,
    sweep_cursor: u64,
    buf: VecDeque<Op>,
}

impl GraphGen {
    /// Emits the ops of one vertex visit into the buffer.
    fn visit_vertex(&mut self) {
        let v = if self.spec.frontier_driven {
            zipf_like(&mut self.rng, self.layout.vertices, 2.2)
        } else {
            let v = self.sweep_cursor;
            self.sweep_cursor = (self.sweep_cursor + 1) % self.layout.vertices;
            v
        };

        // offsets[v], offsets[v+1]: two sequential loads.
        self.buf.push_back(Op::Load(self.layout.offsets.elem(v, 8)));
        self.buf
            .push_back(Op::Load(self.layout.offsets.elem(v + 1, 8)));

        // Degree varies around the average, deterministically per vertex.
        let degree = 1 + (v.wrapping_mul(0x9E37_79B9) >> 16) % (2 * AVG_DEGREE);
        let edge_runs = 1 + u64::from(self.spec.extra_edge_runs);
        for run in 0..edge_runs {
            // A sequential run in the edge array starting at this vertex's
            // (hashed) CSR position.
            let start = (v.wrapping_mul(AVG_DEGREE).wrapping_add(run * 131)) % self.layout.edges;
            for e in 0..degree {
                self.buf
                    .push_back(Op::Load(self.layout.edge_array.elem(start + e, 8)));
                if self.spec.compute_per_edge > 0 {
                    self.buf.push_back(Op::Compute(self.spec.compute_per_edge));
                }

                // Random neighbour property traffic: the TLB killer. A
                // budget of e.g. 1.5 means one guaranteed access plus a
                // 50% chance of a second.
                let mut budget = self.spec.prop_accesses_per_edge;
                loop {
                    if budget >= 1.0 {
                        budget -= 1.0;
                    } else if budget > 0.0 && self.rng.gen_bool(budget) {
                        budget = 0.0;
                    } else {
                        break;
                    }
                    // Popularity is skewed, but hot vertex IDs are
                    // scattered across the array (real graphs don't place
                    // their hubs on adjacent pages) — this is what makes
                    // PTE accesses *more* irregular than data (§IV-A).
                    let u = hot_cold(&mut self.rng, self.layout.vertices);
                    let u = scatter(u, self.layout.vertices);
                    let prop = uniform(&mut self.rng, self.spec.props_per_vertex.max(1));
                    let addr = self
                        .layout
                        .properties
                        .elem(prop * self.layout.vertices + u, 8);
                    if self.rng.gen_bool(self.spec.store_fraction) {
                        self.buf.push_back(Op::Store(addr));
                    } else {
                        self.buf.push_back(Op::Load(addr));
                    }

                    // Frontier expansion: peek at the neighbour's CSR
                    // position — a random jump into the edge array.
                    if self.rng.gen_bool(self.spec.adjacency_peek) {
                        self.buf.push_back(Op::Load(self.layout.offsets.elem(u, 8)));
                        self.buf.push_back(Op::Load(
                            self.layout.edge_array.elem(u.wrapping_mul(AVG_DEGREE), 8),
                        ));
                    }
                }
            }
        }

        // Union-find style dependent chases (CC).
        for _ in 0..self.spec.pointer_chase_depth {
            let u = scatter(
                uniform(&mut self.rng, self.layout.vertices),
                self.layout.vertices,
            );
            self.buf
                .push_back(Op::Load(self.layout.properties.elem(u, 8)));
        }
    }
}

impl Iterator for GraphGen {
    type Item = Op;

    fn next(&mut self) -> Option<Op> {
        while self.buf.is_empty() {
            self.visit_vertex();
        }
        self.buf.pop_front()
    }
}

/// Block size (in 8 B vertex slots) preserved by [`scatter`]: 4096 slots
/// = 32 KB = one PTE line's reach. Real graphs exhibit community locality
/// at this granularity even though hub vertices are spread globally.
pub const SCATTER_BLOCK: u64 = 4096;

/// Scatters vertex id `u` over `[0, n)` at 32 KB-block granularity:
/// popular vertices land in blocks spread across the whole array (so hot
/// *pages* are scattered), but each block keeps its residents together
/// (so PTE-line spatial locality survives where a multi-MB cache can hold
/// it — the CPU/NDP asymmetry of §III).
#[must_use]
pub fn scatter(u: u64, n: u64) -> u64 {
    let n = n.max(1);
    let blocks = (n / SCATTER_BLOCK).max(1);
    let block = (u / SCATTER_BLOCK).wrapping_mul(0x9E37_79B9_7F4A_7C15 | 1) % blocks;
    (block * SCATTER_BLOCK + u % SCATTER_BLOCK).min(n - 1)
}

/// The virtual regions a GraphBIG kernel touches.
///
/// # Panics
///
/// Panics if `id` is not a GraphBIG workload.
#[must_use]
pub fn regions(id: WorkloadId, params: TraceParams) -> Vec<Region> {
    let spec = KernelSpec::for_workload(id);
    let layout = GraphLayout::new(params.footprint_for(id), spec.props_per_vertex);
    vec![layout.offsets, layout.edge_array, layout.properties]
}

/// Builds a GraphBIG kernel trace.
///
/// # Panics
///
/// Panics if `id` is not a GraphBIG workload.
#[must_use]
pub fn trace(id: WorkloadId, params: TraceParams) -> Trace {
    let spec = KernelSpec::for_workload(id);
    let layout = GraphLayout::new(params.footprint_for(id), spec.props_per_vertex);
    Box::new(GraphGen {
        spec,
        layout,
        rng: rng(params.seed ^ (id as u64).wrapping_mul(0xABCD_EF01)),
        sweep_cursor: 0,
        buf: VecDeque::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_types::FastSet;

    const GRAPH_IDS: [WorkloadId; 7] = [
        WorkloadId::Bc,
        WorkloadId::Bfs,
        WorkloadId::Cc,
        WorkloadId::Gc,
        WorkloadId::Pr,
        WorkloadId::Tc,
        WorkloadId::Sp,
    ];

    #[test]
    fn addresses_stay_in_regions() {
        for id in GRAPH_IDS {
            let spec = KernelSpec::for_workload(id);
            let layout = GraphLayout::new(64 << 20, spec.props_per_vertex);
            let params = TraceParams::new(3).with_footprint(64 << 20);
            for op in trace(id, params).take(5000) {
                if let Some(a) = op.addr() {
                    assert!(
                        layout.offsets.contains(a)
                            || layout.edge_array.contains(a)
                            || layout.properties.contains(a),
                        "{id}: {a} escapes the graph regions"
                    );
                }
            }
        }
    }

    #[test]
    fn kernels_have_distinct_mixes() {
        let params = TraceParams::new(1).with_footprint(64 << 20);
        let store_frac = |id: WorkloadId| {
            let ops: Vec<Op> = trace(id, params).take(20_000).collect();
            let stores = ops.iter().filter(|o| matches!(o, Op::Store(_))).count();
            let mems = ops.iter().filter(|o| o.is_memory()).count();
            stores as f64 / mems as f64
        };
        assert!(store_frac(WorkloadId::Tc) < 0.01, "TC is read-only");
        assert!(store_frac(WorkloadId::Sp) > 0.05, "SP writes distances");
    }

    #[test]
    fn compute_density_varies() {
        let params = TraceParams::new(1).with_footprint(64 << 20);
        let compute = |id: WorkloadId| {
            trace(id, params)
                .take(20_000)
                .filter(|o| !o.is_memory())
                .count()
        };
        assert!(compute(WorkloadId::Tc) > compute(WorkloadId::Bfs));
    }

    #[test]
    fn frontier_kernels_touch_many_pages() {
        let params = TraceParams::new(5).with_footprint(256 << 20);
        let pages: FastSet<u64> = trace(WorkloadId::Bfs, params)
            .take(50_000)
            .filter_map(|o| o.addr())
            .map(|a| a.vpn().as_u64())
            .collect();
        assert!(pages.len() > 1000, "irregular: {} pages", pages.len());
    }

    #[test]
    fn layout_scales_with_footprint() {
        let small = GraphLayout::new(16 << 20, 2);
        let big = GraphLayout::new(256 << 20, 2);
        assert!(big.vertices > 10 * small.vertices);
        assert_eq!(big.edges, big.vertices * AVG_DEGREE);
    }

    #[test]
    #[should_panic(expected = "not a GraphBIG kernel")]
    fn non_graph_id_rejected() {
        let _ = KernelSpec::for_workload(WorkloadId::Xs);
    }
}
