//! Trace analysis: quantifies the locality structure of a generated
//! stream, used to validate generators against the characteristics the
//! paper's argument rests on (§III–IV).

use crate::Trace;
use ndp_types::{FastMap, FastSet, Op};

/// Summary statistics of a trace prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceProfile {
    /// Ops inspected.
    pub ops: u64,
    /// Memory ops (loads + stores).
    pub mem_ops: u64,
    /// Stores among memory ops.
    pub stores: u64,
    /// Compute cycles per memory op (the workload's compute density).
    pub compute_per_mem_op: f64,
    /// Distinct 4 KB pages touched.
    pub distinct_pages: u64,
    /// Distinct 2 MB regions touched.
    pub distinct_regions: u64,
    /// Mean accesses per touched page (page-level reuse).
    pub accesses_per_page: f64,
    /// Fraction of memory ops whose page differs from the previous op's
    /// page — a cheap irregularity proxy (1.0 = every access changes
    /// page; streaming code scores near `8 B / 4 KB`).
    pub page_transition_rate: f64,
    /// Fraction of memory ops landing on the 10% most-touched pages
    /// (working-set skew; ~0.1 for uniform traffic).
    pub hot_page_fraction: f64,
}

/// Profiles the first `ops` operations of a trace.
///
/// # Panics
///
/// Panics if `ops` is zero.
#[must_use]
pub fn profile(trace: Trace, ops: u64) -> TraceProfile {
    assert!(ops > 0, "need at least one op to profile");
    // One map update per memory op: the profiler's hot path.
    let mut page_counts: FastMap<u64, u64> = FastMap::default();
    let mut regions: FastSet<u64> = FastSet::default();
    let mut mem_ops = 0u64;
    let mut stores = 0u64;
    let mut compute = 0u64;
    let mut transitions = 0u64;
    let mut last_page = None;

    for op in trace.take(ops as usize) {
        match op {
            Op::Compute(n) => compute += u64::from(n),
            Op::Load(a) | Op::Store(a) => {
                mem_ops += 1;
                if matches!(op, Op::Store(_)) {
                    stores += 1;
                }
                let page = a.vpn().as_u64();
                *page_counts.entry(page).or_insert(0) += 1;
                regions.insert(page >> 9);
                if last_page != Some(page) {
                    transitions += 1;
                }
                last_page = Some(page);
            }
        }
    }

    let distinct_pages = page_counts.len() as u64;
    let mut counts: Vec<u64> = page_counts.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let hot_n = (counts.len() / 10).max(1);
    let hot_hits: u64 = counts.iter().take(hot_n).sum();

    TraceProfile {
        ops,
        mem_ops,
        stores,
        compute_per_mem_op: if mem_ops == 0 {
            0.0
        } else {
            compute as f64 / mem_ops as f64
        },
        distinct_pages,
        distinct_regions: regions.len() as u64,
        accesses_per_page: if distinct_pages == 0 {
            0.0
        } else {
            mem_ops as f64 / distinct_pages as f64
        },
        page_transition_rate: if mem_ops == 0 {
            0.0
        } else {
            transitions as f64 / mem_ops as f64
        },
        hot_page_fraction: if mem_ops == 0 {
            0.0
        } else {
            hot_hits as f64 / mem_ops as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceParams, WorkloadId};

    fn profile_of(w: WorkloadId) -> TraceProfile {
        profile(
            w.trace(TraceParams::new(11).with_footprint(512 << 20)),
            40_000,
        )
    }

    #[test]
    fn gups_is_maximally_irregular() {
        let p = profile_of(WorkloadId::Rnd);
        // Each RMW pair (load+store to one slot) shares a page, so the
        // transition rate saturates at 0.5 — every *slot* is a new page.
        assert!(p.page_transition_rate > 0.45, "{p:?}");
        assert!(p.accesses_per_page < 5.0, "{p:?}");
        // RMW: exactly one store per load.
        assert!((p.stores as f64 / p.mem_ops as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn genomics_mixes_streaming_and_random() {
        let p = profile_of(WorkloadId::Gen);
        // Half the refs stream over the genome: transition rate well
        // below GUPS but far above pure streaming.
        assert!(
            p.page_transition_rate > 0.3 && p.page_transition_rate < 0.95,
            "{p:?}"
        );
        assert!(p.stores > 0);
    }

    #[test]
    fn graph_kernels_have_hot_working_sets() {
        let p = profile_of(WorkloadId::Bfs);
        assert!(
            p.hot_page_fraction > 0.2,
            "hot/cold structure expected: {p:?}"
        );
        assert!(p.distinct_regions > 32, "{p:?}");
    }

    #[test]
    fn compute_density_orders_workloads() {
        let tc = profile_of(WorkloadId::Tc);
        let rnd = profile_of(WorkloadId::Rnd);
        assert!(
            tc.compute_per_mem_op > rnd.compute_per_mem_op,
            "TC computes more per access than GUPS"
        );
    }

    #[test]
    fn footprint_bound_is_respected() {
        let p = profile_of(WorkloadId::Dlrm);
        // 512 MB = 131072 pages max.
        assert!(p.distinct_pages <= 131_072, "{p:?}");
        assert!(p.distinct_pages > 100);
    }

    #[test]
    #[should_panic(expected = "at least one op")]
    fn zero_ops_rejected() {
        let _ = profile(
            WorkloadId::Rnd.trace(TraceParams::new(0).with_footprint(16 << 20)),
            0,
        );
    }
}
