#![forbid(unsafe_code)]
//! Synthetic trace generators for the paper's 11 data-intensive workloads
//! (Table II).
//!
//! The paper runs real benchmark binaries under Sniper; what the address-
//! translation study actually consumes is each benchmark's **memory access
//! stream** — its footprint, locality structure, and compute/memory mix.
//! This crate generates statistically faithful synthetic streams for each
//! workload over multi-gigabyte *virtual* footprints, without materialising
//! any data (the simulator models addresses, not values):
//!
//! | Suite         | Workloads              | Pattern                                        |
//! |---------------|------------------------|------------------------------------------------|
//! | GraphBIG      | BC BFS CC GC PR TC SP  | CSR traversal: sequential offsets/edge runs + per-neighbour random property accesses (Zipf-popular vertices) |
//! | XSBench       | XS                     | binary-search pointer hops + nuclide-grid row reads |
//! | GUPS          | RND                    | uniform random 8 B read-modify-write           |
//! | DLRM          | DLRM                   | random embedding-row gathers with short sequential bursts, heavy compute between batches |
//! | GenomicsBench | GEN                    | sliding-window sequential genome scan + random k-mer hash updates |
//!
//! Every generator is deterministic given its [`TraceParams`] seed, and
//! emits an infinite stream of [`Op`]s — the simulator takes as many as the
//! experiment's instruction budget allows.
//!
//! # Examples
//!
//! ```
//! use ndp_workloads::{TraceParams, WorkloadId};
//!
//! let params = TraceParams::new(0).with_footprint(256 << 20);
//! let ops: Vec<_> = WorkloadId::Rnd.trace(params).take(100).collect();
//! assert_eq!(ops.len(), 100);
//! ```

pub mod analysis;
pub mod dlrm;
pub mod genomics;
pub mod graph;
pub mod gups;
pub mod region;
pub mod sampler;
pub mod spec;
pub mod xsbench;

pub use spec::{Suite, TraceParams, WorkloadId};

use ndp_types::Op;

/// A workload's operation stream. Infinite; take what you need.
pub type Trace = Box<dyn Iterator<Item = Op> + Send>;
