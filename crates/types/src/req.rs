//! Memory-request identity and completion tickets.
//!
//! The non-blocking pipeline tracks every outstanding memory operation by
//! *when it finishes* rather than charging its latency to the issuing
//! core's clock on the spot. Two small types carry that information
//! across crate boundaries:
//!
//! * [`LineAddr`] — a cache-line-granular address, the coalescing key of
//!   MSHR files and the interleaving key of channel maps. Keeping the
//!   `>> 6` in one newtype removes the magic shifts that used to be
//!   scattered through the simulator and the DRAM decoder.
//! * [`MemTicket`] — the completion record of one memory-system request:
//!   issue, arrival and done timestamps, from which every latency the
//!   reports need (total, network, queueing-inclusive service) derives.

use crate::addr::PhysAddr;
use crate::cycles::Cycles;
use core::fmt;

/// Bytes per cache line / DRAM transfer (64 B everywhere in Table I).
pub const LINE_BYTES: u64 = 64;

/// Log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// A physical address at cache-line granularity.
///
/// MSHRs coalesce misses per line, DRAM channels interleave per line, and
/// caches tag per line — all three now share this key type instead of
/// re-deriving `addr >> 6` locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// The line containing `addr`.
    #[must_use]
    #[inline]
    pub const fn of(addr: PhysAddr) -> Self {
        LineAddr(addr.as_u64() >> LINE_SHIFT)
    }

    /// The raw line number (byte address divided by [`LINE_BYTES`]).
    #[must_use]
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    #[must_use]
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr::new(self.0 << LINE_SHIFT)
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line:{:#x}", self.0 << LINE_SHIFT)
    }
}

/// Completion record of one request through the memory system.
///
/// `issue ≤ arrival ≤ done`: the request leaves the core at `issue`,
/// reaches the controller at `arrival` (after the NoC traversal) and its
/// data is back at the core at `done` (service plus the return hop). The
/// blocking engine collapses a ticket to `total_latency()` immediately;
/// the windowed engine keeps `done` as the op's retirement deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemTicket {
    /// When the core issued the request.
    pub issue: Cycles,
    /// When the request reached the memory controller.
    pub arrival: Cycles,
    /// When the data is back at the core.
    pub done: Cycles,
}

impl MemTicket {
    /// A ticket that completes instantly at `now` (zero-latency paths).
    #[must_use]
    pub const fn immediate(now: Cycles) -> Self {
        MemTicket {
            issue: now,
            arrival: now,
            done: now,
        }
    }

    /// End-to-end latency the issuer would wait for this request.
    #[must_use]
    pub fn total_latency(&self) -> Cycles {
        self.done - self.issue
    }

    /// Time spent in the memory controller and DRAM (arrival to data
    /// availability, excluding the return network hop is the caller's
    /// concern — this is `done - arrival`).
    #[must_use]
    pub fn memory_latency(&self) -> Cycles {
        self.done - self.arrival
    }
}

impl Default for MemTicket {
    fn default() -> Self {
        MemTicket::immediate(Cycles::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_addr_strips_offset() {
        let a = LineAddr::of(PhysAddr::new(0x1003f));
        let b = LineAddr::of(PhysAddr::new(0x10000));
        assert_eq!(a, b);
        assert_ne!(LineAddr::of(PhysAddr::new(0x10040)), a);
        assert_eq!(a.base(), PhysAddr::new(0x10000));
        assert_eq!(a.as_u64(), 0x10000 >> 6);
        assert_eq!(a.to_string(), "line:0x10000");
    }

    #[test]
    fn ticket_latencies() {
        let t = MemTicket {
            issue: Cycles::new(100),
            arrival: Cycles::new(110),
            done: Cycles::new(250),
        };
        assert_eq!(t.total_latency(), Cycles::new(150));
        assert_eq!(t.memory_latency(), Cycles::new(140));
        let i = MemTicket::immediate(Cycles::new(7));
        assert_eq!(i.total_latency(), Cycles::ZERO);
        assert_eq!(i.done, Cycles::new(7));
        assert_eq!(MemTicket::default().done, Cycles::ZERO);
    }
}
