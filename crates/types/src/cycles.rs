//! The simulator's time unit.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// A duration or timestamp measured in core clock cycles (2.6 GHz in the
/// paper's Table I).
///
/// `Cycles` is used both as a point in simulated time and as a duration;
/// arithmetic is plain wrapping-free integer math and panics on overflow in
/// debug builds like any other integer.
///
/// # Examples
///
/// ```
/// use ndp_types::Cycles;
///
/// let start = Cycles::new(100);
/// let latency = Cycles::new(35);
/// assert_eq!((start + latency).as_u64(), 135);
/// assert_eq!((start + latency) - start, latency);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Wraps a raw cycle count.
    #[must_use]
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw cycle count.
    #[must_use]
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the raw cycle count as `f64` (for averages and plots).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating subtraction; useful for "time until free" computations.
    #[must_use]
    #[inline]
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The later of two timestamps.
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// The earlier of two timestamps.
    #[must_use]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl SubAssign for Cycles {
    #[inline]
    fn sub_assign(&mut self, rhs: Cycles) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Self {
        Cycles(raw)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

impl fmt::Debug for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cycles({})", self.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!(a + b, Cycles::new(13));
        assert_eq!(a - b, Cycles::new(7));
        let mut c = a;
        c += b;
        c -= Cycles::new(1);
        assert_eq!(c, Cycles::new(12));
    }

    #[test]
    fn saturating_and_ordering() {
        assert_eq!(Cycles::new(3).saturating_sub(Cycles::new(10)), Cycles::ZERO);
        assert_eq!(Cycles::new(3).max(Cycles::new(10)), Cycles::new(10));
        assert_eq!(Cycles::new(3).min(Cycles::new(10)), Cycles::new(3));
        assert!(Cycles::new(3) < Cycles::new(4));
    }

    #[test]
    fn sum_and_conversion() {
        let total: Cycles = [1u64, 2, 3].into_iter().map(Cycles::new).sum();
        assert_eq!(u64::from(total), 6);
        assert_eq!(Cycles::from(6u64), total);
    }

    #[test]
    fn display() {
        assert_eq!(Cycles::new(42).to_string(), "42 cyc");
        assert_eq!(format!("{:?}", Cycles::new(42)), "Cycles(42)");
    }
}
