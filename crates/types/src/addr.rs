//! Virtual/physical addresses, page numbers and radix index arithmetic.
//!
//! The simulated machine follows the x86-64 layout the paper assumes: 48-bit
//! canonical virtual addresses, 4 KB base pages, and a 4-level radix page
//! table where each level indexes with 9 bits. NDPage's flattened L2/L1
//! table instead consumes the low 18 translation bits in one step
//! ([`Vpn::flat_l2l1_index`]).

use core::fmt;

/// Base page size in bytes (4 KB).
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Bits of virtual-page-number consumed by one radix level.
pub const LEVEL_BITS: u32 = 9;
/// Entries per 4 KB radix node (2^9).
pub const ENTRIES_PER_NODE: u64 = 1 << LEVEL_BITS;
/// Entries per flattened L2/L1 node (2^18 = 262,144), per the paper §V-B.
pub const ENTRIES_PER_FLAT_NODE: u64 = 1 << (2 * LEVEL_BITS);
/// Size of one page-table entry in bytes.
pub const PTE_SIZE: u64 = 8;
/// Huge (2 MB) page size in bytes.
pub const HUGE_PAGE_SIZE: u64 = 2 * 1024 * 1024;
/// log2 of [`HUGE_PAGE_SIZE`].
pub const HUGE_PAGE_SHIFT: u32 = 21;
/// Width of the translated virtual address in bits (x86-64 canonical).
pub const VA_BITS: u32 = 48;
/// Cache line size in bytes; PTE regions are 64 B aligned per the paper §V-A.
pub const CACHE_LINE_SIZE: u64 = 64;

/// Page-table levels of the conventional radix design, plus the merged
/// level introduced by NDPage and the hash "level" used by cuckoo tables.
///
/// Ordering: `L4` is the root (walked first), `L1` the leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PtLevel {
    /// Root level (PL4, bits 47..=39).
    L4,
    /// PL3 (bits 38..=30).
    L3,
    /// PL2 (bits 29..=21).
    L2,
    /// Leaf level (PL1, bits 20..=12).
    L1,
    /// NDPage's merged PL2/PL1 node (bits 29..=12, 18 index bits).
    FlatL2L1,
    /// A bucket probe of a hashed page table (ECH); carries the way index.
    HashWay(u8),
}

impl PtLevel {
    /// All conventional radix levels in walk order (root first).
    pub const RADIX_WALK: [PtLevel; 4] = [PtLevel::L4, PtLevel::L3, PtLevel::L2, PtLevel::L1];

    /// Number of virtual-address index bits consumed at this level.
    #[must_use]
    pub fn index_bits(self) -> u32 {
        match self {
            PtLevel::FlatL2L1 => 2 * LEVEL_BITS,
            PtLevel::HashWay(_) => 0,
            _ => LEVEL_BITS,
        }
    }

    /// Number of distinct PWC slots (see [`PtLevel::pwc_slot`]).
    pub const PWC_SLOTS: usize = 5 + Self::MAX_HASH_WAYS;

    /// Hash ways representable as PWC slots (ECH uses 3).
    pub const MAX_HASH_WAYS: usize = 8;

    /// Dense index of this level into a fixed-size per-level array — the
    /// level set is a tiny closed enum, so per-level state (PWC banks,
    /// stat tables) lives in arrays indexed by this slot instead of tree
    /// or hash maps. Slot order matches the enum's `Ord`.
    ///
    /// # Panics
    ///
    /// Panics on a hash way ≥ [`Self::MAX_HASH_WAYS`] (slots would
    /// silently alias otherwise).
    #[inline]
    #[must_use]
    pub const fn pwc_slot(self) -> usize {
        match self {
            PtLevel::L4 => 0,
            PtLevel::L3 => 1,
            PtLevel::L2 => 2,
            PtLevel::L1 => 3,
            PtLevel::FlatL2L1 => 4,
            PtLevel::HashWay(w) => {
                assert!((w as usize) < Self::MAX_HASH_WAYS);
                5 + w as usize
            }
        }
    }

    /// Inverse of [`Self::pwc_slot`].
    ///
    /// # Panics
    ///
    /// Panics if `slot >= PtLevel::PWC_SLOTS`.
    #[must_use]
    pub const fn from_pwc_slot(slot: usize) -> PtLevel {
        match slot {
            0 => PtLevel::L4,
            1 => PtLevel::L3,
            2 => PtLevel::L2,
            3 => PtLevel::L1,
            4 => PtLevel::FlatL2L1,
            _ => {
                assert!(slot < Self::PWC_SLOTS);
                PtLevel::HashWay((slot - 5) as u8)
            }
        }
    }

    /// Short display name matching the paper ("PL4".."PL1", "PL2/PL1").
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PtLevel::L4 => "PL4",
            PtLevel::L3 => "PL3",
            PtLevel::L2 => "PL2",
            PtLevel::L1 => "PL1",
            PtLevel::FlatL2L1 => "PL2/PL1",
            PtLevel::HashWay(_) => "hash-way",
        }
    }
}

impl fmt::Display for PtLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

macro_rules! addr_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit address.
            #[must_use]
            #[inline]
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw address value.
            #[must_use]
            #[inline]
            pub const fn as_u64(self) -> u64 {
                self.0
            }

            /// Byte offset within the containing 4 KB page.
            #[must_use]
            #[inline]
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// The address rounded down to its 4 KB page base.
            #[must_use]
            #[inline]
            pub const fn page_base(self) -> Self {
                Self(self.0 & !(PAGE_SIZE - 1))
            }

            /// The address rounded down to its 64 B cache-line base.
            #[must_use]
            #[inline]
            pub const fn line_base(self) -> Self {
                Self(self.0 & !(CACHE_LINE_SIZE - 1))
            }

            /// Returns the address advanced by `bytes`.
            ///
            /// # Panics
            ///
            /// Panics in debug builds on overflow.
            #[must_use]
            #[inline]
            pub const fn add(self, bytes: u64) -> Self {
                Self(self.0 + bytes)
            }

            /// Whether the address is aligned to `align` bytes
            /// (`align` must be a power of two).
            #[must_use]
            #[inline]
            pub const fn is_aligned(self, align: u64) -> bool {
                debug_assert!(align.is_power_of_two());
                self.0 & (align - 1) == 0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl fmt::UpperHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::UpperHex::fmt(&self.0, f)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self::new(raw)
            }
        }

        impl From<$name> for u64 {
            fn from(a: $name) -> u64 {
                a.as_u64()
            }
        }
    };
}

addr_newtype! {
    /// A virtual address in the simulated application's address space.
    VirtAddr
}

addr_newtype! {
    /// A physical address in the simulated machine's memory.
    PhysAddr
}

impl VirtAddr {
    /// Virtual page number of the containing 4 KB page.
    #[must_use]
    #[inline]
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Virtual "huge page number" of the containing 2 MB region.
    #[must_use]
    #[inline]
    pub const fn huge_vpn(self) -> Vpn {
        Vpn((self.0 >> HUGE_PAGE_SHIFT) << LEVEL_BITS)
    }
}

impl PhysAddr {
    /// Physical frame number of the containing 4 KB frame.
    #[must_use]
    #[inline]
    pub const fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }
}

/// A virtual page number: a [`VirtAddr`] shifted right by [`PAGE_SHIFT`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Wraps a raw virtual page number.
    #[must_use]
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw page-number value.
    #[must_use]
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Base virtual address of this page.
    #[must_use]
    #[inline]
    pub const fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Index into the PL4 node (bits 47..=39 of the virtual address).
    #[must_use]
    #[inline]
    pub const fn l4_index(self) -> usize {
        ((self.0 >> (3 * LEVEL_BITS)) & (ENTRIES_PER_NODE - 1)) as usize
    }

    /// Index into a PL3 node (bits 38..=30).
    #[must_use]
    #[inline]
    pub const fn l3_index(self) -> usize {
        ((self.0 >> (2 * LEVEL_BITS)) & (ENTRIES_PER_NODE - 1)) as usize
    }

    /// Index into a PL2 node (bits 29..=21).
    #[must_use]
    #[inline]
    pub const fn l2_index(self) -> usize {
        ((self.0 >> LEVEL_BITS) & (ENTRIES_PER_NODE - 1)) as usize
    }

    /// Index into a PL1 node (bits 20..=12).
    #[must_use]
    #[inline]
    pub const fn l1_index(self) -> usize {
        (self.0 & (ENTRIES_PER_NODE - 1)) as usize
    }

    /// 18-bit index into an NDPage flattened L2/L1 node (bits 29..=12).
    #[must_use]
    #[inline]
    pub const fn flat_l2l1_index(self) -> usize {
        (self.0 & (ENTRIES_PER_FLAT_NODE - 1)) as usize
    }

    /// Radix index for an arbitrary level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is [`PtLevel::HashWay`], which has no radix index.
    #[inline]
    #[must_use]
    pub fn index_for(self, level: PtLevel) -> usize {
        match level {
            PtLevel::L4 => self.l4_index(),
            PtLevel::L3 => self.l3_index(),
            PtLevel::L2 => self.l2_index(),
            PtLevel::L1 => self.l1_index(),
            PtLevel::FlatL2L1 => self.flat_l2l1_index(),
            PtLevel::HashWay(_) => panic!("hash ways are not radix-indexed"),
        }
    }

    /// The VPN truncated to a 2 MB boundary (its PL1 index cleared); this is
    /// the tag used for huge-page TLB entries and flattened-node selection.
    #[must_use]
    #[inline]
    pub const fn huge_aligned(self) -> Vpn {
        Vpn(self.0 & !(ENTRIES_PER_NODE - 1))
    }

    /// Returns the VPN advanced by `pages`.
    #[must_use]
    #[inline]
    pub const fn add(self, pages: u64) -> Self {
        Self(self.0 + pages)
    }
}

impl fmt::Debug for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vpn({:#x})", self.0)
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// A physical frame number: a [`PhysAddr`] shifted right by [`PAGE_SHIFT`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(u64);

impl Pfn {
    /// Wraps a raw physical frame number.
    #[must_use]
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Self(raw)
    }

    /// Returns the raw frame-number value.
    #[must_use]
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Base physical address of this frame.
    #[must_use]
    #[inline]
    pub const fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// Physical address of entry `index` within a page-table node stored in
    /// this frame (8-byte entries).
    #[must_use]
    #[inline]
    pub const fn entry_addr(self, index: usize) -> PhysAddr {
        PhysAddr((self.0 << PAGE_SHIFT) + (index as u64) * PTE_SIZE)
    }

    /// Returns the frame number advanced by `frames`.
    #[must_use]
    #[inline]
    pub const fn add(self, frames: u64) -> Self {
        Self(self.0 + frames)
    }
}

impl fmt::Debug for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pfn({:#x})", self.0)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Page sizes supported by the simulated MMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSize {
    /// 4 KB base page.
    #[default]
    Size4K,
    /// 2 MB huge page (transparent huge pages / NDPage flat-node backing).
    Size2M,
}

impl PageSize {
    /// Size in bytes.
    #[must_use]
    #[inline]
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => PAGE_SIZE,
            PageSize::Size2M => HUGE_PAGE_SIZE,
        }
    }

    /// Number of 4 KB frames spanned.
    #[must_use]
    #[inline]
    pub const fn frames(self) -> u64 {
        self.bytes() / PAGE_SIZE
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => f.write_str("4KB"),
            PageSize::Size2M => f.write_str("2MB"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_offset_and_base() {
        let va = VirtAddr::new(0x1234_5678);
        assert_eq!(va.page_offset(), 0x678);
        assert_eq!(va.page_base().as_u64(), 0x1234_5000);
        assert_eq!(va.line_base().as_u64(), 0x1234_5640);
    }

    #[test]
    fn vpn_round_trip() {
        let va = VirtAddr::new(0x7fff_0000_1000);
        assert_eq!(va.vpn().base(), va.page_base());
        assert_eq!(va.vpn().as_u64(), 0x0007_fff0_0001);
    }

    #[test]
    fn radix_indices_cover_disjoint_bits() {
        // VA with a distinct 9-bit pattern in each level field.
        let vpn =
            Vpn::new((1 << (3 * LEVEL_BITS)) | (2 << (2 * LEVEL_BITS)) | (3 << LEVEL_BITS) | 4);
        assert_eq!(vpn.l4_index(), 1);
        assert_eq!(vpn.l3_index(), 2);
        assert_eq!(vpn.l2_index(), 3);
        assert_eq!(vpn.l1_index(), 4);
        assert_eq!(vpn.flat_l2l1_index(), (3 << LEVEL_BITS | 4) as usize);
    }

    #[test]
    fn flat_index_is_l2_concat_l1() {
        for raw in [0u64, 1, 511, 512, 0x3ffff, 0x40000, 0xdead_beef] {
            let vpn = Vpn::new(raw);
            assert_eq!(
                vpn.flat_l2l1_index(),
                (vpn.l2_index() << LEVEL_BITS as usize) | vpn.l1_index(),
                "vpn {raw:#x}"
            );
        }
    }

    #[test]
    fn flat_node_has_paper_entry_count() {
        // Paper §V-B: 2^9 × 2^9 = 262,144 entries fitting one 2 MB page.
        assert_eq!(ENTRIES_PER_FLAT_NODE, 262_144);
        assert_eq!(ENTRIES_PER_FLAT_NODE * PTE_SIZE, HUGE_PAGE_SIZE);
    }

    #[test]
    fn pfn_entry_addr() {
        let pfn = Pfn::new(0x100);
        assert_eq!(pfn.entry_addr(0).as_u64(), 0x100_000);
        assert_eq!(pfn.entry_addr(511).as_u64(), 0x100_000 + 511 * 8);
    }

    #[test]
    fn huge_alignment() {
        let va = VirtAddr::new(0x4020_3456);
        let vpn = va.vpn();
        assert_eq!(vpn.huge_aligned().l1_index(), 0);
        assert_eq!(vpn.huge_aligned().l2_index(), vpn.l2_index());
        assert_eq!(va.huge_vpn(), vpn.huge_aligned());
    }

    #[test]
    fn page_size_accessors() {
        assert_eq!(PageSize::Size4K.bytes(), 4096);
        assert_eq!(PageSize::Size2M.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Size2M.frames(), 512);
        assert_eq!(PageSize::Size4K.to_string(), "4KB");
    }

    #[test]
    fn level_names_match_paper() {
        assert_eq!(PtLevel::L4.name(), "PL4");
        assert_eq!(PtLevel::FlatL2L1.name(), "PL2/PL1");
        assert_eq!(PtLevel::FlatL2L1.index_bits(), 18);
        assert_eq!(PtLevel::L2.index_bits(), 9);
    }

    #[test]
    fn pwc_slots_round_trip_in_level_order() {
        let levels = [
            PtLevel::L4,
            PtLevel::L3,
            PtLevel::L2,
            PtLevel::L1,
            PtLevel::FlatL2L1,
            PtLevel::HashWay(0),
            PtLevel::HashWay(2),
        ];
        let mut last = None;
        for level in levels {
            let slot = level.pwc_slot();
            assert!(slot < PtLevel::PWC_SLOTS);
            assert_eq!(PtLevel::from_pwc_slot(slot), level);
            // Slot order must match the enum's Ord so per-level stats
            // iterate in the same order the BTreeMap-backed bank used.
            if let Some((prev_level, prev_slot)) = last {
                assert!(level > prev_level && slot > prev_slot);
            }
            last = Some((level, slot));
        }
    }

    #[test]
    fn alignment_predicate() {
        assert!(PhysAddr::new(0x1000).is_aligned(4096));
        assert!(!PhysAddr::new(0x1040).is_aligned(4096));
        assert!(PhysAddr::new(0x1040).is_aligned(64));
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(VirtAddr::new(0xabc).to_string(), "0xabc");
        assert_eq!(format!("{:x}", Pfn::new(0xff).base()), "ff000");
        assert_eq!(format!("{:#X}", PhysAddr::new(0xbeef)), "0xBEEF");
    }
}
