#![forbid(unsafe_code)]
//! Foundational types shared by every crate in the NDPage reproduction.
//!
//! This crate defines the vocabulary of the simulated machine:
//!
//! * [`addr`] — virtual/physical addresses and page-number newtypes with the
//!   x86-64 4-level (and NDPage flattened) index arithmetic.
//! * [`cycles`] — the [`Cycles`] time unit used by every
//!   timing model.
//! * [`fastmap`] — the shared fast-hash [`FastMap`]/[`FastSet`] aliases
//!   used by every hot integer-keyed map in the simulator.
//! * [`inline`] — the fixed-capacity [`InlineVec`] backing walk paths,
//!   walk plans and writeback lists without heap traffic.
//! * [`ids`] — core identifiers and memory-request classification
//!   (normal data vs. page-table metadata), which is the pivot of the
//!   paper's cache-bypass mechanism.
//! * [`op`] — the trace operation format emitted by workload generators and
//!   consumed by the simulator.
//! * [`req`] — cache-line addresses and per-request completion tickets,
//!   the vocabulary of the non-blocking memory pipeline (MSHR coalescing
//!   keys, channel interleaving, retirement deadlines).
//! * [`stats`] — light-weight counters and latency accumulators.
//!
//! # Examples
//!
//! ```
//! use ndp_types::addr::{VirtAddr, PAGE_SIZE};
//!
//! let va = VirtAddr::new(0x7fff_dead_b000 + 0xeef);
//! assert_eq!(va.page_offset(), 0xeef);
//! assert_eq!(va.vpn().base().as_u64(), 0x7fff_dead_b000);
//! assert_eq!(PAGE_SIZE, 4096);
//! ```

pub mod addr;
pub mod cycles;
pub mod fastmap;
pub mod ids;
pub mod inline;
pub mod op;
pub mod req;
pub mod stats;

pub use addr::{PageSize, Pfn, PhysAddr, PtLevel, VirtAddr, Vpn};
pub use cycles::Cycles;
pub use fastmap::{FastBuildHasher, FastHasher, FastMap, FastSet};
pub use ids::{AccessClass, Asid, CoreId, ProcessId, RwKind};
pub use inline::InlineVec;
pub use op::Op;
pub use req::{LineAddr, MemTicket};
