//! A fixed-capacity, stack-allocated vector for the simulator's hot path.
//!
//! Walk paths (≤ 4 radix levels or ≤ [`crate::PtLevel::MAX_HASH_WAYS`]
//! hash probes), walk-plan rounds and cache writeback lists are all tiny,
//! statically bounded collections that the seed allocated on the heap —
//! several `malloc`/`free` pairs per simulated TLB miss. [`InlineVec`]
//! keeps them in-line in their owner, which both removes the allocator
//! from the per-op loop and keeps the data on the same cache lines as the
//! surrounding struct.
//!
//! Only the Vec surface the simulator uses is provided: `push`, slice
//! deref, owned/borrowed iteration, `FromIterator`. Capacity overflow is
//! a bug in the caller and panics.

use core::fmt;
use core::ops::Deref;

/// A vector of at most `N` `Copy` elements stored inline.
#[derive(Clone, Copy)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    buf: [T; N],
    len: usize,
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty vector.
    #[inline]
    #[must_use]
    pub fn new() -> Self {
        InlineVec {
            buf: [T::default(); N],
            len: 0,
        }
    }

    /// Appends `value`.
    ///
    /// # Panics
    ///
    /// Panics if the vector already holds `N` elements.
    #[inline]
    pub fn push(&mut self, value: T) {
        assert!(self.len < N, "InlineVec capacity ({N}) exceeded");
        self.buf[self.len] = value;
        self.len += 1;
    }

    /// Number of elements.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a slice.
    #[inline]
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        &self.buf[..self.len]
    }

    /// The elements as a mutable slice.
    #[inline]
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.buf[..self.len]
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        self.len = 0;
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = Self::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = core::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Owned iterator over an [`InlineVec`] (elements are `Copy`).
pub struct InlineVecIter<T: Copy + Default, const N: usize> {
    vec: InlineVec<T, N>,
    pos: usize,
}

impl<T: Copy + Default, const N: usize> Iterator for InlineVecIter<T, N> {
    type Item = T;

    #[inline]
    fn next(&mut self) -> Option<T> {
        if self.pos < self.vec.len {
            let item = self.vec.buf[self.pos];
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.vec.len - self.pos;
        (rest, Some(rest))
    }
}

impl<T: Copy + Default, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = InlineVecIter<T, N>;

    fn into_iter(self) -> Self::IntoIter {
        InlineVecIter { vec: self, pos: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_len_slice_round_trip() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert_eq!(v.len(), 3);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(&v[1..], &[2, 3]); // Deref to slice
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn iteration_owned_and_borrowed() {
        let v: InlineVec<u32, 8> = (0..5).collect();
        let doubled: Vec<u32> = (&v).into_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8]);
        let owned: Vec<u32> = v.into_iter().collect();
        assert_eq!(owned, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn equality_ignores_spare_capacity() {
        let a: InlineVec<u8, 4> = [1, 2].into_iter().collect();
        let mut b: InlineVec<u8, 4> = [1, 2, 9].into_iter().collect();
        assert_ne!(a, b);
        b.clear();
        b.push(1);
        b.push(2);
        assert_eq!(a, b, "stale spare slots must not affect equality");
        assert_eq!(format!("{a:?}"), "[1, 2]");
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn overflow_panics() {
        let mut v: InlineVec<u8, 2> = InlineVec::new();
        v.push(0);
        v.push(1);
        v.push(2);
    }
}
