//! Trace operations: the interface between workload generators and cores.

use crate::addr::VirtAddr;
use crate::ids::RwKind;
use core::fmt;

/// One operation of a workload trace.
///
/// Workload generators ([`ndp-workloads`]) emit streams of `Op`s; the
/// simulated core executes them in order. The paper simulates 500 M
/// instructions per core; each memory instruction maps to one `Op::Load` /
/// `Op::Store`, and non-memory instructions are aggregated into
/// `Op::Compute` batches (a standard trace-driven abstraction).
///
/// [`ndp-workloads`]: ../../ndp_workloads/index.html
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A load from a virtual address.
    Load(VirtAddr),
    /// A store to a virtual address.
    Store(VirtAddr),
    /// `n` cycles of pure computation (no memory traffic).
    Compute(u32),
}

impl Op {
    /// The virtual address touched, if this is a memory operation.
    #[must_use]
    pub fn addr(self) -> Option<VirtAddr> {
        match self {
            Op::Load(a) | Op::Store(a) => Some(a),
            Op::Compute(_) => None,
        }
    }

    /// The access direction, if this is a memory operation.
    #[must_use]
    pub fn rw(self) -> Option<RwKind> {
        match self {
            Op::Load(_) => Some(RwKind::Read),
            Op::Store(_) => Some(RwKind::Write),
            Op::Compute(_) => None,
        }
    }

    /// Whether this op touches memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        !matches!(self, Op::Compute(_))
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Load(a) => write!(f, "ld {a}"),
            Op::Store(a) => write!(f, "st {a}"),
            Op::Compute(n) => write!(f, "compute {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let a = VirtAddr::new(0x1000);
        assert_eq!(Op::Load(a).addr(), Some(a));
        assert_eq!(Op::Store(a).rw(), Some(RwKind::Write));
        assert_eq!(Op::Compute(8).addr(), None);
        assert!(Op::Load(a).is_memory());
        assert!(!Op::Compute(1).is_memory());
    }

    #[test]
    fn display() {
        assert_eq!(Op::Load(VirtAddr::new(0x10)).to_string(), "ld 0x10");
        assert_eq!(Op::Compute(3).to_string(), "compute 3");
    }
}
