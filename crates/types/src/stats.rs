//! Light-weight statistics primitives used by every subsystem.

use crate::cycles::Cycles;
use core::fmt;

/// A hit/miss pair with derived rates.
///
/// # Examples
///
/// ```
/// use ndp_types::stats::HitMiss;
///
/// let mut hm = HitMiss::default();
/// hm.record(true);
/// hm.record(false);
/// hm.record(false);
/// assert_eq!(hm.total(), 3);
/// assert!((hm.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HitMiss {
    /// Number of hits.
    pub hits: u64,
    /// Number of misses.
    pub misses: u64,
}

impl HitMiss {
    /// Records one access.
    pub fn record(&mut self, hit: bool) {
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
    }

    /// Total accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate in `[0, 1]`; zero when no accesses were recorded.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.hits as f64 / self.total() as f64
        }
    }

    /// Miss rate in `[0, 1]`; zero when no accesses were recorded.
    #[must_use]
    pub fn miss_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.misses as f64 / self.total() as f64
        }
    }

    /// Accumulates another counter into this one.
    pub fn merge(&mut self, other: &HitMiss) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

impl fmt::Display for HitMiss {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} hits ({:.2}%)",
            self.hits,
            self.total(),
            self.hit_rate() * 100.0
        )
    }
}

/// An accumulator of latency samples (count, sum, max) supporting averages
/// without storing every sample.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStat {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: Cycles,
    /// Largest sample seen.
    pub max: Cycles,
}

impl LatencyStat {
    /// Records one latency sample.
    pub fn record(&mut self, latency: Cycles) {
        self.count += 1;
        self.sum += latency;
        self.max = self.max.max(latency);
    }

    /// Mean latency in cycles; zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum.as_f64() / self.count as f64
        }
    }

    /// Accumulates another stat into this one.
    pub fn merge(&mut self, other: &LatencyStat) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for LatencyStat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} max={}",
            self.count,
            self.mean(),
            self.max.as_u64()
        )
    }
}

/// A power-of-two-bucketed latency histogram: bucket `i` counts samples in
/// `[2^i, 2^(i+1))` cycles (bucket 0 covers 0 and 1).
///
/// Cheap enough to keep per run, rich enough to see the bimodal PTW
/// distributions behind Fig 4's "up to 1066 cycles" tail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; 24],
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram { buckets: [0; 24] }
    }

    /// Records one sample.
    pub fn record(&mut self, latency: Cycles) {
        let v = latency.as_u64();
        let idx = (64 - v.max(1).leading_zeros() as usize - 1).min(self.buckets.len() - 1);
        self.buckets[idx] += 1;
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The approximate `q`-quantile (upper bucket bound), `q` in `[0, 1]`.
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                return (2u64 << i).saturating_sub(1);
            }
        }
        u64::MAX
    }

    /// Iterates `(bucket_lower_bound, count)` over non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
    }

    /// Accumulates another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Geometric mean of a slice of positive values; `1.0` for an empty slice.
///
/// Used for the paper's "average speedup" aggregations (Figs 12–14).
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_rates() {
        let mut hm = HitMiss::default();
        assert_eq!(hm.hit_rate(), 0.0);
        assert_eq!(hm.miss_rate(), 0.0);
        for _ in 0..3 {
            hm.record(true);
        }
        hm.record(false);
        assert_eq!(hm.total(), 4);
        assert!((hm.hit_rate() - 0.75).abs() < 1e-12);
        assert!((hm.miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn hit_miss_merge() {
        let mut a = HitMiss { hits: 1, misses: 2 };
        let b = HitMiss { hits: 3, misses: 4 };
        a.merge(&b);
        assert_eq!(a, HitMiss { hits: 4, misses: 6 });
    }

    #[test]
    fn latency_stat() {
        let mut s = LatencyStat::default();
        assert_eq!(s.mean(), 0.0);
        s.record(Cycles::new(10));
        s.record(Cycles::new(30));
        assert_eq!(s.count, 2);
        assert_eq!(s.max, Cycles::new(30));
        assert!((s.mean() - 20.0).abs() < 1e-12);

        let mut t = LatencyStat::default();
        t.record(Cycles::new(50));
        s.merge(&t);
        assert_eq!(s.count, 3);
        assert_eq!(s.max, Cycles::new(50));
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(Cycles::new(v));
        }
        assert_eq!(h.count(), 6);
        // Bucket bounds: 1→[1,2) 2,3→[2,4) 4→[4,8) 100→[64,128) 1000→[512,1024)
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        assert_eq!(buckets[0], (1, 1));
        assert_eq!(buckets[1], (2, 2));
        assert!(h.quantile(1.0) >= 1000);
        assert!(h.quantile(0.5) <= 7);
        let mut other = LatencyHistogram::new();
        other.record(Cycles::new(1_000_000));
        h.merge(&other);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_extremes() {
        let mut h = LatencyHistogram::new();
        h.record(Cycles::ZERO);
        h.record(Cycles::new(u64::MAX));
        assert_eq!(h.count(), 2);
        assert!(h.iter().count() == 2);
    }

    #[test]
    fn geomean_basics() {
        assert_eq!(geomean(&[]), 1.0);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn displays() {
        let mut hm = HitMiss::default();
        hm.record(true);
        assert!(hm.to_string().contains("1/1"));
        let mut ls = LatencyStat::default();
        ls.record(Cycles::new(5));
        assert!(ls.to_string().contains("mean=5.00"));
    }
}
