//! Shared fast hashing for the simulator's hot maps.
//!
//! The page-table mechanisms index nodes by owning frame (`by_frame`
//! maps) on every walk and map call, and the trace profiler counts
//! page touches per op — all keyed by small integers. `std`'s default
//! SipHash is DoS-resistant but costs ~10× what these lookups need, so
//! the hot maps use an FxHash-style multiply hasher instead via the
//! [`FastMap`]/[`FastSet`] aliases.
//!
//! The hasher is fixed-seed, so iteration order is deterministic — a
//! property the reproduction's bit-identical-runs guarantee leans on.
//!
//! With the `legacy_hotpath` feature the aliases revert to the
//! SipHash-backed `std` defaults, rebuilding the pre-overhaul hot path so
//! `ndpsim bench` can measure the difference within one tree.

use core::hash::{BuildHasherDefault, Hasher};
use std::collections::{HashMap, HashSet};

/// Multiplier from the Fx (Firefox/rustc) hash: the 64-bit golden ratio.
const SEED: u64 = 0x517c_c1b7_2722_0a95;

/// An FxHash-style word-at-a-time multiply hasher.
///
/// Not DoS-resistant — keys here are simulator-internal frame numbers and
/// page numbers, never attacker-controlled input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FastHasher`] (fixed seed, deterministic order).
pub type FastBuildHasher = BuildHasherDefault<FastHasher>;

/// A `HashMap` on the shared fast hasher (hot-path default).
#[cfg(not(feature = "legacy_hotpath"))]
pub type FastMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` on the shared fast hasher (hot-path default).
#[cfg(not(feature = "legacy_hotpath"))]
pub type FastSet<T> = HashSet<T, FastBuildHasher>;

/// Legacy baseline: the seed's SipHash-backed map.
#[cfg(feature = "legacy_hotpath")]
pub type FastMap<K, V> = HashMap<K, V>;

/// Legacy baseline: the seed's SipHash-backed set.
#[cfg(feature = "legacy_hotpath")]
pub type FastSet<T> = HashSet<T>;

#[cfg(test)]
mod tests {
    use super::*;
    use core::hash::BuildHasher;

    #[test]
    fn map_and_set_round_trip() {
        let mut m: FastMap<u64, usize> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 7919, i as usize);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 7919)), Some(&(i as usize)));
        }
        let mut s: FastSet<u64> = FastSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.contains(&42));
    }

    #[test]
    fn hashes_are_deterministic_and_spread() {
        let build = FastBuildHasher::default();
        let h = |x: u64| build.hash_one(x);
        assert_eq!(h(123), h(123));
        // Consecutive keys must land far apart (the maps key on
        // consecutive frame numbers).
        let mut top_bytes: FastSet<u8> = FastSet::default();
        for i in 0..256u64 {
            top_bytes.insert((h(i) >> 56) as u8);
        }
        assert!(
            top_bytes.len() > 100,
            "only {} distinct top bytes",
            top_bytes.len()
        );
    }

    #[test]
    fn byte_writes_cover_all_widths() {
        use core::hash::Hasher;
        let mut h = FastHasher::default();
        h.write_u8(1);
        h.write_u16(2);
        h.write_u32(3);
        h.write_u64(4);
        h.write_usize(5);
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_ne!(h.finish(), 0);
    }
}
