//! Core identifiers and memory-request classification.

use core::fmt;

/// Identifier of a simulated process (one private address space), dense
/// from zero across the whole machine. Processes are scheduled round-robin
/// onto cores; each owns its own page table and trace stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcessId(pub u32);

impl ProcessId {
    /// Returns the raw index.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as a `u64` (seed arithmetic).
    #[must_use]
    pub const fn as_u64(self) -> u64 {
        self.0 as u64
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(raw: u32) -> Self {
        ProcessId(raw)
    }
}

/// Address-space identifier tagging TLB entries, PWC tags and walker state
/// so translations of co-scheduled processes never alias. `Asid(0)` is the
/// untagged/default namespace: single-process runs and untagged-TLB
/// ablations (which must full-flush on every context switch) both live
/// there.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asid(pub u16);

impl Asid {
    /// The untagged/default address-space tag.
    pub const ZERO: Asid = Asid(0);

    /// Bit width reserved for ASID tag bits above a VPN-derived tag
    /// (VPNs and level prefixes occupy at most 37 bits).
    pub const TAG_SHIFT: u32 = 40;

    /// Returns the raw identifier.
    #[must_use]
    pub const fn as_u16(self) -> u16 {
        self.0
    }

    /// The ASID as high tag bits, for packing into a `u64` alongside a
    /// VPN-derived tag: `vpn_tag | asid.tag_bits()`. `Asid::ZERO`
    /// contributes no bits, so untagged state is bit-identical to the
    /// pre-ASID layout.
    #[must_use]
    pub const fn tag_bits(self) -> u64 {
        (self.0 as u64) << Self::TAG_SHIFT
    }
}

impl fmt::Display for Asid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asid{}", self.0)
    }
}

impl From<u16> for Asid {
    fn from(raw: u16) -> Self {
        Asid(raw)
    }
}

/// Identifier of a simulated core (NDP or CPU), dense from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Returns the raw index.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u32> for CoreId {
    fn from(raw: u32) -> Self {
        CoreId(raw)
    }
}

/// Classification of a memory request, the pivot of NDPage's bypass
/// mechanism (paper §V-A).
///
/// * `Data` — a normal program access ("normal data" in the paper).
/// * `Metadata` — a page-table-entry access issued by the page-table walker
///   ("metadata"). NDPage makes these non-cacheable in the NDP L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Normal program data.
    Data,
    /// Page-table entries fetched during a walk.
    Metadata,
}

impl AccessClass {
    /// Whether this is a metadata (PTE) access.
    #[must_use]
    pub const fn is_metadata(self) -> bool {
        matches!(self, AccessClass::Metadata)
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessClass::Data => f.write_str("data"),
            AccessClass::Metadata => f.write_str("metadata"),
        }
    }
}

/// Read/write direction of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RwKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl RwKind {
    /// Whether this is a store.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, RwKind::Write)
    }
}

impl fmt::Display for RwKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RwKind::Read => f.write_str("read"),
            RwKind::Write => f.write_str("write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_display_and_index() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(CoreId::from(7u32).as_usize(), 7);
    }

    #[test]
    fn process_id_display_and_index() {
        assert_eq!(ProcessId(2).to_string(), "proc2");
        assert_eq!(ProcessId::from(5u32).as_usize(), 5);
        assert_eq!(ProcessId(9).as_u64(), 9);
    }

    #[test]
    fn asid_tag_bits_pack_above_vpn_tags() {
        assert_eq!(Asid::ZERO.tag_bits(), 0, "ASID 0 must be bit-neutral");
        let max_vpn_tag = (1u64 << 37) - 1; // key_for packs 36-bit VPN + 1 bit
        assert_eq!(Asid(1).tag_bits() & max_vpn_tag, 0, "no overlap");
        assert_eq!(Asid(3).tag_bits() >> Asid::TAG_SHIFT, 3);
        assert_eq!(Asid::from(4u16).as_u16(), 4);
        assert_eq!(Asid(7).to_string(), "asid7");
    }

    #[test]
    fn class_predicates() {
        assert!(AccessClass::Metadata.is_metadata());
        assert!(!AccessClass::Data.is_metadata());
        assert_eq!(AccessClass::Metadata.to_string(), "metadata");
    }

    #[test]
    fn rw_predicates() {
        assert!(RwKind::Write.is_write());
        assert!(!RwKind::Read.is_write());
        assert_eq!(RwKind::Read.to_string(), "read");
    }
}
