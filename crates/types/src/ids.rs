//! Core identifiers and memory-request classification.

use core::fmt;

/// Identifier of a simulated core (NDP or CPU), dense from zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub u32);

impl CoreId {
    /// Returns the raw index.
    #[must_use]
    pub const fn as_usize(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl From<u32> for CoreId {
    fn from(raw: u32) -> Self {
        CoreId(raw)
    }
}

/// Classification of a memory request, the pivot of NDPage's bypass
/// mechanism (paper §V-A).
///
/// * `Data` — a normal program access ("normal data" in the paper).
/// * `Metadata` — a page-table-entry access issued by the page-table walker
///   ("metadata"). NDPage makes these non-cacheable in the NDP L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessClass {
    /// Normal program data.
    Data,
    /// Page-table entries fetched during a walk.
    Metadata,
}

impl AccessClass {
    /// Whether this is a metadata (PTE) access.
    #[must_use]
    pub const fn is_metadata(self) -> bool {
        matches!(self, AccessClass::Metadata)
    }
}

impl fmt::Display for AccessClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessClass::Data => f.write_str("data"),
            AccessClass::Metadata => f.write_str("metadata"),
        }
    }
}

/// Read/write direction of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RwKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

impl RwKind {
    /// Whether this is a store.
    #[must_use]
    pub const fn is_write(self) -> bool {
        matches!(self, RwKind::Write)
    }
}

impl fmt::Display for RwKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RwKind::Read => f.write_str("read"),
            RwKind::Write => f.write_str("write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_display_and_index() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(CoreId::from(7u32).as_usize(), 7);
    }

    #[test]
    fn class_predicates() {
        assert!(AccessClass::Metadata.is_metadata());
        assert!(!AccessClass::Data.is_metadata());
        assert_eq!(AccessClass::Metadata.to_string(), "metadata");
    }

    #[test]
    fn rw_predicates() {
        assert!(RwKind::Write.is_write());
        assert!(!RwKind::Read.is_write());
        assert_eq!(RwKind::Read.to_string(), "read");
    }
}
