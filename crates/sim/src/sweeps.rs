//! Extension studies beyond the paper's figures: parameter sweeps that
//! probe *why* NDPage works and where its advantage would end.
//!
//! * [`pwc_size_sweep`] — grows the per-level PWCs. The paper's §V-C
//!   argument predicts NDPage's edge shrinks as PWCs get large enough to
//!   cover PL2/PL1 prefixes (flattening removes misses a big-enough PWC
//!   would also remove), but bypass keeps a residual advantage.
//! * [`tlb_reach_sweep`] — grows the L2 TLB. With enough reach the walk
//!   rate collapses and every mechanism converges toward Ideal.
//! * [`fracturing_ablation`] — re-runs Huge Page with native 2 MB TLB
//!   entries (fracturing off) to expose how much of its Fig 12 deficit
//!   comes from TLB support rather than the table structure.

use crate::config::{SimConfig, SystemKind};
use crate::machine::Machine;
use crate::parallel::par_map;
use crate::report::RunReport;
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

/// One point of the PWC-size sweep.
#[derive(Debug, Clone)]
pub struct PwcSweepPoint {
    /// Entries per PWC level.
    pub entries: usize,
    /// Radix run at this size.
    pub radix: RunReport,
    /// NDPage run at this size.
    pub ndpage: RunReport,
}

impl PwcSweepPoint {
    /// NDPage's speedup over Radix at this PWC size.
    #[must_use]
    pub fn ndpage_speedup(&self) -> f64 {
        self.ndpage.speedup_over(&self.radix)
    }
}

/// Sweeps per-level PWC capacity on a 4-core NDP system.
///
/// Sweep points fan out across worker threads ([`par_map`]); every
/// [`Machine`] is self-contained and seeded, so results and order are
/// identical to a serial loop.
#[must_use]
pub fn pwc_size_sweep(
    workload: WorkloadId,
    sizes: &[usize],
    base: &SimConfig,
) -> Vec<PwcSweepPoint> {
    let runs: Vec<SimConfig> = sizes
        .iter()
        .flat_map(|&entries| {
            [Mechanism::Radix, Mechanism::NdPage].map(|m| {
                let mut cfg = with_base(SimConfig::new(SystemKind::Ndp, 4, m, workload), base);
                cfg.pwc_entries = Some(entries);
                cfg
            })
        })
        .collect();
    let mut reports = par_map(runs, |cfg| Machine::new(cfg).run()).into_iter();
    sizes
        .iter()
        .map(|&entries| PwcSweepPoint {
            entries,
            radix: reports.next().expect("one radix report per size"),
            ndpage: reports.next().expect("one ndpage report per size"),
        })
        .collect()
}

/// One point of the TLB-reach sweep.
#[derive(Debug, Clone)]
pub struct TlbSweepPoint {
    /// L2 TLB entries.
    pub entries: u32,
    /// Radix run.
    pub radix: RunReport,
    /// NDPage run.
    pub ndpage: RunReport,
}

/// Sweeps the L2 TLB size on a 4-core NDP system. Entries must satisfy
/// [`SimConfig::validate`]'s 12-way power-of-two-sets constraint
/// (e.g. 384, 768, 1536, 3072, 6144).
#[must_use]
pub fn tlb_reach_sweep(
    workload: WorkloadId,
    sizes: &[u32],
    base: &SimConfig,
) -> Vec<TlbSweepPoint> {
    let runs: Vec<SimConfig> = sizes
        .iter()
        .flat_map(|&entries| {
            [Mechanism::Radix, Mechanism::NdPage].map(|m| {
                let mut cfg = with_base(SimConfig::new(SystemKind::Ndp, 4, m, workload), base);
                cfg.tlb_l2_entries = Some(entries);
                cfg
            })
        })
        .collect();
    let mut reports = par_map(runs, |cfg| Machine::new(cfg).run()).into_iter();
    sizes
        .iter()
        .map(|&entries| TlbSweepPoint {
            entries,
            radix: reports.next().expect("one radix report per size"),
            ndpage: reports.next().expect("one ndpage report per size"),
        })
        .collect()
}

/// Result of the Huge Page fracturing ablation.
#[derive(Debug, Clone)]
pub struct FracturingAblation {
    /// Huge Page with fractured (4 KB) TLB fills — the paper's treatment.
    pub fractured: RunReport,
    /// Huge Page with native 2 MB TLB entries.
    pub native: RunReport,
    /// Radix baseline for reference.
    pub radix: RunReport,
}

/// Runs Huge Page with and without TLB fracturing on a 1-core NDP system.
#[must_use]
pub fn fracturing_ablation(workload: WorkloadId, base: &SimConfig) -> FracturingAblation {
    let radix_cfg = with_base(
        SimConfig::new(SystemKind::Ndp, 1, Mechanism::Radix, workload),
        base,
    );
    let fractured_cfg = with_base(
        SimConfig::new(SystemKind::Ndp, 1, Mechanism::HugePage, workload),
        base,
    );
    let mut native_cfg = fractured_cfg.clone();
    native_cfg.tlb_fracture_huge = Some(false);
    let mut reports = par_map(vec![radix_cfg, fractured_cfg, native_cfg], |cfg| {
        Machine::new(cfg).run()
    })
    .into_iter();
    FracturingAblation {
        radix: reports.next().expect("radix report"),
        fractured: reports.next().expect("fractured report"),
        native: reports.next().expect("native report"),
    }
}

fn with_base(mut cfg: SimConfig, base: &SimConfig) -> SimConfig {
    cfg.warmup_ops = base.warmup_ops;
    cfg.measure_ops = base.measure_ops;
    cfg.footprint_override = base.footprint_override;
    cfg.seed = base.seed;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> SimConfig {
        SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd)
            .with_ops(2_000, 5_000)
            .with_footprint(512 << 20)
    }

    #[test]
    fn pwc_sweep_monotonically_helps_radix() {
        let points = pwc_size_sweep(WorkloadId::Rnd, &[8, 512], &quick_base());
        assert_eq!(points.len(), 2);
        // Bigger PWCs cannot make Radix walk *more* memory fetches.
        let small = &points[0].radix;
        let large = &points[1].radix;
        assert!(
            large.mem_traffic.metadata <= small.mem_traffic.metadata,
            "PWC growth must absorb PTE fetches: {} vs {}",
            large.mem_traffic.metadata,
            small.mem_traffic.metadata
        );
        for p in &points {
            assert!(p.ndpage_speedup() > 0.8, "sanity at {} entries", p.entries);
        }
    }

    #[test]
    fn tlb_sweep_reduces_walks() {
        let points = tlb_reach_sweep(WorkloadId::Rnd, &[384, 6144], &quick_base());
        let small = &points[0].radix;
        let large = &points[1].radix;
        assert!(
            large.ptw.count <= small.ptw.count,
            "more TLB reach, fewer walks: {} vs {}",
            large.ptw.count,
            small.ptw.count
        );
    }

    #[test]
    fn native_2mb_tlb_entries_help_huge_page() {
        let ab = fracturing_ablation(WorkloadId::Rnd, &quick_base());
        assert!(
            ab.native.tlb_walk_rate() < ab.fractured.tlb_walk_rate(),
            "native 2 MB entries slash the walk rate: {} vs {}",
            ab.native.tlb_walk_rate(),
            ab.fractured.tlb_walk_rate()
        );
        assert!(ab.native.total_cycles <= ab.fractured.total_cycles);
    }
}
