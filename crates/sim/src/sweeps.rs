//! Extension studies beyond the paper's figures: parameter sweeps that
//! probe *why* NDPage works and where its advantage would end.
//!
//! * [`pwc_size_sweep`] — grows the per-level PWCs. The paper's §V-C
//!   argument predicts NDPage's edge shrinks as PWCs get large enough to
//!   cover PL2/PL1 prefixes (flattening removes misses a big-enough PWC
//!   would also remove), but bypass keeps a residual advantage.
//! * [`tlb_reach_sweep`] — grows the L2 TLB. With enough reach the walk
//!   rate collapses and every mechanism converges toward Ideal.
//! * [`fracturing_ablation`] — re-runs Huge Page with native 2 MB TLB
//!   entries (fracturing off) to expose how much of its Fig 12 deficit
//!   comes from TLB support rather than the table structure.
//! * [`context_switch_sweep`] — multiprograms two processes per core and
//!   sweeps the scheduling quantum, with ASID tagging on and off. The
//!   untagged runs full-flush TLBs and PWCs at every switch; the sweep
//!   measures how quickly each mechanism re-warms — NDPage's flattened
//!   single-fetch walks refill the TLB far cheaper than Radix's four-level
//!   descents, so its flush penalty is structurally smaller.
//! * [`mlp_sweep`] — widens the per-core issue window (with matching
//!   MSHRs). Data misses overlap; page walks still queue for the
//!   hardware walker — so translation's *share* of each op grows with
//!   the window and NDPage's cheap walks matter more, not less.
//! * [`shared_llc_sweep`] — multiprograms co-runners onto a machine with
//!   a real shared banked L3 and shrinks its capacity. Radix's PTE
//!   fetches depend on shared capacity (their L3 hit rate collapses
//!   under pressure while they keep contending for bank ports); NDPage's
//!   bypassed PTE fetches never touch the shared cache, so its
//!   translation cost is *insensitive* to cache pressure — the paper's
//!   central claim, made measurable.

//!
//! Every sweep here is a thin wrapper over the declarative spec engine
//! ([`crate::spec`]): it builds a [`SweepSpec`] whose grid expands in
//! exactly the order the old hand-rolled loops iterated, runs it through
//! [`run_sweep`], and projects the reports into its typed rows — so the
//! outputs are bit-identical to the pre-spec implementations
//! (`tests/spec_api.rs` asserts this against hand-rolled serial loops).

use crate::config::{SimConfig, SystemKind};
use crate::report::RunReport;
use crate::spec::{run_sweep, SweepSpec};
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

/// One point of the PWC-size sweep.
#[derive(Debug, Clone)]
pub struct PwcSweepPoint {
    /// Entries per PWC level.
    pub entries: usize,
    /// Radix run at this size.
    pub radix: RunReport,
    /// NDPage run at this size.
    pub ndpage: RunReport,
}

impl PwcSweepPoint {
    /// NDPage's speedup over Radix at this PWC size.
    #[must_use]
    pub fn ndpage_speedup(&self) -> f64 {
        self.ndpage.speedup_over(&self.radix)
    }
}

/// Sweeps per-level PWC capacity on a 4-core NDP system.
///
/// Sweep points fan out across worker threads ([`par_map`]); every
/// [`Machine`] is self-contained and seeded, so results and order are
/// identical to a serial loop.
#[must_use]
pub fn pwc_size_sweep(
    workload: WorkloadId,
    sizes: &[usize],
    base: &SimConfig,
) -> Vec<PwcSweepPoint> {
    let spec = SweepSpec::new(with_base(
        SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, workload),
        base,
    ))
    .named("pwc_size_sweep")
    .axis("pwc_entries", sizes)
    .axis("mechanism", &["radix", "ndpage"]);
    let mut reports = run_sweep(&spec)
        .expect("pwc_size_sweep spec is valid")
        .into_reports()
        .into_iter();
    sizes
        .iter()
        .map(|&entries| PwcSweepPoint {
            entries,
            radix: reports.next().expect("one radix report per size"),
            ndpage: reports.next().expect("one ndpage report per size"),
        })
        .collect()
}

/// One point of the TLB-reach sweep.
#[derive(Debug, Clone)]
pub struct TlbSweepPoint {
    /// L2 TLB entries.
    pub entries: u32,
    /// Radix run.
    pub radix: RunReport,
    /// NDPage run.
    pub ndpage: RunReport,
}

/// Sweeps the L2 TLB size on a 4-core NDP system. Entries must satisfy
/// [`SimConfig::validate`]'s 12-way power-of-two-sets constraint
/// (e.g. 384, 768, 1536, 3072, 6144).
#[must_use]
pub fn tlb_reach_sweep(
    workload: WorkloadId,
    sizes: &[u32],
    base: &SimConfig,
) -> Vec<TlbSweepPoint> {
    let spec = SweepSpec::new(with_base(
        SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, workload),
        base,
    ))
    .named("tlb_reach_sweep")
    .axis("tlb_l2_entries", sizes)
    .axis("mechanism", &["radix", "ndpage"]);
    let mut reports = run_sweep(&spec)
        .expect("tlb_reach_sweep spec is valid")
        .into_reports()
        .into_iter();
    sizes
        .iter()
        .map(|&entries| TlbSweepPoint {
            entries,
            radix: reports.next().expect("one radix report per size"),
            ndpage: reports.next().expect("one ndpage report per size"),
        })
        .collect()
}

/// Result of the Huge Page fracturing ablation.
#[derive(Debug, Clone)]
pub struct FracturingAblation {
    /// Huge Page with fractured (4 KB) TLB fills — the paper's treatment.
    pub fractured: RunReport,
    /// Huge Page with native 2 MB TLB entries.
    pub native: RunReport,
    /// Radix baseline for reference.
    pub radix: RunReport,
}

/// Runs Huge Page with and without TLB fracturing on a 1-core NDP system.
#[must_use]
pub fn fracturing_ablation(workload: WorkloadId, base: &SimConfig) -> FracturingAblation {
    // Not a cross product: one paired axis whose three points are the
    // Radix baseline and Huge Page with fracturing on/off.
    let spec = SweepSpec::new(with_base(
        SimConfig::new(SystemKind::Ndp, 1, Mechanism::Radix, workload),
        base,
    ))
    .named("fracturing_ablation")
    .paired_axis(vec![
        vec![("mechanism", "radix".to_string())],
        vec![("mechanism", "hugepage".to_string())],
        vec![
            ("mechanism", "hugepage".to_string()),
            ("tlb_fracture_huge", "false".to_string()),
        ],
    ]);
    let mut reports = run_sweep(&spec)
        .expect("fracturing_ablation spec is valid")
        .into_reports()
        .into_iter();
    FracturingAblation {
        radix: reports.next().expect("radix report"),
        fractured: reports.next().expect("fractured report"),
        native: reports.next().expect("native report"),
    }
}

/// One point of the context-switch sweep: both mechanisms, tagged and
/// untagged, at one scheduling quantum.
#[derive(Debug, Clone)]
pub struct CtxSwitchPoint {
    /// Ops per scheduling quantum.
    pub quantum: u64,
    /// Radix with ASID-tagged TLBs/PWCs (warm entries survive switches).
    pub radix_tagged: RunReport,
    /// Radix with untagged TLBs/PWCs (full flush per switch).
    pub radix_untagged: RunReport,
    /// NDPage, tagged.
    pub ndpage_tagged: RunReport,
    /// NDPage, untagged.
    pub ndpage_untagged: RunReport,
}

impl CtxSwitchPoint {
    /// The sweep runs exactly Radix and NDPage; anything else has no data
    /// here and must not silently read out as Radix's numbers.
    fn runs_for(&self, mechanism: Mechanism) -> (&RunReport, &RunReport) {
        match mechanism {
            Mechanism::Radix => (&self.radix_tagged, &self.radix_untagged),
            Mechanism::NdPage => (&self.ndpage_tagged, &self.ndpage_untagged),
            other => panic!("context_switch_sweep holds no {other} runs"),
        }
    }

    /// Slowdown a mechanism suffers from losing ASID tags (untagged /
    /// tagged cycles; ≥ 1 when flushing hurts).
    ///
    /// # Panics
    ///
    /// Panics for mechanisms other than Radix and NDPage — the sweep only
    /// runs those two.
    #[must_use]
    pub fn flush_penalty(&self, mechanism: Mechanism) -> f64 {
        let (tagged, untagged) = self.runs_for(mechanism);
        if tagged.total_cycles.as_u64() == 0 {
            return 0.0;
        }
        untagged.total_cycles.as_f64() / tagged.total_cycles.as_f64()
    }

    /// Mean latency of a post-switch (cold-window) walk on the untagged
    /// run — the per-walk price of re-warming translation state after a
    /// flush.
    ///
    /// # Panics
    ///
    /// Panics for mechanisms other than Radix and NDPage — the sweep only
    /// runs those two.
    #[must_use]
    pub fn post_flush_walk_cost(&self, mechanism: Mechanism) -> f64 {
        let (_, untagged) = self.runs_for(mechanism);
        if untagged.sched.post_switch_walks == 0 {
            return 0.0;
        }
        untagged.sched.post_switch_walk_cycles as f64 / untagged.sched.post_switch_walks as f64
    }

    /// How much faster NDPage recovers from flushes than Radix: the ratio
    /// of their post-flush walk costs. Re-warming a flushed working set is
    /// one walk per hot page either way; each of Radix's costs a
    /// four-level descent on cold PWCs while NDPage's costs roughly one
    /// flat fetch, so this ratio is the structural recovery advantage
    /// (the wall-clock flush *penalty* additionally depends on how much of
    /// a workload's time walks dominate).
    #[must_use]
    pub fn ndpage_recovery_advantage(&self) -> f64 {
        let ndpage = self.post_flush_walk_cost(Mechanism::NdPage);
        if ndpage == 0.0 {
            return 0.0;
        }
        self.post_flush_walk_cost(Mechanism::Radix) / ndpage
    }
}

/// Sweeps the context-switch quantum with two processes per core on a
/// 2-core NDP system, running Radix and NDPage each with ASID tagging on
/// and off (4 runs per quantum, fanned out via [`par_map`]).
#[must_use]
pub fn context_switch_sweep(
    workload: WorkloadId,
    quanta: &[u64],
    base: &SimConfig,
) -> Vec<CtxSwitchPoint> {
    let spec = SweepSpec::new(
        with_base(
            SimConfig::new(SystemKind::Ndp, 2, Mechanism::Radix, workload),
            base,
        )
        .with_procs(2),
    )
    .named("context_switch_sweep")
    .axis("context_switch_quantum_ops", quanta)
    .axis("mechanism", &["radix", "ndpage"])
    .axis("tlb_tagging", &[true, false]);
    let mut reports = run_sweep(&spec)
        .expect("context_switch_sweep spec is valid")
        .into_reports()
        .into_iter();
    quanta
        .iter()
        .map(|&quantum| CtxSwitchPoint {
            quantum,
            radix_tagged: reports.next().expect("radix tagged report"),
            radix_untagged: reports.next().expect("radix untagged report"),
            ndpage_tagged: reports.next().expect("ndpage tagged report"),
            ndpage_untagged: reports.next().expect("ndpage untagged report"),
        })
        .collect()
}

/// One point of the memory-level-parallelism sweep.
#[derive(Debug, Clone)]
pub struct MlpSweepPoint {
    /// Issue-window size (MSHRs are set to match).
    pub window: u32,
    /// Radix run at this window.
    pub radix: RunReport,
    /// NDPage run at this window.
    pub ndpage: RunReport,
}

impl MlpSweepPoint {
    /// NDPage's speedup over Radix at this window size.
    #[must_use]
    pub fn ndpage_speedup(&self) -> f64 {
        self.ndpage.speedup_over(&self.radix)
    }
}

/// Sweeps the issue-window size (MSHRs matched to the window, walkers at
/// the base config's count) for Radix and NDPage on a 4-core NDP system.
/// Window 1 is the blocking core; larger windows overlap data misses
/// while walks keep queueing for the hardware walkers.
#[must_use]
pub fn mlp_sweep(workload: WorkloadId, windows: &[u32], base: &SimConfig) -> Vec<MlpSweepPoint> {
    let mut spec_base = with_base(
        SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, workload),
        base,
    );
    spec_base.walkers_per_core = base.walkers_per_core;
    let spec = SweepSpec::new(spec_base)
        .named("mlp_sweep")
        // A paired axis: MSHRs track the window at every point.
        .paired_axis(
            windows
                .iter()
                .map(|&w| {
                    vec![
                        ("mlp_window", w.to_string()),
                        ("mshrs_per_core", w.to_string()),
                    ]
                })
                .collect(),
        )
        .axis("mechanism", &["radix", "ndpage"]);
    let mut reports = run_sweep(&spec)
        .expect("mlp_sweep spec is valid")
        .into_reports()
        .into_iter();
    windows
        .iter()
        .map(|&window| MlpSweepPoint {
            window,
            radix: reports.next().expect("one radix report per window"),
            ndpage: reports.next().expect("one ndpage report per window"),
        })
        .collect()
}

/// One point of the shared-LLC interference sweep: both mechanisms,
/// co-run multiprogrammed, at one shared-L3 capacity.
#[derive(Debug, Clone)]
pub struct LlcSweepPoint {
    /// Shared-L3 capacity in KB (0 = shared layer disabled — the
    /// baseline point).
    pub l3_kb: u32,
    /// Radix run at this capacity.
    pub radix: RunReport,
    /// NDPage run at this capacity.
    pub ndpage: RunReport,
}

impl LlcSweepPoint {
    /// NDPage's speedup over Radix at this capacity.
    #[must_use]
    pub fn ndpage_speedup(&self) -> f64 {
        self.ndpage.speedup_over(&self.radix)
    }

    /// Radix's metadata hit rate in the shared L3 (0 when disabled) —
    /// the quantity cache pressure eats.
    #[must_use]
    pub fn radix_l3_metadata_hit_rate(&self) -> f64 {
        self.radix
            .l3
            .as_ref()
            .map_or(0.0, |l3| l3.metadata.hit_rate())
    }
}

/// Sweeps shared-L3 capacity on a 2-core NDP system with two
/// multiprogrammed processes per core (four co-running address spaces
/// squeezing one cache), for Radix and NDPage. A size of 0 runs the
/// shared layer disabled, anchoring the baseline in the same sweep.
#[must_use]
pub fn shared_llc_sweep(
    workload: WorkloadId,
    sizes_kb: &[u32],
    base: &SimConfig,
) -> Vec<LlcSweepPoint> {
    let spec = SweepSpec::new(
        with_base(
            SimConfig::new(SystemKind::Ndp, 2, Mechanism::Radix, workload),
            base,
        )
        .with_procs(2)
        .with_quantum(2_000),
    )
    .named("shared_llc_sweep")
    .axis("l3_kb", sizes_kb)
    .axis("mechanism", &["radix", "ndpage"]);
    let mut reports = run_sweep(&spec)
        .expect("shared_llc_sweep spec is valid")
        .into_reports()
        .into_iter();
    sizes_kb
        .iter()
        .map(|&l3_kb| LlcSweepPoint {
            l3_kb,
            radix: reports.next().expect("one radix report per size"),
            ndpage: reports.next().expect("one ndpage report per size"),
        })
        .collect()
}

fn with_base(mut cfg: SimConfig, base: &SimConfig) -> SimConfig {
    cfg.warmup_ops = base.warmup_ops;
    cfg.measure_ops = base.measure_ops;
    cfg.footprint_override = base.footprint_override;
    cfg.seed = base.seed;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_base() -> SimConfig {
        SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd)
            .with_ops(2_000, 5_000)
            .with_footprint(512 << 20)
    }

    #[test]
    fn pwc_sweep_monotonically_helps_radix() {
        let points = pwc_size_sweep(WorkloadId::Rnd, &[8, 512], &quick_base());
        assert_eq!(points.len(), 2);
        // Bigger PWCs cannot make Radix walk *more* memory fetches.
        let small = &points[0].radix;
        let large = &points[1].radix;
        assert!(
            large.mem_traffic.metadata <= small.mem_traffic.metadata,
            "PWC growth must absorb PTE fetches: {} vs {}",
            large.mem_traffic.metadata,
            small.mem_traffic.metadata
        );
        for p in &points {
            assert!(p.ndpage_speedup() > 0.8, "sanity at {} entries", p.entries);
        }
    }

    #[test]
    fn tlb_sweep_reduces_walks() {
        let points = tlb_reach_sweep(WorkloadId::Rnd, &[384, 6144], &quick_base());
        let small = &points[0].radix;
        let large = &points[1].radix;
        assert!(
            large.ptw.count <= small.ptw.count,
            "more TLB reach, fewer walks: {} vs {}",
            large.ptw.count,
            small.ptw.count
        );
    }

    #[test]
    fn context_switch_sweep_shows_flush_costs_and_ndpage_recovery() {
        // BFS has the hot/cold locality that makes a TLB flush expensive;
        // uniform-random GUPS barely notices one (its TLB is always cold).
        let base = quick_base().with_ops(4_000, 10_000);
        let points = context_switch_sweep(WorkloadId::Bfs, &[1_000], &base);
        assert_eq!(points.len(), 1);
        let p = &points[0];
        // Switches happened and untagged hardware flushed on every one.
        assert!(p.radix_untagged.sched.context_switches > 0);
        assert_eq!(
            p.radix_untagged.sched.tlb_flushes,
            p.radix_untagged.sched.context_switches
        );
        assert_eq!(p.radix_tagged.sched.tlb_flushes, 0, "tags avoid flushes");
        // Flushing costs walks: the untagged run walks strictly more.
        assert!(
            p.radix_untagged.tlb_walk_rate() > p.radix_tagged.tlb_walk_rate(),
            "untagged {} vs tagged {}",
            p.radix_untagged.tlb_walk_rate(),
            p.radix_tagged.tlb_walk_rate()
        );
        assert!(p.flush_penalty(Mechanism::Radix) > 1.0);
        // NDPage's flat walks re-warm the flushed state cheaper than
        // Radix's descents (~2 cold fetches vs 1 once the near-perfect
        // upper-level PWCs refill, modulo cache absorption).
        assert!(
            p.ndpage_recovery_advantage() > 1.15,
            "advantage {}",
            p.ndpage_recovery_advantage()
        );
        assert!(
            p.post_flush_walk_cost(Mechanism::Radix) > p.post_flush_walk_cost(Mechanism::NdPage)
        );
    }

    #[test]
    fn mlp_sweep_overlaps_misses_and_queues_walks() {
        let points = mlp_sweep(WorkloadId::Rnd, &[1, 8], &quick_base());
        assert_eq!(points.len(), 2);
        let blocking = &points[0];
        let windowed = &points[1];
        // Window 1 is the blocking core: no overlap artefacts at all
        // (its achieved MLP stays below one — every latency is exposed).
        assert_eq!(blocking.radix.mlp_window, 1);
        assert_eq!(blocking.radix.mlp.window_stall_cycles, 0);
        assert_eq!(blocking.radix.mlp.peak_inflight, 0);
        assert_eq!(blocking.radix.mlp.mshr_coalesced, 0);
        assert_eq!(blocking.radix.mlp.mshr_full_stalls, 0);
        assert_eq!(blocking.radix.mlp.walker_queued_walks, 0);
        assert!(blocking.radix.achieved_mlp() <= 1.0);
        // Window 8 overlaps: the same trace finishes faster, with real
        // memory-level parallelism and queued walks.
        assert!(
            windowed.radix.total_cycles < blocking.radix.total_cycles,
            "overlap must help: {} vs {}",
            windowed.radix.total_cycles,
            blocking.radix.total_cycles
        );
        assert!(
            windowed.radix.achieved_mlp() > 1.5,
            "achieved MLP {}",
            windowed.radix.achieved_mlp()
        );
        assert!(windowed.radix.mlp.peak_inflight > 1);
        assert!(
            windowed.radix.mlp.walker_queued_walks > 0,
            "GUPS walks must queue for the single walker"
        );
        // Radix queues at least as much walker time as NDPage: four-level
        // descents hold the walker longer than flattened fetches.
        assert!(
            windowed.radix.mlp.walker_queue_cycles >= windowed.ndpage.mlp.walker_queue_cycles,
            "radix {} vs ndpage {}",
            windowed.radix.mlp.walker_queue_cycles,
            windowed.ndpage.mlp.walker_queue_cycles
        );
    }

    #[test]
    fn shared_llc_sweep_diverges_under_cache_pressure() {
        // 0 KB anchors the no-shared-layer baseline; 256 KB is four
        // co-running address spaces squeezing a tiny cache; 8 MB is
        // ample capacity.
        let points = shared_llc_sweep(WorkloadId::Rnd, &[0, 256, 8192], &quick_base());
        assert_eq!(points.len(), 3);
        let disabled = &points[0];
        let small = &points[1];
        let large = &points[2];

        assert!(disabled.radix.l3.is_none(), "0 KB disables the layer");
        for p in [small, large] {
            let l3 = p.radix.l3.as_ref().expect("enabled point reports L3");
            assert!(l3.total().total() > 0, "the L3 was exercised");
            assert_eq!(
                p.ndpage.l3.as_ref().unwrap().metadata.total(),
                0,
                "NDPage's bypassed PTE fetches never probe the shared L3"
            );
        }

        // Cache pressure eats Radix's PTE hits: under the small L3 its
        // metadata hit rate is strictly lower, and the inclusive layer
        // visibly back-invalidates private lines.
        assert!(
            small.radix_l3_metadata_hit_rate() < large.radix_l3_metadata_hit_rate(),
            "pressure must cost Radix PTE hits: {} vs {}",
            small.radix_l3_metadata_hit_rate(),
            large.radix_l3_metadata_hit_rate()
        );
        assert!(small.radix.l3.as_ref().unwrap().back_invalidations > 0);

        // The acceptance shape: the mechanisms *diverge* measurably under
        // pressure — the NDPage-vs-Radix ratio moves when shared capacity
        // does, because only Radix's translation path depends on it.
        let divergence = (small.ndpage_speedup() - large.ndpage_speedup()).abs();
        assert!(
            divergence > 0.01,
            "cache pressure must move the NDPage-vs-Radix gap measurably, \
             got {:.4} vs {:.4}",
            small.ndpage_speedup(),
            large.ndpage_speedup()
        );
    }

    #[test]
    fn native_2mb_tlb_entries_help_huge_page() {
        let ab = fracturing_ablation(WorkloadId::Rnd, &quick_base());
        assert!(
            ab.native.tlb_walk_rate() < ab.fractured.tlb_walk_rate(),
            "native 2 MB entries slash the walk rate: {} vs {}",
            ab.native.tlb_walk_rate(),
            ab.fractured.tlb_walk_rate()
        );
        assert!(ab.native.total_cycles <= ab.fractured.total_cycles);
    }
}
