#![forbid(unsafe_code)]
//! The NDPage system simulator: trace-driven, mechanistic, multi-core.
//!
//! This crate wires every substrate together into the two systems of
//! Table I — the **NDP system** (cores in the logic layer of an HBM2 stack,
//! one 32 KB L1, one mesh hop to memory) and the **CPU system** (three
//! cache levels, off-chip DDR4) — and runs the paper's workloads under all
//! five translation mechanisms.
//!
//! # Model
//!
//! * **Cores** are in-order with a configurable memory pipeline: each
//!   trace op is a compute burst or one memory access. At the default
//!   `mlp_window = 1` the core is **blocking** — the op's full latency
//!   (translation + data) accrues to the core's clock before the next op
//!   issues, exactly as the paper models. Wider windows keep up to
//!   `mlp_window` memory ops in flight (retire-in-order), with same-line
//!   misses coalescing in per-core MSHR files and concurrent page walks
//!   queueing for the hardware walkers. Cores interleave through a
//!   conservative oldest-first event loop and contend in the shared
//!   memory controller — which is what makes NDP page-table-walk latency
//!   *grow* with core count (Fig 6) while CPU systems stay flat.
//! * **Translation** follows Fig 11: L1 TLB → L2 TLB → page-table walk.
//!   The walk consults per-level PWCs, then issues PTE fetches through the
//!   L1 (cacheable metadata) or straight to memory (NDPage bypass).
//! * **Multiprogramming**: each core runs its own instance of the workload
//!   in a private address space (its own page table), like the paper's
//!   per-core 500 M-instruction runs; physical memory, its contiguity
//!   pool, the controller and the NoC are shared.
//! * **Warmup**: each run executes `warmup_ops` untimed-for-statistics ops
//!   first (allocating pages, warming TLBs/caches/PWCs), then measures
//!   `measure_ops`; the paper similarly measures a steady-state window.
//!
//! # Examples
//!
//! ```
//! use ndp_sim::{Machine, SimConfig, SystemKind};
//! use ndpage::Mechanism;
//! use ndp_workloads::WorkloadId;
//!
//! let cfg = SimConfig::quick(
//!     SystemKind::Ndp,
//!     1,
//!     Mechanism::NdPage,
//!     WorkloadId::Rnd,
//! );
//! let report = Machine::new(cfg).run();
//! assert!(report.total_cycles.as_u64() > 0);
//! ```

pub mod config;
pub mod experiment;
pub mod fault;
pub mod machine;
pub mod parallel;
pub mod report;
pub mod shard;
pub mod spec;
pub mod sweeps;

pub use config::{SimConfig, SystemKind};
pub use machine::Machine;
pub use report::{FaultCounts, RunReport, SchedStats};
pub use spec::{run_sweep, run_sweep_jsonl, SweepResult, SweepSpec};
