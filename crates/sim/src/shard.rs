//! Shard arithmetic and file naming for the multi-process sweep executor.
//!
//! A sweep grid is split across `N` workers by striping: shard `I` owns
//! every grid index `i` with `i % N == I`. Striping (rather than
//! contiguous blocks) keeps the expensive points — which tend to cluster
//! at one end of an axis — spread evenly across workers, and makes a
//! shard's stripe a pure function of `(I, N)` so a respawned worker
//! recomputes its remaining work from its own shard file alone.
//!
//! Each shard streams rows to `<out>.shard-I-of-N` next to the final
//! output; the merge step ([`crate::spec::merge_sweep_jsonl`]) stitches
//! the shard files back into grid order and lands the result at `<out>`
//! via temp-file + atomic rename. Everything path-related lives here so
//! worker, supervisor and merge agree on names by construction.

use std::path::{Path, PathBuf};

/// One worker's slice of the grid: stripe `index` of `count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Which stripe this worker owns (`0 <= index < count`).
    pub index: u64,
    /// Total number of stripes the grid is split into.
    pub count: u64,
}

impl ShardSpec {
    /// Parses the CLI form `I/N`, e.g. `0/4`.
    ///
    /// # Errors
    ///
    /// A descriptive message when the form is not `I/N`, `N` is zero, or
    /// `I >= N`.
    pub fn parse(raw: &str) -> Result<ShardSpec, String> {
        let Some((index, count)) = raw.split_once('/') else {
            return Err(format!("--shard {raw:?}: expected I/N, e.g. 0/4"));
        };
        let index: u64 = index
            .trim()
            .parse()
            .map_err(|_| format!("--shard {raw:?}: shard index must be a non-negative integer"))?;
        let count: u64 = count
            .trim()
            .parse()
            .map_err(|_| format!("--shard {raw:?}: shard count must be a positive integer"))?;
        if count == 0 {
            return Err(format!("--shard {raw:?}: shard count must be at least 1"));
        }
        if index >= count {
            return Err(format!(
                "--shard {raw:?}: shard index {index} out of range for {count} shard(s)"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether this shard owns grid index `i`.
    #[must_use]
    pub fn owns(&self, i: usize) -> bool {
        i as u64 % self.count == self.index
    }

    /// The filename suffix identifying this shard, e.g. `shard-0-of-4`.
    #[must_use]
    pub fn suffix(&self) -> String {
        format!("shard-{}-of-{}", self.index, self.count)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// Appends a suffix to a path's file name: `out.jsonl` + `tmp` →
/// `out.jsonl.tmp`. The suffix extends the name rather than replacing
/// the extension so sibling artifacts sort next to their output.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    name.push(".");
    name.push(suffix);
    path.with_file_name(name)
}

/// The per-shard stream path for `out`, e.g. `out.jsonl.shard-0-of-4`.
#[must_use]
pub fn shard_path(out: &Path, shard: ShardSpec) -> PathBuf {
    sibling(out, &shard.suffix())
}

/// The temp sibling a serial/merged stream writes through before the
/// atomic rename to `out`, e.g. `out.jsonl.tmp`.
#[must_use]
pub fn stream_path(out: &Path) -> PathBuf {
    sibling(out, "tmp")
}

/// All existing shard files for `out`, sorted by name — any shard
/// count, any completeness. Resume and merge ingest whatever is there.
#[must_use]
pub fn existing_shard_files(out: &Path) -> Vec<PathBuf> {
    let Some(name) = out.file_name().and_then(|n| n.to_str()) else {
        return Vec::new();
    };
    let prefix = format!("{name}.shard-");
    let dir = match out.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let Ok(entries) = std::fs::read_dir(&dir) else {
        return Vec::new();
    };
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with(&prefix))
        })
        .collect();
    files.sort();
    files
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_stripes() {
        let s = ShardSpec::parse("1/3").unwrap();
        assert_eq!((s.index, s.count), (1, 3));
        let owned: Vec<usize> = (0..9).filter(|&i| s.owns(i)).collect();
        assert_eq!(owned, vec![1, 4, 7]);
        assert_eq!(s.suffix(), "shard-1-of-3");
        assert_eq!(s.to_string(), "1/3");
    }

    #[test]
    fn single_shard_owns_everything() {
        let s = ShardSpec::parse("0/1").unwrap();
        assert!((0..5).all(|i| s.owns(i)));
    }

    #[test]
    fn rejects_bad_shard_specs() {
        for bad in ["3", "a/2", "1/0", "2/2", "5/2", "-1/2", ""] {
            assert!(ShardSpec::parse(bad).is_err(), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn path_helpers_extend_the_file_name() {
        let out = Path::new("results/sweep.jsonl");
        let shard = ShardSpec { index: 0, count: 2 };
        assert_eq!(
            shard_path(out, shard),
            Path::new("results/sweep.jsonl.shard-0-of-2")
        );
        assert_eq!(stream_path(out), Path::new("results/sweep.jsonl.tmp"));
    }

    #[test]
    fn lists_only_matching_shard_files() {
        let dir = std::env::temp_dir().join(format!("ndp_shard_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("run.jsonl");
        std::fs::write(shard_path(&out, ShardSpec { index: 1, count: 2 }), b"").unwrap();
        std::fs::write(shard_path(&out, ShardSpec { index: 0, count: 2 }), b"").unwrap();
        std::fs::write(dir.join("run.jsonl.tmp"), b"").unwrap();
        std::fs::write(dir.join("other.jsonl.shard-0-of-2"), b"").unwrap();
        let files = existing_shard_files(&out);
        let names: Vec<_> = files
            .iter()
            .map(|p| p.file_name().unwrap().to_str().unwrap().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["run.jsonl.shard-0-of-2", "run.jsonl.shard-1-of-2"]
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
