//! Fault injection for the sweep executor (`NDP_FAULT`).
//!
//! The sharded sweep executor promises to survive crashed workers, hung
//! rows and torn writes. Those failures are rare enough in the wild that
//! untested recovery paths rot; this module makes them reproducible. The
//! `NDP_FAULT` environment variable — parsed **here and only here**, and
//! completely inert unless set — arms one fault at one grid index:
//!
//! ```text
//! NDP_FAULT=abort@3                 exit(86) just before emitting row 3
//! NDP_FAULT=hang@3                  hang forever before emitting row 3
//! NDP_FAULT=torn@3:once=/tmp/trip   write half of row 3's line (no
//!                                   newline), flush, exit(86) — but only
//!                                   if /tmp/trip does not exist yet
//! ```
//!
//! The optional `:once=PATH` marker makes a fault **one-shot across
//! processes**: firing creates `PATH`, and a process that finds `PATH`
//! already present does not fire. That is what lets an integration test
//! inject a fault into a supervised sweep and still expect the retried
//! worker to complete — without the marker the fault re-fires on every
//! attempt, which is exactly how the retries-exhausted path is tested.
//!
//! The hook sits on the row-emission path of the JSONL engine
//! ([`crate::spec::run_sweep_jsonl_opts`]); merge and resume ingestion
//! never consult it, so a supervisor process with `NDP_FAULT` in its
//! environment (inherited by its workers, which is the injection route)
//! merges shard output unharmed.

use std::io::Write;
use std::path::PathBuf;

/// Exit code used by injected aborts and torn writes, distinct from the
/// CLI's usage (2) and semantic (1) errors so tests and the supervisor
/// log can attribute a death to the harness.
pub const FAULT_EXIT_CODE: i32 = 86;

/// What the armed fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Exit abnormally before the row is written.
    Abort,
    /// Hang forever before the row is written (exercises `--row-timeout`).
    Hang,
    /// Write a prefix of the row's line (no newline), flush, exit
    /// abnormally (exercises torn-line truncate-and-redo on resume).
    Torn,
}

impl FaultKind {
    fn name(self) -> &'static str {
        match self {
            FaultKind::Abort => "abort",
            FaultKind::Hang => "hang",
            FaultKind::Torn => "torn",
        }
    }
}

/// A parsed `NDP_FAULT` plan: one fault, one grid index, optionally
/// one-shot across processes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The failure to inject.
    pub kind: FaultKind,
    /// The (global) grid index whose row emission triggers it.
    pub index: u64,
    /// One-shot marker file: firing creates it, and its presence
    /// disarms the fault for every later process.
    pub once: Option<PathBuf>,
}

impl FaultPlan {
    /// Parses `kind@index[:once=PATH]`.
    ///
    /// # Errors
    ///
    /// A descriptive message for anything malformed — a typo'd
    /// `NDP_FAULT` must fail loudly, not silently run fault-free.
    pub fn parse(raw: &str) -> Result<FaultPlan, String> {
        let usage = "expected KIND@INDEX[:once=PATH] with KIND one of abort | hang | torn";
        let (head, once) = match raw.split_once(":once=") {
            Some((head, path)) if !path.is_empty() => (head, Some(PathBuf::from(path))),
            Some(_) => return Err(format!("NDP_FAULT {raw:?}: empty once= path; {usage}")),
            None => (raw, None),
        };
        let Some((kind, index)) = head.split_once('@') else {
            return Err(format!("NDP_FAULT {raw:?}: missing '@'; {usage}"));
        };
        let kind = match kind.trim().to_ascii_lowercase().as_str() {
            "abort" => FaultKind::Abort,
            "hang" => FaultKind::Hang,
            "torn" => FaultKind::Torn,
            other => return Err(format!("NDP_FAULT: unknown kind {other:?}; {usage}")),
        };
        let index = index
            .trim()
            .parse()
            .map_err(|_| format!("NDP_FAULT {raw:?}: index must be a non-negative integer"))?;
        Ok(FaultPlan { kind, index, once })
    }

    /// Whether the fault would fire for `index` right now (index match,
    /// one-shot marker absent).
    #[must_use]
    pub fn armed(&self, index: u64) -> bool {
        self.index == index && self.once.as_ref().is_none_or(|p| !p.exists())
    }

    /// Fires the fault if armed for `index`: creates the one-shot
    /// marker, then aborts / hangs / tears the line through `w`. Returns
    /// normally only when not armed.
    pub fn maybe_fire(&self, index: u64, line: &str, w: &mut dyn Write) {
        if !self.armed(index) {
            return;
        }
        if let Some(marker) = &self.once {
            // Best-effort: an unwritable marker must not mask the fault.
            let _ = std::fs::write(marker, b"tripped\n");
        }
        eprintln!("NDP_FAULT: firing {} before row {index}", self.kind.name());
        match self.kind {
            FaultKind::Abort => std::process::exit(FAULT_EXIT_CODE),
            FaultKind::Hang => loop {
                std::thread::sleep(std::time::Duration::from_secs(3600));
            },
            FaultKind::Torn => {
                let cut = (line.len() / 2).max(1).min(line.len());
                let _ = w.write_all(&line.as_bytes()[..cut]);
                let _ = w.flush();
                std::process::exit(FAULT_EXIT_CODE);
            }
        }
    }
}

/// Reads and parses `NDP_FAULT`: `Ok(None)` when unset or empty (the
/// common, fully inert case).
///
/// # Errors
///
/// The [`FaultPlan::parse`] message for a malformed value. Binaries
/// validate this up front (like `NDP_THREADS`) for a clean exit.
pub fn plan_from_env() -> Result<Option<FaultPlan>, String> {
    match std::env::var("NDP_FAULT") {
        Ok(v) if !v.trim().is_empty() => FaultPlan::parse(v.trim()).map(Some),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_kind() {
        let p = FaultPlan::parse("abort@3").unwrap();
        assert_eq!((p.kind, p.index, p.once), (FaultKind::Abort, 3, None));
        let p = FaultPlan::parse("HANG@0").unwrap();
        assert_eq!(p.kind, FaultKind::Hang);
        let p = FaultPlan::parse("torn@7:once=/tmp/x").unwrap();
        assert_eq!(p.kind, FaultKind::Torn);
        assert_eq!(p.once.as_deref(), Some(std::path::Path::new("/tmp/x")));
    }

    #[test]
    fn rejects_malformed_plans() {
        for bad in ["abort", "abort@x", "boom@3", "torn@1:once=", "@3", ""] {
            let err = FaultPlan::parse(bad).unwrap_err();
            assert!(err.contains("NDP_FAULT"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn armed_respects_index_and_marker() {
        let dir = std::env::temp_dir();
        let marker = dir.join(format!("ndp_fault_test_{}", std::process::id()));
        std::fs::remove_file(&marker).ok();
        let plan = FaultPlan {
            kind: FaultKind::Abort,
            index: 2,
            once: Some(marker.clone()),
        };
        assert!(!plan.armed(1));
        assert!(plan.armed(2));
        std::fs::write(&marker, b"tripped\n").unwrap();
        assert!(!plan.armed(2), "marker disarms the fault");
        std::fs::remove_file(&marker).ok();
    }

    #[test]
    fn torn_fault_writes_a_prefix() {
        // Only the Torn arm is testable in-process (the others exit);
        // check the disarmed path and the cut math instead of firing.
        let plan = FaultPlan {
            kind: FaultKind::Torn,
            index: 5,
            once: None,
        };
        let mut buf = Vec::new();
        plan.maybe_fire(4, "{\"i\":4}", &mut buf);
        assert!(buf.is_empty(), "wrong index must be a no-op");
    }
}
