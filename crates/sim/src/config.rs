//! Simulation configuration (Table I systems + run parameters).

use ndp_cache::shared::SharedConfig;
use ndp_types::Cycles;
use ndp_workloads::WorkloadId;
use ndpage::bypass::BypassPolicy;
use ndpage::Mechanism;
use std::fmt;

pub use ndp_cache::shared::InclusionPolicy;

/// Which Table I system to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Near-data cores in the HBM2 logic layer: L1 only, one-hop memory.
    Ndp,
    /// Conventional host: L1 + L2 + L3, off-chip DDR4.
    Cpu,
}

impl fmt::Display for SystemKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemKind::Ndp => f.write_str("NDP"),
            SystemKind::Cpu => f.write_str("CPU"),
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// System flavour (cache depth, DRAM, interconnect).
    pub system: SystemKind,
    /// Core count (the paper evaluates 1, 4 and 8).
    pub cores: u32,
    /// Translation mechanism under test.
    pub mechanism: Mechanism,
    /// Workload to trace.
    pub workload: WorkloadId,
    /// Untimed warmup operations per core.
    pub warmup_ops: u64,
    /// Measured operations per core.
    pub measure_ops: u64,
    /// Per-core footprint = Table II size / divisor (private address
    /// spaces; the default of 1 runs the full dataset per core).
    pub footprint_divisor: u64,
    /// Absolute per-core footprint override (wins over the divisor).
    pub footprint_override: Option<u64>,
    /// Base RNG seed; core *i* uses `seed + i`.
    pub seed: u64,
    /// OS cost of a 4 KB minor fault.
    pub fault_minor_4k: Cycles,
    /// OS cost of a 2 MB minor fault (zeroing 512 frames).
    pub fault_minor_2m: Cycles,
    /// OS cost of a failed-THP fallback fault (direct compaction attempt
    /// + 4 KB path; see Kwon et al., OSDI'16, on why this is expensive).
    pub fault_fallback: Cycles,
    /// OS cost per PTE moved by an elastic-cuckoo rehash.
    pub rehash_entry_cost: Cycles,
    /// Ablation override: force PWCs on/off (`None` = per mechanism).
    pub pwc_override: Option<bool>,
    /// Ablation override: force a bypass policy (`None` = per mechanism).
    pub bypass_override: Option<BypassPolicy>,
    /// Physical-memory capacity override in bytes (`None` = Table I 16 GB).
    /// Small capacities force huge-page contiguity exhaustion in tests.
    pub memory_capacity_override: Option<u64>,
    /// Entries per page-walk cache level (`None` = 64). Sweep experiments
    /// vary this to show where flattening stops mattering.
    pub pwc_entries: Option<usize>,
    /// L2 TLB entry-count override (`None` = Table I's 1536). Must be
    /// 12-way-divisible into a power of two sets.
    pub tlb_l2_entries: Option<u32>,
    /// Override for 2 MB TLB-entry fracturing (`None` = fractured, the
    /// paper's Huge Page treatment; `Some(false)` gives native 2 MB
    /// entries — the [`crate::sweeps::fracturing_ablation`] study).
    pub tlb_fracture_huge: Option<bool>,
    /// Compaction/khugepaged interference: cycles charged per
    /// [`Self::COMPACTION_PERIOD`] ops, scaled by the run's THP-fallback
    /// pressure. Models the background defragmentation work (Kwon et al.,
    /// OSDI'16) that sinks Huge Page once contiguity is exhausted (Fig 14).
    pub compaction_tax: Cycles,
    /// Processes multiprogrammed onto each core, each with a private
    /// address space (its own page table, trace stream and ASID). The
    /// default of 1 reproduces the paper's one-instance-per-core setup
    /// bit-identically; higher values round-robin the processes on a
    /// [`Self::context_switch_quantum_ops`] quantum.
    pub procs_per_core: u32,
    /// Ops a process runs before its core switches to the next process
    /// (ignored when `procs_per_core` is 1).
    pub context_switch_quantum_ops: u64,
    /// OS cost charged at every context switch (register save/restore,
    /// scheduler, kernel entry/exit).
    pub context_switch_cost: Cycles,
    /// Whether TLB entries, PWC tags and walker state carry ASID tags.
    /// Tagged translation hardware keeps every resident process's entries
    /// warm across switches; untagged hardware (`false`, the ablation)
    /// must full-flush TLBs and PWCs on every switch and re-walk its
    /// working set cold.
    pub tlb_tagging: bool,
    /// Memory-level parallelism: independent memory ops a core may keep
    /// in flight (retire-in-order). The default of 1 is the fully
    /// blocking core — cycle-identical to the pre-pipeline engine;
    /// larger windows overlap misses and expose the paper's asymmetry
    /// between coalescable data misses and serialised page walks.
    pub mlp_window: u32,
    /// Miss-status holding registers per core: outstanding L1 fills,
    /// with same-line misses coalescing onto one fill. Inert at
    /// `mlp_window = 1` (a blocking core never has two misses in flight).
    pub mshrs_per_core: u32,
    /// Hardware page-table walkers per core: concurrent walks beyond
    /// this queue. Inert at `mlp_window = 1` for the same reason.
    pub walkers_per_core: u32,
    /// Shared last-level cache capacity in KB. `0` (the default)
    /// disables the shared layer entirely and is **cycle-identical** to
    /// the pre-shared-LLC engine; `> 0` builds a banked shared L3 that
    /// every core's private misses contend in (on the CPU system it
    /// replaces the per-core private L3 slice; on NDP it adds a shared
    /// logic-layer last level).
    pub l3_kb: u32,
    /// Shared-L3 associativity (ignored while `l3_kb = 0`).
    pub l3_ways: u32,
    /// Shared-L3 bank count — sets are partitioned over banks and each
    /// bank port serves one access per period, so co-runners conflict
    /// (ignored while `l3_kb = 0`).
    pub l3_banks: u32,
    /// Shared-L3 inclusion policy (ignored while `l3_kb = 0`):
    /// inclusive evictions back-invalidate private copies; exclusive
    /// holds only lines that left the private hierarchy.
    pub l3_policy: InclusionPolicy,
    /// Per-vault (per-memory-channel) buffer capacity in KB on the
    /// memory side, arbitrated across every core that reaches the vault.
    /// `0` (the default) disables it; bypassed NDPage metadata fetches
    /// skip it just as they skip every other cache.
    pub vault_buffer_kb: u32,
    /// Most ops a core executes per scheduler pick (the *epoch*). The
    /// batched scheduler only keeps running a core while the per-op
    /// scheduler would still pick it, so **every** epoch size is
    /// cycle-identical to per-op execution (`epoch_ops = 1`); larger
    /// epochs amortise the per-op core scan and keep one core's state
    /// hot across a block of ops.
    pub epoch_ops: u64,
}

impl SimConfig {
    /// The default warmup window per core.
    pub const DEFAULT_WARMUP: u64 = 150_000;
    /// The default measurement window per core.
    pub const DEFAULT_MEASURE: u64 = 250_000;
    /// The default footprint divisor: 1 — every core runs the full
    /// Table II dataset, as in the paper's per-core benchmark instances.
    pub const DEFAULT_DIVISOR: u64 = 1;
    /// Ops between compaction-interference charges.
    pub const COMPACTION_PERIOD: u64 = 64;
    /// Nominal Table I DRAM capacity.
    pub const TABLE1_CAPACITY: u64 = 16 << 30;
    /// Default scheduling quantum in ops (a compressed timeslice: long
    /// enough to re-warm translation state, short enough that several
    /// switches land inside the default measurement window).
    pub const DEFAULT_QUANTUM: u64 = 10_000;
    /// Default per-switch OS cost (~1.5 µs at 2.6 GHz).
    pub const DEFAULT_SWITCH_COST: Cycles = Cycles::new(4_000);
    /// Largest supported issue window / MSHR file.
    pub const MAX_MLP: u32 = 64;
    /// Default hardware walkers per core: one, as fits the simple
    /// in-order cores of both Table I systems (x86-class OoO cores ship
    /// two — set `walkers_per_core` to explore). One walker is also the
    /// sharpest instantiation of the pipeline's asymmetry: overlapped
    /// data misses each get an MSHR while overlapped walks serialise.
    pub const DEFAULT_WALKERS: u32 = 1;
    /// Default shared-L3 associativity (Table I's L3 is 16-way).
    pub const DEFAULT_L3_WAYS: u32 = 16;
    /// Default shared-L3 bank count.
    pub const DEFAULT_L3_BANKS: u32 = 8;
    /// Default scheduler epoch: long enough to amortise the per-op core
    /// scan, short enough that a core's batch rarely outlives its
    /// scheduling eligibility. Timing-inert at any value (see
    /// [`Self::epoch_ops`]).
    pub const DEFAULT_EPOCH_OPS: u64 = 64;
    /// Largest accepted scheduler epoch (a sanity bound, not a timing
    /// constraint).
    pub const MAX_EPOCH_OPS: u64 = 1 << 20;

    /// A full-size run configuration.
    #[must_use]
    pub fn new(system: SystemKind, cores: u32, mechanism: Mechanism, workload: WorkloadId) -> Self {
        SimConfig {
            system,
            cores,
            mechanism,
            workload,
            warmup_ops: Self::DEFAULT_WARMUP,
            measure_ops: Self::DEFAULT_MEASURE,
            footprint_divisor: Self::DEFAULT_DIVISOR,
            footprint_override: None,
            seed: 0x5eed,
            fault_minor_4k: Cycles::new(600),
            fault_minor_2m: Cycles::new(2600),
            fault_fallback: Cycles::new(15_000),
            rehash_entry_cost: Cycles::new(40),
            pwc_override: None,
            bypass_override: None,
            memory_capacity_override: None,
            pwc_entries: None,
            tlb_l2_entries: None,
            tlb_fracture_huge: None,
            compaction_tax: Cycles::new(2200),
            procs_per_core: 1,
            context_switch_quantum_ops: Self::DEFAULT_QUANTUM,
            context_switch_cost: Self::DEFAULT_SWITCH_COST,
            tlb_tagging: true,
            mlp_window: 1,
            mshrs_per_core: 1,
            walkers_per_core: Self::DEFAULT_WALKERS,
            l3_kb: 0,
            l3_ways: Self::DEFAULT_L3_WAYS,
            l3_banks: Self::DEFAULT_L3_BANKS,
            l3_policy: InclusionPolicy::Inclusive,
            vault_buffer_kb: 0,
            epoch_ops: Self::DEFAULT_EPOCH_OPS,
        }
    }

    /// The configuration a flag-less `ndpsim` invocation runs — and the
    /// base every JSON [`crate::spec::SweepSpec`] starts from: a 1-core
    /// NDP NDPage/BFS run with a fast 1 GB footprint and a 30 k-op
    /// measured window. Keeping the two entry points on one base is what
    /// lets `ndpsim sweep --spec`/`--set` reproduce any configuration
    /// the flags can express (round-tripped in `crates/bench/tests`).
    #[must_use]
    pub fn cli_default() -> Self {
        let mut cfg = Self::new(
            SystemKind::Ndp,
            1,
            Mechanism::NdPage,
            ndp_workloads::WorkloadId::Bfs,
        );
        cfg.footprint_override = Some(1 << 30);
        cfg.measure_ops = 30_000;
        cfg.warmup_ops = 10_000;
        cfg
    }

    /// Whether this configuration runs the fully blocking core (no
    /// memory-level parallelism).
    #[must_use]
    pub fn is_blocking(&self) -> bool {
        self.mlp_window <= 1
    }

    /// A small, fast configuration for tests and examples (1 GB/core
    /// footprint — large enough that PL2/PL1 translation prefixes overrun
    /// the PWCs and PTE lines overrun the caches, as in the full-scale
    /// runs — and short windows).
    #[must_use]
    pub fn quick(
        system: SystemKind,
        cores: u32,
        mechanism: Mechanism,
        workload: WorkloadId,
    ) -> Self {
        let mut cfg = Self::new(system, cores, mechanism, workload);
        cfg.warmup_ops = 10_000;
        cfg.measure_ops = 20_000;
        cfg.footprint_override = Some(1 << 30);
        cfg
    }

    /// Sets the warmup/measure windows.
    #[must_use]
    pub fn with_ops(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup_ops = warmup;
        self.measure_ops = measure;
        self
    }

    /// Sets an absolute per-core footprint.
    #[must_use]
    pub fn with_footprint(mut self, bytes: u64) -> Self {
        self.footprint_override = Some(bytes);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of multiprogrammed processes per core.
    #[must_use]
    pub fn with_procs(mut self, procs: u32) -> Self {
        self.procs_per_core = procs;
        self
    }

    /// Sets the context-switch quantum (in ops).
    #[must_use]
    pub fn with_quantum(mut self, ops: u64) -> Self {
        self.context_switch_quantum_ops = ops;
        self
    }

    /// Enables or disables ASID tagging of TLBs/PWCs (`false` = full
    /// flush on every context switch).
    #[must_use]
    pub fn with_tlb_tagging(mut self, tagging: bool) -> Self {
        self.tlb_tagging = tagging;
        self
    }

    /// Sets the per-core issue window (1 = blocking).
    #[must_use]
    pub fn with_window(mut self, window: u32) -> Self {
        self.mlp_window = window;
        self
    }

    /// Sets the per-core MSHR count.
    #[must_use]
    pub fn with_mshrs(mut self, mshrs: u32) -> Self {
        self.mshrs_per_core = mshrs;
        self
    }

    /// Sets the per-core hardware-walker count.
    #[must_use]
    pub fn with_walkers(mut self, walkers: u32) -> Self {
        self.walkers_per_core = walkers;
        self
    }

    /// Enables the shared L3 at `kb` KB (0 disables it again).
    #[must_use]
    pub fn with_l3(mut self, kb: u32) -> Self {
        self.l3_kb = kb;
        self
    }

    /// Sets the shared-L3 geometry (associativity and bank count).
    #[must_use]
    pub fn with_l3_geometry(mut self, ways: u32, banks: u32) -> Self {
        self.l3_ways = ways;
        self.l3_banks = banks;
        self
    }

    /// Sets the shared-L3 inclusion policy.
    #[must_use]
    pub fn with_l3_policy(mut self, policy: InclusionPolicy) -> Self {
        self.l3_policy = policy;
        self
    }

    /// Enables the per-vault buffers at `kb` KB each (0 disables).
    #[must_use]
    pub fn with_vault_buffer(mut self, kb: u32) -> Self {
        self.vault_buffer_kb = kb;
        self
    }

    /// Sets the scheduler epoch in ops (1 = per-op scheduling; timing is
    /// identical at any value).
    #[must_use]
    pub fn with_epoch_ops(mut self, ops: u64) -> Self {
        self.epoch_ops = ops;
        self
    }

    /// Whether any shared last-level structure (shared L3 or vault
    /// buffers) is enabled.
    #[must_use]
    pub fn has_shared_llc(&self) -> bool {
        self.l3_kb > 0 || self.vault_buffer_kb > 0
    }

    /// The shared-L3 configuration implied by the knobs, if enabled.
    #[must_use]
    pub fn l3_config(&self) -> Option<SharedConfig> {
        (self.l3_kb > 0)
            .then(|| SharedConfig::l3(self.l3_kb, self.l3_ways, self.l3_banks, self.l3_policy))
    }

    /// The per-vault buffer configuration implied by the knobs, if
    /// enabled.
    #[must_use]
    pub fn vault_buffer_config(&self) -> Option<SharedConfig> {
        (self.vault_buffer_kb > 0).then(|| SharedConfig::vault_buffer(self.vault_buffer_kb))
    }

    /// The per-core footprint in bytes.
    #[must_use]
    pub fn footprint_per_core(&self) -> u64 {
        self.footprint_override
            .unwrap_or_else(|| self.workload.table2_footprint() / self.footprint_divisor.max(1))
    }

    /// Validates parameter sanity.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 || self.cores > 64 {
            return Err(ConfigError::new("cores must be in 1..=64"));
        }
        if self.measure_ops == 0 {
            return Err(ConfigError::new("measure_ops must be positive"));
        }
        if self.footprint_per_core() < (1 << 20) {
            return Err(ConfigError::new("footprint must be at least 1 MB"));
        }
        if self.pwc_entries == Some(0) {
            return Err(ConfigError::new("pwc_entries must be positive"));
        }
        if let Some(entries) = self.tlb_l2_entries {
            let sets = entries / 12;
            if sets == 0 || !sets.is_power_of_two() {
                return Err(ConfigError::new(
                    "tlb_l2_entries must be 12-way-divisible into power-of-two sets",
                ));
            }
        }
        if self.procs_per_core == 0 || self.procs_per_core > 64 {
            return Err(ConfigError::new("procs_per_core must be in 1..=64"));
        }
        if self.procs_per_core > 1 && self.context_switch_quantum_ops == 0 {
            return Err(ConfigError::new(
                "context_switch_quantum_ops must be positive when multiprogrammed",
            ));
        }
        if self.mlp_window == 0 || self.mlp_window > Self::MAX_MLP {
            return Err(ConfigError::new("mlp_window must be in 1..=64"));
        }
        if self.mshrs_per_core == 0 || self.mshrs_per_core > Self::MAX_MLP {
            return Err(ConfigError::new("mshrs_per_core must be in 1..=64"));
        }
        if self.walkers_per_core == 0
            || self.walkers_per_core as usize > ndp_mmu::walker::MAX_WALKERS
        {
            return Err(ConfigError::new("walkers_per_core must be in 1..=8"));
        }
        if self.epoch_ops == 0 || self.epoch_ops > Self::MAX_EPOCH_OPS {
            return Err(ConfigError::new("epoch_ops must be in 1..=1048576"));
        }
        if let Some(l3) = self.l3_config() {
            if let Err(e) = l3.check() {
                // The shared-cache message already names the constraint;
                // prefix it with the knob family so CLI users know which
                // flags to fix.
                return Err(ConfigError::new(match e {
                    e if e.contains("ways") => "l3_ways must be in 1..=16",
                    e if e.contains("banks") => {
                        "l3_banks must be a power of two no larger than the set count"
                    }
                    _ => "l3_kb/l3_ways must give a power-of-two set count",
                }));
            }
        }
        if let Some(vault) = self.vault_buffer_config() {
            if vault.check().is_err() {
                return Err(ConfigError::new(
                    "vault_buffer_kb must give a power-of-two set count (8-way, 64 B lines)",
                ));
            }
        }
        Ok(())
    }
}

/// Error returned by [`SimConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: &'static str,
}

impl ConfigError {
    fn new(message: &'static str) -> Self {
        ConfigError { message }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid simulation config: {}", self.message)
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        let cfg = SimConfig::new(SystemKind::Ndp, 4, Mechanism::Radix, WorkloadId::Bfs);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.footprint_per_core(), 8u64 << 30);
    }

    #[test]
    fn quick_is_small() {
        let cfg = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::NdPage, WorkloadId::Rnd);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.footprint_per_core(), 1 << 30);
        assert!(cfg.measure_ops <= 20_000);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = SimConfig::quick(SystemKind::Cpu, 1, Mechanism::Radix, WorkloadId::Xs);
        cfg.cores = 0;
        assert!(cfg.validate().is_err());
        cfg.cores = 65;
        assert!(cfg.validate().is_err());
        cfg.cores = 1;
        cfg.measure_ops = 0;
        assert!(cfg.validate().is_err());
        cfg.measure_ops = 10;
        cfg.footprint_override = Some(1000);
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("footprint"));
    }

    #[test]
    fn builders_compose() {
        let cfg = SimConfig::new(SystemKind::Cpu, 4, Mechanism::Ech, WorkloadId::Gen)
            .with_ops(5, 10)
            .with_footprint(2 << 20)
            .with_seed(99)
            .with_procs(2)
            .with_quantum(500)
            .with_tlb_tagging(false);
        assert_eq!(cfg.warmup_ops, 5);
        assert_eq!(cfg.footprint_per_core(), 2 << 20);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.procs_per_core, 2);
        assert_eq!(cfg.context_switch_quantum_ops, 500);
        assert!(!cfg.tlb_tagging);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn multiprogramming_defaults_are_off() {
        let cfg = SimConfig::new(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd);
        assert_eq!(cfg.procs_per_core, 1);
        assert!(cfg.tlb_tagging);
    }

    #[test]
    fn multiprogramming_configs_validated() {
        let mut cfg = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd);
        cfg.procs_per_core = 0;
        assert!(cfg.validate().is_err());
        cfg.procs_per_core = 65;
        assert!(cfg.validate().is_err());
        cfg.procs_per_core = 2;
        cfg.context_switch_quantum_ops = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("quantum"));
        cfg.context_switch_quantum_ops = 100;
        assert!(cfg.validate().is_ok());
        // A single process never switches, so a zero quantum is harmless.
        cfg.procs_per_core = 1;
        cfg.context_switch_quantum_ops = 0;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn mlp_defaults_are_blocking() {
        let cfg = SimConfig::new(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd);
        assert_eq!(cfg.mlp_window, 1);
        assert_eq!(cfg.mshrs_per_core, 1);
        assert_eq!(cfg.walkers_per_core, 1);
        assert!(cfg.is_blocking());
        assert!(!cfg.with_window(2).is_blocking());
    }

    #[test]
    fn mlp_configs_validated() {
        let mut cfg = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd);
        cfg.mlp_window = 0;
        assert!(cfg.validate().is_err());
        cfg.mlp_window = 65;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("mlp_window"));
        cfg.mlp_window = 64;
        cfg.mshrs_per_core = 0;
        assert!(cfg.validate().is_err());
        cfg.mshrs_per_core = 65;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("mshrs_per_core"));
        cfg.mshrs_per_core = 64;
        cfg.walkers_per_core = 0;
        assert!(cfg.validate().is_err());
        cfg.walkers_per_core = 9;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("walkers_per_core"));
        cfg.walkers_per_core = 8;
        assert!(cfg.validate().is_ok());
        let cfg = cfg.with_window(8).with_mshrs(16).with_walkers(2);
        assert_eq!(cfg.mlp_window, 8);
        assert_eq!(cfg.mshrs_per_core, 16);
        assert_eq!(cfg.walkers_per_core, 2);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn epoch_configs_validated() {
        let mut cfg = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd);
        assert_eq!(cfg.epoch_ops, SimConfig::DEFAULT_EPOCH_OPS);
        cfg.epoch_ops = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("epoch_ops"));
        cfg.epoch_ops = SimConfig::MAX_EPOCH_OPS + 1;
        assert!(cfg.validate().is_err());
        let cfg = cfg.with_epoch_ops(1);
        assert_eq!(cfg.epoch_ops, 1);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn shared_llc_defaults_are_off() {
        let cfg = SimConfig::new(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd);
        assert_eq!(cfg.l3_kb, 0);
        assert_eq!(cfg.vault_buffer_kb, 0);
        assert!(!cfg.has_shared_llc());
        assert!(cfg.l3_config().is_none());
        assert!(cfg.vault_buffer_config().is_none());
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn shared_llc_configs_validated() {
        let base = SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Rnd);
        let cfg = base.clone().with_l3(2048);
        assert!(cfg.validate().is_ok());
        assert!(cfg.has_shared_llc());
        assert_eq!(cfg.l3_config().unwrap().size_bytes, 2048 * 1024);

        let bad = base.clone().with_l3(2048).with_l3_geometry(32, 8);
        assert!(bad.validate().unwrap_err().to_string().contains("l3_ways"));
        let bad = base.clone().with_l3(2048).with_l3_geometry(16, 3);
        assert!(bad.validate().unwrap_err().to_string().contains("l3_banks"));
        let bad = base.clone().with_l3(100); // 100 KB / 16w -> 100 sets
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("power-of-two"));

        let cfg = base.clone().with_vault_buffer(128);
        assert!(cfg.validate().is_ok());
        assert!(cfg.has_shared_llc());
        let bad = base.clone().with_vault_buffer(100);
        assert!(bad
            .validate()
            .unwrap_err()
            .to_string()
            .contains("vault_buffer_kb"));

        // Bad geometry knobs are harmless while the L3 is disabled.
        let inert = base
            .with_l3_geometry(32, 3)
            .with_l3_policy(InclusionPolicy::Exclusive);
        assert!(inert.validate().is_ok());
    }

    #[test]
    fn shared_llc_builders_compose() {
        let cfg = SimConfig::quick(SystemKind::Cpu, 2, Mechanism::Radix, WorkloadId::Bfs)
            .with_l3(4096)
            .with_l3_geometry(8, 4)
            .with_l3_policy(InclusionPolicy::Exclusive)
            .with_vault_buffer(64);
        assert_eq!(cfg.l3_kb, 4096);
        assert_eq!(cfg.l3_ways, 8);
        assert_eq!(cfg.l3_banks, 4);
        assert_eq!(cfg.l3_policy, InclusionPolicy::Exclusive);
        assert_eq!(cfg.vault_buffer_kb, 64);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn system_kind_display() {
        assert_eq!(SystemKind::Ndp.to_string(), "NDP");
        assert_eq!(SystemKind::Cpu.to_string(), "CPU");
    }
}
