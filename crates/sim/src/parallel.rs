//! Order-preserving parallel fan-out for experiment drivers.
//!
//! Every simulation run is a self-contained, seeded [`crate::Machine`]:
//! runs share no mutable state, so sweeps and figure drivers can execute
//! their points on worker threads and still produce **bit-identical
//! results in the same order** as a serial loop — each output slot is
//! written by exactly the task that owns its index, regardless of how the
//! OS schedules the workers (`tests/determinism_and_stats.rs` asserts
//! this).
//!
//! Implemented on `std::thread::scope` (the container bakes in no rayon);
//! the queue is a single atomic cursor over the input vector, which is
//! ample for experiment-level granularity (each task is a whole
//! simulation run, milliseconds to minutes).
//!
//! Under `legacy_hotpath` the drivers run serially, reproducing the
//! seed's one-core experiment loop for baseline benchmarking.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parses an `NDP_THREADS` value: a positive integer (whitespace
/// tolerated).
///
/// # Errors
///
/// Returns a descriptive message for anything else — silently substituting
/// a default for a typo (`NDP_THREADS=abc`) used to hide misconfigured
/// benchmarking runs.
pub fn parse_thread_count(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("NDP_THREADS must be a positive integer, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "NDP_THREADS must be a positive integer, got {raw:?}"
        )),
    }
}

/// Reads and validates the `NDP_THREADS` environment variable:
/// `Ok(None)` when unset or empty (use the machine default), `Ok(Some)`
/// for a valid count.
///
/// # Errors
///
/// Returns the [`parse_thread_count`] message for a malformed value.
/// Binaries call this up front to exit cleanly instead of panicking
/// mid-run.
pub fn env_thread_count() -> Result<Option<usize>, String> {
    match std::env::var("NDP_THREADS") {
        Ok(v) if !v.trim().is_empty() => parse_thread_count(&v).map(Some),
        _ => Ok(None),
    }
}

/// Worker threads used by [`par_map`]: `NDP_THREADS` if set (and
/// non-empty), otherwise the machine's available parallelism.
///
/// # Panics
///
/// Panics with the [`parse_thread_count`] message when `NDP_THREADS` is
/// set to something that isn't a positive integer. Binaries validate via
/// [`env_thread_count`] up front for a clean exit instead.
#[must_use]
pub fn default_threads() -> usize {
    match env_thread_count() {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism().map_or(1, usize::from),
        Err(e) => panic!("{e}"),
    }
}

/// Maps `f` over `items` on [`default_threads`] workers, returning the
/// results in input order. Serial under `legacy_hotpath`.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    #[cfg(feature = "legacy_hotpath")]
    {
        items.into_iter().map(f).collect()
    }
    #[cfg(not(feature = "legacy_hotpath"))]
    {
        par_map_threads(default_threads(), items, f)
    }
}

/// [`par_map`] with an explicit worker count (`1` runs inline). The
/// result is identical for every `threads` value — the determinism tests
/// compare multi-threaded output against `threads = 1`.
pub fn par_map_threads<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    let tasks: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let tasks = &tasks;
    let slots = &slots;
    let cursor = &cursor;

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = tasks[idx]
                    .lock()
                    .expect("task mutex poisoned")
                    .take()
                    .expect("each task index is claimed once");
                let result = f(item);
                *slots[idx].lock().expect("slot mutex poisoned") = Some(result);
            });
        }
    });

    slots
        .iter()
        .map(|slot| {
            slot.lock()
                .expect("slot mutex poisoned")
                .take()
                .expect("every slot filled by its owning task")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(par_map_threads(8, items.clone(), |x| x * x), expect);
        assert_eq!(par_map_threads(1, items.clone(), |x| x * x), expect);
        assert_eq!(par_map(items, |x| x * x), expect);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(
            par_map_threads(4, Vec::<u64>::new(), |x| x),
            Vec::<u64>::new()
        );
        assert_eq!(par_map_threads(4, vec![9u64], |x| x + 1), vec![10]);
    }

    #[test]
    fn threads_spawn_for_real_work() {
        // More tasks than threads; each records which thread ran it.
        let ids = par_map_threads(4, (0..64).collect::<Vec<u64>>(), |_| {
            format!("{:?}", std::thread::current().id())
        });
        assert_eq!(ids.len(), 64);
    }

    #[test]
    fn default_thread_count_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn thread_count_parsing_is_strict() {
        assert_eq!(parse_thread_count("4"), Ok(4));
        assert_eq!(parse_thread_count(" 8 "), Ok(8));
        assert!(parse_thread_count("abc").unwrap_err().contains("abc"));
        assert!(parse_thread_count("0").unwrap_err().contains('0'));
        assert!(parse_thread_count("-2").is_err());
        assert!(parse_thread_count("4.5").is_err());
    }
}
