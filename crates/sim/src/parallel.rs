//! Order-preserving parallel fan-out for experiment drivers.
//!
//! Every simulation run is a self-contained, seeded [`crate::Machine`]:
//! runs share no mutable state, so sweeps and figure drivers can execute
//! their points on worker threads and still produce **bit-identical
//! results in the same order** as a serial loop — each output slot is
//! written by exactly the task that owns its index, regardless of how the
//! OS schedules the workers (`tests/determinism_and_stats.rs` asserts
//! this).
//!
//! Implemented on `std::thread::scope` (the container bakes in no rayon);
//! the queue is a single atomic cursor over the input vector, which is
//! ample for experiment-level granularity (each task is a whole
//! simulation run, milliseconds to minutes).
//!
//! Under `legacy_hotpath` the drivers run serially, reproducing the
//! seed's one-core experiment loop for baseline benchmarking.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide `--jobs` override (0 = unset). Takes precedence over
/// `NDP_THREADS`; binaries set it once at startup.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Sets (or, with 0, clears) the worker-count override installed by a
/// `--jobs` CLI flag. Wins over `NDP_THREADS` and the machine default.
pub fn set_jobs(jobs: usize) {
    JOBS_OVERRIDE.store(jobs, Ordering::Relaxed);
}

/// The `--jobs` override, if one was set.
#[must_use]
pub fn jobs_override() -> Option<usize> {
    match JOBS_OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Parses an `NDP_THREADS` value: a positive integer (whitespace
/// tolerated).
///
/// # Errors
///
/// Returns a descriptive message for anything else — silently substituting
/// a default for a typo (`NDP_THREADS=abc`) used to hide misconfigured
/// benchmarking runs.
pub fn parse_thread_count(raw: &str) -> Result<usize, String> {
    match raw.trim().parse::<usize>() {
        Ok(0) => Err("NDP_THREADS must be a positive integer, got 0".to_string()),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "NDP_THREADS must be a positive integer, got {raw:?}"
        )),
    }
}

/// Reads and validates the `NDP_THREADS` environment variable:
/// `Ok(None)` when unset or empty (use the machine default), `Ok(Some)`
/// for a valid count.
///
/// # Errors
///
/// Returns the [`parse_thread_count`] message for a malformed value.
/// Binaries call this up front to exit cleanly instead of panicking
/// mid-run.
pub fn env_thread_count() -> Result<Option<usize>, String> {
    match std::env::var("NDP_THREADS") {
        Ok(v) if !v.trim().is_empty() => parse_thread_count(&v).map(Some),
        _ => Ok(None),
    }
}

/// Worker threads used by [`par_map`]: the [`set_jobs`] override if one
/// was installed, else `NDP_THREADS` if set (and non-empty), else the
/// machine's available parallelism.
///
/// # Panics
///
/// Panics with the [`parse_thread_count`] message when `NDP_THREADS` is
/// set to something that isn't a positive integer. Binaries validate via
/// [`env_thread_count`] up front for a clean exit instead.
#[must_use]
pub fn default_threads() -> usize {
    if let Some(jobs) = jobs_override() {
        return jobs;
    }
    match env_thread_count() {
        Ok(Some(n)) => n,
        Ok(None) => std::thread::available_parallelism().map_or(1, usize::from),
        Err(e) => panic!("{e}"),
    }
}

/// Maps `f` over `items` on [`default_threads`] workers, returning the
/// results in input order. Serial under `legacy_hotpath`.
pub fn par_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    #[cfg(feature = "legacy_hotpath")]
    {
        items.into_iter().map(f).collect()
    }
    #[cfg(not(feature = "legacy_hotpath"))]
    {
        par_map_threads(default_threads(), items, f)
    }
}

/// [`par_map`] with an explicit worker count (`1` runs inline). The
/// result is identical for every `threads` value — the determinism tests
/// compare multi-threaded output against `threads = 1`.
pub fn par_map_threads<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    par_map_sink_threads(threads, items, f, |_, _| ())
}

/// [`par_map_sink_threads`] on [`default_threads`] workers. Serial (and
/// sink-in-order by construction) under `legacy_hotpath`.
pub fn par_map_sink<I, T, F, S>(items: Vec<I>, f: F, sink: S) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
    S: FnMut(usize, &T) + Send,
{
    #[cfg(feature = "legacy_hotpath")]
    {
        par_map_sink_threads(1, items, f, sink)
    }
    #[cfg(not(feature = "legacy_hotpath"))]
    {
        par_map_sink_threads(default_threads(), items, f, sink)
    }
}

/// Work-stealing map with an **in-order result sink**: `sink(i, &result)`
/// is invoked for `i = 0, 1, 2, …` as soon as every result up to and
/// including `i` has completed — regardless of completion order — so
/// incremental consumers (the JSONL sweep writer) observe a growing
/// contiguous prefix. Returns all results in input order, bit-identical
/// to a serial loop at any thread count.
///
/// The queue is a shared atomic cursor over the input (workers steal the
/// next index when free); each output slot is written by exactly the
/// task that owns it, and the flush cursor only ever advances over
/// completed slots while holding the sink lock.
pub fn par_map_sink_threads<I, T, F, S>(threads: usize, items: Vec<I>, f: F, mut sink: S) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
    S: FnMut(usize, &T) + Send,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                let result = f(item);
                sink(i, &result);
                result
            })
            .collect();
    }

    let tasks: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    // Flush cursor + sink, advanced under one lock: whichever worker
    // finishes a task drains the contiguous completed prefix.
    let flush: Mutex<(usize, &mut S)> = Mutex::new((0, &mut sink));
    let f = &f;
    let tasks = &tasks;
    let slots = &slots;
    let cursor = &cursor;
    let flush = &flush;

    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = tasks[idx]
                    .lock()
                    .expect("task mutex poisoned")
                    .take()
                    .expect("each task index is claimed once");
                let result = f(item);
                *slots[idx].lock().expect("slot mutex poisoned") = Some(result);
                // Drain the completed prefix. No worker ever holds a
                // slot lock while waiting for the flush lock (stores
                // release theirs first), so flush -> slot lock order
                // cannot deadlock.
                let mut guard = flush.lock().expect("flush mutex poisoned");
                let (next, sink) = &mut *guard;
                while *next < n {
                    let slot = slots[*next].lock().expect("slot mutex poisoned");
                    match slot.as_ref() {
                        Some(value) => {
                            sink(*next, value);
                            drop(slot);
                            *next += 1;
                        }
                        None => break,
                    }
                }
            });
        }
    });

    slots
        .iter()
        .map(|slot| {
            slot.lock()
                .expect("slot mutex poisoned")
                .take()
                .expect("every slot filled by its owning task")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_values() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(par_map_threads(8, items.clone(), |x| x * x), expect);
        assert_eq!(par_map_threads(1, items.clone(), |x| x * x), expect);
        assert_eq!(par_map(items, |x| x * x), expect);
    }

    #[test]
    fn handles_empty_and_single() {
        assert_eq!(
            par_map_threads(4, Vec::<u64>::new(), |x| x),
            Vec::<u64>::new()
        );
        assert_eq!(par_map_threads(4, vec![9u64], |x| x + 1), vec![10]);
    }

    #[test]
    fn threads_spawn_for_real_work() {
        // More tasks than threads; each records which thread ran it.
        let ids = par_map_threads(4, (0..64).collect::<Vec<u64>>(), |_| {
            format!("{:?}", std::thread::current().id())
        });
        assert_eq!(ids.len(), 64);
    }

    #[test]
    fn default_thread_count_is_positive() {
        assert!(default_threads() >= 1);
    }

    /// Deliberately uneven per-item cost: item `i` spins a
    /// pseudo-random amount so fast tasks constantly overtake slow ones
    /// and the completion order differs from the input order.
    fn uneven(i: u64) -> u64 {
        let spin = (i * 37) % 11;
        let mut acc = i;
        for _ in 0..(spin * spin * 500) {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
        }
        std::hint::black_box(acc);
        i * i
    }

    #[test]
    fn uneven_cost_batches_are_bit_identical_across_thread_counts() {
        let items: Vec<u64> = (0..64).collect();
        let serial = par_map_threads(1, items.clone(), uneven);
        for threads in [2, 8] {
            assert_eq!(
                par_map_threads(threads, items.clone(), uneven),
                serial,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn sink_sees_every_index_in_order_under_any_schedule() {
        for threads in [1usize, 2, 8] {
            let mut seen = Vec::new();
            let results =
                par_map_sink_threads(threads, (0..64).collect::<Vec<u64>>(), uneven, |i, v| {
                    seen.push((i, *v))
                });
            let expect: Vec<(usize, u64)> = (0..64u64).map(|i| (i as usize, i * i)).collect();
            assert_eq!(seen, expect, "threads = {threads}");
            assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn sink_handles_empty_and_single() {
        let mut seen = Vec::new();
        let out = par_map_sink_threads(4, Vec::<u64>::new(), |x| x, |i, v| seen.push((i, *v)));
        assert!(out.is_empty() && seen.is_empty());
        let out = par_map_sink_threads(4, vec![7u64], |x| x + 1, |i, v| seen.push((i, *v)));
        assert_eq!(out, vec![8]);
        assert_eq!(seen, vec![(0, 8)]);
    }

    #[test]
    fn jobs_override_wins_until_cleared() {
        // Serialized via the env-free override only; restore state after.
        assert_eq!(jobs_override(), None);
        set_jobs(3);
        assert_eq!(jobs_override(), Some(3));
        assert_eq!(default_threads(), 3);
        set_jobs(0);
        assert_eq!(jobs_override(), None);
    }

    #[test]
    fn thread_count_parsing_is_strict() {
        assert_eq!(parse_thread_count("4"), Ok(4));
        assert_eq!(parse_thread_count(" 8 "), Ok(8));
        assert!(parse_thread_count("abc").unwrap_err().contains("abc"));
        assert!(parse_thread_count("0").unwrap_err().contains('0'));
        assert!(parse_thread_count("-2").is_err());
        assert!(parse_thread_count("4.5").is_err());
    }
}
