//! The discrete-event multi-core machine.
//!
//! Implements the address-translation and data-access flow of the paper's
//! Fig 11: TLB lookup → (on miss) PWC-filtered page-table walk whose PTE
//! fetches either traverse the cache hierarchy or — under NDPage — bypass
//! the L1 straight to memory, followed by the normal data access.
//!
//! # Execution model: blocking vs windowed
//!
//! Every memory stage hands back *completion timestamps* rather than
//! charging latency to the core clock in place, so the same translation
//! and cache/DRAM code serves two cores:
//!
//! * **Blocking** (`mlp_window = 1`, the default): the core's clock jumps
//!   to each op's completion before the next op issues — exactly the
//!   pre-pipeline engine, bit for bit (anchored by digest-equality tests).
//! * **Windowed** (`mlp_window > 1`): up to `mlp_window` memory ops stay
//!   in flight and retire in order; the clock only advances by issue
//!   slots, compute bursts and structural stalls (window full, MSHRs
//!   full, walkers busy). Same-line misses coalesce in the MSHR file;
//!   concurrent page-table walks queue for the hardware walkers — the
//!   paper's asymmetry: data misses overlap, radix walks serialise.

use crate::config::{InclusionPolicy, SimConfig, SystemKind};
use crate::report::{FaultCounts, MlpStats, RunReport, SchedStats, SharedLlcStats};
use ndp_cache::hierarchy::{CacheHierarchy, LookupResult, VictimList};
use ndp_cache::mshr::MshrLookup;
use ndp_cache::set_assoc::CacheConfig;
use ndp_cache::shared::{SharedCache, SharedVictim};
use ndp_mem::controller::MemoryController;
use ndp_mem::dram::DramConfig;
use ndp_mem::noc::MeshNoc;
use ndp_mmu::tlb::TlbHierarchy;
use ndp_mmu::walker::PageTableWalker;
use ndp_types::stats::{HitMiss, LatencyHistogram, LatencyStat};
use ndp_types::{
    AccessClass, Asid, CoreId, Cycles, Op, Pfn, PhysAddr, ProcessId, PtLevel, RwKind, Vpn,
};
use ndp_workloads::{Trace, TraceParams};
use ndpage::alloc::FrameAllocator;
use ndpage::bypass::BypassPolicy;
use ndpage::occupancy::OccupancyReport;
use ndpage::table::{FaultKind, PageTable};
use ndpage::Mechanism;
use std::collections::{BTreeMap, VecDeque};

/// Memory ops after a context switch that count toward the post-switch
/// cold-miss penalty statistics (see [`SchedStats`]). Sized to cover the
/// TLB/PWC re-warm transient without bleeding into steady state.
const POST_SWITCH_WINDOW: u64 = 256;

/// The per-core page table. The mechanism set is closed, so the hot path
/// dispatches statically through [`ndpage::PageTableImpl`]; the seed's
/// `Box<dyn PageTable>` vtable dispatch is kept under `legacy_hotpath`
/// for baseline benchmarking.
#[cfg(not(feature = "legacy_hotpath"))]
type TableImpl = ndpage::PageTableImpl;

#[cfg(feature = "legacy_hotpath")]
type TableImpl = Box<dyn PageTable>;

/// Builds `mechanism`'s table; `Ideal` still places pages through a radix
/// table (but is charged no translation work).
fn build_table(mechanism: Mechanism, alloc: &mut FrameAllocator) -> TableImpl {
    #[cfg(not(feature = "legacy_hotpath"))]
    {
        mechanism.build_impl(alloc).unwrap_or_else(|| {
            Mechanism::Radix
                .build_impl(alloc)
                .expect("radix always builds")
        })
    }
    #[cfg(feature = "legacy_hotpath")]
    {
        mechanism.build_table(alloc).unwrap_or_else(|| {
            Mechanism::Radix
                .build_table(alloc)
                .expect("radix always builds")
        })
    }
}

/// Streams one process's premap schedule — its regions flattened into
/// 2 MB-or-smaller chunks — without materialising the chunk list (at
/// paper-scale footprints that list runs to tens of thousands of entries
/// per process, all derivable from a cursor).
struct ChunkCursor<'a> {
    regions: &'a [ndp_workloads::region::Region],
    region: usize,
    offset: u64,
}

impl<'a> ChunkCursor<'a> {
    fn new(regions: &'a [ndp_workloads::region::Region]) -> Self {
        ChunkCursor {
            regions,
            region: 0,
            offset: 0,
        }
    }

    /// The next `(base address, byte length)` chunk, if any.
    fn next_chunk(&mut self) -> Option<(u64, u64)> {
        use ndp_types::addr::HUGE_PAGE_SIZE;
        while let Some(region) = self.regions.get(self.region) {
            if self.offset < region.bytes {
                let len = (region.bytes - self.offset).min(HUGE_PAGE_SIZE);
                let base = region.base.as_u64() + self.offset;
                self.offset += len;
                return Some((base, len));
            }
            self.region += 1;
            self.offset = 0;
        }
        None
    }
}

/// Whether the regions' page spans are pairwise disjoint (conservatively
/// rounded outward to page boundaries) — the precondition for deferring
/// premap leaf installs, since a planned-but-unapplied page still reads
/// as unmapped and would double-allocate if planned again.
#[cfg(not(feature = "legacy_hotpath"))]
fn page_spans_disjoint(regions: &[ndp_workloads::region::Region]) -> bool {
    use ndp_types::addr::PAGE_SIZE;
    let mut spans: Vec<(u64, u64)> = regions
        .iter()
        .map(|r| {
            let first = r.base.as_u64() / PAGE_SIZE;
            let last = (r.base.as_u64() + r.bytes).div_ceil(PAGE_SIZE);
            (first, last)
        })
        .collect();
    spans.sort_unstable();
    spans.windows(2).all(|w| w[0].1 <= w[1].0)
}

/// One multiprogrammed process: a private address space (its own page
/// table and ASID) and its own trace stream. The translation hardware
/// (TLBs, PWCs, caches) belongs to the core the process runs on.
struct ProcCtx {
    #[allow(dead_code)] // identification / future per-proc reporting
    pid: ProcessId,
    /// The ASID this process's translations are tagged with. With
    /// `tlb_tagging` off every process shares [`Asid::ZERO`] and the core
    /// full-flushes on each switch instead.
    asid: Asid,
    trace: Trace,
    table: TableImpl,
    /// THP-fallback pressure established during init (0 when the
    /// contiguity pool sufficed); drives compaction interference.
    thp_pressure: f64,
    ops_since_tax: u64,
}

/// One in-flight translation install (windowed mode): the walk that
/// produced this TLB entry completes at `done`; until then a lookup that
/// functionally hits the entry is a hit-under-miss and waits — the same
/// treatment [`CacheHierarchy`] gives lines whose fill is in flight.
#[derive(Debug, Clone, Copy)]
struct PendingTlbFill {
    asid: Asid,
    /// The installed entry's tag: the exact VPN for 4 KB entries, the
    /// 2 MB-aligned region base for huge entries.
    key: Vpn,
    huge: bool,
    done: Cycles,
}

/// Most translation installs a core tracks as in flight (it can never
/// have more walks outstanding than its issue window, ≤ 64).
const MAX_PENDING_TLB_FILLS: usize = 64;

struct CoreCtx {
    /// Processes round-robin-scheduled on this core (length is
    /// `procs_per_core`; 1 reproduces the paper's setup exactly).
    procs: Vec<ProcCtx>,
    /// Index of the currently running process.
    active: usize,
    /// Ops executed in the current scheduling quantum.
    quantum_ops: u64,
    /// Memory ops remaining in the post-switch cold window.
    post_switch_ops: u64,
    /// Whether the switch that opened the current cold window happened
    /// inside the measured window — keeps the penalty counters aligned
    /// with `measured_context_switches` (a warmup switch whose window
    /// bleeds into measurement must not contribute walks it has no
    /// denominator for).
    post_switch_measured: bool,
    time: Cycles,
    start_time: Cycles,
    ops_done: u64,
    measuring: bool,
    tlb: TlbHierarchy,
    walker: PageTableWalker,
    caches: CacheHierarchy,
    // Measured-window accumulators.
    translation_cycles: u64,
    os_cycles: u64,
    ptw: LatencyStat,
    ptw_hist: LatencyHistogram,
    faults: FaultCounts,
    ops_measured: u64,
    mem_ops_measured: u64,
    /// Whole-run scheduling counters (like `faults`, switches are not a
    /// measured-window phenomenon — flush effects from warmup linger).
    sched: SchedStats,
    /// Completion times of in-flight memory ops in issue order (empty in
    /// blocking mode, where every op retires before the next issues).
    /// Retirement is in-order: the front op leaves first, and draining
    /// advances the clock past *every* completion.
    inflight: VecDeque<Cycles>,
    /// Machine-side MLP counters (window stalls, occupancy); the MSHR and
    /// walker-queue counters live with their structures and are merged in
    /// at report time.
    mlp: MlpStats,
    /// Walks whose TLB entry is installed but whose data is still in
    /// flight (empty in blocking mode — every walk retires before the
    /// next op can look its entry up).
    pending_tlb_fills: VecDeque<PendingTlbFill>,
}

impl CoreCtx {
    /// Retires in-flight ops that completed by `self.time` (free), then —
    /// if the window is still at `capacity` — stalls the clock to the
    /// oldest op's completion and retires it, recording the stall.
    fn make_issue_slot(&mut self, capacity: usize) {
        while let Some(&front) = self.inflight.front() {
            if front <= self.time {
                self.inflight.pop_front();
            } else {
                break;
            }
        }
        if self.inflight.len() >= capacity {
            let front = self.inflight.pop_front().expect("window is non-empty");
            if self.measuring {
                self.mlp.window_stall_cycles += (front - self.time).as_u64();
            }
            self.time = front;
        }
    }

    /// Advances the clock past every in-flight completion (end of run,
    /// context switch) and empties the window.
    fn drain_window(&mut self) {
        if let Some(&last) = self.inflight.iter().max() {
            self.time = self.time.max(last);
        }
        self.inflight.clear();
        self.pending_tlb_fills.clear();
    }

    /// The completion time of an in-flight walk whose installed entry
    /// covers `vpn`, if any is still outstanding at `now` — the TLB
    /// analogue of [`CacheHierarchy::in_flight_fill`].
    fn pending_translation_done(&self, asid: Asid, vpn: Vpn, now: Cycles) -> Option<Cycles> {
        let huge_base = Vpn::new(vpn.as_u64() - vpn.l1_index() as u64);
        self.pending_tlb_fills
            .iter()
            .filter(|f| {
                f.done > now && f.asid == asid && (f.key == vpn || (f.huge && f.key == huge_base))
            })
            .map(|f| f.done)
            .max()
    }

    /// Records a windowed walk's install, pruning retired entries.
    fn push_pending_fill(&mut self, fill: PendingTlbFill) {
        while let Some(front) = self.pending_tlb_fills.front() {
            if front.done <= self.time || self.pending_tlb_fills.len() >= MAX_PENDING_TLB_FILLS {
                self.pending_tlb_fills.pop_front();
            } else {
                break;
            }
        }
        self.pending_tlb_fills.push_back(fill);
    }
}

impl CoreCtx {
    /// The running process's ASID.
    fn asid(&self) -> Asid {
        self.procs[self.active].asid
    }
}

/// The simulated machine: cores plus the shared memory system.
pub struct Machine {
    cfg: SimConfig,
    cores: Vec<CoreCtx>,
    controller: MemoryController,
    noc: MeshNoc,
    alloc: FrameAllocator,
    bypass: BypassPolicy,
    controller_cleared: bool,
    /// Shared banked L3 every core's private misses contend in
    /// (`l3_kb > 0`). `None` keeps the pre-shared-LLC paths untouched —
    /// the disabled configuration is cycle-identical by construction.
    l3: Option<SharedCache>,
    /// Per-vault (per-memory-channel) buffers on the memory side
    /// (`vault_buffer_kb > 0`), arbitrated across every core that
    /// reaches the vault. Empty when disabled.
    vaults: Vec<SharedCache>,
}

impl Machine {
    /// Builds the machine for `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`SimConfig::validate`].
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        cfg.validate().expect("invalid simulation config");

        let (mut dram, noc) = match cfg.system {
            SystemKind::Ndp => (DramConfig::hbm2_vault(), MeshNoc::ndp(cfg.cores)),
            SystemKind::Cpu => (DramConfig::ddr4_2400(), MeshNoc::cpu(cfg.cores)),
        };
        if let Some(capacity) = cfg.memory_capacity_override {
            dram.capacity_bytes = capacity;
        }
        // Frame bookkeeping must cover the multiprogrammed demand even when
        // it oversubscribes nominal DRAM (real systems would demand-page;
        // we do not model swap latency). The huge-page *contiguity pool*
        // stays pegged to the nominal capacity — that scarcity is the
        // physical effect behind Fig 14.
        let procs = u64::from(cfg.procs_per_core);
        let demand = cfg.footprint_per_core() * u64::from(cfg.cores) * procs;
        let bookkeeping = dram.capacity_bytes.max(demand + demand / 4 + (1 << 30));
        let pool = (dram.capacity_bytes as f64 * ndpage::alloc::CONTIG_POOL_FRACTION) as u64;
        let mut alloc = FrameAllocator::with_contig_pool(bookkeeping, pool);

        let bypass = cfg
            .bypass_override
            .unwrap_or_else(|| cfg.mechanism.bypass_policy());
        let use_pwc = cfg.pwc_override.unwrap_or_else(|| cfg.mechanism.uses_pwc());

        let footprint = cfg.footprint_per_core();
        // Process `p` of core `i` gets the globally unique pid
        // `i * procs_per_core + p`, whose value also offsets the RNG seed;
        // with one process per core this degenerates to the historical
        // `seed + core` scheme bit for bit.
        let params = |pid: ProcessId| TraceParams {
            seed: cfg.seed + pid.as_u64(),
            footprint: Some(footprint),
        };

        let cores = (0..cfg.cores)
            .map(|i| CoreCtx {
                procs: (0..cfg.procs_per_core)
                    .map(|p| {
                        let pid = ProcessId(i * cfg.procs_per_core + p);
                        ProcCtx {
                            pid,
                            // Tagged hardware gives each co-resident
                            // process its own (core-local) ASID; untagged
                            // hardware has a single namespace and pays
                            // with full flushes at every switch.
                            asid: if cfg.tlb_tagging {
                                Asid(p as u16)
                            } else {
                                Asid::ZERO
                            },
                            trace: cfg.workload.trace(params(pid)),
                            table: build_table(cfg.mechanism, &mut alloc),
                            thp_pressure: 0.0,
                            ops_since_tax: 0,
                        }
                    })
                    .collect(),
                active: 0,
                quantum_ops: 0,
                post_switch_ops: 0,
                post_switch_measured: false,
                // Deterministic start skew breaks the artificial phase
                // lock of homogeneous cores (standard simulator practice;
                // without it, identical per-op latencies make all cores
                // collide at the memory controller in the same cycles and
                // tiny latency deltas produce large spurious queueing
                // differences between otherwise-equivalent mechanisms).
                time: Cycles::new(u64::from(i) * 97),
                start_time: Cycles::ZERO,
                ops_done: 0,
                measuring: cfg.warmup_ops == 0,
                tlb: {
                    let tlb = match cfg.tlb_l2_entries {
                        None => TlbHierarchy::table1(),
                        Some(entries) => TlbHierarchy::new(
                            ndp_mmu::tlb::TlbConfig::l1_dtlb(),
                            ndp_mmu::tlb::TlbConfig {
                                name: "L2 TLB",
                                entries,
                                ways: 12,
                                latency: Cycles::new(12),
                            },
                        ),
                    };
                    tlb.with_fracturing(cfg.tlb_fracture_huge.unwrap_or(true))
                },
                walker: match (use_pwc, cfg.pwc_entries) {
                    (false, _) => PageTableWalker::without_pwcs(),
                    (true, None) => PageTableWalker::with_pwcs(),
                    (true, Some(entries)) => PageTableWalker::with_pwc_capacity(entries),
                }
                .with_walkers(cfg.walkers_per_core as usize),
                caches: match (cfg.system, cfg.l3_kb) {
                    (SystemKind::Ndp, _) => CacheHierarchy::ndp(),
                    // Each CPU core gets its 2 MB share of the shared L3
                    // (the cores are multiprogrammed, so a fair-share
                    // private slice is the standard approximation)...
                    (SystemKind::Cpu, 0) => CacheHierarchy::new(vec![
                        CacheConfig::l1d(),
                        CacheConfig::l2(),
                        CacheConfig::l3(1),
                    ]),
                    // ...unless a real shared L3 is enabled, which
                    // replaces the fair-share slice: the private
                    // hierarchy ends at L2 and misses contend below.
                    (SystemKind::Cpu, _) => {
                        CacheHierarchy::new(vec![CacheConfig::l1d(), CacheConfig::l2()])
                    }
                }
                .with_mshrs(cfg.mshrs_per_core as usize),
                translation_cycles: 0,
                os_cycles: 0,
                ptw: LatencyStat::default(),
                ptw_hist: LatencyHistogram::new(),
                faults: FaultCounts::default(),
                ops_measured: 0,
                mem_ops_measured: 0,
                sched: SchedStats::default(),
                inflight: VecDeque::with_capacity(cfg.mlp_window as usize),
                mlp: MlpStats::default(),
                pending_tlb_fills: VecDeque::new(),
            })
            .collect();

        // Windowed cores book requests far ahead of their issue clock;
        // the reservation-list bank scheduler keeps that contention
        // timestamp-ordered. Blocking runs keep the scalar banks — the
        // digest-anchored legacy path.
        let l3 = cfg.l3_config().map(SharedCache::new);
        let vaults: Vec<SharedCache> = match cfg.vault_buffer_config() {
            Some(vault_cfg) => (0..dram.channels)
                .map(|_| SharedCache::new(vault_cfg.clone()))
                .collect(),
            None => Vec::new(),
        };
        let controller = if cfg.is_blocking() {
            MemoryController::new(dram)
        } else {
            MemoryController::new(dram).with_overlap_scheduling()
        };
        let mut machine = Machine {
            cfg,
            cores,
            controller,
            noc,
            alloc,
            bypass,
            controller_cleared: false,
            l3,
            vaults,
        };
        machine.premap_footprints();
        machine
    }

    /// The init phase: every page of every process's regions is mapped
    /// before timing starts, exactly as the paper's workloads populate
    /// their arrays before the measured 500 M-instruction window.
    /// Processes' regions are mapped in interleaved 2 MB chunks so
    /// contiguity exhaustion hits all address spaces evenly (as concurrent
    /// first-touch faulting would).
    ///
    /// The chunk schedule streams from per-target cursors (nothing
    /// footprint-proportional is materialised — traces themselves are
    /// already lazy iterators), and for designs that support the
    /// plan/apply split the phase runs in two halves: a serial planning
    /// pass over the canonical interleaved schedule that performs every
    /// allocator interaction (so frames, faults and digests are identical
    /// to the combined path), then a parallel per-table pass installing
    /// the planned leaf PTEs — the bulk of init time at paper-scale
    /// footprints — via the order-preserving parallel driver.
    fn premap_footprints(&mut self) {
        use ndp_types::addr::PAGE_SIZE;

        let footprint = self.cfg.footprint_per_core();
        // One entry per (core, proc), core-major — the same order the
        // processes were constructed in.
        let targets: Vec<(usize, usize)> = (0..self.cores.len())
            .flat_map(|c| (0..self.cores[c].procs.len()).map(move |p| (c, p)))
            .collect();
        let region_lists: Vec<Vec<ndp_workloads::region::Region>> = targets
            .iter()
            .map(|&(c, p)| {
                self.cfg.workload.regions(TraceParams {
                    seed: self.cfg.seed + self.cores[c].procs[p].pid.as_u64(),
                    footprint: Some(footprint),
                })
            })
            .collect();
        let mut cursors: Vec<ChunkCursor<'_>> =
            region_lists.iter().map(|r| ChunkCursor::new(r)).collect();

        let mut proc_faults = vec![FaultCounts::default(); targets.len()];
        // Deferred leaf installs are only sound while planned pages cannot
        // be re-planned: a planned-but-unapplied page still reads as
        // unmapped, so a process whose regions overlap must take the
        // combined path (chunks within one region never overlap).
        #[cfg(not(feature = "legacy_hotpath"))]
        let mut deferred = region_lists.iter().all(|rs| page_spans_disjoint(rs));
        #[cfg(not(feature = "legacy_hotpath"))]
        let mut plans: Vec<Vec<ndpage::table::RangePlan>> = vec![Vec::new(); targets.len()];

        // Round-robin passes over the cursors reproduce the historical
        // `for chunk_idx { for target }` interleaving exactly (exhausted
        // targets drop out, the rest keep their relative order).
        let mut live = true;
        while live {
            live = false;
            for target_idx in 0..targets.len() {
                let Some((base, len)) = cursors[target_idx].next_chunk() else {
                    continue;
                };
                live = true;
                let (core_idx, proc_idx) = targets[target_idx];
                let first = ndp_types::VirtAddr::new(base).vpn();
                let pages = len.div_ceil(PAGE_SIZE);
                // Range mapping descends each table once per region
                // instead of once per page — the init phase maps millions
                // of pages. The seed's per-page loop (identical faults,
                // frames and counts) is kept under `legacy_hotpath`.
                #[cfg(not(feature = "legacy_hotpath"))]
                {
                    let table = &mut self.cores[core_idx].procs[proc_idx].table;
                    let outcome = if deferred {
                        match table.plan_range(first, pages, &mut self.alloc) {
                            Some(plan) => {
                                let outcome = plan.outcome;
                                plans[target_idx].push(plan);
                                outcome
                            }
                            // The design can't split the halves (ECH, Huge
                            // Page); the probe had no side effects, so the
                            // combined call takes over from here on.
                            None => {
                                deferred = false;
                                table.map_range(first, pages, &mut self.alloc)
                            }
                        }
                    } else {
                        table.map_range(first, pages, &mut self.alloc)
                    };
                    let faults = &mut proc_faults[target_idx];
                    faults.minor_4k += outcome.minor_4k;
                    faults.minor_2m += outcome.minor_2m;
                    faults.fallback += outcome.fallback;
                }
                #[cfg(feature = "legacy_hotpath")]
                for p in 0..pages {
                    let outcome = self.cores[core_idx].procs[proc_idx]
                        .table
                        .map(first.add(p), &mut self.alloc);
                    let faults = &mut proc_faults[target_idx];
                    match outcome.fault {
                        Some(FaultKind::Minor4K) => faults.minor_4k += 1,
                        Some(FaultKind::Minor2M) => faults.minor_2m += 1,
                        Some(FaultKind::Fallback4K) => faults.fallback += 1,
                        None => {}
                    }
                }
            }
        }

        // Apply phase: install the planned leaf PTEs, one task per table.
        // Pure memory writes with no shared state, so thread count cannot
        // affect the result; `par_map` keeps task order regardless.
        #[cfg(not(feature = "legacy_hotpath"))]
        if plans.iter().any(|p| !p.is_empty()) {
            let work: Vec<(&mut TableImpl, Vec<ndpage::table::RangePlan>)> = self
                .cores
                .iter_mut()
                .flat_map(|c| c.procs.iter_mut().map(|p| &mut p.table))
                .zip(plans)
                .collect();
            crate::parallel::par_map(work, |(table, table_plans)| {
                for plan in &table_plans {
                    table.apply_plan(plan);
                }
            });
        }

        for (target_idx, &(core_idx, proc_idx)) in targets.iter().enumerate() {
            let faults = proc_faults[target_idx];
            let core = &mut self.cores[core_idx];
            core.faults.minor_4k += faults.minor_4k;
            core.faults.minor_2m += faults.minor_2m;
            core.faults.fallback += faults.fallback;
            let proc = &mut core.procs[proc_idx];
            // Init-phase OS work (e.g. ECH rehashes) is not timed.
            let _ = proc.table.take_pending_os_work();
            // Fallback faults are per 4 KB page while huge faults are per
            // 2 MB region; normalise to regions before computing the
            // fraction of the footprint that failed THP allocation.
            let fallback_regions = faults.fallback as f64 / 512.0;
            let huge_regions = faults.minor_2m as f64;
            proc.thp_pressure = if huge_regions + fallback_regions == 0.0 {
                0.0
            } else {
                fallback_regions / (huge_regions + fallback_regions)
            };
        }
    }

    /// Runs warmup + measurement and produces the report.
    ///
    /// # Scheduling
    ///
    /// The per-op rule is: the oldest unfinished core goes next
    /// (conservative interleaving, lowest index on ties). The loop below
    /// batches that rule into *epochs*: after picking core `i` it keeps
    /// running `i` — up to [`SimConfig::epoch_ops`] ops — for as long as
    /// the per-op scheduler would still pick it. Core `i` stays the pick
    /// exactly while its clock is *strictly below* every lower-indexed
    /// unfinished core's and *at or below* every higher-indexed one's;
    /// since only core `i`'s clock moves during the batch, that bound is
    /// a constant (`limit`) computable at pick time. Execution order —
    /// and therefore every timestamp and digest — is identical at any
    /// epoch size, including the per-op `epoch_ops = 1`.
    ///
    /// The seed's one-op-per-pick loop is kept under `legacy_hotpath`
    /// for baseline comparison (it ignores `epoch_ops`, which is
    /// timing-inert anyway).
    #[cfg(not(feature = "legacy_hotpath"))]
    #[must_use]
    pub fn run(mut self) -> RunReport {
        let total_ops = self.cfg.warmup_ops + self.cfg.measure_ops;
        let epoch = self.cfg.epoch_ops.max(1);
        loop {
            let mut next: Option<usize> = None;
            for (i, core) in self.cores.iter().enumerate() {
                if core.ops_done < total_ops && next.is_none_or(|n| core.time < self.cores[n].time)
                {
                    next = Some(i);
                }
            }
            let Some(i) = next else { break };

            // The batch bound: min over lower-indexed unfinished cores of
            // their clock, and over higher-indexed ones of clock + 1
            // (ties go to the lower index, so `i` keeps the pick at equal
            // time against a higher index only). `None` = `i` is the last
            // unfinished core and runs unbounded.
            let mut limit: Option<Cycles> = None;
            for (j, core) in self.cores.iter().enumerate() {
                if j == i || core.ops_done >= total_ops {
                    continue;
                }
                let bound = if j < i {
                    core.time
                } else {
                    core.time + Cycles::new(1)
                };
                limit = Some(limit.map_or(bound, |l| l.min(bound)));
            }

            for _ in 0..epoch {
                if self.cores[i].ops_done >= total_ops
                    || limit.is_some_and(|l| self.cores[i].time >= l)
                {
                    break;
                }
                if !self.cores[i].measuring && self.cores[i].ops_done >= self.cfg.warmup_ops {
                    self.begin_measurement(i);
                }
                let active = self.cores[i].active;
                let op = self.cores[i].procs[active]
                    .trace
                    .next()
                    .expect("traces are infinite");
                self.exec_op(i, op);
                let core = &mut self.cores[i];
                core.ops_done += 1;
                if core.measuring {
                    core.ops_measured += 1;
                    if op.is_memory() {
                        core.mem_ops_measured += 1;
                    }
                }
                if core.procs.len() > 1 {
                    core.quantum_ops += 1;
                    if core.quantum_ops >= self.cfg.context_switch_quantum_ops {
                        self.context_switch(i);
                    }
                }
            }
        }
        // Windowed cores finish their traces with ops still in flight;
        // wall-clock includes waiting those out (in-order retirement).
        for core in &mut self.cores {
            core.drain_window();
        }
        self.into_report()
    }

    /// The seed's per-op loop: re-scan for the oldest unfinished core
    /// before every single op (see the batched `run` above).
    #[cfg(feature = "legacy_hotpath")]
    #[must_use]
    pub fn run(mut self) -> RunReport {
        let total_ops = self.cfg.warmup_ops + self.cfg.measure_ops;
        loop {
            // Oldest unfinished core goes next (conservative interleaving).
            let mut next: Option<usize> = None;
            for (i, core) in self.cores.iter().enumerate() {
                if core.ops_done < total_ops && next.is_none_or(|n| core.time < self.cores[n].time)
                {
                    next = Some(i);
                }
            }
            let Some(i) = next else { break };

            if !self.cores[i].measuring && self.cores[i].ops_done >= self.cfg.warmup_ops {
                self.begin_measurement(i);
            }
            let active = self.cores[i].active;
            let op = self.cores[i].procs[active]
                .trace
                .next()
                .expect("traces are infinite");
            self.exec_op(i, op);
            let core = &mut self.cores[i];
            core.ops_done += 1;
            if core.measuring {
                core.ops_measured += 1;
                if op.is_memory() {
                    core.mem_ops_measured += 1;
                }
            }
            if core.procs.len() > 1 {
                core.quantum_ops += 1;
                if core.quantum_ops >= self.cfg.context_switch_quantum_ops {
                    self.context_switch(i);
                }
            }
        }
        for core in &mut self.cores {
            core.drain_window();
        }
        self.into_report()
    }

    /// Round-robin switch to core `i`'s next process: charge the OS cost,
    /// and — on untagged translation hardware — full-flush the TLBs and
    /// PWCs (ASID-tagged hardware keeps every resident process's entries
    /// warm; correctness across address spaces comes from the tags).
    fn context_switch(&mut self, i: usize) {
        let core = &mut self.cores[i];
        core.quantum_ops = 0;
        // A switch serialises the pipeline: the outgoing process's
        // in-flight ops retire before the OS takes over.
        core.drain_window();
        core.active = (core.active + 1) % core.procs.len();
        core.time += self.cfg.context_switch_cost;
        if core.measuring {
            core.os_cycles += self.cfg.context_switch_cost.as_u64();
        }
        core.sched.context_switches += 1;
        if core.measuring {
            core.sched.measured_context_switches += 1;
        }
        if !self.cfg.tlb_tagging {
            let dropped = core.tlb.flush_all() + core.walker.flush_all();
            core.sched.tlb_flushes += 1;
            core.sched.entries_flushed += dropped;
        }
        core.post_switch_ops = POST_SWITCH_WINDOW;
        core.post_switch_measured = core.measuring;
    }

    fn begin_measurement(&mut self, i: usize) {
        let core = &mut self.cores[i];
        core.measuring = true;
        core.start_time = core.time;
        core.tlb.clear_stats();
        core.caches.clear_stats();
        core.walker.clear_stats();
        // The shared controller's window opens with the *first* core to
        // measure, matching the per-core windows: every measured-window
        // request of every core is counted. Residual warmup overlap — a
        // core still warming after this point contributes its (small,
        // skew-bounded) tail of warmup traffic — is the price of a shared
        // resource with per-core windows, and is the consistent direction:
        // traffic generated by measuring cores is never silently dropped,
        // as it was when the window only opened with the *last* core.
        if !self.controller_cleared {
            self.controller.clear_stats();
            // The shared last-level structures open their measurement
            // window with the controller: they are shared resources with
            // per-core windows, same rationale as above.
            if let Some(l3) = &mut self.l3 {
                l3.clear_stats();
            }
            for vault in &mut self.vaults {
                vault.clear_stats();
            }
            self.controller_cleared = true;
        }
    }

    fn exec_op(&mut self, i: usize, op: Op) {
        // Compaction/khugepaged interference while THP fallback pressure
        // persists: the OS periodically steals cycles trying to recover
        // contiguity (Fig 14's Huge Page collapse). The pressure is a
        // property of the *running process's* address space.
        {
            let core = &mut self.cores[i];
            let measuring = core.measuring;
            let tax_base = self.cfg.compaction_tax.as_f64();
            let proc = &mut core.procs[core.active];
            proc.ops_since_tax += 1;
            if proc.thp_pressure > 0.0 && proc.ops_since_tax >= SimConfig::COMPACTION_PERIOD {
                proc.ops_since_tax = 0;
                let tax = Cycles::new((tax_base * proc.thp_pressure) as u64);
                core.time += tax;
                if measuring {
                    core.os_cycles += tax.as_u64();
                }
            }
        }
        match op {
            Op::Compute(n) => {
                self.cores[i].time += Cycles::new(u64::from(n));
            }
            Op::Load(va) | Op::Store(va) => {
                let rw = op.rw().expect("memory op");
                let window = self.cfg.mlp_window as usize;
                if window > 1 {
                    // Issue needs a free window slot; retire (in order)
                    // to make one, stalling the clock if the oldest op
                    // has not completed yet.
                    self.cores[i].make_issue_slot(window);
                }

                let issue_t = self.cores[i].time;
                let (pfn, translation, os) = self.translate(i, va.vpn());
                let core = &mut self.cores[i];
                if core.measuring {
                    core.translation_cycles += translation.as_u64();
                    core.os_cycles += os.as_u64();
                }
                if core.post_switch_ops > 0 {
                    core.post_switch_ops -= 1;
                }

                let paddr = pfn.base().add(va.page_offset());
                let data_issue = issue_t + translation + os;
                let done = self.access_done(i, paddr, rw, AccessClass::Data, data_issue);

                let core = &mut self.cores[i];
                if core.measuring {
                    core.mlp.inflight_latency_cycles += (done - issue_t).as_u64();
                }
                if window > 1 {
                    // Windowed: the op stays in flight; the clock only
                    // pays the issue slot.
                    core.inflight.push_back(done);
                    core.time += Cycles::new(1);
                    if core.measuring {
                        let depth = core.inflight.len() as u32;
                        core.mlp.peak_inflight = core.mlp.peak_inflight.max(depth);
                    }
                } else {
                    // Blocking: the clock jumps to completion before the
                    // next op, exactly the pre-pipeline engine.
                    core.time = done;
                }
            }
        }
    }

    /// Services a first-touch page fault: maps `vpn` into process
    /// `active`'s table, records the fault kind and returns the OS
    /// cycles charged (fault service + any deferred rehash work).
    fn fault_in(&mut self, i: usize, active: usize, vpn: Vpn) -> Cycles {
        let mut os = Cycles::ZERO;
        let outcome = {
            let core = &mut self.cores[i];
            core.procs[active].table.map(vpn, &mut self.alloc)
        };
        let core = &mut self.cores[i];
        match outcome.fault {
            Some(FaultKind::Minor4K) => {
                os += self.cfg.fault_minor_4k;
                core.faults.minor_4k += 1;
            }
            Some(FaultKind::Minor2M) => {
                os += self.cfg.fault_minor_2m;
                core.faults.minor_2m += 1;
            }
            Some(FaultKind::Fallback4K) => {
                os += self.cfg.fault_fallback;
                core.faults.fallback += 1;
            }
            None => {}
        }
        let moved = core.procs[active].table.take_pending_os_work();
        os += Cycles::new(moved * self.cfg.rehash_entry_cost.as_u64());
        os
    }

    /// Translates `vpn` for the process running on core `i`, returning
    /// `(frame, translation cycles, OS cycles)`. Implements the Fig 11
    /// flow; TLB and PWC state is tagged with the process's ASID.
    fn translate(&mut self, i: usize, vpn: Vpn) -> (Pfn, Cycles, Cycles) {
        let active = self.cores[i].active;
        if self.cfg.mechanism.is_ideal() {
            // Every request hits a zero-latency L1 TLB (paper §VI); pages
            // are still placed through a real table so data-access
            // behaviour is comparable.
            if self.cores[i].procs[active].table.translate(vpn).is_none() {
                let core = &mut self.cores[i];
                core.procs[active].table.map(vpn, &mut self.alloc);
            }
            let pfn = self.cores[i].procs[active]
                .table
                .translate(vpn)
                .expect("just mapped")
                .pfn;
            return (pfn, Cycles::ZERO, Cycles::ZERO);
        }

        let asid = self.cores[i].asid();
        let lookup = self.cores[i].tlb.lookup(asid, vpn);
        if let Some(hit) = lookup.hit {
            // The functional TLB installs entries the moment their walk
            // is *planned*; in windowed mode that walk may still be in
            // flight, making this a hit-under-miss that waits for the
            // translation data (mirror of the cache-line case).
            if self.cfg.mlp_window > 1 {
                let core = &self.cores[i];
                let now = core.time + lookup.latency;
                if let Some(done) = core.pending_translation_done(asid, vpn, now) {
                    let core = &mut self.cores[i];
                    if core.measuring {
                        core.mlp.tlb_hits_under_miss += 1;
                    }
                    return (hit.pfn, done - core.time, Cycles::ZERO);
                }
            }
            return (hit.pfn, lookup.latency, Cycles::ZERO);
        }

        // One descent serves the fault check, the translation and the
        // walk path: a mapped VPN (the steady state — the footprint is
        // premapped) resolves in a single `translate_and_walk`; only a
        // genuine first touch pays the fault path and re-descends. The
        // seed's separate fault-check + translate + walk_path calls
        // (three descents) are kept under `legacy_hotpath` for baseline
        // benchmarking.
        #[cfg(not(feature = "legacy_hotpath"))]
        let (os, (translation, path)) = {
            match self.cores[i].procs[active].table.translate_and_walk(vpn) {
                Some(walked) => (Cycles::ZERO, walked),
                None => {
                    // Page fault on first touch.
                    let os = self.fault_in(i, active, vpn);
                    let walked = self.cores[i].procs[active]
                        .table
                        .translate_and_walk(vpn)
                        .expect("just mapped");
                    (os, walked)
                }
            }
        };
        #[cfg(feature = "legacy_hotpath")]
        let (os, (translation, path)) = {
            let mut os = Cycles::ZERO;
            if self.cores[i].procs[active].table.translate(vpn).is_none() {
                os = self.fault_in(i, active, vpn);
            }
            let translation = self.cores[i].procs[active]
                .table
                .translate(vpn)
                .expect("mapped above or earlier");
            let path = self.cores[i].procs[active]
                .table
                .walk_path(vpn)
                .expect("mapped pages have walk paths");
            (os, (translation, path))
        };
        let plan = self.cores[i].walker.plan(asid, vpn, &path);

        // The walk needs a hardware walker: concurrent misses beyond the
        // walker count queue here (never in blocking mode — each walk
        // fully retires before the next op issues, so `admit` is free).
        let walk_base = self.cores[i].time + lookup.latency + os;
        let (slot, start) = self.cores[i].walker.admit(walk_base);
        // One cycle per PWC probe, then the memory rounds; `clock` tracks
        // the walk's own completion frontier.
        let mut clock = start + Cycles::new(path.len() as u64);
        for round in &plan.rounds {
            let t_issue = clock;
            let round_done = round
                .iter()
                .map(|fetch| {
                    self.access_done(i, fetch.addr, RwKind::Read, AccessClass::Metadata, t_issue)
                })
                .max()
                .unwrap_or(t_issue);
            clock = round_done;
        }
        self.cores[i].walker.release(slot, clock);
        // The latency a TLB miss experiences: walker queueing (windowed
        // mode only) + PWC probes + memory rounds.
        let walk = clock - walk_base;

        if self.cores[i].measuring {
            let core = &mut self.cores[i];
            core.ptw.record(walk);
            core.ptw_hist.record(walk);
            // Walks landing shortly after a *measured* context switch are
            // the cold-miss penalty of the switch (flush-induced on
            // untagged hardware, capacity/competition-induced on tagged);
            // windows opened by warmup switches are excluded so the
            // penalty counters divide cleanly by measured switches.
            if core.post_switch_ops > 0 && core.post_switch_measured {
                core.sched.post_switch_walks += 1;
                core.sched.post_switch_walk_cycles += walk.as_u64();
            }
        }

        // Install in the TLBs (huge mappings store the region base).
        let base = match translation.size {
            ndp_types::PageSize::Size4K => translation.pfn,
            ndp_types::PageSize::Size2M => {
                Pfn::new(translation.pfn.as_u64() - vpn.l1_index() as u64)
            }
        };
        self.cores[i].tlb.fill(asid, vpn, base, translation.size);
        if self.cfg.mlp_window > 1 {
            // Later ops that functionally hit this entry before `clock`
            // must wait for the walk's data (hit-under-miss). Only a
            // *native* (unfractured) 2 MB install covers its whole
            // region; fractured installs tag the faulting VPN alone.
            let huge = translation.size == ndp_types::PageSize::Size2M
                && !self.cfg.tlb_fracture_huge.unwrap_or(true);
            let key = if huge {
                Vpn::new(vpn.as_u64() - vpn.l1_index() as u64)
            } else {
                vpn
            };
            self.cores[i].push_pending_fill(PendingTlbFill {
                asid,
                key,
                huge,
                done: clock,
            });
        }

        (translation.pfn, lookup.latency + walk, os)
    }

    /// One memory access through (or around) core `i`'s cache hierarchy,
    /// issued at `t_issue`; returns its **completion timestamp**.
    ///
    /// Data misses go through the MSHR file: a second miss to a line
    /// whose fill is still in flight merges onto that fill (one memory
    /// request serves both), and a full file delays the fetch until a
    /// register frees. Metadata (PTE) fetches skip the MSHRs — their
    /// structural limit is the hardware walkers, and within one walk a
    /// round's parallel fetches (ECH's hash ways) must not serialise on
    /// miss registers the walker does not use.
    fn access_done(
        &mut self,
        i: usize,
        addr: PhysAddr,
        rw: RwKind,
        class: AccessClass,
        t_issue: Cycles,
    ) -> Cycles {
        if self.bypass.bypasses(class) {
            // NDPage metadata bypass: straight to memory, no cache probe,
            // no fill, no pollution.
            return self.memory_done(i, addr, rw, class, t_issue);
        }
        let core = &mut self.cores[i];
        // MSHR bookkeeping only matters when ops can overlap; a blocking
        // core's previous fill always lands before its next access, so
        // skipping the (provably inert) scans keeps the default hot path
        // at pre-pipeline speed. Metadata skips them in any mode — the
        // walker file, not the miss file, is its structural limit.
        let coalesce = class == AccessClass::Data && !self.cfg.is_blocking();
        match core.caches.lookup(addr, rw, class) {
            LookupResult::Hit { latency, .. } => {
                let now = t_issue + latency;
                // The functional cache installs lines when their fill is
                // *issued*; if that fill is still in flight, this "hit"
                // is a hit-under-miss and waits for the data to land.
                if coalesce {
                    if let Some(fill_done) = core.caches.in_flight_fill(addr, now) {
                        return fill_done.max(now);
                    }
                }
                now
            }
            LookupResult::MissAll { lookup_latency } => {
                let miss_t = t_issue + lookup_latency;
                let send_t = if coalesce {
                    match core.caches.probe_mshrs(addr, miss_t) {
                        // Same-line fill already in flight: merge, no
                        // second memory request.
                        MshrLookup::Coalesced(fill_done) => return fill_done.max(miss_t),
                        MshrLookup::Free => miss_t,
                        // Every register busy: the fetch waits for one.
                        MshrLookup::Full(free_at) => free_at,
                    }
                } else {
                    miss_t
                };
                if self.cfg.has_shared_llc() {
                    // Shared-layer route: the private miss contends in
                    // the shared L3 and/or vault buffers before (maybe)
                    // reaching DRAM; an exclusive L3 hit hands the
                    // extracted copy's dirtiness up with the line.
                    let (done, extracted_dirty) = self.shared_then_memory(i, addr, class, send_t);
                    if coalesce {
                        self.cores[i].caches.register_fill(addr, send_t, done);
                    }
                    let victims = self.cores[i].caches.fill_collect(
                        addr,
                        class,
                        rw.is_write() || extracted_dirty,
                    );
                    self.route_private_victims(i, victims, done);
                    return done;
                }
                // The demand fill fetches the line regardless of load or
                // store (store dirtiness is captured at eviction as a
                // writeback), so it reaches memory as a *read* — which is
                // also what keeps it in the demand-latency statistics.
                let done = self.memory_done(i, addr, RwKind::Read, class, send_t);
                if coalesce {
                    self.cores[i].caches.register_fill(addr, send_t, done);
                }
                let writebacks = self.cores[i].caches.fill(addr, class, rw.is_write());
                for wb in writebacks {
                    // Posted writeback: consumes bandwidth, nobody waits;
                    // accounted under write traffic, not demand latency.
                    self.memory_done(i, wb.addr, RwKind::Write, wb.class, done);
                }
                done
            }
        }
    }

    /// Routes a private miss through the shared last-level structures:
    /// shared L3 (when enabled), then vault buffer / DRAM. Returns the
    /// completion time at the core plus whether an exclusive L3 hit
    /// extracted a *dirty* copy (the private fill must preserve that
    /// dirtiness or a future writeback is lost).
    fn shared_then_memory(
        &mut self,
        i: usize,
        addr: PhysAddr,
        class: AccessClass,
        t: Cycles,
    ) -> (Cycles, bool) {
        if self.l3.is_none() {
            return (self.vault_read(i, addr, class, t), false);
        }
        let asid = self.cores[i].asid();
        let look = {
            let l3 = self.l3.as_mut().expect("checked above");
            l3.access(addr, RwKind::Read, class, t)
        };
        if look.hit {
            // The functional L3 installs lines at fill issue; a "hit" on
            // a line whose fill is still in flight waits for the data
            // (hit-under-miss, as in the private L1).
            let l3 = self.l3.as_mut().expect("checked above");
            if let Some(fill_done) = l3.in_flight_fill(addr, look.done) {
                return (fill_done.max(look.done), look.dirty);
            }
            return (look.done, look.dirty);
        }
        let send_t = {
            let l3 = self.l3.as_mut().expect("checked above");
            match l3.probe_mshrs(addr, look.done) {
                // Same-line fetch already in flight below: merge.
                MshrLookup::Coalesced(done) => return (done.max(look.done), false),
                MshrLookup::Free => look.done,
                MshrLookup::Full(free_at) => free_at,
            }
        };
        let done = self.vault_read(i, addr, class, send_t);
        let victim = {
            let l3 = self.l3.as_mut().expect("checked above");
            // The fill is registered in the *requesting core's* time
            // frame (`done` includes core `i`'s NoC return leg), because
            // the L3 itself has no modelled mesh position — its
            // below-L3 fetch already rides core `i`'s channel path. A
            // coalescing requester therefore inherits this core's return
            // leg instead of paying its own; today that requester can
            // only be core `i` itself (address spaces are disjoint, so
            // no two cores ever share a physical line), which makes the
            // frames coincide. Revisit if shared mappings are added.
            l3.register_fill(addr, send_t, done);
            if l3.config().policy == InclusionPolicy::Inclusive {
                // Inclusive: the demand fill installs here as well as in
                // the private levels; exclusive fills bypass the L3 (it
                // is fed by private victims instead).
                l3.fill(addr, class, asid, false)
            } else {
                None
            }
        };
        if let Some(victim) = victim {
            self.back_invalidate_for(i, victim, done);
        }
        (done, false)
    }

    /// An inclusive L3 evicted `victim`: invalidate every private copy
    /// (back-invalidation) and push dirty data toward memory — the
    /// victim's own dirtiness or a dirtier private copy's.
    fn back_invalidate_for(&mut self, i: usize, victim: SharedVictim, now: Cycles) {
        let mut present = false;
        let mut dirty_private = false;
        for core in &mut self.cores {
            let bi = core.caches.back_invalidate(victim.addr);
            present |= bi.present;
            dirty_private |= bi.dirty;
        }
        if present {
            self.l3
                .as_mut()
                .expect("inclusive victims imply an L3")
                .note_back_invalidation();
        }
        if victim.dirty || dirty_private {
            self.post_write(i, victim.addr, victim.class, now);
        }
    }

    /// Routes the victims of a private fill once a shared layer exists:
    /// lines leaving the *outermost* private level feed an exclusive L3
    /// (clean and dirty alike) or update their inclusive-L3 copy in
    /// place; everything else keeps the flat behaviour (dirty victims
    /// posted toward memory).
    fn route_private_victims(&mut self, i: usize, victims: VictimList, now: Cycles) {
        let outer = self.cores[i].caches.depth() - 1;
        let asid = self.cores[i].asid();
        let policy = self.l3.as_ref().map(|l3| l3.config().policy);
        for lv in victims {
            let v = lv.victim;
            if lv.level == outer {
                match policy {
                    Some(InclusionPolicy::Exclusive) => {
                        let evicted = self
                            .l3
                            .as_mut()
                            .expect("policy implies an L3")
                            .fill(v.addr, v.class, asid, v.dirty);
                        if let Some(evicted) = evicted {
                            if evicted.dirty {
                                self.post_write(i, evicted.addr, evicted.class, now);
                            }
                        }
                        continue;
                    }
                    // A dirty inclusive victim updates its L3 copy in
                    // place when present (absorbed, no memory traffic).
                    Some(InclusionPolicy::Inclusive)
                        if v.dirty
                            && self
                                .l3
                                .as_mut()
                                .expect("policy implies an L3")
                                .accept_writeback(v.addr) =>
                    {
                        continue;
                    }
                    Some(InclusionPolicy::Inclusive) | None => {}
                }
            }
            if v.dirty {
                self.post_write(i, v.addr, v.class, now);
            }
        }
    }

    /// A demand read below the shared L3: through the vault buffer when
    /// one fronts the line's channel, else straight to DRAM. Bypassed
    /// NDPage metadata never comes through here — it skips the vault
    /// buffers exactly as it skips every other cache.
    fn vault_read(&mut self, i: usize, addr: PhysAddr, class: AccessClass, t: Cycles) -> Cycles {
        if self.vaults.is_empty() {
            return self.memory_done(i, addr, RwKind::Read, class, t);
        }
        let channel = ndp_mem::line_channel(addr, self.controller.config().channels);
        let one_way = self.noc.core_to_channel(CoreId(i as u32), channel);
        let arrival = t + one_way;
        let asid = self.cores[i].asid();
        let send_t = {
            let vault = &mut self.vaults[channel as usize];
            let look = vault.access(addr, RwKind::Read, class, arrival);
            if look.hit {
                if let Some(fill_done) = vault.in_flight_fill(addr, look.done) {
                    return fill_done.max(look.done) + one_way;
                }
                return look.done + one_way;
            }
            match vault.probe_mshrs(addr, look.done) {
                MshrLookup::Coalesced(done) => return done.max(look.done) + one_way,
                MshrLookup::Free => look.done,
                MshrLookup::Full(free_at) => free_at,
            }
        };
        let ticket = self
            .controller
            .request_ticketed(addr, RwKind::Read, class, t, send_t);
        let vault = &mut self.vaults[channel as usize];
        vault.register_fill(addr, send_t, ticket.done);
        if let Some(victim) = vault.fill(addr, class, asid, false) {
            if victim.dirty {
                // The buffer sits at the vault: its dirty victims drain
                // into the local banks with no further NoC traversal.
                self.controller.request_ticketed(
                    victim.addr,
                    RwKind::Write,
                    victim.class,
                    ticket.done,
                    ticket.done,
                );
            }
        }
        ticket.done + one_way
    }

    /// A posted write (nobody waits): absorbed by the line's vault
    /// buffer when present there, else sent to DRAM.
    fn post_write(&mut self, i: usize, addr: PhysAddr, class: AccessClass, t: Cycles) {
        if self.vaults.is_empty() {
            self.memory_done(i, addr, RwKind::Write, class, t);
            return;
        }
        let channel = ndp_mem::line_channel(addr, self.controller.config().channels);
        if self.vaults[channel as usize].accept_writeback(addr) {
            return;
        }
        let one_way = self.noc.core_to_channel(CoreId(i as u32), channel);
        self.controller
            .request_ticketed(addr, RwKind::Write, class, t, t + one_way);
    }

    /// NoC traversal + DRAM service via the shared controller, returning
    /// the timestamp the data is back at the core. Each request carries
    /// its own issue/arrival times ([`ndp_types::MemTicket`]), so requests
    /// a windowed core overlaps contend individually in the DRAM banks.
    fn memory_done(
        &mut self,
        i: usize,
        addr: PhysAddr,
        rw: RwKind,
        class: AccessClass,
        t_issue: Cycles,
    ) -> Cycles {
        let channel = ndp_mem::line_channel(addr, self.controller.config().channels);
        let core_id = CoreId(i as u32);
        let one_way = self.noc.core_to_channel(core_id, channel);
        let ticket = self
            .controller
            .request_ticketed(addr, rw, class, t_issue, t_issue + one_way);
        ticket.done + one_way
    }

    fn into_report(self) -> RunReport {
        let mut tlb_l1 = HitMiss::default();
        let mut tlb_l2 = HitMiss::default();
        let mut l1_data = HitMiss::default();
        let mut l1_metadata = HitMiss::default();
        let mut pollution = 0u64;
        let mut ptw = LatencyStat::default();
        let mut ptw_histogram = LatencyHistogram::new();
        let mut faults = FaultCounts::default();
        let mut pwc: BTreeMap<PtLevel, HitMiss> = BTreeMap::new();
        let mut translation_cycles = 0u64;
        let mut os_cycles = 0u64;
        let mut ops = 0u64;
        let mut mem_ops = 0u64;
        let mut sched = SchedStats::default();
        let mut mlp = MlpStats::default();
        let mut occupancy = OccupancyReport::new();
        let mut table_bytes = 0u64;
        let mut measured = Vec::with_capacity(self.cores.len());

        for core in &self.cores {
            measured.push((core.time - core.start_time).as_f64());
            tlb_l1.merge(core.tlb.l1_stats());
            tlb_l2.merge(core.tlb.l2_stats());
            let l1 = core.caches.level_stats(0);
            l1_data.merge(&l1.data);
            l1_metadata.merge(&l1.metadata);
            pollution += l1.data_evicted_by_metadata;
            ptw.merge(&core.ptw);
            ptw_histogram.merge(&core.ptw_hist);
            faults.minor_4k += core.faults.minor_4k;
            faults.minor_2m += core.faults.minor_2m;
            faults.fallback += core.faults.fallback;
            translation_cycles += core.translation_cycles;
            os_cycles += core.os_cycles;
            ops += core.ops_measured;
            mem_ops += core.mem_ops_measured;
            sched.merge(&core.sched);
            // The machine-side MLP counters, then the ones owned by the
            // structures themselves (cleared at measurement start, like
            // every other cache/TLB statistic).
            mlp.merge(&core.mlp);
            let mshr = core.caches.mshr_stats();
            mlp.mshr_coalesced += mshr.coalesced;
            mlp.mshr_full_stalls += mshr.full_stalls;
            mlp.mshr_stall_cycles += mshr.full_stall_cycles;
            let walker = core.walker.stats();
            mlp.walker_queued_walks += walker.queued_walks;
            mlp.walker_queue_cycles += walker.queue_cycles;
            for (level, hm) in core.walker.pwcs().stats() {
                pwc.entry(level).or_default().merge(hm);
            }
            // Storage is the sum over every address space; occupancy
            // merges raw per-level counters, giving the capacity-weighted
            // pooled rate (with the homogeneous footprints and op counts
            // every table runs, this matches the per-table mean up to
            // allocation noise).
            for proc in &core.procs {
                occupancy.merge(&proc.table.occupancy());
                table_bytes += proc.table.table_bytes();
            }
        }

        let total = measured.iter().cloned().fold(0.0f64, f64::max);
        let avg = ndp_types::stats::mean(&measured);
        let dram = self.controller.dram_stats();

        // One report block per shared structure: the L3 as-is, the vault
        // buffers merged over `caches` via SharedStats::merge (one field
        // mapping, so a new counter cannot be dropped from the merge).
        let llc_block = |caches: &[&SharedCache], policy: &'static str| {
            let mut stats = ndp_cache::SharedStats::default();
            let mut mshr_coalesced = 0u64;
            let mut mshr_full_stalls = 0u64;
            let mut live_lines = 0u64;
            let mut occupancy: BTreeMap<u16, u64> = BTreeMap::new();
            for cache in caches {
                stats.merge(cache.stats());
                let mshr = cache.mshr_totals();
                mshr_coalesced += mshr.coalesced;
                mshr_full_stalls += mshr.full_stalls;
                live_lines += cache.live_lines();
                for (asid, lines) in cache.occupancy_by_asid() {
                    *occupancy.entry(asid.as_u16()).or_default() += lines;
                }
            }
            let config = caches[0].config();
            SharedLlcStats {
                size_kb: config.size_bytes >> 10,
                ways: config.ways,
                banks: config.banks,
                units: caches.len() as u32,
                policy,
                data: stats.data,
                metadata: stats.metadata,
                data_evicted_by_metadata: stats.data_evicted_by_metadata,
                writebacks: stats.writebacks,
                writebacks_absorbed: stats.writebacks_absorbed,
                bank_conflicts: stats.bank_conflicts,
                bank_conflict_cycles: stats.bank_conflict_cycles,
                back_invalidations: stats.back_invalidations,
                mshr_coalesced,
                mshr_full_stalls,
                occupancy_by_asid: occupancy.into_iter().collect(),
                live_lines,
            }
        };
        let l3_block = self
            .l3
            .as_ref()
            .map(|l3| llc_block(&[l3], self.cfg.l3_policy.name()));
        let vault_block = (!self.vaults.is_empty()).then(|| {
            let vaults: Vec<&SharedCache> = self.vaults.iter().collect();
            llc_block(&vaults, "memory-side")
        });

        RunReport {
            workload: self.cfg.workload,
            mechanism: self.cfg.mechanism,
            system: self.cfg.system,
            cores: self.cfg.cores,
            procs_per_core: self.cfg.procs_per_core,
            total_cycles: Cycles::new(total as u64),
            avg_core_cycles: avg,
            ops,
            mem_ops,
            translation_cycles,
            os_cycles,
            ptw,
            ptw_histogram,
            tlb_l1,
            tlb_l2,
            l1_data,
            l1_metadata,
            data_evicted_by_metadata: pollution,
            pwc: pwc.into_iter().collect(),
            mem_traffic: self.controller.stats().traffic,
            dram_row_hit_rate: dram.row_hit_rate(),
            dram_queue_delay: dram.queue_delay.mean(),
            faults,
            sched,
            mlp_window: self.cfg.mlp_window,
            mlp,
            l3: l3_block,
            vault: vault_block,
            occupancy,
            table_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_workloads::WorkloadId;

    fn quick(mechanism: Mechanism) -> RunReport {
        Machine::new(SimConfig::quick(
            SystemKind::Ndp,
            1,
            mechanism,
            WorkloadId::Rnd,
        ))
        .run()
    }

    #[test]
    fn runs_complete_and_count_ops() {
        let r = quick(Mechanism::Radix);
        assert_eq!(r.ops, 20_000);
        assert!(r.mem_ops > 0);
        assert!(r.total_cycles > Cycles::ZERO);
        assert!(r.ptw.count > 0, "GUPS on Radix must walk");
    }

    #[test]
    fn ideal_has_zero_translation() {
        let r = quick(Mechanism::Ideal);
        assert_eq!(r.translation_cycles, 0);
        assert_eq!(r.ptw.count, 0);
        assert_eq!(r.mem_traffic.metadata, 0);
        assert_eq!(r.l1_metadata.total(), 0);
    }

    #[test]
    fn ndpage_beats_radix_on_gups() {
        let radix = quick(Mechanism::Radix);
        let ndpage = quick(Mechanism::NdPage);
        assert!(
            ndpage.speedup_over(&radix) > 1.05,
            "NDPage {} vs Radix {}",
            ndpage.total_cycles,
            radix.total_cycles
        );
    }

    #[test]
    fn ndpage_issues_no_metadata_into_l1() {
        let r = quick(Mechanism::NdPage);
        assert_eq!(r.l1_metadata.total(), 0, "bypassed PTEs never probe L1");
        assert!(r.mem_traffic.metadata > 0, "but they do reach memory");
        assert_eq!(r.data_evicted_by_metadata, 0, "no pollution");
    }

    #[test]
    fn radix_metadata_pollutes_l1() {
        let r = quick(Mechanism::Radix);
        assert!(r.l1_metadata.total() > 0);
        assert!(
            r.l1_metadata.miss_rate() > 0.8,
            "irregular PTEs mostly miss: {}",
            r.l1_metadata.miss_rate()
        );
        assert!(r.data_evicted_by_metadata > 0);
    }

    #[test]
    fn determinism() {
        let a = quick(Mechanism::NdPage);
        let b = quick(Mechanism::NdPage);
        assert_eq!(a.total_cycles, b.total_cycles);
        assert_eq!(a.mem_traffic.total(), b.mem_traffic.total());
    }

    #[test]
    fn multicore_raises_ptw_latency_in_ndp() {
        let one = Machine::new(SimConfig::quick(
            SystemKind::Ndp,
            1,
            Mechanism::Radix,
            WorkloadId::Rnd,
        ))
        .run();
        let four = Machine::new(SimConfig::quick(
            SystemKind::Ndp,
            4,
            Mechanism::Radix,
            WorkloadId::Rnd,
        ))
        .run();
        assert!(
            four.avg_ptw_latency() > one.avg_ptw_latency(),
            "contention must grow PTW latency: {} vs {}",
            four.avg_ptw_latency(),
            one.avg_ptw_latency()
        );
    }

    #[test]
    fn cpu_translation_overhead_is_lower_than_ndp() {
        // Fig 5's metric: the share of runtime spent translating is far
        // higher in the NDP system, whose single cache level cannot absorb
        // PTE traffic the way the CPU's L2/L3 do.
        let ndp = Machine::new(SimConfig::quick(
            SystemKind::Ndp,
            4,
            Mechanism::Radix,
            WorkloadId::Bfs,
        ))
        .run();
        let cpu = Machine::new(SimConfig::quick(
            SystemKind::Cpu,
            4,
            Mechanism::Radix,
            WorkloadId::Bfs,
        ))
        .run();
        assert!(
            ndp.translation_fraction() > cpu.translation_fraction(),
            "NDP {} vs CPU {}",
            ndp.translation_fraction(),
            cpu.translation_fraction()
        );
        assert!(
            ndp.avg_ptw_latency() > cpu.avg_ptw_latency(),
            "PTW: NDP {} vs CPU {}",
            ndp.avg_ptw_latency(),
            cpu.avg_ptw_latency()
        );
    }

    #[test]
    fn huge_page_maps_huge_and_walks_less() {
        let r = quick(Mechanism::HugePage);
        assert!(r.faults.minor_2m > 0, "huge faults happened");
        assert!(
            r.tlb_walk_rate() < 0.5,
            "2 MB reach slashes TLB misses: {}",
            r.tlb_walk_rate()
        );
    }

    #[test]
    fn ech_walks_are_parallel_single_round() {
        let r = quick(Mechanism::Ech);
        assert!(r.ptw.count > 0);
        // 3 fetches per walk reach memory (no PWCs), but in one round.
        assert!(r.mem_traffic.metadata >= r.ptw.count * 2);
    }

    #[test]
    fn shared_l3_absorbs_radix_metadata_but_never_sees_ndpage_metadata() {
        let cfg = |m| {
            SimConfig::quick(SystemKind::Ndp, 2, m, WorkloadId::Rnd)
                .with_l3(2048)
                .with_procs(2)
                .with_quantum(2_000)
        };
        let radix = Machine::new(cfg(Mechanism::Radix)).run();
        let l3 = radix.l3.as_ref().expect("enabled L3 reports a block");
        assert!(l3.metadata.hits > 0, "PTE lines hit the shared L3");
        assert!(l3.bank_conflicts > 0, "co-runners conflict on bank ports");
        assert_eq!(
            l3.occupancy_by_asid.iter().map(|(_, n)| n).sum::<u64>(),
            l3.live_lines,
            "occupancy partitions the live lines"
        );
        assert!(
            l3.occupancy_by_asid.len() >= 2,
            "both co-resident ASIDs hold shared capacity"
        );

        let ndpage = Machine::new(cfg(Mechanism::NdPage)).run();
        let l3 = ndpage.l3.as_ref().expect("block present");
        assert_eq!(
            l3.metadata.total(),
            0,
            "bypassed PTE fetches never probe the shared L3"
        );
        assert!(l3.data.total() > 0, "data misses still contend there");
    }

    #[test]
    fn small_inclusive_l3_back_invalidates_private_lines() {
        let mut cfg = SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Bfs)
            .with_l3(256)
            .with_procs(2)
            .with_quantum(2_000);
        cfg.l3_banks = 4;
        let r = Machine::new(cfg).run();
        let l3 = r.l3.as_ref().unwrap();
        assert!(
            l3.back_invalidations > 0,
            "a 256 KB inclusive L3 under four working sets must back-invalidate"
        );
        assert_eq!(l3.policy, "inclusive");
    }

    #[test]
    fn exclusive_l3_runs_and_reports_its_policy() {
        let cfg = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd)
            .with_l3(1024)
            .with_l3_policy(crate::config::InclusionPolicy::Exclusive);
        let r = Machine::new(cfg).run();
        let l3 = r.l3.as_ref().unwrap();
        assert_eq!(l3.policy, "exclusive");
        assert_eq!(
            l3.back_invalidations, 0,
            "exclusive evictions need no back-invalidation"
        );
        assert!(l3.live_lines > 0, "private victims fill the exclusive L3");
    }

    #[test]
    fn vault_buffers_front_the_channels() {
        let cfg = SimConfig::quick(SystemKind::Ndp, 2, Mechanism::Radix, WorkloadId::Rnd)
            .with_vault_buffer(256);
        let r = Machine::new(cfg).run();
        let vault = r.vault.as_ref().expect("enabled vaults report a block");
        assert_eq!(vault.units, 4, "one buffer per HBM2 vault channel");
        assert!(vault.metadata.hits > 0, "PTE lines hit in the vault");
        assert_eq!(
            vault.occupancy_by_asid.iter().map(|(_, n)| n).sum::<u64>(),
            vault.live_lines
        );
        assert!(r.l3.is_none(), "no L3 block without --l3-kb");
    }

    #[test]
    fn cpu_shared_l3_replaces_the_private_slice() {
        let base = SimConfig::quick(SystemKind::Cpu, 2, Mechanism::Radix, WorkloadId::Bfs);
        let shared = Machine::new(base.clone().with_l3(4096)).run();
        let private = Machine::new(base).run();
        assert!(shared.l3.is_some());
        assert!(private.l3.is_none());
        // Both runs complete with walks; timing legitimately differs.
        assert!(shared.ptw.count > 0 && private.ptw.count > 0);
        assert_ne!(shared.fingerprint(), private.fingerprint());
    }

    #[test]
    fn disabled_shared_llc_knobs_are_inert() {
        let base = Machine::new(SimConfig::quick(
            SystemKind::Ndp,
            1,
            Mechanism::Radix,
            WorkloadId::Rnd,
        ))
        .run();
        let tweaked = SimConfig::quick(SystemKind::Ndp, 1, Mechanism::Radix, WorkloadId::Rnd)
            .with_l3_geometry(8, 2)
            .with_l3_policy(crate::config::InclusionPolicy::Exclusive);
        let tweaked = Machine::new(tweaked).run();
        assert_eq!(
            base.fingerprint(),
            tweaked.fingerprint(),
            "geometry/policy knobs must be inert while l3_kb = 0"
        );
        assert!(tweaked.l3.is_none() && tweaked.vault.is_none());
    }
}
