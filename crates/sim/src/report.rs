//! Run reports: every statistic the paper's figures draw from.

use crate::config::SystemKind;
use ndp_mem::controller::ClassTraffic;
use ndp_types::stats::{HitMiss, LatencyStat};
use ndp_types::{Cycles, PtLevel};
use ndp_workloads::WorkloadId;
use ndpage::occupancy::OccupancyReport;
use ndpage::Mechanism;
use std::fmt;

/// Page-fault counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// 4 KB minor faults.
    pub minor_4k: u64,
    /// 2 MB minor faults.
    pub minor_2m: u64,
    /// THP-fallback faults (contiguity exhausted).
    pub fallback: u64,
}

impl FaultCounts {
    /// Total faults.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.minor_4k + self.minor_2m + self.fallback
    }
}

/// Scheduling and translation-shootdown counters of one run (whole run,
/// like [`FaultCounts`] — flush effects from warmup linger into the
/// measured window, so a window-only count would under-report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Context switches performed across all cores.
    pub context_switches: u64,
    /// The subset of `context_switches` performed inside the measured
    /// window. The post-switch penalty counters below only accumulate in
    /// cold windows opened by these switches, so this is their exact
    /// denominator.
    pub measured_context_switches: u64,
    /// Full TLB+PWC flushes (one per switch on untagged hardware; zero on
    /// ASID-tagged hardware).
    pub tlb_flushes: u64,
    /// TLB entries + PWC tags dropped by those flushes.
    pub entries_flushed: u64,
    /// Page-table walks in cold windows opened by measured switches —
    /// the switch's cold-miss penalty in walk count.
    pub post_switch_walks: u64,
    /// Cycles those post-switch walks cost.
    pub post_switch_walk_cycles: u64,
}

impl SchedStats {
    /// Accumulates another core's counters into this one.
    pub fn merge(&mut self, other: &SchedStats) {
        self.context_switches += other.context_switches;
        self.measured_context_switches += other.measured_context_switches;
        self.tlb_flushes += other.tlb_flushes;
        self.entries_flushed += other.entries_flushed;
        self.post_switch_walks += other.post_switch_walks;
        self.post_switch_walk_cycles += other.post_switch_walk_cycles;
    }

    /// Mean walk cycles paid per context switch inside the post-switch
    /// cold window; zero when no switches happened. Numerator and
    /// denominator are both measured-window quantities (dividing by
    /// whole-run switches would understate the penalty by the
    /// warmup:measure ratio).
    #[must_use]
    pub fn cold_penalty_per_switch(&self) -> f64 {
        if self.measured_context_switches == 0 {
            0.0
        } else {
            self.post_switch_walk_cycles as f64 / self.measured_context_switches as f64
        }
    }
}

/// Memory-level-parallelism counters of one run (measured window, like
/// the TLB/cache/PWC statistics — warmup overlap is not interesting).
///
/// Every *overlap artefact* (stalls, coalescing, queueing, peak depth)
/// is zero for a blocking (`mlp_window = 1`) run — a blocking core never
/// has two requests in flight — which is why the block is hashed into
/// the fingerprint only for windowed runs. The one exception is
/// `inflight_latency_cycles`, which accumulates for blocking runs too so
/// [`RunReport::achieved_mlp`] can report how memory-bound they are
/// (always ≤ 1 there).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MlpStats {
    /// Cycles cores spent stalled because the issue window was full.
    pub window_stall_cycles: u64,
    /// Highest number of simultaneously in-flight memory ops any core
    /// reached.
    pub peak_inflight: u32,
    /// TLB hits on entries whose walk was still in flight — the lookup
    /// waited for the walk's data (translation hit-under-miss).
    pub tlb_hits_under_miss: u64,
    /// Sum over measured memory ops of their in-flight latency
    /// (completion − issue); dividing by elapsed cycles gives the average
    /// memory-op occupancy, > 1 only when ops actually overlapped.
    pub inflight_latency_cycles: u64,
    /// Misses merged onto an in-flight same-line fill.
    pub mshr_coalesced: u64,
    /// Misses that found every MSHR busy.
    pub mshr_full_stalls: u64,
    /// Cycles those misses waited for a free MSHR.
    pub mshr_stall_cycles: u64,
    /// Walks that queued for a hardware walker.
    pub walker_queued_walks: u64,
    /// Cycles walks spent queueing for a walker.
    pub walker_queue_cycles: u64,
}

impl MlpStats {
    /// Accumulates another core's counters into this one.
    pub fn merge(&mut self, other: &MlpStats) {
        self.window_stall_cycles += other.window_stall_cycles;
        self.peak_inflight = self.peak_inflight.max(other.peak_inflight);
        self.tlb_hits_under_miss += other.tlb_hits_under_miss;
        self.inflight_latency_cycles += other.inflight_latency_cycles;
        self.mshr_coalesced += other.mshr_coalesced;
        self.mshr_full_stalls += other.mshr_full_stalls;
        self.mshr_stall_cycles += other.mshr_stall_cycles;
        self.walker_queued_walks += other.walker_queued_walks;
        self.walker_queue_cycles += other.walker_queue_cycles;
    }

    /// Mean cycles a queued walk waited for a hardware walker; zero when
    /// no walk queued.
    #[must_use]
    pub fn walker_queue_delay(&self) -> f64 {
        if self.walker_queued_walks == 0 {
            0.0
        } else {
            self.walker_queue_cycles as f64 / self.walker_queued_walks as f64
        }
    }
}

/// Statistics of one shared last-level structure — the shared banked L3,
/// or the merge of every per-vault buffer. Present in a report only when
/// the structure was enabled, and hashed into the fingerprint only then,
/// so disabled runs keep their pre-shared-LLC digests bit for bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SharedLlcStats {
    /// Capacity in KB (per vault for the vault block).
    pub size_kb: u64,
    /// Associativity.
    pub ways: u32,
    /// Banks per cache (the port-conflict granularity).
    pub banks: u32,
    /// Number of physical caches merged into this block (1 for the L3,
    /// the channel count for vault buffers).
    pub units: u32,
    /// Inclusion policy name ("inclusive" / "exclusive"; vault buffers
    /// are memory-side and report "memory-side").
    pub policy: &'static str,
    /// Hits/misses of normal-data accesses.
    pub data: HitMiss,
    /// Hits/misses of metadata (PTE) accesses.
    pub metadata: HitMiss,
    /// Data lines evicted by metadata fills — shared-level pollution.
    pub data_evicted_by_metadata: u64,
    /// Dirty victims pushed toward memory.
    pub writebacks: u64,
    /// Private writebacks absorbed in place instead of reaching memory.
    pub writebacks_absorbed: u64,
    /// Accesses that found their bank port busy.
    pub bank_conflicts: u64,
    /// Cycles those accesses waited for the port.
    pub bank_conflict_cycles: u64,
    /// Inclusive evictions that invalidated a private L1/L2 copy.
    pub back_invalidations: u64,
    /// Misses merged onto an in-flight same-line fill (per-bank MSHRs).
    pub mshr_coalesced: u64,
    /// Misses that found every bank MSHR busy.
    pub mshr_full_stalls: u64,
    /// End-of-run live lines per owning ASID (sorted by ASID; sums to
    /// `live_lines`) — who is squeezing whom out of the shared capacity.
    pub occupancy_by_asid: Vec<(u16, u64)>,
    /// Valid lines resident at the end of the run.
    pub live_lines: u64,
}

impl SharedLlcStats {
    /// Combined accesses across classes.
    #[must_use]
    pub fn total(&self) -> HitMiss {
        let mut t = self.data;
        t.merge(&self.metadata);
        t
    }

    /// Mean cycles a bank-conflicted access waited; zero when none did.
    #[must_use]
    pub fn bank_conflict_delay(&self) -> f64 {
        if self.bank_conflicts == 0 {
            0.0
        } else {
            self.bank_conflict_cycles as f64 / self.bank_conflicts as f64
        }
    }
}

/// Aggregated results of one simulation run (measured window only).
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload traced.
    pub workload: WorkloadId,
    /// Mechanism under test.
    pub mechanism: Mechanism,
    /// System flavour.
    pub system: SystemKind,
    /// Core count.
    pub cores: u32,
    /// Multiprogrammed processes per core (1 = the paper's setup).
    pub procs_per_core: u32,
    /// Wall-clock of the run: slowest core's measured cycles.
    pub total_cycles: Cycles,
    /// Mean measured cycles across cores.
    pub avg_core_cycles: f64,
    /// Ops measured (all cores).
    pub ops: u64,
    /// Memory ops measured (all cores).
    pub mem_ops: u64,
    /// Cycles spent in address translation (TLB lookups + walks).
    pub translation_cycles: u64,
    /// Cycles spent in OS memory management (faults, compaction, rehash).
    pub os_cycles: u64,
    /// Page-table-walk latency distribution (the paper's PTW metric).
    pub ptw: LatencyStat,
    /// Full PTW latency histogram (power-of-two buckets) for tail
    /// analysis — Fig 4's "up to 1066 cycles" observation.
    pub ptw_histogram: ndp_types::stats::LatencyHistogram,
    /// L1 TLB hits/misses.
    pub tlb_l1: HitMiss,
    /// L2 TLB hits/misses.
    pub tlb_l2: HitMiss,
    /// L1 cache hits/misses of normal data.
    pub l1_data: HitMiss,
    /// L1 cache hits/misses of metadata (PTEs).
    pub l1_metadata: HitMiss,
    /// Data lines evicted by metadata fills (L1 pollution).
    pub data_evicted_by_metadata: u64,
    /// Per-level PWC statistics, merged across cores.
    pub pwc: Vec<(PtLevel, HitMiss)>,
    /// Main-memory traffic split by class.
    pub mem_traffic: ClassTraffic,
    /// DRAM row-buffer hit rate.
    pub dram_row_hit_rate: f64,
    /// Mean DRAM queueing delay (cycles).
    pub dram_queue_delay: f64,
    /// Fault counters (whole run, including warmup — faults are
    /// predominantly a warmup/first-touch phenomenon).
    pub faults: FaultCounts,
    /// Context-switch / TLB-shootdown counters (whole run; the post-switch
    /// penalty fields are measured-window).
    pub sched: SchedStats,
    /// Configured issue-window size (1 = blocking core).
    pub mlp_window: u32,
    /// Memory-level-parallelism counters (all zero for blocking runs).
    pub mlp: MlpStats,
    /// Shared banked L3 statistics (`None` when `l3_kb = 0`).
    pub l3: Option<SharedLlcStats>,
    /// Per-vault buffer statistics, merged over vaults (`None` when
    /// `vault_buffer_kb = 0`).
    pub vault: Option<SharedLlcStats>,
    /// Page-table occupancy pooled over *every* address space (all cores,
    /// all processes): per-level counters are summed, so the aggregate
    /// rate weights each table by its capacity. With the homogeneous
    /// per-core footprints and op counts the simulator runs, this
    /// coincides (to allocation noise) with the mean per-table rate.
    pub occupancy: OccupancyReport,
    /// Bytes of page-table storage summed over every address space.
    pub table_bytes: u64,
}

impl RunReport {
    /// Cycles per measured op (lower is better).
    #[must_use]
    pub fn cpo(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.avg_core_cycles * f64::from(self.cores) / self.ops as f64
        }
    }

    /// Fraction of run time spent on address translation (Fig 5 metric).
    #[must_use]
    pub fn translation_fraction(&self) -> f64 {
        let total = self.avg_core_cycles * f64::from(self.cores);
        if total == 0.0 {
            0.0
        } else {
            self.translation_cycles as f64 / total
        }
    }

    /// Average PTW latency in cycles (Figs 4 and 6a metric).
    #[must_use]
    pub fn avg_ptw_latency(&self) -> f64 {
        self.ptw.mean()
    }

    /// End-to-end TLB miss (walk) rate.
    #[must_use]
    pub fn tlb_walk_rate(&self) -> f64 {
        if self.tlb_l1.total() == 0 {
            0.0
        } else {
            self.tlb_l2.misses as f64 / self.tlb_l1.total() as f64
        }
    }

    /// Average number of memory ops in flight while the cores ran: the
    /// achieved memory-level parallelism. At most 1 for blocking runs
    /// (every op's latency is exposed serially); exceeds 1 — growing
    /// toward the window size — exactly when overlap succeeds.
    #[must_use]
    pub fn achieved_mlp(&self) -> f64 {
        let elapsed = self.avg_core_cycles * f64::from(self.cores);
        if elapsed == 0.0 {
            0.0
        } else {
            self.mlp.inflight_latency_cycles as f64 / elapsed
        }
    }

    /// Speedup of this run relative to a baseline (Figs 12–14 metric).
    #[must_use]
    pub fn speedup_over(&self, baseline: &RunReport) -> f64 {
        if self.total_cycles.as_u64() == 0 {
            return 0.0;
        }
        baseline.total_cycles.as_f64() / self.total_cycles.as_f64()
    }

    /// PWC hit rate at a level, if that level was exercised.
    #[must_use]
    pub fn pwc_hit_rate(&self, level: PtLevel) -> Option<f64> {
        self.pwc
            .iter()
            .find(|(l, _)| *l == level)
            .map(|(_, hm)| hm.hit_rate())
    }

    /// A deterministic digest of every counter in the report, for
    /// bit-identity assertions (e.g. parallel vs serial experiment
    /// drivers). Two reports of the same run always digest equally; any
    /// counter divergence changes the digest.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        use core::hash::{Hash, Hasher};
        let mut h = ndp_types::FastHasher::default();
        let hm = |h: &mut ndp_types::FastHasher, m: &HitMiss| {
            m.hits.hash(h);
            m.misses.hash(h);
        };
        self.workload.name().hash(&mut h);
        self.mechanism.name().hash(&mut h);
        self.cores.hash(&mut h);
        self.total_cycles.as_u64().hash(&mut h);
        self.avg_core_cycles.to_bits().hash(&mut h);
        self.ops.hash(&mut h);
        self.mem_ops.hash(&mut h);
        self.translation_cycles.hash(&mut h);
        self.os_cycles.hash(&mut h);
        self.ptw.count.hash(&mut h);
        self.ptw.sum.as_u64().hash(&mut h);
        self.ptw.max.as_u64().hash(&mut h);
        hm(&mut h, &self.tlb_l1);
        hm(&mut h, &self.tlb_l2);
        hm(&mut h, &self.l1_data);
        hm(&mut h, &self.l1_metadata);
        self.data_evicted_by_metadata.hash(&mut h);
        for (level, stats) in &self.pwc {
            level.pwc_slot().hash(&mut h);
            hm(&mut h, stats);
        }
        self.mem_traffic.data.hash(&mut h);
        self.mem_traffic.metadata.hash(&mut h);
        self.mem_traffic.write.hash(&mut h);
        self.dram_row_hit_rate.to_bits().hash(&mut h);
        self.dram_queue_delay.to_bits().hash(&mut h);
        self.faults.minor_4k.hash(&mut h);
        self.faults.minor_2m.hash(&mut h);
        self.faults.fallback.hash(&mut h);
        // The scheduling block is hashed only for multiprogrammed runs:
        // single-program reports predate the scheduler, and their digests
        // must not move when the (inert at procs_per_core = 1) scheduling
        // knobs change.
        if self.procs_per_core > 1 {
            self.procs_per_core.hash(&mut h);
            self.sched.context_switches.hash(&mut h);
            self.sched.measured_context_switches.hash(&mut h);
            self.sched.tlb_flushes.hash(&mut h);
            self.sched.entries_flushed.hash(&mut h);
            self.sched.post_switch_walks.hash(&mut h);
            self.sched.post_switch_walk_cycles.hash(&mut h);
        }
        // The MLP block is hashed only for windowed runs, for the same
        // reason as the scheduling block: blocking reports predate the
        // pipeline, and their digests must not move when the (inert at
        // mlp_window = 1) overlap knobs or counters change shape.
        if self.mlp_window > 1 {
            self.mlp_window.hash(&mut h);
            self.mlp.window_stall_cycles.hash(&mut h);
            self.mlp.peak_inflight.hash(&mut h);
            self.mlp.tlb_hits_under_miss.hash(&mut h);
            self.mlp.inflight_latency_cycles.hash(&mut h);
            self.mlp.mshr_coalesced.hash(&mut h);
            self.mlp.mshr_full_stalls.hash(&mut h);
            self.mlp.mshr_stall_cycles.hash(&mut h);
            self.mlp.walker_queued_walks.hash(&mut h);
            self.mlp.walker_queue_cycles.hash(&mut h);
        }
        // The shared-LLC blocks are hashed only when their structure was
        // enabled, for the same reason as the sched and MLP blocks:
        // disabled reports predate the shared layer and their digests must
        // not move when the (inert at l3_kb = 0) knobs or counters change.
        let shared = |h: &mut ndp_types::FastHasher, tag: u8, s: &SharedLlcStats| {
            tag.hash(h);
            s.size_kb.hash(h);
            s.ways.hash(h);
            s.banks.hash(h);
            s.units.hash(h);
            s.policy.hash(h);
            hm(h, &s.data);
            hm(h, &s.metadata);
            s.data_evicted_by_metadata.hash(h);
            s.writebacks.hash(h);
            s.writebacks_absorbed.hash(h);
            s.bank_conflicts.hash(h);
            s.bank_conflict_cycles.hash(h);
            s.back_invalidations.hash(h);
            s.mshr_coalesced.hash(h);
            s.mshr_full_stalls.hash(h);
            for (asid, lines) in &s.occupancy_by_asid {
                asid.hash(h);
                lines.hash(h);
            }
            s.live_lines.hash(h);
        };
        if let Some(l3) = &self.l3 {
            shared(&mut h, 0x13, l3);
        }
        if let Some(vault) = &self.vault {
            shared(&mut h, 0x14, vault);
        }
        self.table_bytes.hash(&mut h);
        h.finish()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} | {} | {} x{}: {} cycles ({:.1} cyc/op)",
            self.workload,
            self.mechanism,
            self.system,
            self.cores,
            self.total_cycles.as_u64(),
            self.cpo()
        )?;
        writeln!(
            f,
            "  translation: {:.1}% of time, PTW avg {:.1} cyc over {} walks",
            self.translation_fraction() * 100.0,
            self.avg_ptw_latency(),
            self.ptw.count
        )?;
        writeln!(
            f,
            "  TLB walk rate {:.2}%, L1D data miss {:.2}%, metadata miss {:.2}%",
            self.tlb_walk_rate() * 100.0,
            self.l1_data.miss_rate() * 100.0,
            self.l1_metadata.miss_rate() * 100.0
        )?;
        write!(
            f,
            "  memory: {} data + {} metadata + {} write reqs, row-hit {:.1}%, faults {}",
            self.mem_traffic.data,
            self.mem_traffic.metadata,
            self.mem_traffic.write,
            self.dram_row_hit_rate * 100.0,
            self.faults.total()
        )?;
        if self.procs_per_core > 1 {
            write!(
                f,
                "\n  sched: {} procs/core, {} switches, {} flushes ({} entries), \
                 post-switch {} walks / {} cycles",
                self.procs_per_core,
                self.sched.context_switches,
                self.sched.tlb_flushes,
                self.sched.entries_flushed,
                self.sched.post_switch_walks,
                self.sched.post_switch_walk_cycles
            )?;
        }
        if self.mlp_window > 1 {
            write!(
                f,
                "\n  mlp: window {}, achieved {:.2} in flight (peak {}), \
                 {} coalesced misses, {} MSHR-full stalls, \
                 {} TLB hits-under-miss, \
                 walker queue {} walks / {:.0} cyc avg",
                self.mlp_window,
                self.achieved_mlp(),
                self.mlp.peak_inflight,
                self.mlp.mshr_coalesced,
                self.mlp.mshr_full_stalls,
                self.mlp.tlb_hits_under_miss,
                self.mlp.walker_queued_walks,
                self.mlp.walker_queue_delay()
            )?;
        }
        let shared_line = |f: &mut fmt::Formatter<'_>, label: &str, s: &SharedLlcStats| {
            write!(
                f,
                "\n  {label}: {}x {} KB {}w/{}b {}, data hit {:.2}%, meta hit {:.2}%, \
                 {} bank conflicts ({:.1} cyc avg), {} back-invals, {} lines live",
                s.units,
                s.size_kb,
                s.ways,
                s.banks,
                s.policy,
                s.data.hit_rate() * 100.0,
                s.metadata.hit_rate() * 100.0,
                s.bank_conflicts,
                s.bank_conflict_delay(),
                s.back_invalidations,
                s.live_lines
            )
        };
        if let Some(l3) = &self.l3 {
            shared_line(f, "l3", l3)?;
        }
        if let Some(vault) = &self.vault {
            shared_line(f, "vault", vault)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(total: u64) -> RunReport {
        RunReport {
            workload: WorkloadId::Rnd,
            mechanism: Mechanism::Radix,
            system: SystemKind::Ndp,
            cores: 2,
            procs_per_core: 1,
            total_cycles: Cycles::new(total),
            avg_core_cycles: total as f64,
            ops: 100,
            mem_ops: 60,
            translation_cycles: total / 2,
            os_cycles: 0,
            ptw: LatencyStat::default(),
            ptw_histogram: ndp_types::stats::LatencyHistogram::new(),
            tlb_l1: HitMiss {
                hits: 10,
                misses: 90,
            },
            tlb_l2: HitMiss {
                hits: 10,
                misses: 80,
            },
            l1_data: HitMiss::default(),
            l1_metadata: HitMiss::default(),
            data_evicted_by_metadata: 0,
            pwc: vec![(
                PtLevel::L4,
                HitMiss {
                    hits: 99,
                    misses: 1,
                },
            )],
            mem_traffic: ClassTraffic::default(),
            dram_row_hit_rate: 0.5,
            dram_queue_delay: 1.0,
            faults: FaultCounts::default(),
            sched: SchedStats::default(),
            mlp_window: 1,
            mlp: MlpStats::default(),
            l3: None,
            vault: None,
            occupancy: OccupancyReport::new(),
            table_bytes: 4096,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = dummy(1000);
        assert!((r.cpo() - 20.0).abs() < 1e-9);
        assert!((r.translation_fraction() - 0.25).abs() < 1e-9);
        assert!((r.tlb_walk_rate() - 0.8).abs() < 1e-9);
        assert_eq!(r.pwc_hit_rate(PtLevel::L4), Some(0.99));
        assert_eq!(r.pwc_hit_rate(PtLevel::L1), None);
    }

    #[test]
    fn speedup_ratio() {
        let base = dummy(2000);
        let fast = dummy(1000);
        assert!((fast.speedup_over(&base) - 2.0).abs() < 1e-9);
        assert!((base.speedup_over(&base) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fingerprint_separates_runs() {
        assert_eq!(dummy(1000).fingerprint(), dummy(1000).fingerprint());
        assert_ne!(dummy(1000).fingerprint(), dummy(999).fingerprint());
        let mut tweaked = dummy(1000);
        tweaked.faults.fallback += 1;
        assert_ne!(dummy(1000).fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn sched_stats_merge_and_penalty() {
        let mut a = SchedStats {
            context_switches: 8,
            measured_context_switches: 4,
            tlb_flushes: 4,
            entries_flushed: 40,
            post_switch_walks: 8,
            post_switch_walk_cycles: 800,
        };
        let b = SchedStats {
            context_switches: 4,
            measured_context_switches: 2,
            tlb_flushes: 0,
            entries_flushed: 0,
            post_switch_walks: 1,
            post_switch_walk_cycles: 100,
        };
        a.merge(&b);
        assert_eq!(a.context_switches, 12);
        assert_eq!(a.entries_flushed, 40);
        // Penalty divides by *measured* switches (6), not whole-run (12).
        assert!((a.cold_penalty_per_switch() - 150.0).abs() < 1e-12);
        assert_eq!(SchedStats::default().cold_penalty_per_switch(), 0.0);
    }

    #[test]
    fn fingerprint_ignores_sched_at_one_proc_but_not_at_two() {
        // Single-program digests must not move when sched counters change
        // (they cannot change in a real run; this guards the hash shape).
        let mut single = dummy(1000);
        single.sched.context_switches = 99;
        assert_eq!(single.fingerprint(), dummy(1000).fingerprint());

        let mut multi = dummy(1000);
        multi.procs_per_core = 2;
        let base = multi.fingerprint();
        assert_ne!(base, dummy(1000).fingerprint(), "procs count is hashed");
        multi.sched.context_switches = 99;
        assert_ne!(base, multi.fingerprint(), "sched counters are hashed");
    }

    #[test]
    fn fingerprint_ignores_mlp_at_window_one_but_not_above() {
        // Blocking digests must not move when the (inert) MLP counters
        // change shape — windowed digests must cover them.
        let mut blocking = dummy(1000);
        blocking.mlp.mshr_coalesced = 42;
        assert_eq!(blocking.fingerprint(), dummy(1000).fingerprint());

        let mut windowed = dummy(1000);
        windowed.mlp_window = 8;
        let base = windowed.fingerprint();
        assert_ne!(base, dummy(1000).fingerprint(), "window size is hashed");
        windowed.mlp.mshr_coalesced = 42;
        assert_ne!(base, windowed.fingerprint(), "mlp counters are hashed");
    }

    #[test]
    fn mlp_stats_merge_and_derived_metrics() {
        let mut a = MlpStats {
            window_stall_cycles: 100,
            peak_inflight: 3,
            tlb_hits_under_miss: 6,
            inflight_latency_cycles: 4000,
            mshr_coalesced: 5,
            mshr_full_stalls: 2,
            mshr_stall_cycles: 50,
            walker_queued_walks: 4,
            walker_queue_cycles: 800,
        };
        let b = MlpStats {
            peak_inflight: 7,
            walker_queued_walks: 4,
            walker_queue_cycles: 1600,
            ..MlpStats::default()
        };
        a.merge(&b);
        assert_eq!(a.peak_inflight, 7, "peak is a max, not a sum");
        assert_eq!(a.walker_queued_walks, 8);
        assert!((a.walker_queue_delay() - 300.0).abs() < 1e-12);
        assert_eq!(MlpStats::default().walker_queue_delay(), 0.0);

        let mut r = dummy(1000);
        r.mlp.inflight_latency_cycles = 4000;
        // elapsed = avg_core_cycles * cores = 2000.
        assert!((r.achieved_mlp() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn display_covers_mlp_only_when_windowed() {
        let mut r = dummy(500);
        assert!(!r.to_string().contains("mlp:"));
        r.mlp_window = 8;
        assert!(r.to_string().contains("mlp: window 8"));
    }

    fn dummy_llc() -> SharedLlcStats {
        SharedLlcStats {
            size_kb: 2048,
            ways: 16,
            banks: 8,
            units: 1,
            policy: "inclusive",
            data: HitMiss {
                hits: 10,
                misses: 90,
            },
            metadata: HitMiss { hits: 5, misses: 5 },
            data_evicted_by_metadata: 2,
            writebacks: 3,
            writebacks_absorbed: 1,
            bank_conflicts: 4,
            bank_conflict_cycles: 8,
            back_invalidations: 2,
            mshr_coalesced: 1,
            mshr_full_stalls: 0,
            occupancy_by_asid: vec![(0, 60), (1, 40)],
            live_lines: 100,
        }
    }

    #[test]
    fn fingerprint_ignores_llc_when_absent_but_not_when_present() {
        // A disabled shared layer must not perturb pre-shared digests.
        assert_eq!(dummy(1000).fingerprint(), dummy(1000).fingerprint());

        let mut with_l3 = dummy(1000);
        with_l3.l3 = Some(dummy_llc());
        let base = with_l3.fingerprint();
        assert_ne!(base, dummy(1000).fingerprint(), "l3 block is hashed");
        let mut tweaked = with_l3.clone();
        tweaked.l3.as_mut().unwrap().bank_conflicts += 1;
        assert_ne!(base, tweaked.fingerprint(), "l3 counters are hashed");
        let mut tweaked = with_l3.clone();
        tweaked.l3.as_mut().unwrap().occupancy_by_asid[0].1 += 1;
        assert_ne!(base, tweaked.fingerprint(), "occupancy is hashed");

        // The vault block hashes with a distinct tag: the same stats as
        // a vault must not collide with them as an L3.
        let mut as_vault = dummy(1000);
        as_vault.vault = Some(dummy_llc());
        assert_ne!(base, as_vault.fingerprint());
    }

    #[test]
    fn llc_derived_metrics_and_display() {
        let s = dummy_llc();
        assert_eq!(s.total().total(), 110);
        assert!((s.bank_conflict_delay() - 2.0).abs() < 1e-12);
        assert_eq!(SharedLlcStats::default().bank_conflict_delay(), 0.0);

        let mut r = dummy(500);
        assert!(!r.to_string().contains("l3:"));
        assert!(!r.to_string().contains("vault:"));
        r.l3 = Some(dummy_llc());
        let text = r.to_string();
        assert!(text.contains("l3: 1x 2048 KB 16w/8b inclusive"), "{text}");
        assert!(text.contains("back-invals"));
        r.vault = Some(dummy_llc());
        assert!(r.to_string().contains("vault:"));
    }

    #[test]
    fn fingerprint_covers_write_traffic() {
        let mut tweaked = dummy(1000);
        tweaked.mem_traffic.write += 1;
        assert_ne!(dummy(1000).fingerprint(), tweaked.fingerprint());
    }

    #[test]
    fn fault_totals() {
        let f = FaultCounts {
            minor_4k: 1,
            minor_2m: 2,
            fallback: 3,
        };
        assert_eq!(f.total(), 6);
    }

    #[test]
    fn display_is_informative() {
        let s = dummy(500).to_string();
        assert!(s.contains("RND"));
        assert!(s.contains("translation"));
    }
}
