//! High-level experiment drivers: one function per paper figure/table.
//!
//! Each driver returns plain data (rows of numbers keyed by workload /
//! mechanism) so callers — the `figures` binary, Criterion benches, tests —
//! can print, assert or plot without re-running logic.

use crate::config::{SimConfig, SystemKind};
use crate::machine::Machine;
use crate::parallel::par_map;
use crate::report::RunReport;
use ndp_types::stats::geomean;
use ndp_workloads::WorkloadId;
use ndpage::Mechanism;

/// Runs one configuration.
#[must_use]
pub fn run(cfg: SimConfig) -> RunReport {
    Machine::new(cfg).run()
}

/// Runs a batch of configurations across worker threads, returning
/// reports in input order. Each [`Machine`] is self-contained and seeded,
/// so the reports are bit-identical to running the batch serially
/// (asserted by `tests/determinism_and_stats.rs`).
#[must_use]
pub fn run_batch(cfgs: Vec<SimConfig>) -> Vec<RunReport> {
    par_map(cfgs, run)
}

/// Scale of an experiment batch; controls windows and footprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small windows and footprints: CI-friendly (seconds).
    Quick,
    /// The default evaluation scale used for EXPERIMENTS.md.
    Full,
}

impl Scale {
    /// The scale's name, as printed in figure-table headers so output
    /// always says which scale produced it.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Applies this scale to a config.
    #[must_use]
    pub fn apply(self, mut cfg: SimConfig) -> SimConfig {
        match self {
            Scale::Quick => {
                cfg.warmup_ops = 8_000;
                cfg.measure_ops = 15_000;
                cfg.footprint_override = Some(1 << 30);
            }
            Scale::Full => {
                cfg.warmup_ops = SimConfig::DEFAULT_WARMUP;
                cfg.measure_ops = SimConfig::DEFAULT_MEASURE;
                cfg.footprint_override = None;
            }
        }
        cfg
    }
}

/// One speedup row of Figs 12–14: a workload's speedups over Radix.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// The workload.
    pub workload: WorkloadId,
    /// `(mechanism, speedup-over-Radix)` for ECH, Huge Page, NDPage, Ideal.
    pub speedups: Vec<(Mechanism, f64)>,
}

/// Figs 12/13/14: speedup over Radix for every workload and mechanism on
/// an NDP system with `cores` cores.
#[must_use]
pub fn speedup_figure(cores: u32, scale: Scale, workloads: &[WorkloadId]) -> Vec<SpeedupRow> {
    // One task per (workload, mechanism) pair, fanned out together.
    let cfgs: Vec<SimConfig> = workloads
        .iter()
        .flat_map(|&w| {
            Mechanism::ALL
                .iter()
                .map(move |&m| scale.apply(SimConfig::new(SystemKind::Ndp, cores, m, w)))
        })
        .collect();
    let mut reports = run_batch(cfgs).into_iter();
    workloads
        .iter()
        .map(|&w| {
            let per_mechanism: Vec<RunReport> = (&mut reports).take(Mechanism::ALL.len()).collect();
            let radix = &per_mechanism[0];
            debug_assert_eq!(radix.mechanism, Mechanism::Radix);
            SpeedupRow {
                workload: w,
                speedups: per_mechanism[1..]
                    .iter()
                    .map(|r| (r.mechanism, r.speedup_over(radix)))
                    .collect(),
            }
        })
        .collect()
}

/// Geometric-mean speedup per mechanism across rows (the paper's
/// "on average" numbers).
#[must_use]
pub fn geomean_speedups(rows: &[SpeedupRow]) -> Vec<(Mechanism, f64)> {
    let mechanisms = [
        Mechanism::Ech,
        Mechanism::HugePage,
        Mechanism::NdPage,
        Mechanism::Ideal,
    ];
    mechanisms
        .iter()
        .map(|&m| {
            let vals: Vec<f64> = rows
                .iter()
                .filter_map(|row| {
                    row.speedups
                        .iter()
                        .find(|(mm, _)| *mm == m)
                        .map(|(_, s)| *s)
                })
                .collect();
            (m, geomean(&vals))
        })
        .collect()
}

/// Fig 4 / Fig 5 row: NDP-vs-CPU motivation metrics for one workload on
/// 4-core Radix systems.
#[derive(Debug, Clone)]
pub struct MotivationRow {
    /// The workload.
    pub workload: WorkloadId,
    /// NDP run.
    pub ndp: RunReport,
    /// CPU run.
    pub cpu: RunReport,
}

/// Figs 4–5: 4-core NDP vs CPU under Radix.
#[must_use]
pub fn motivation_figures(scale: Scale, workloads: &[WorkloadId]) -> Vec<MotivationRow> {
    let cfgs: Vec<SimConfig> = workloads
        .iter()
        .flat_map(|&w| {
            [SystemKind::Ndp, SystemKind::Cpu]
                .map(|s| scale.apply(SimConfig::new(s, 4, Mechanism::Radix, w)))
        })
        .collect();
    let mut reports = run_batch(cfgs).into_iter();
    workloads
        .iter()
        .map(|&w| MotivationRow {
            workload: w,
            ndp: reports.next().expect("one NDP report per workload"),
            cpu: reports.next().expect("one CPU report per workload"),
        })
        .collect()
}

/// Fig 6: PTW latency and translation-overhead scaling over core counts.
#[must_use]
pub fn scaling_figure(
    scale: Scale,
    workloads: &[WorkloadId],
    core_counts: &[u32],
) -> Vec<(u32, SystemKind, f64, f64)> {
    let points: Vec<(SystemKind, u32)> = [SystemKind::Ndp, SystemKind::Cpu]
        .iter()
        .flat_map(|&system| core_counts.iter().map(move |&cores| (system, cores)))
        .collect();
    let cfgs: Vec<SimConfig> = points
        .iter()
        .flat_map(|&(system, cores)| {
            workloads
                .iter()
                .map(move |&w| scale.apply(SimConfig::new(system, cores, Mechanism::Radix, w)))
        })
        .collect();
    let mut reports = run_batch(cfgs).into_iter();
    points
        .into_iter()
        .map(|(system, cores)| {
            let batch: Vec<RunReport> = (&mut reports).take(workloads.len()).collect();
            let ptw: Vec<f64> = batch.iter().map(RunReport::avg_ptw_latency).collect();
            let frac: Vec<f64> = batch.iter().map(RunReport::translation_fraction).collect();
            (
                cores,
                system,
                ndp_types::stats::mean(&ptw),
                ndp_types::stats::mean(&frac),
            )
        })
        .collect()
}

/// Fig 7: L1 miss rates on 4-core NDP — data under Ideal (no metadata),
/// data under Radix, and metadata under Radix.
#[derive(Debug, Clone)]
pub struct MissRateRow {
    /// The workload.
    pub workload: WorkloadId,
    /// L1 data miss rate with no translation traffic (Ideal).
    pub data_ideal: f64,
    /// L1 data miss rate under Radix (pollution included).
    pub data_actual: f64,
    /// L1 metadata miss rate under Radix.
    pub metadata: f64,
}

/// Fig 7 rows.
#[must_use]
pub fn miss_rate_figure(scale: Scale, workloads: &[WorkloadId]) -> Vec<MissRateRow> {
    let cfgs: Vec<SimConfig> = workloads
        .iter()
        .flat_map(|&w| {
            [Mechanism::Ideal, Mechanism::Radix]
                .map(|m| scale.apply(SimConfig::new(SystemKind::Ndp, 4, m, w)))
        })
        .collect();
    let mut reports = run_batch(cfgs).into_iter();
    workloads
        .iter()
        .map(|&w| {
            let ideal = reports.next().expect("one Ideal report per workload");
            let radix = reports.next().expect("one Radix report per workload");
            MissRateRow {
                workload: w,
                data_ideal: ideal.l1_data.miss_rate(),
                data_actual: radix.l1_data.miss_rate(),
                metadata: radix.l1_metadata.miss_rate(),
            }
        })
        .collect()
}

/// Fig 8: radix page-table occupancy rates per workload.
/// Returns `(workload, PL1, PL2, PL3, combined PL2/PL1)` rates.
///
/// The paper measures occupancy on a system whose workloads have fully
/// initialised their multi-GB arrays, so every page of every region is
/// mapped. We reproduce that as a mapping analysis: build the radix table,
/// map the workload's regions page by page (as the init phase's first
/// touches would), and read the occupancy counters. No timing is involved,
/// so this uses the real Table II footprints even at `Scale::Quick`
/// (capped at 1 GB there to stay fast).
#[must_use]
pub fn occupancy_figure(
    scale: Scale,
    workloads: &[WorkloadId],
) -> Vec<(WorkloadId, f64, f64, f64, f64)> {
    use ndp_types::addr::PAGE_SIZE;
    use ndp_workloads::TraceParams;
    use ndpage::alloc::FrameAllocator;
    use ndpage::radix::Radix4;
    use ndpage::table::PageTable;

    par_map(workloads.to_vec(), |w| {
        let footprint = match scale {
            Scale::Quick => w.table2_footprint().min(1 << 30),
            Scale::Full => w.table2_footprint(),
        };
        let params = TraceParams::new(0).with_footprint(footprint);
        // Bookkeeping-only allocator: sized generously so even the
        // 33 GB GEN footprint maps (no data is materialised).
        let mut alloc = FrameAllocator::new((footprint * 2).max(64 << 30));
        let mut table = Radix4::new(&mut alloc);
        for region in w.regions(params) {
            let first = region.base.vpn();
            let pages = region.bytes.div_ceil(PAGE_SIZE);
            table.map_range(first, pages, &mut alloc);
        }
        let s = table.occupancy().fig8_series();
        (w, s.pl1, s.pl2, s.pl3, s.combined_pl2_pl1)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: [WorkloadId; 2] = [WorkloadId::Rnd, WorkloadId::Bfs];

    #[test]
    fn speedup_rows_have_all_mechanisms() {
        let rows = speedup_figure(1, Scale::Quick, &[WorkloadId::Rnd]);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].speedups.len(), 4);
        let gm = geomean_speedups(&rows);
        let ideal = gm.iter().find(|(m, _)| *m == Mechanism::Ideal).unwrap().1;
        let ndpage = gm.iter().find(|(m, _)| *m == Mechanism::NdPage).unwrap().1;
        assert!(ideal >= ndpage, "Ideal bounds NDPage");
        assert!(ndpage > 1.0, "NDPage beats Radix");
    }

    #[test]
    fn motivation_shows_ndp_worse_than_cpu() {
        // BFS has the hot/cold working-set structure that lets CPU caches
        // absorb PTE lines; uniform-random GUPS is hostile to both systems.
        let rows = motivation_figures(Scale::Quick, &[WorkloadId::Bfs]);
        let row = &rows[0];
        assert!(
            row.ndp.avg_ptw_latency() > row.cpu.avg_ptw_latency(),
            "NDP {} vs CPU {}",
            row.ndp.avg_ptw_latency(),
            row.cpu.avg_ptw_latency()
        );
        assert!(row.ndp.translation_fraction() > row.cpu.translation_fraction());
    }

    #[test]
    fn miss_rates_show_pollution() {
        let rows = miss_rate_figure(Scale::Quick, &[WorkloadId::Rnd]);
        let r = &rows[0];
        assert!(r.metadata > 0.8, "metadata miss {}", r.metadata);
        assert!(
            r.data_actual >= r.data_ideal,
            "pollution can only hurt: {} vs {}",
            r.data_actual,
            r.data_ideal
        );
    }

    #[test]
    fn occupancy_shows_full_bottom_levels() {
        let rows = occupancy_figure(Scale::Quick, &[WorkloadId::Rnd]);
        let (_, pl1, pl2, pl3, combined) = rows[0];
        assert!(pl1 > 0.9, "PL1 dense: {pl1}");
        assert!(pl2 > 0.9, "PL2 dense: {pl2}");
        assert!(pl3 < 0.05, "PL3 sparse: {pl3}");
        assert!(combined > 0.9, "merged level dense: {combined}");
    }

    #[test]
    fn scaling_covers_requested_points() {
        let rows = scaling_figure(Scale::Quick, &W[..1], &[1, 2]);
        assert_eq!(rows.len(), 4); // 2 systems x 2 core counts
    }
}
